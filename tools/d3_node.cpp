// d3_node: one computation node of the distributed online engine as its own OS
// process (the per-tier machines of paper Fig. 2).
//
// Spawned by the coordinator (rpc::WorkerProcess) as
//
//   d3_node --connect <host> <port>
//
// it dials back over localhost TCP and serves the node protocol (rpc/
// node_service.h) until the coordinator hangs up: receive the model name +
// weights + plan, hold per-request tensor slots, run layers and VSM stacks on
// demand. Exit code 0 on clean shutdown, 1 on any protocol or socket failure.
#include <cstdint>
#include <cstdio>
#include <string>

#include "rpc/node_service.h"
#include "rpc/socket.h"

int main(int argc, char** argv) {
  if (argc != 4 || std::string(argv[1]) != "--connect") {
    std::fprintf(stderr, "usage: %s --connect <host> <port>\n", argv[0]);
    return 2;
  }
  try {
    const std::string host = argv[2];
    const unsigned long port = std::stoul(argv[3]);
    if (port == 0 || port > 65535) throw d3::rpc::SocketError("port out of range");
    d3::rpc::Socket socket =
        d3::rpc::tcp_connect(host, static_cast<std::uint16_t>(port));
    d3::rpc::serve_node(socket.fd());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "d3_node: %s\n", e.what());
    return 1;
  }
}
