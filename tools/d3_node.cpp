// d3_node: one computation node of the distributed online engine as its own OS
// process (the per-tier machines of paper Fig. 2).
//
// Spawned by the coordinator (rpc::WorkerProcess) as
//
//   d3_node --connect <host> <port> [--crash-after <frames>]
//
// it dials back over localhost TCP and serves the node protocol (rpc/
// node_service.h) until the coordinator hangs up: receive the model name +
// weights + plan, hold per-request tensor slots, run layers and VSM stacks on
// demand. --crash-after N makes the process exit abruptly (no reply) on the
// (N+1)th coordinator frame — a deterministic, scriptable stand-in for a
// SIGKILL at an exact protocol point, used by the fault-injection tests.
// Exit code 0 on clean shutdown, 1 on any protocol or socket failure.
#include <cstdint>
#include <cstdio>
#include <string>

#include "rpc/node_service.h"
#include "rpc/socket.h"

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr, "usage: %s --connect <host> <port> [--crash-after <frames>]\n",
                 argv[0]);
    return 2;
  };
  if (argc < 4 || std::string(argv[1]) != "--connect") return usage();
  try {
    const std::string host = argv[2];
    const unsigned long port = std::stoul(argv[3]);
    if (port == 0 || port > 65535) throw d3::rpc::SocketError("port out of range");
    d3::rpc::ServeOptions options;
    int arg = 4;
    while (arg < argc) {
      if (std::string(argv[arg]) == "--crash-after" && arg + 1 < argc) {
        options.crash_after_frames = std::stoull(argv[arg + 1]);
        arg += 2;
      } else {
        return usage();
      }
    }
    d3::rpc::Socket socket =
        d3::rpc::tcp_connect(host, static_cast<std::uint16_t>(port));
    d3::rpc::serve_node(socket.fd(), options);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "d3_node: %s\n", e.what());
    return 1;
  }
}
