// d3_node: one computation node of the distributed online engine as its own OS
// process (the per-tier machines of paper Fig. 2).
//
// Two modes:
//
//   d3_node --connect <host> <port> [--crash-after <frames>]
//
// spawned by the coordinator (rpc::WorkerProcess), dials back over TCP and
// serves the node protocol (rpc/node_service.h) until the coordinator hangs
// up: receive the model name + weights + plan, hold per-request tensor slots,
// run layers and VSM stacks on demand.
//
//   d3_node --listen <port> [--crash-after <frames>]
//
// binds <port> (0 = ephemeral), prints "PORT <port>" on stdout, and serves
// coordinator connections accepted from it — concurrently, with one
// persistent node state across them. A coordinator that dies is survived: its
// successor dials the same port, replays kConfig (idempotent) and finds the
// per-request slots and buddy replicas intact. When two coordinators are
// connected at once (a failover race), the fencing epoch in kConfig decides:
// the higher incarnation owns the node and every frame from the lower one is
// answered kFenced. This is the worker side of coordinator failover
// (rpc::ListenWorkerProcess spawns it in tests).
//
//   d3_node --book <file> <name> [--crash-after <frames>]
//
// the zero-human deployment form of --listen: looks `name` up in the
// [workers] section of the address book (runtime/address_book.h), binds that
// entry's host:port, and serves exactly like --listen. The whole deployment —
// workers, the active coordinator's beacon, and the standbys — boots from the
// one shared file with no spawn-time port plumbing.
//
//   d3_node --bundle <file> <name> [--crash-after <frames>]
//
// the AOT boot form: mmap-loads the d3c deployment bundle at <file> — plan,
// this node's weight shard, and the embedded address book — verifies its
// checksum, comes up already configured, and listens at <name>'s entry in the
// bundle's [workers] section. No coordinator round-trip ships the model: a
// coordinator started with --elide-weights sends plan + weights hash only
// (O(1) instead of O(model)), and a hash disagreement is answered
// kBundleMismatch before any state mutation. `--bundle <file> <name>` also
// composes with --listen/--connect/--book as a trailing flag (the spawn-time
// port still wins; the bundle supplies the configuration).
//
// --crash-after N makes the process exit abruptly (no reply) on the (N+1)th
// coordinator frame — a deterministic, scriptable stand-in for a SIGKILL at an
// exact protocol point, used by the fault-injection tests. Exit code 0 on
// clean shutdown, 1 on any protocol or socket failure.
#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/bundle.h"
#include "rpc/node_service.h"
#include "rpc/socket.h"
#include "runtime/address_book.h"

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s --connect <host> <port> [--crash-after <frames>] [--service-ms <ms>]\n"
                 "       %s --listen <port> [--crash-after <frames>] [--service-ms <ms>]\n"
                 "       %s --book <file> <name> [--crash-after <frames>] [--service-ms <ms>]\n"
                 "       %s --bundle <file> <name> [--crash-after <frames>] [--service-ms <ms>]\n"
                 "       (--bundle <file> <name> also composes with the other modes)\n",
                 argv[0], argv[0], argv[0], argv[0]);
    return 2;
  };
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  try {
    d3::rpc::ServeOptions options;
    std::optional<d3::core::DeploymentBundle> bundle;
    const auto load_bundle = [&](const std::string& file, const std::string& name) {
      bundle = d3::core::load_bundle_file(file);
      if (bundle->node_name != name)
        throw std::invalid_argument("bundle '" + file + "' was compiled for node '" +
                                    bundle->node_name + "', not '" + name + "'");
      options.bundle = &*bundle;
    };
    int arg = mode == "--listen" ? 3 : 4;
    if (mode != "--listen" && argc < 4) return usage();
    while (arg < argc) {
      if (std::string(argv[arg]) == "--crash-after" && arg + 1 < argc) {
        options.crash_after_frames = std::stoull(argv[arg + 1]);
        arg += 2;
      } else if (std::string(argv[arg]) == "--service-ms" && arg + 1 < argc) {
        // Emulated per-kRunLayer/kRunStack service latency (overlap benches).
        options.service_seconds = std::stod(argv[arg + 1]) / 1e3;
        arg += 2;
      } else if (std::string(argv[arg]) == "--bundle" && arg + 2 < argc) {
        // AOT boot riding another mode (rpc::ListenWorkerProcess spawns
        // "--listen 0 --bundle <file> <name>" in the bundle-boot tests).
        load_bundle(argv[arg + 1], argv[arg + 2]);
        arg += 3;
      } else {
        return usage();
      }
    }
    if (mode == "--connect") {
      const std::string host = argv[2];
      const unsigned long port = std::stoul(argv[3]);
      if (port == 0 || port > 65535) throw d3::rpc::SocketError("port out of range");
      d3::rpc::Socket socket =
          d3::rpc::tcp_connect(host, static_cast<std::uint16_t>(port));
      d3::rpc::serve_node(socket.fd(), options);
      return 0;
    }
    if (mode == "--listen") {
      const unsigned long requested = std::stoul(argv[2]);
      if (requested > 65535) throw d3::rpc::SocketError("port out of range");
      std::uint16_t port = static_cast<std::uint16_t>(requested);
      d3::rpc::Socket listener = d3::rpc::tcp_listen(port);
      // The bound (possibly ephemeral) port is the spawner's handle to this
      // worker; flushed so a pipe reader sees it before the first accept.
      std::printf("PORT %u\n", static_cast<unsigned>(port));
      std::fflush(stdout);
      d3::rpc::serve_listen_node(listener, options);
      return 0;
    }
    if (mode == "--bundle") {
      load_bundle(argv[2], argv[3]);
      // The bundle embeds the deployment's address book: this node's listen
      // endpoint comes from its own [workers] entry, no flag plumbing.
      const d3::runtime::AddressBook book =
          d3::runtime::AddressBook::parse(bundle->book_text);
      const d3::runtime::Endpoint* self = nullptr;
      for (const d3::runtime::Endpoint& worker : book.workers())
        if (worker.name == bundle->node_name) self = &worker;
      if (self == nullptr)
        throw std::invalid_argument("\"" + bundle->node_name +
                                    "\" is not in the bundle's [workers] section");
      std::uint16_t port = self->port;
      d3::rpc::Socket listener = d3::rpc::tcp_listen_on(self->host, port);
      std::printf("PORT %u\n", static_cast<unsigned>(port));
      std::fflush(stdout);
      d3::rpc::serve_listen_node(listener, options);
      return 0;
    }
    if (mode == "--book") {
      const d3::runtime::AddressBook book = d3::runtime::AddressBook::load(argv[2]);
      const std::string name = argv[3];
      const d3::runtime::Endpoint* self = nullptr;
      for (const d3::runtime::Endpoint& worker : book.workers())
        if (worker.name == name) self = &worker;
      if (self == nullptr)
        throw std::invalid_argument("\"" + name + "\" is not in the [workers] section");
      std::uint16_t port = self->port;
      d3::rpc::Socket listener = d3::rpc::tcp_listen_on(self->host, port);
      std::printf("PORT %u\n", static_cast<unsigned>(port));
      std::fflush(stdout);
      d3::rpc::serve_listen_node(listener, options);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "d3_node: %s\n", e.what());
    return 1;
  }
}
