#!/usr/bin/env python3
"""Checks that internal Markdown links in the repo's documentation resolve.

Scans README.md, ROADMAP.md, PAPER.md, PAPERS.md, CHANGES.md, docs/*.md and
bench/README.md for inline links `[text](target)` and verifies that every
relative target exists in the tree (anchors and external http(s)/mailto links
are skipped; anchor-only links `#section` are checked against the headings of
the same file). Exits non-zero listing every broken link.

Usage: check_doc_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style slug: lowercase, drop punctuation, spaces to dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def doc_files(root: Path):
    candidates = [
        root / "README.md",
        root / "ROADMAP.md",
        root / "PAPER.md",
        root / "PAPERS.md",
        root / "CHANGES.md",
        root / "bench" / "README.md",
    ]
    candidates.extend(sorted((root / "docs").glob("*.md")))
    return [p for p in candidates if p.is_file()]


def check(root: Path) -> list[str]:
    errors = []
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        anchors = {anchor_of(h) for h in HEADING.findall(text)}
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel = doc.relative_to(root)
            if target.startswith("#"):
                if target[1:] not in anchors:
                    errors.append(f"{rel}: broken anchor {target}")
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link {target}")
                continue
            if anchor and resolved.suffix == ".md":
                linked_anchors = {
                    anchor_of(h)
                    for h in HEADING.findall(resolved.read_text(encoding="utf-8"))
                }
                if anchor not in linked_anchors:
                    errors.append(f"{rel}: broken anchor in link {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    errors = check(root)
    checked = ", ".join(str(p.relative_to(root)) for p in doc_files(root))
    if errors:
        print(f"checked: {checked}")
        for error in errors:
            print(f"BROKEN: {error}")
        return 1
    print(f"all internal links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
