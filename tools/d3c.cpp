// d3c: the deployment-bundle compiler — the offline half of AOT node boot.
//
//   d3c --model <zoo-name> --book <file> --out <dir>
//       [--testbed paper|table2] [--condition wifi|lte|5g|optical]
//       [--edge-nodes <n>] [--seed <n>]
//       [--plan <file>] [--emit-plan <file>]
//
// Runs the offline partition framework (HPA + VSM, core/d3.h) for the chosen
// testbed and network condition — or takes a ready text plan via --plan — and
// emits ONE versioned, checksummed binary bundle per [workers] entry of the
// address book: the serialized plan, the weight shard covering exactly the
// layers that node executes (parameterless elsewhere), and the address book
// itself. `d3_node --bundle <dir>/<name>.d3b <name>` then boots fully
// configured with no coordinator round-trip; a coordinator started with
// --elide-weights ships plan + weights hash only (O(1) instead of O(model))
// and any version skew is answered kBundleMismatch before state mutation.
//
// The weights are WeightStore::random_for(net, seed) — the same deterministic
// store d3_coordinator builds from the same --seed, so the full-model weights
// hash embedded in every bundle matches the hash an eliding coordinator sends.
// --emit-plan writes the plan as the text form of core/plan_io.h so the
// coordinator can be pointed at the exact plan the bundles were compiled for.
//
// Prints one "BUNDLE <node> <path> <bytes>" line per bundle plus a trailing
// "WEIGHTS <fnv1a hex>" line. Exit 0 on success, 1 on any failure, 2 on usage.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bundle.h"
#include "core/d3.h"
#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/weights.h"
#include "net/conditions.h"
#include "profile/node_spec.h"
#include "rpc/wire.h"
#include "runtime/address_book.h"

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::invalid_argument("cannot read \"" + path + "\"");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

d3::net::NetworkCondition condition_by_name(const std::string& name) {
  if (name == "wifi") return d3::net::wifi();
  if (name == "lte") return d3::net::lte_4g();
  if (name == "5g") return d3::net::nr_5g();
  if (name == "optical") return d3::net::optical();
  throw std::invalid_argument("unknown condition \"" + name +
                              "\" (wifi|lte|5g|optical)");
}

d3::profile::TierNodes testbed_by_name(const std::string& name) {
  if (name == "paper") return d3::profile::paper_testbed();
  if (name == "table2") return d3::profile::table2_testbed();
  throw std::invalid_argument("unknown testbed \"" + name + "\" (paper|table2)");
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s --model <zoo-name> --book <file> --out <dir>\n"
                 "          [--testbed paper|table2] [--condition wifi|lte|5g|optical]\n"
                 "          [--edge-nodes <n>] [--seed <n>]\n"
                 "          [--plan <file>] [--emit-plan <file>]\n",
                 argv[0]);
    return 2;
  };
  std::map<std::string, std::string> flags;
  for (int arg = 1; arg < argc; ++arg) {
    if (arg + 1 >= argc) return usage();
    flags[argv[arg]] = argv[arg + 1];
    ++arg;
  }
  for (const char* required : {"--model", "--book", "--out"})
    if (flags.count(required) == 0) return usage();

  try {
    const d3::dnn::Network net = d3::dnn::zoo::by_name(flags["--model"]);
    const std::string book_text = read_text_file(flags["--book"]);
    const d3::runtime::AddressBook book = d3::runtime::AddressBook::parse(book_text);
    if (book.workers().empty())
      throw std::invalid_argument("address book has no [workers] entries");
    const std::uint64_t seed = flags.count("--seed") ? std::stoull(flags["--seed"]) : 1;

    // The plan: either the exact text plan the deployment already uses, or a
    // fresh offline-framework run for the requested testbed and condition.
    d3::core::SerializablePlan plan;
    if (flags.count("--plan")) {
      plan = d3::core::parse_plan(read_text_file(flags["--plan"]), net);
    } else {
      // VSM fan-out width is dictated by the deployment itself: every
      // [workers] entry beyond the three tier heads is an edge tile worker.
      int edge_nodes = 1;
      for (const d3::runtime::Endpoint& worker : book.workers())
        if (worker.name != "device0" && worker.name != "cloud0" &&
            worker.name.compare(0, 4, "edge") == 0)
          ++edge_nodes;
      if (flags.count("--edge-nodes")) edge_nodes = std::stoi(flags["--edge-nodes"]);
      d3::core::D3Options options;
      options.edge_nodes = edge_nodes;
      const d3::core::D3System system(
          net, testbed_by_name(flags.count("--testbed") ? flags["--testbed"] : "paper"),
          options);
      const d3::core::DeploymentPlan deployment = system.plan(condition_by_name(
          flags.count("--condition") ? flags["--condition"] : "wifi"));
      plan = d3::core::SerializablePlan{net.name(), deployment.assignment,
                                        deployment.vsm};
    }
    const std::vector<std::uint8_t> plan_bytes = d3::core::serialize_plan_binary(plan);

    if (flags.count("--emit-plan")) {
      std::ofstream out(flags["--emit-plan"], std::ios::binary | std::ios::trunc);
      if (!out) throw std::invalid_argument("cannot write \"" + flags["--emit-plan"] + "\"");
      out << d3::core::serialize_plan(plan);
    }

    // The full-model weights hash is the O(1) identity every bundle shares
    // with the eliding coordinator; each bundle's shard carries only the
    // layers its node executes.
    const d3::exec::WeightStore weights = d3::exec::WeightStore::random_for(net, seed);
    const std::uint64_t weights_hash =
        d3::rpc::fnv1a(d3::rpc::encode_weights(weights, net));

    std::uint32_t vsm_workers = 0;
    for (const d3::runtime::Endpoint& worker : book.workers())
      if (worker.name != "device0" && worker.name != "edge0" && worker.name != "cloud0")
        ++vsm_workers;

    const std::string out_dir = flags["--out"];
    for (const d3::runtime::Endpoint& worker : book.workers()) {
      d3::core::DeploymentBundle bundle;
      bundle.node_name = worker.name;
      bundle.model_name = net.name();
      bundle.vsm_workers = vsm_workers;
      bundle.weights_hash = weights_hash;
      bundle.plan_bytes = plan_bytes;
      bundle.shard_bytes = d3::rpc::encode_weight_shard(
          weights, net, d3::exec::WeightStore::layers_for_node(plan, worker.name));
      bundle.book_text = book_text;
      const std::string path = out_dir + "/" + worker.name + ".d3b";
      d3::core::write_bundle_file(path, bundle);
      const std::vector<std::uint8_t> bytes = d3::core::encode_bundle(bundle);
      std::printf("BUNDLE %s %s %zu\n", worker.name.c_str(), path.c_str(),
                  bytes.size());
    }
    std::printf("WEIGHTS %016llx\n", static_cast<unsigned long long>(weights_hash));
    std::fflush(stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "d3c: %s\n", e.what());
    return 1;
  }
}
