// d3_coordinator: the coordinator side of the zero-human failover deployment.
// Everything — worker endpoints, the beacon, the standby roster — comes from
// one shared address book (runtime/address_book.h); the workers are expected
// to be running `d3_node --book` already.
//
// Two modes:
//
//   d3_coordinator --active --book <file> --model <zoo-name> --plan <file>
//                  --journal <file> [--epoch <n>] [--seed <n>]
//                  [--requests <n>] [--buddy <node>]
//
// the active coordinator: binds the [coordinator] beacon endpoint, dials
// every [workers] entry at fencing epoch <n> (default 1), journals each
// request, runs <n> seeded random inferences (default 1) and prints one
// "REQUEST <id> FNV1A <hash>" line per completed output. The beacon answers
// standby kPing probes (kPong + epoch) and kJournalSync pulls for the whole
// run; killing this process mid-request is exactly the failure the standby
// mode recovers from.
//
//   d3_coordinator --standby --book <file> --model <zoo-name> --plan <file>
//                  --journal <file> [--epoch-hint <n>] [--seed <n>]
//                  [--mirror] [--buddy <node>]
//
// a standby: monitors the beacon and, once the miss threshold trips, promotes
// itself unattended — fences the dead incarnation out of the workers, loads
// the journal (the shared path, or the --mirror copy it kept fresh over
// kJournalSync), resumes every mid-flight request, and prints the same
// "REQUEST <id> FNV1A <hash>" lines the active would have. The seeds and plan
// must match the active's: outputs are bitwise-deterministic, so matching
// hash lines across the two processes *are* the lossless-failover check.
//
// The plan file is the text deployment plan of core/plan_io.h.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/socket_transport.h"
#include "runtime/address_book.h"
#include "runtime/engine.h"
#include "runtime/failover.h"
#include "runtime/request_journal.h"
#include "util/rng.h"

namespace {

std::uint64_t fnv1a(const d3::dnn::Tensor& tensor) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    const float value = tensor[i];
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&value);
    for (std::size_t b = 0; b < sizeof(float); ++b) {
      hash ^= bytes[b];
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::invalid_argument("cannot read \"" + path + "\"");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s --active  --book <file> --model <zoo-name> --plan <file> --journal "
                 "<file> [--epoch <n>] [--seed <n>] [--requests <n>] [--buddy <node>] "
                 "[--elide-weights]\n"
                 "       %s --standby --book <file> --model <zoo-name> --plan <file> --journal "
                 "<file> [--epoch-hint <n>] [--seed <n>] [--mirror] [--buddy <node>] "
                 "[--elide-weights]\n",
                 argv[0], argv[0]);
    return 2;
  };
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode != "--active" && mode != "--standby") return usage();

  std::map<std::string, std::string> flags;
  bool mirror = false;
  bool elide_weights = false;
  for (int arg = 2; arg < argc; ++arg) {
    const std::string flag = argv[arg];
    if (flag == "--mirror") {
      mirror = true;
    } else if (flag == "--elide-weights") {
      // Workers booted from d3c bundles already hold their weight shard:
      // kConfig ships plan + weights hash only (O(1) instead of O(model)).
      // Version skew fails loudly as rpc::BundleMismatch before any state
      // mutation — recompile the bundles with d3c, or drop this flag.
      elide_weights = true;
    } else if (arg + 1 < argc) {
      flags[flag] = argv[++arg];
    } else {
      return usage();
    }
  }
  for (const char* required : {"--book", "--model", "--plan", "--journal"})
    if (flags.count(required) == 0) return usage();

  try {
    const d3::runtime::AddressBook book = d3::runtime::AddressBook::load(flags["--book"]);
    const d3::dnn::Network net = d3::dnn::zoo::by_name(flags["--model"]);
    const std::uint64_t seed = flags.count("--seed") ? std::stoull(flags["--seed"]) : 1;
    const d3::exec::WeightStore weights = d3::exec::WeightStore::random_for(net, seed);
    const d3::core::SerializablePlan plan =
        d3::core::parse_plan(read_text_file(flags["--plan"]), net);
    const std::string journal_path = flags["--journal"];
    const std::string buddy = flags.count("--buddy") ? flags["--buddy"] : "";

    if (mode == "--active") {
      if (!book.coordinator().has_value())
        throw std::invalid_argument("--active needs a [coordinator] beacon entry in the book");
      const std::uint64_t epoch = flags.count("--epoch") ? std::stoull(flags["--epoch"]) : 1;
      const std::uint64_t requests =
          flags.count("--requests") ? std::stoull(flags["--requests"]) : 1;

      const d3::runtime::CoordinatorBeacon beacon(epoch, journal_path,
                                                  book.coordinator()->host,
                                                  book.coordinator()->port);
      auto transport = std::make_shared<d3::rpc::SocketTransport>();
      transport->set_epoch(epoch);
      transport->set_elide_weights(elide_weights);
      std::size_t tile_workers = 0;
      for (const d3::runtime::Endpoint& worker : book.workers()) {
        d3::rpc::Socket channel = d3::rpc::tcp_connect(worker.host, worker.port);
        if (worker.name == "device0" || worker.name == "edge0" || worker.name == "cloud0")
          transport->add_node(worker.name, std::move(channel));
        else
          transport->add_tile_worker(std::move(channel)), ++tile_workers;
      }
      transport->configure(net.name(), net, weights,
                           d3::core::serialize_plan_binary(plan), tile_workers);
      if (!buddy.empty()) transport->set_buddy(buddy);

      d3::runtime::OnlineEngine::Options options;
      options.transport = transport;
      options.journal = std::make_shared<d3::runtime::RequestJournal>(journal_path);
      const d3::runtime::OnlineEngine engine(net, weights, plan.assignment, plan.vsm, options);

      d3::util::Rng rng(seed + 1);
      for (std::uint64_t r = 0; r < requests; ++r) {
        const d3::dnn::Tensor input = d3::exec::random_tensor(net.input_shape(), rng);
        const d3::runtime::InferenceResult result = engine.infer(input);
        std::printf("REQUEST %llu FNV1A %016llx\n",
                    static_cast<unsigned long long>(r + 1),
                    static_cast<unsigned long long>(fnv1a(result.output)));
        std::fflush(stdout);
      }
      return 0;
    }

    // --standby
    d3::runtime::StandbyCoordinator::Options options;
    options.book = book;
    options.journal_path = journal_path;
    options.mirror_journal = mirror;
    options.elide_weights = elide_weights;
    options.buddy = buddy;
    options.epoch_hint =
        flags.count("--epoch-hint") ? std::stoull(flags["--epoch-hint"]) : 0;
    d3::runtime::StandbyCoordinator standby(net, weights, plan.assignment, plan.vsm,
                                            std::move(options));
    standby.start();
    while (!standby.wait_promoted(std::chrono::milliseconds(1000))) {
    }
    std::printf("PROMOTED EPOCH %llu\n",
                static_cast<unsigned long long>(standby.epoch()));
    for (const d3::runtime::ResumedRequest& r : standby.resumed())
      std::printf("REQUEST %llu FNV1A %016llx\n",
                  static_cast<unsigned long long>(r.rpc_request),
                  static_cast<unsigned long long>(fnv1a(r.result.output)));
    std::fflush(stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "d3_coordinator: %s\n", e.what());
    return 1;
  }
}
