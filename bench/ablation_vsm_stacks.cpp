// Ablation: single fused stack (the paper's Algorithm 2) vs the DP-optimised
// multi-stack segmentation (AOFL-style, see core/vsm_planner.h) across edge-LAN
// rates. Fusing deeper amortises scatter/gather syncs but recomputes halos;
// the optimum shifts from one deep stack (slow LAN) to many shallow ones.
#include <iostream>

#include "common.h"
#include "core/hpa.h"
#include "core/vsm_planner.h"
#include "util/units.h"

using namespace d3;

int main() {
  bench::banner("Ablation - fused-stack depth vs edge-LAN rate (VGG-16)",
                "Single stack = paper's Algorithm 2; optimal = DP segmentation.");

  const dnn::Network net = dnn::zoo::vgg16();
  const core::PartitionProblem problem =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const core::Assignment assignment = core::hpa(problem).assignment;
  std::vector<dnn::LayerId> edge_layers;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    if (assignment.tier[dnn::Network::vertex_of(id)] == core::Tier::kEdge)
      edge_layers.push_back(id);
  const auto run = core::longest_tileable_run(net, edge_layers);
  if (run.empty()) {
    std::cout << "no tileable edge run\n";
    return 0;
  }
  const profile::NodeSpec node = profile::i7_8700();

  util::Table table({"LAN (Mbps)", "single stack (ms)", "optimal (ms)", "stacks",
                     "compute (ms)", "sync (ms)", "gain"});
  for (const double lan : {0.0, 100.0, 1000.0, 10000.0, 40000.0}) {
    const core::EdgeStackPlan single = core::single_stack_plan(net, run, 2, 2, node, lan);
    const core::EdgeStackPlan optimal = core::plan_edge_stacks(net, run, 2, 2, node, lan);
    table.row()
        .cell(lan == 0.0 ? "free (paper)" : std::to_string(static_cast<int>(lan)))
        .cell(util::ms(single.total_seconds()), 2)
        .cell(util::ms(optimal.total_seconds()), 2)
        .cell(optimal.stacks.size())
        .cell(util::ms(optimal.compute_seconds), 2)
        .cell(util::ms(optimal.sync_seconds), 2)
        .cell(single.total_seconds() / optimal.total_seconds(), 2);
  }
  table.print(std::cout, "VGG-16 edge run of " + std::to_string(run.size()) +
                             " layers on a 2x2 grid of i7 nodes");
  bench::paper_note(
      "Extension (the paper cites AOFL for adaptive tile optimisation): under "
      "the paper's free-intra-tier idealisation, fine splits dominate; real LAN "
      "rates push the optimum toward the paper's single deep fused stack.");
  return 0;
}
