// Fig. 3: the Inception-v4 grid module as a DAG, and the graph layers Z0..Z6
// HPA derives from the longest-distance partition (§III-E worked example).
#include <iostream>

#include "common.h"
#include "graph/layering.h"

using namespace d3;

int main() {
  bench::banner("Fig. 3 - grid module DAG and its graph layers",
                "Vertices v1..v13 mirror Fig. 3b; v0 is the virtual input.");
  const dnn::Network net = dnn::zoo::grid_module();
  const graph::Dag dag = net.to_dag();

  util::Table edges({"edge", "from", "to"});
  int i = 0;
  for (const auto& [u, v] : dag.edges())
    edges.row()
        .cell(std::to_string(++i))
        .cell("v" + std::to_string(u))
        .cell("v" + std::to_string(v));
  edges.print(std::cout, "DAG links (|V|=" + std::to_string(dag.size()) +
                             ", |L|=" + std::to_string(dag.num_edges()) + ")");

  util::Table layers({"graph layer", "vertices"});
  const auto zq = graph::graph_layers(dag);
  for (std::size_t q = 0; q < zq.size(); ++q) {
    std::string vs;
    for (const auto v : zq[q]) vs += (vs.empty() ? "" : ", ") + ("v" + std::to_string(v));
    layers.row().cell("Z" + std::to_string(q)).cell(vs);
  }
  layers.print(std::cout, "Longest-distance layering");
  bench::paper_note(
      "Z0={v0}, Z1={v1}, Z2={v2..v5}, Z3={v6..v9}, Z4={v10}, Z5={v11,v12}, "
      "Z6={v13} (7 graph layers).");
  return 0;
}
