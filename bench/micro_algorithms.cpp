// Google-benchmark microbenchmarks of the core algorithms: HPA scaling with
// graph size, Dinic min-cut (DADS), RTC plan construction, the incremental
// local update, and the region conv kernel.
#include <benchmark/benchmark.h>

#include "baselines/dads.h"
#include "core/hpa.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/ops.h"
#include "net/conditions.h"
#include "profile/hardware_model.h"
#include "util/rng.h"

namespace d3 {
namespace {

core::PartitionProblem chain_problem_of_size(std::size_t n) {
  util::Rng rng(n);
  core::PartitionProblem p;
  p.dag = graph::Dag(n);
  for (graph::VertexId v = 0; v + 1 < n; ++v) p.dag.add_edge(v, v + 1);
  p.vertex_time.assign(n, core::TierTimes{});
  p.out_bytes.assign(n, 0);
  p.in_bytes.assign(n, 0);
  p.out_bytes[0] = 600'000;
  for (graph::VertexId v = 1; v < n; ++v) {
    const double c = rng.uniform(1e-4, 1e-2);
    p.vertex_time[v] = core::TierTimes{{c * 30, c * 5, c}};
    p.out_bytes[v] = rng.uniform_int(1'000, 2'000'000);
    p.in_bytes[v] = p.out_bytes[v - 1];
  }
  p.condition = net::wifi();
  return p;
}

void BM_HpaChain(benchmark::State& state) {
  const auto p = chain_problem_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::hpa(p));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HpaChain)->Range(16, 1024)->Complexity(benchmark::oN);

void BM_HpaInceptionV4(benchmark::State& state) {
  const dnn::Network net = dnn::zoo::inception_v4();
  const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  for (auto _ : state) benchmark::DoNotOptimize(core::hpa(p));
}
BENCHMARK(BM_HpaInceptionV4);

void BM_HpaLocalUpdate(benchmark::State& state) {
  auto p = chain_problem_of_size(256);
  core::Assignment a = core::hpa(p).assignment;
  for (auto _ : state) {
    core::Assignment copy = a;
    benchmark::DoNotOptimize(core::hpa_local_update(p, copy, 128));
  }
}
BENCHMARK(BM_HpaLocalUpdate);

void BM_DadsMinCut(benchmark::State& state) {
  const dnn::Network net = dnn::zoo::resnet18();
  const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  for (auto _ : state) benchmark::DoNotOptimize(baselines::dads(p));
}
BENCHMARK(BM_DadsMinCut);

void BM_FusedTilePlan(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  std::vector<std::pair<int, dnn::Window>> convs(8, {32, dnn::Window{3, 3, 1, 1, 1, 1}});
  const dnn::Network net = dnn::zoo::conv_stack("bench", dnn::Shape{16, 64, 64}, convs);
  std::vector<dnn::LayerId> ids(net.num_layers());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::make_fused_tile_plan(net, ids, grid, grid));
}
BENCHMARK(BM_FusedTilePlan)->Arg(2)->Arg(4)->Arg(8);

void BM_ConvRegion(benchmark::State& state) {
  const int hw = static_cast<int>(state.range(0));
  util::Rng rng(7);
  dnn::Tensor input = exec::random_tensor(dnn::Shape{16, hw, hw}, rng);
  const dnn::LayerSpec spec = dnn::LayerSpec::conv("c", 16, dnn::Window{3, 3, 1, 1, 1, 1});
  exec::LayerWeights w;
  w.weights.resize(16u * 16u * 9u);
  for (auto& v : w.weights) v = static_cast<float>(rng.uniform(-1, 1));
  w.bias.assign(16, 0.1f);
  for (auto _ : state) benchmark::DoNotOptimize(exec::conv2d(input, spec, w));
  state.SetItemsProcessed(state.iterations() * input.shape().elements());
}
BENCHMARK(BM_ConvRegion)->Arg(16)->Arg(32)->Arg(64);

void BM_LatencyEstimate(benchmark::State& state) {
  const dnn::Network net = dnn::zoo::vgg16();
  const auto node = profile::i7_8700();
  for (auto _ : state)
    benchmark::DoNotOptimize(profile::HardwareModel::network_latency(net, node));
}
BENCHMARK(BM_LatencyEstimate);

}  // namespace
}  // namespace d3

BENCHMARK_MAIN();
