// Fig. 12: latency speedup when both HPA and VSM are applied. Four i7 edge
// nodes; device and edge connect to the cloud via Wi-Fi; device-only = 1x.
#include <iostream>

#include "common.h"

using namespace d3;

int main() {
  bench::banner("Fig. 12 - HPA+VSM speedup (4 edge nodes, Wi-Fi)",
                "VSM tiles the heaviest edge-resident conv stack 2x2 across the "
                "edge pool; redundancy from halo overlap is reported.");

  sim::ExperimentConfig config;
  config.condition = net::wifi();
  config.vsm_edge_nodes = 4;

  util::Table table({"DNN", "Device-only", "Edge-only", "Cloud-only", "Neurosurgeon",
                     "DADS", "HPA", "HPA+VSM", "redundancy"});
  for (const auto& net : bench::models()) {
    const auto device = bench::run(net, sim::Method::kDeviceOnly, config);
    const auto edge = bench::run(net, sim::Method::kEdgeOnly, config);
    const auto cloud = bench::run(net, sim::Method::kCloudOnly, config);
    const auto ns = bench::run(net, sim::Method::kNeurosurgeon, config);
    const auto dads = bench::run(net, sim::Method::kDads, config);
    const auto hpa = bench::run(net, sim::Method::kHpa, config);
    const auto vsm = bench::run(net, sim::Method::kHpaVsm, config);
    table.row()
        .cell(net.name())
        .cell(1.0, 2)
        .cell(bench::speedup(device, edge), 2)
        .cell(bench::speedup(device, cloud), 2)
        .cell(ns.applicable ? std::to_string(bench::speedup(device, ns)).substr(0, 5)
                            : "N.A.")
        .cell(bench::speedup(device, dads), 2)
        .cell(bench::speedup(device, hpa), 2)
        .cell(bench::speedup(device, vsm), 2)
        .cell(vsm.vsm_redundancy ? std::to_string(*vsm.vsm_redundancy).substr(0, 4) : "-");
  }
  table.print(std::cout);
  bench::paper_note(
      "Fig. 12: D3 (HPA+VSM) surpasses device/edge/cloud-only by up to "
      "31.13x/4.46x/6.28x and Neurosurgeon/DADS by up to 3.4x; the edge stage "
      "does not shrink a full 4x because fused tile stacks overlap spatially "
      "(computational redundancy).");
  return 0;
}
