// Measured concurrency of the threaded runtime engine on real tensors:
// (1) VSM stage wall clock, sequential tile loop vs. ThreadPool workers — the
//     paper's fused-tile spatial parallelism actually running as threads;
// (2) pipelined batch admission through runtime::BatchScheduler vs. strictly
//     serial inference — the tier pipelining that sim::pipelining_speedup
//     predicts.
//
// Two modes per table. "raw" runs pure compute: its speedup tracks how many
// physical cores the host gives the pool (on a single-core CI box it stays
// ~1x). "cluster" adds the engine's emulated per-node service latency, which
// stands in for the remote machines of the paper's testbed (each tile runs on
// a *separate* edge node there); threads genuinely overlap those waits, so
// this is real wall-clock concurrency even on one core, not a simulation —
// and outputs are still checked bitwise against the single-node reference.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common.h"
#include "core/d3.h"
#include "core/vsm.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"
#include "util/units.h"

using namespace d3;

namespace {

// Emulated remote-node service per VSM tile / per tier stage. Chosen at the
// scale of the paper's per-stage latencies (tens of ms); the tables print it.
constexpr double kTileServiceSeconds = 0.12;
constexpr std::array<double, 3> kTierServiceSeconds = {0.03, 0.08, 0.03};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

// A conv stack light enough that emulated node service dominates compute (the
// regime of the paper's testbed, where edge nodes are whole machines).
dnn::Network vsm_workload() {
  const dnn::Window w3{3, 3, 1, 1, 1, 1};
  return dnn::zoo::conv_stack("vsm_bench", dnn::Shape{3, 48, 48},
                              {{8, w3}, {8, w3}, {12, w3}});
}

void vsm_stage_speedup() {
  const dnn::Network net = vsm_workload();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  util::Rng rng(11);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  std::vector<dnn::LayerId> all(net.num_layers());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) all[id] = id;
  const auto stack = core::longest_tileable_run(net, all);
  const dnn::Shape out = net.layer(stack.back()).output_shape;

  core::Assignment plan;
  plan.tier.assign(net.num_layers() + 1, core::Tier::kEdge);
  plan.tier[0] = core::Tier::kDevice;

  util::Table table({"mode", "workers", "grid", "sequential (ms)", "threaded (ms)",
                     "speedup", "lossless"});
  constexpr int kReps = 3;
  for (const bool cluster : {false, true}) {
    for (const int workers : {2, 4, 8}) {
      const auto [rows, cols] = core::choose_tile_grid(workers, out.h, out.w);
      const auto vsm = core::make_fused_tile_plan(net, stack, rows, cols);

      runtime::OnlineEngine::Options seq_opts;
      runtime::OnlineEngine::Options thr_opts;
      thr_opts.vsm_workers = static_cast<std::size_t>(workers);
      if (cluster) {
        seq_opts.emulated_tile_service_seconds = kTileServiceSeconds;
        thr_opts.emulated_tile_service_seconds = kTileServiceSeconds;
      }
      const runtime::OnlineEngine sequential(net, weights, plan, vsm, seq_opts);
      const runtime::OnlineEngine threaded(net, weights, plan, vsm, thr_opts);

      bool lossless = true;
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r)
        lossless &= identical(sequential.infer(input).output, reference);
      const double serial_s = seconds_since(t0) / kReps;

      t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r)
        lossless &= identical(threaded.infer(input).output, reference);
      const double threaded_s = seconds_since(t0) / kReps;

      table.row()
          .cell(std::string(cluster ? "cluster" : "raw"))
          .cell(std::int64_t{workers})
          .cell(std::to_string(rows) + "x" + std::to_string(cols))
          .cell(util::ms(serial_s), 2)
          .cell(util::ms(threaded_s), 2)
          .cell(serial_s / threaded_s, 2)
          .cell(std::string(lossless ? "yes" : "NO"));
    }
  }
  table.print(std::cout,
              "VSM stage: sequential tile loop vs. ThreadPool (" +
                  std::to_string(stack.size()) + "-layer stack, output " + out.to_string() +
                  "); cluster mode emulates " +
                  std::to_string(static_cast<int>(util::ms(kTileServiceSeconds))) +
                  " ms remote service per tile; host cores: " +
                  std::to_string(runtime::ThreadPool::hardware_threads()));
  std::cout << "\n";
}

void pipelined_batch_speedup() {
  const dnn::Network net = vsm_workload();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 19);
  util::Rng rng(23);

  // Three-tier split so every stage does real work and pipelining has
  // something to overlap.
  core::Assignment plan;
  plan.tier.assign(net.num_layers() + 1, core::Tier::kEdge);
  plan.tier[0] = core::Tier::kDevice;
  plan.tier[1] = core::Tier::kDevice;
  plan.tier.back() = core::Tier::kCloud;

  runtime::OnlineEngine::Options opts;
  opts.vsm_workers = 2;
  opts.emulated_tier_service_seconds = kTierServiceSeconds;
  const runtime::OnlineEngine engine(net, weights, plan, std::nullopt, opts);
  const exec::Executor reference(net, weights);

  // The sim model's prediction for the same stage services: closed-form
  // makespan of a back-to-back batch vs. strictly serial frames.
  sim::PipelinePlan pipe;
  pipe.device_seconds = kTierServiceSeconds[0];
  pipe.edge_seconds = kTierServiceSeconds[1];
  pipe.cloud_seconds = kTierServiceSeconds[2];
  pipe.edge_used = pipe.cloud_used = true;
  pipe.condition = net::wifi();

  util::Table table({"batch", "serial (ms)", "pipelined (ms)", "speedup",
                     "model speedup", "lossless"});
  for (const std::size_t batch : {4u, 8u, 16u}) {
    std::vector<dnn::Tensor> inputs;
    for (std::size_t k = 0; k < batch; ++k)
      inputs.push_back(exec::random_tensor(net.input_shape(), rng));
    const std::vector<dnn::Tensor> refs = reference.run_batch(inputs);

    auto t0 = std::chrono::steady_clock::now();
    bool lossless = true;
    for (std::size_t k = 0; k < batch; ++k)
      lossless &= identical(engine.infer(inputs[k]).output, refs[k]);
    const double serial_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    runtime::BatchScheduler scheduler(engine);
    for (const dnn::Tensor& input : inputs) scheduler.submit(input);
    const std::vector<runtime::InferenceResult> results = scheduler.drain();
    const double pipelined_s = seconds_since(t0);
    for (std::size_t k = 0; k < batch; ++k)
      lossless &= identical(results[k].output, refs[k]);

    table.row()
        .cell(static_cast<std::int64_t>(batch))
        .cell(util::ms(serial_s), 2)
        .cell(util::ms(pipelined_s), 2)
        .cell(serial_s / pipelined_s, 2)
        .cell(sim::pipelining_speedup(pipe, batch), 2)
        .cell(std::string(lossless ? "yes" : "NO"));
  }
  table.print(std::cout,
              "Batched admission: serial infer() vs. BatchScheduler tier pipeline "
              "(emulated stage service device/edge/cloud = 30/80/30 ms)");
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner("Concurrent runtime engine",
                "Real threads, real tensors: VSM tile parallelism and tier "
                "pipelining measured against the sequential engine, with "
                "bitwise losslessness checked on every run.");
  vsm_stage_speedup();
  pipelined_batch_speedup();
  bench::paper_note(
      "HPA+VSM's speedup story (Figs. 9/12) assumes concurrent workers; this "
      "bench demonstrates it end-to-end on the in-process cluster.");
  return 0;
}
