// Ablation: VSM tile-grid sweep on the heaviest edge stack of VGG-16 and
// Darknet-53 — parallel latency, speedup over serial, and the computational
// redundancy the paper attributes to fused-tile overlap (§V-A discussion).
#include <iostream>

#include "common.h"
#include "core/hpa.h"
#include "core/vsm.h"
#include "util/units.h"

using namespace d3;

namespace {

void sweep(const dnn::Network& net) {
  const core::PartitionProblem problem =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const core::Assignment assignment = core::hpa(problem).assignment;
  std::vector<dnn::LayerId> edge_layers;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    if (assignment.tier[dnn::Network::vertex_of(id)] == core::Tier::kEdge)
      edge_layers.push_back(id);
  const auto stack = core::longest_tileable_run(net, edge_layers);
  if (stack.empty()) {
    std::cout << net.name() << ": HPA left no tileable stack on the edge\n\n";
    return;
  }
  const dnn::Shape out = net.layer(stack.back()).output_shape;
  const profile::NodeSpec edge = profile::i7_8700();

  util::Table table({"edge nodes", "grid", "serial (ms)", "parallel (ms)", "speedup",
                     "redundancy", "efficiency %"});
  for (const int nodes : {1, 2, 4, 6, 9, 16}) {
    const auto [rows, cols] = core::choose_tile_grid(nodes, out.h, out.w);
    const core::FusedTilePlan plan = core::make_fused_tile_plan(net, stack, rows, cols);
    const double serial = core::serial_stack_latency(net, plan, edge);
    const double parallel = core::parallel_stack_latency(net, plan, edge);
    const double speedup = serial / parallel;
    table.row()
        .cell(std::int64_t{nodes})
        .cell(std::to_string(rows) + "x" + std::to_string(cols))
        .cell(util::ms(serial), 2)
        .cell(util::ms(parallel), 2)
        .cell(speedup, 2)
        .cell(core::redundancy_factor(net, plan), 3)
        .cell(100.0 * speedup / (rows * cols), 1);
  }
  table.print(std::cout, net.name() + " - edge stack of " + std::to_string(stack.size()) +
                             " layers, output " + out.to_string());
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner("Ablation - VSM tile-grid sweep",
                "Finer grids parallelise more but recompute larger halos; "
                "efficiency = speedup / node count.");
  sweep(dnn::zoo::vgg16());
  sweep(dnn::zoo::darknet53());
  bench::paper_note(
      "§V-A: with 4 nodes the edge stage does not shrink to 1/4 'since there "
      "are spatial overlaps among the fused tile stacks, which in turn leads to "
      "computational redundancy' - visible here as redundancy > 1 and "
      "efficiency < 100%.");
  return 0;
}
