// Table III: the average uplink rate (Mbps) between the tiers for each network
// condition. These constants are taken verbatim from the paper and drive every
// transfer-delay computation in the repository.
#include <iostream>

#include "common.h"
#include "net/conditions.h"

using namespace d3;

int main() {
  bench::banner("Table III - average uplink rate (Mbps) between two nodes",
                "Configuration constants (verbatim paper values).");
  util::Table table({"link", "Wi-Fi", "4G", "5G", "Optical Network"});
  const auto cs = net::paper_conditions();
  const auto row = [&](const char* name, auto getter) {
    auto& r = table.row().cell(name);
    for (const auto& c : cs) {
      const double v = getter(c);
      if (v > 0)
        r.cell(v, 2);
      else
        r.cell("N.A.");
    }
  };
  row("device to edge", [&](const net::NetworkCondition& c) {
    return c.name == "Wi-Fi" ? c.device_edge_mbps : -1.0;  // paper lists N.A. off Wi-Fi
  });
  row("edge to cloud", [](const net::NetworkCondition& c) { return c.edge_cloud_mbps; });
  row("device to cloud", [](const net::NetworkCondition& c) {
    return c.name == "Optical Network" ? -1.0 : c.device_cloud_mbps;
  });
  table.print(std::cout);
  bench::paper_note(
      "device-edge 84.95 (Wi-Fi LAN); edge-cloud 31.53/13.79/22.75/50.23; "
      "device-cloud 18.75/6.12/11.64/N.A. - matches by construction.");
  return 0;
}
