// Serving-scale load generator: how many in-flight requests one coordinator
// thread can hold open, and what the reactor's admission policies do to tail
// latency under overload.
//
// Two scenarios drive runtime::ServingReactor over the in-process transport:
//
//   burst        — a paused reactor accumulates a burst of requests, then
//                  absorbs it with a high max_inflight cap. Because admission
//                  outranks progress in the reactor loop, every request is
//                  begun before the first one finishes: Stats::max_inflight
//                  records how many requests the coordinator genuinely held
//                  open at once (the >= 1000 scale gate of ISSUE 6).
//   deadline     — open-loop arrivals against a sim::PipelinePlan model of
//                  the (emulated-latency) pipeline, every request carrying a
//                  deadline. Predictive shedding refuses the arrivals whose
//                  queue position already dooms them; the completed remainder
//                  keeps its tail inside the deadline.
//
// Every completed output is verified bitwise against the single-node
// exec::Executor reference before any number is reported. Writes
// BENCH_serving.json (p50/p99/throughput per scenario; bench/README.md
// documents regeneration). --enforce-gate makes the burst scenario's
// max_inflight >= 1000 a hard exit code, which is how CI runs it.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <map>
#include <memory>

#include "common.h"
#include "core/partition.h"
#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/socket_transport.h"
#include "runtime/serving_reactor.h"
#include "sim/pipeline.h"
#include "util/rng.h"
#include "util/table.h"

#ifndef D3_NODE_BINARY
#error "bench_serving_scale needs D3_NODE_BINARY (set by CMake)"
#endif

namespace {

using namespace d3;

core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1, static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

struct ScenarioRow {
  std::string name;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t max_inflight = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput_rps = 0;
  // Readiness-dispatch observability (overlap scenario only).
  std::size_t parked_stages = 0;
  double wire_wait_ms = 0;
  std::size_t outstanding_ops_high_water = 0;
  std::uint64_t pipelined_sends = 0;
};

ScenarioRow summarize(const std::string& name, const runtime::ServingReactor& reactor,
                      double wall_seconds) {
  const runtime::ServingReactor::Stats stats = reactor.stats();
  const std::vector<double> lat = reactor.latencies_seconds();
  ScenarioRow row;
  row.name = name;
  row.offered = stats.submitted;
  row.completed = stats.completed;
  row.dropped = stats.dropped;
  row.shed = stats.shed;
  row.expired = stats.expired;
  row.max_inflight = stats.max_inflight;
  row.p50_ms = percentile(lat, 0.50) * 1e3;
  row.p99_ms = percentile(lat, 0.99) * 1e3;
  row.throughput_rps =
      wall_seconds > 0 ? static_cast<double>(stats.completed) / wall_seconds : 0.0;
  return row;
}

void verify(const std::vector<runtime::InferenceResult>& results,
            const dnn::Tensor& reference) {
  for (const runtime::InferenceResult& r : results) {
    if (!(r.output.shape() == reference.shape())) std::abort();
    for (std::size_t i = 0; i < reference.size(); ++i)
      if (r.output[i] != reference[i]) {
        std::cerr << "FATAL: reactor broke bitwise identity\n";
        std::abort();
      }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool enforce_gate = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--enforce-gate") == 0) enforce_gate = true;

  bench::banner("serving scale",
                "event-driven reactor front end under burst and deadline load: "
                "in-flight high-water mark, tail latency, shedding counters "
                "(all completed outputs verified bitwise first)");

  dnn::Network net = dnn::zoo::tiny_chain();
  const core::Assignment plan = three_tier_plan(net);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 31);
  util::Rng rng(32);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);
  const runtime::OnlineEngine engine(net, weights, plan);

  std::vector<ScenarioRow> rows;

  // --- burst: how many requests one coordinator holds open at once ----------
  {
    constexpr std::size_t kBurst = 2000;
    runtime::ServingReactor::Options options;
    options.max_inflight = 4096;
    options.start_paused = true;  // pile the whole burst up first
    runtime::ServingReactor reactor(engine, options);
    for (std::size_t i = 0; i < kBurst; ++i) reactor.submit(input);
    const auto t0 = std::chrono::steady_clock::now();
    reactor.resume();
    const std::vector<runtime::InferenceResult> results = reactor.drain();
    const auto t1 = std::chrono::steady_clock::now();
    verify(results, reference);
    rows.push_back(
        summarize("burst", reactor, std::chrono::duration<double>(t1 - t0).count()));
  }

  // --- deadline: open-loop overload with predictive shedding -----------------
  {
    // The reactor runs every stage on its one thread, so to the queue it is a
    // single server whose service time is the sum of the emulated stage
    // latencies (6 ms); the pipeline model says exactly that (one device-only
    // stage), making sim::predicted_completion_seconds an honest prediction
    // of when a request at queue depth q finishes. Arrivals at ~2x the
    // service rate overload it; the reactor sheds the doomed arrivals up
    // front and keeps the admitted remainder's tail inside the deadline.
    sim::PipelinePlan pipeline;
    pipeline.device_seconds = 0.007;  // 6 ms emulated + headroom for real compute

    runtime::OnlineEngine::Options slow;
    slow.emulated_tier_service_seconds = {0.002, 0.002, 0.002};
    const runtime::OnlineEngine slow_engine(net, weights, plan, std::nullopt, slow);

    runtime::ServingReactor::Options options;
    // Small in-flight cap: round-robin across n open requests multiplies each
    // one's residence time by n, so a tight cap keeps admitted requests close
    // to the FIFO completion times the pipeline model predicts.
    options.max_inflight = 4;
    options.default_deadline_seconds = 0.080;
    options.pipeline = pipeline;
    runtime::ServingReactor reactor(slow_engine, options);

    constexpr std::size_t kOffered = 300;
    const auto interarrival = std::chrono::milliseconds(3);  // ~2x overload
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kOffered; ++i) {
      reactor.submit(input);
      std::this_thread::sleep_for(interarrival);
    }
    const std::vector<runtime::InferenceResult> results = reactor.drain();
    const auto t1 = std::chrono::steady_clock::now();
    verify(results, reference);
    rows.push_back(
        summarize("deadline", reactor, std::chrono::duration<double>(t1 - t0).count()));
  }

  // --- overlap: readiness dispatch vs blocking on a real socket cluster -----
  // Three worker processes (one per tier) each add 5 ms of emulated service
  // latency to every run-layer reply: the wire wait a blocking reactor eats
  // serially. Readiness dispatch parks a stage the moment its frames are on
  // the wire and serves other requests meanwhile, so all three channels stay
  // busy from the one reactor thread. Arrivals are open-loop (a fixed
  // interarrival near the bottleneck tier's service) rather than a burst: a
  // burst queues every request's device stage ahead of all edge work, so the
  // per-channel FIFO would serialize the tiers no matter how the reactor
  // dispatches. Both runs produce outputs verified bitwise against the
  // single-node reference; the speedup is pure overlap.
  double overlap_ratio = 0.0;
  {
    constexpr std::size_t kRequests = 24;
    constexpr auto kInterarrival = std::chrono::milliseconds(10);
    const auto run_cluster = [&](bool readiness) {
      std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
      auto transport = std::make_shared<rpc::SocketTransport>();
      for (const char* node : {"device0", "edge0", "cloud0"}) {
        auto proc = std::make_unique<rpc::WorkerProcess>(
            D3_NODE_BINARY, std::vector<std::string>{"--service-ms", "5"});
        rpc::Socket socket = proc->take_socket();
        procs[node] = std::move(proc);
        transport->add_node(node, std::move(socket));
      }
      transport->configure(net.name(), net, weights,
                           core::serialize_plan_binary(
                               core::SerializablePlan{net.name(), plan, std::nullopt}),
                           0);

      runtime::OnlineEngine::Options engine_options;
      engine_options.transport = transport;
      const runtime::OnlineEngine wired(net, weights, plan, std::nullopt, engine_options);

      runtime::ServingReactor::Options options;
      options.max_inflight = kRequests;  // admission never sheds the stream
      options.readiness_dispatch = readiness;
      runtime::ServingReactor reactor(wired, options);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kRequests; ++i) {
        if (i > 0) std::this_thread::sleep_for(kInterarrival);
        reactor.submit(input);
      }
      const std::vector<runtime::InferenceResult> results = reactor.drain();
      const auto t1 = std::chrono::steady_clock::now();
      verify(results, reference);
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      ScenarioRow row =
          summarize(readiness ? "overlap-async" : "overlap-blocking", reactor, wall);
      const runtime::ServingReactor::Stats stats = reactor.stats();
      row.parked_stages = stats.parked_stages;
      row.wire_wait_ms = stats.wire_wait_ms;
      row.outstanding_ops_high_water = stats.outstanding_ops_high_water;
      row.pipelined_sends = transport->stats().pipelined_sends;
      return std::pair<ScenarioRow, double>(row, wall);
    };

    const auto [blocking_row, blocking_wall] = run_cluster(false);
    const auto [async_row, async_wall] = run_cluster(true);
    overlap_ratio = async_wall > 0 ? blocking_wall / async_wall : 0.0;
    rows.push_back(blocking_row);
    rows.push_back(async_row);
    std::cout << "overlap: blocking " << blocking_wall * 1e3 << " ms, async "
              << async_wall * 1e3 << " ms, speedup " << overlap_ratio << "x ("
              << async_row.parked_stages << " parked stages, "
              << async_row.wire_wait_ms << " ms wire wait overlapped, "
              << async_row.outstanding_ops_high_water << " ops outstanding high water, "
              << async_row.pipelined_sends << " pipelined sends)\n";
  }

  util::Table table({"scenario", "offered", "completed", "dropped", "shed", "expired",
                     "max inflight", "p50 ms", "p99 ms", "throughput rps"});
  for (const ScenarioRow& r : rows)
    table.row()
        .cell(r.name)
        .cell(static_cast<double>(r.offered))
        .cell(static_cast<double>(r.completed))
        .cell(static_cast<double>(r.dropped))
        .cell(static_cast<double>(r.shed))
        .cell(static_cast<double>(r.expired))
        .cell(static_cast<double>(r.max_inflight))
        .cell(r.p50_ms)
        .cell(r.p99_ms)
        .cell(r.throughput_rps);
  table.print(std::cout, "serving scale (one reactor thread)");

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"bench\": \"serving_scale\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& r = rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"offered\": " << r.offered
         << ", \"completed\": " << r.completed << ", \"dropped\": " << r.dropped
         << ", \"shed\": " << r.shed << ", \"expired\": " << r.expired
         << ", \"max_inflight\": " << r.max_inflight << ", \"p50_ms\": " << r.p50_ms
         << ", \"p99_ms\": " << r.p99_ms << ", \"throughput_rps\": " << r.throughput_rps
         << ", \"parked_stages\": " << r.parked_stages
         << ", \"wire_wait_ms\": " << r.wire_wait_ms
         << ", \"outstanding_ops_high_water\": " << r.outstanding_ops_high_water
         << ", \"pipelined_sends\": " << r.pipelined_sends << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overlap_speedup\": " << overlap_ratio << "\n}\n";

  if (enforce_gate) {
    // The ISSUE-6 scale gate: the burst scenario must genuinely hold >= 1000
    // requests open on the one coordinator thread.
    if (rows.empty() || rows[0].max_inflight < 1000) {
      std::cerr << "GATE FAILED: burst max_inflight " << (rows.empty() ? 0 : rows[0].max_inflight)
                << " < 1000\n";
      return 1;
    }
    std::cout << "gate ok: burst max_inflight = " << rows[0].max_inflight << " >= 1000\n";
    // The ISSUE-8 overlap gate: readiness dispatch must beat the blocking
    // reactor by >= 1.5x on the socket cluster with emulated service latency.
    if (overlap_ratio < 1.5) {
      std::cerr << "GATE FAILED: readiness-dispatch speedup " << overlap_ratio
                << "x < 1.5x\n";
      return 1;
    }
    std::cout << "gate ok: readiness-dispatch speedup = " << overlap_ratio
              << "x >= 1.5x\n";
  }
  return 0;
}
