// Shared scaffolding for the bench binaries that regenerate the paper's tables
// and figures: method sweeps, speedup helpers and consistent headers that print
// the paper-reported value next to the measured one.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "dnn/model_zoo.h"
#include "sim/experiment.h"
#include "util/table.h"

namespace d3::bench {

// Prints the standard bench banner: what the binary reproduces and how to read it.
void banner(const std::string& experiment, const std::string& description);

// Paper-vs-measured epilogue line.
void paper_note(const std::string& note);

// Runs one method on one model; thin wrapper so benches share a config style.
sim::MethodResult run(const dnn::Network& net, sim::Method method,
                      const sim::ExperimentConfig& config);

// Latency speedup of `method` relative to `baseline` (Figs. 9-12 metric).
double speedup(const sim::MethodResult& baseline, const sim::MethodResult& method);

// The five paper models in figure order.
std::vector<dnn::Network> models();

}  // namespace d3::bench
