// Fig. 9: end-to-end latency speedup of HPA vs device-only, edge-only and
// cloud-only under Wi-Fi / 4G / 5G / Optical. Device-only is the 1x baseline.
#include <iostream>

#include "common.h"

using namespace d3;

int main() {
  bench::banner("Fig. 9 - HPA end-to-end latency speedup vs single-tier execution",
                "Speedup = device-only latency / method latency (per subplot "
                "condition); 30 FPS x 100 s stream.");

  for (const auto& condition : net::paper_conditions()) {
    sim::ExperimentConfig config;
    config.condition = condition;
    util::Table table({"DNN", "Device-only", "Edge-only", "Cloud-only", "HPA"});
    for (const auto& net : bench::models()) {
      const auto device = bench::run(net, sim::Method::kDeviceOnly, config);
      const auto edge = bench::run(net, sim::Method::kEdgeOnly, config);
      const auto cloud = bench::run(net, sim::Method::kCloudOnly, config);
      const auto hpa = bench::run(net, sim::Method::kHpa, config);
      table.row()
          .cell(net.name())
          .cell(1.0, 2)
          .cell(bench::speedup(device, edge), 2)
          .cell(bench::speedup(device, cloud), 2)
          .cell(bench::speedup(device, hpa), 2);
    }
    table.print(std::cout, "(" + condition.name + ")");
    std::cout << "\n";
  }
  bench::paper_note(
      "Fig. 9: HPA reaches up to 28.2x over device-only, 3.85x over edge-only "
      "and 5.90x over cloud-only; speedups grow with model compute demand, and "
      "HPA is never below any single-tier bar.");
  return 0;
}
