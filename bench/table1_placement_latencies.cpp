// Table I: total latencies of processing a vertex pair (vi, vj) across the six
// feasible tier placements, with vi's inputs arriving from the device tier.
// Reproduced analytically for a representative pair: VGG-16's conv2 (vi) and
// its relu (vj) under the Wi-Fi condition.
#include <iostream>

#include "common.h"
#include "core/partition.h"
#include "profile/hardware_model.h"
#include "util/units.h"

using namespace d3;
using core::Tier;

int main() {
  bench::banner("Table I - total latencies of processing vi and vj",
                "vi = VGG-16 conv2, vj = its relu; inputs of vi on the device; "
                "Wi-Fi rates from Table III.");

  const dnn::Network net = dnn::zoo::vgg16();
  const core::PartitionProblem p =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  // Layer ids: conv1(0) relu(1) conv2(2) relu(3) ...
  const graph::VertexId vi = dnn::Network::vertex_of(2);
  const graph::VertexId vj = dnn::Network::vertex_of(3);
  const double lambda_in = static_cast<double>(p.in_bytes[vi]);
  const double lambda_out = static_cast<double>(p.out_bytes[vi]);

  const auto t = [&](graph::VertexId v, Tier tier) { return p.vertex_time[v].at(tier); };
  const auto tr = [&](double bytes, Tier a, Tier b) {
    return p.transfer_seconds(static_cast<std::int64_t>(bytes), a, b);
  };

  struct Row {
    const char* li;
    const char* lj;
    double seconds;
  };
  const Row rows[] = {
      {"device", "device", t(vi, Tier::kDevice) + t(vj, Tier::kDevice)},
      {"device", "edge",
       t(vi, Tier::kDevice) + t(vj, Tier::kEdge) + tr(lambda_out, Tier::kDevice, Tier::kEdge)},
      {"edge", "edge",
       t(vi, Tier::kEdge) + t(vj, Tier::kEdge) + tr(lambda_in, Tier::kDevice, Tier::kEdge)},
      {"edge", "cloud",
       t(vi, Tier::kEdge) + t(vj, Tier::kCloud) + tr(lambda_in, Tier::kDevice, Tier::kEdge) +
           tr(lambda_out, Tier::kEdge, Tier::kCloud)},
      {"cloud", "cloud",
       t(vi, Tier::kCloud) + t(vj, Tier::kCloud) + tr(lambda_in, Tier::kDevice, Tier::kCloud)},
      {"device", "cloud",
       t(vi, Tier::kDevice) + t(vj, Tier::kCloud) + tr(lambda_out, Tier::kDevice, Tier::kCloud)},
  };

  util::Table table({"location of vi", "location of vj", "total latency (ms)"});
  double best = rows[0].seconds;
  const Row* winner = &rows[0];
  for (const Row& r : rows) {
    table.row().cell(r.li).cell(r.lj).cell(util::ms(r.seconds), 2);
    if (r.seconds < best) {
      best = r.seconds;
      winner = &r;
    }
  }
  table.print(std::cout, "lambda_in = " + std::to_string(lambda_in / 1e6) +
                             " MB, lambda_out = " + std::to_string(lambda_out / 1e6) + " MB");
  std::cout << "cheapest placement: vi=" << winner->li << ", vj=" << winner->lj << " ("
            << util::ms(best) << " ms)\n";
  bench::paper_note(
      "Table I enumerates the same six placements symbolically; HPA picks vi's "
      "tier from the cheapest pair when lambda_in <= lambda_out (§III-E).");
  return 0;
}
