// Fig. 4: per-layer actual vs regression-predicted processing time of AlexNet
// on the edge CPU (i7-8700) and the cloud GPU (RTX 2080 Ti).
#include <cmath>
#include <iostream>

#include "common.h"
#include "profile/profiler.h"
#include "util/units.h"

using namespace d3;

namespace {

void compare(const dnn::Network& net, const profile::NodeSpec& node) {
  const profile::LatencyEstimator est = profile::Profiler::profile_node(node);
  util::Table table({"layer", "actual (ms)", "predicted (ms)", "error %"});
  double mape = 0;
  std::size_t rows = 0;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const auto kind = net.layer(id).spec.kind;
    // Fig. 4 plots conv/pool/fc rows.
    if (kind != dnn::LayerKind::kConv && kind != dnn::LayerKind::kMaxPool &&
        kind != dnn::LayerKind::kFullyConnected)
      continue;
    const profile::LayerCost cost = profile::layer_cost(net, id);
    const double actual = profile::HardwareModel::expected_latency(cost, node);
    const double predicted = est.predict(cost);
    const double err = actual > 0 ? 100.0 * std::abs(predicted - actual) / actual : 0.0;
    table.row()
        .cell(net.layer(id).spec.name)
        .cell(util::ms(actual), 4)
        .cell(util::ms(predicted), 4)
        .cell(err, 1);
    mape += err;
    ++rows;
  }
  table.print(std::cout, net.name() + " on " + node.name);
  std::cout << "MAPE: " << (rows ? mape / static_cast<double>(rows) : 0.0) << " %\n\n";
}

}  // namespace

int main() {
  bench::banner("Fig. 4 - regression model accuracy (actual vs predicted)",
                "Estimator trained on the profiler's noisy calibration workload; "
                "ground truth from the hardware model.");
  const dnn::Network net = dnn::zoo::alexnet();
  compare(net, profile::i7_8700());
  compare(net, profile::rtx_2080ti_server());
  bench::paper_note(
      "Fig. 4 shows predicted and actual per-layer times nearly overlapping on "
      "both CPU (ms scale, conv2 largest) and GPU (sub-ms, fc1 dominating).");
  return 0;
}
