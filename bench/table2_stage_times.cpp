// Table II: per-tier processing time of the synergistic pipeline after HPA for
// the five models. The paper measured a Jetson Nano 2GB device, an i7-8700 edge
// and an RTX-2080-Ti cloud under Wi-Fi.
#include <iostream>

#include "common.h"
#include "util/units.h"

using namespace d3;

int main() {
  bench::banner("Table II - synergistic inference time at the three nodes",
                "HPA partition on the Jetson/i7/2080Ti testbed under Wi-Fi; "
                "stage times from the ground-truth hardware model.");

  sim::ExperimentConfig config;
  config.nodes = profile::table2_testbed();
  config.condition = net::wifi();

  util::Table table(
      {"DNN", "device node (ms)", "edge node (ms)", "cloud node (ms)"});
  for (const auto& net : bench::models()) {
    const sim::MethodResult hpa = bench::run(net, sim::Method::kHpa, config);
    table.row()
        .cell(net.name())
        .cell(util::ms(hpa.pipeline.device_seconds), 2)
        .cell(util::ms(hpa.pipeline.edge_seconds), 2)
        .cell(util::ms(hpa.pipeline.cloud_seconds), 2);
  }
  table.print(std::cout);
  bench::paper_note(
      "Table II: AlexNet 2.2/3.6/1.4 ms, VGG-16 5.7/46.7/0.5 ms, ResNet-18 "
      "6.1/7.5/0.5 ms, Darknet-53 27.9/48.1/0.1 ms, Inception-v4 21.4/46.4/16.7 "
      "ms. The relation that drives VSM: the edge stage dominates the pipeline.");
  return 0;
}
