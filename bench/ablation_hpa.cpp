// Ablation: how much of HPA's quality comes from each design choice DESIGN.md
// calls out — the SIS update (Prop. 2) and the Table-I pairwise heuristic
// (λin/λout + largest direct successor) — measured as the Θ objective and the
// single-frame pipeline latency across the paper models and conditions.
#include <iostream>

#include "common.h"
#include "core/hpa.h"
#include "sim/pipeline.h"
#include "util/units.h"

using namespace d3;

namespace {

struct Variant {
  const char* name;
  core::HpaOptions options;
};

}  // namespace

int main() {
  bench::banner("Ablation - HPA design choices (SIS update, Table-I heuristic)",
                "Theta objective / frame latency per variant; lower is better.");

  const Variant variants[] = {
      {"full HPA", {}},
      {"no SIS update", {.sis_update = false, .io_heuristic = true}},
      {"no io heuristic", {.sis_update = true, .io_heuristic = false}},
      {"neither", {.sis_update = false, .io_heuristic = false}},
  };

  for (const auto& condition : {net::wifi(), net::lte_4g()}) {
    util::Table table({"DNN", "variant", "theta (ms)", "frame latency (ms)"});
    for (const auto& net : bench::models()) {
      const core::PartitionProblem problem =
          core::make_problem_exact(net, profile::paper_testbed(), condition);
      for (const Variant& variant : variants) {
        const core::HpaResult result = core::hpa(problem, variant.options);
        const sim::PipelinePlan pipeline = sim::build_pipeline(problem, result.assignment);
        table.row()
            .cell(net.name())
            .cell(variant.name)
            .cell(util::ms(result.total_latency_seconds), 2)
            .cell(util::ms(pipeline.frame_latency_seconds()), 2);
      }
    }
    table.print(std::cout, "(" + condition.name + ")");
    std::cout << "\n";
  }
  bench::paper_note(
      "Not a paper figure: quantifies the contribution of HPA's two heuristics. "
      "The full configuration should never lose to the ablated ones by more "
      "than noise.");
  return 0;
}
