// Fig. 11: Inception-v4 latency speedup under varying bandwidth between the
// LAN and the cloud node (10..100 Mbps), device-only as the 1x baseline.
#include <iostream>

#include "common.h"

using namespace d3;

int main() {
  bench::banner("Fig. 11 - Inception-v4 speedup vs LAN-to-cloud bandwidth",
                "The edge-cloud uplink sweeps 10..100 Mbps (device-cloud scaled "
                "proportionally); device-only = 1x.");

  const dnn::Network net = dnn::zoo::inception_v4();
  util::Table table(
      {"bandwidth (Mbps)", "Device-only", "Edge-only", "Cloud-only", "DADS", "HPA",
       "HPA cloud layers"});
  for (int mbps = 10; mbps <= 100; mbps += 10) {
    sim::ExperimentConfig config;
    config.condition = net::with_cloud_uplink(net::wifi(), mbps);
    const auto device = bench::run(net, sim::Method::kDeviceOnly, config);
    const auto edge = bench::run(net, sim::Method::kEdgeOnly, config);
    const auto cloud = bench::run(net, sim::Method::kCloudOnly, config);
    const auto dads = bench::run(net, sim::Method::kDads, config);
    const auto hpa = bench::run(net, sim::Method::kHpa, config);
    std::size_t on_cloud = 0;
    for (const auto t : hpa.assignment.tier) on_cloud += t == core::Tier::kCloud;
    table.row()
        .cell(std::int64_t{mbps})
        .cell(1.0, 2)
        .cell(bench::speedup(device, edge), 2)
        .cell(bench::speedup(device, cloud), 2)
        .cell(bench::speedup(device, dads), 2)
        .cell(bench::speedup(device, hpa), 2)
        .cell(on_cloud);
  }
  table.print(std::cout);
  bench::paper_note(
      "Fig. 11: HPA dominates at every bandwidth; as the LAN-to-cloud rate "
      "grows HPA offloads more layers to the cloud and cloud-only closes in "
      "(speedups up to ~34x at 100 Mbps in the paper).");
  return 0;
}
