// Ablation: per-frame device-tier energy of each inference strategy — the
// battery argument of the paper's introduction (and Neurosurgeon's original
// objective). Device = Raspberry Pi 4B under Wi-Fi.
#include <iostream>

#include "common.h"
#include "sim/energy.h"

using namespace d3;

int main() {
  bench::banner("Ablation - device energy per frame (RPi 4B, Wi-Fi)",
                "compute + radio + idle joules on the battery-powered tier.");

  sim::ExperimentConfig config;
  const auto power = sim::raspberry_pi_4b_power();

  util::Table table({"DNN", "method", "compute (J)", "radio (J)", "idle (J)",
                     "total (J)", "vs device-only"});
  for (const auto& net : bench::models()) {
    const auto device = bench::run(net, sim::Method::kDeviceOnly, config);
    const double base =
        sim::device_energy_per_frame(device.pipeline, power).total_joules();
    for (const sim::Method method :
         {sim::Method::kDeviceOnly, sim::Method::kCloudOnly, sim::Method::kHpa,
          sim::Method::kHpaVsm}) {
      const auto result = bench::run(net, method, config);
      const sim::FrameEnergy e = sim::device_energy_per_frame(result.pipeline, power);
      table.row()
          .cell(net.name())
          .cell(sim::method_name(method))
          .cell(e.compute_joules, 3)
          .cell(e.radio_joules, 3)
          .cell(e.idle_joules, 3)
          .cell(e.total_joules(), 3)
          .cell(base / std::max(e.total_joules(), 1e-9), 1);
    }
  }
  table.print(std::cout);
  bench::paper_note(
      "Extension (not a paper figure): offloading trades compute joules for "
      "radio + idle joules; D3's partitions cut device energy by an order of "
      "magnitude on the heavy models, the paper's stated motivation.");
  return 0;
}
