// Operator-kernel throughput: the optimised kernels (exec/ops.h) against the
// scalar oracle (exec/ops_reference.h) on convolution / fully-connected / pool
// workloads taken from the paper's model zoo, single-threaded and with the
// intra-op parallel hook over runtime::ThreadPool.
//
// Every fast-kernel output is verified bitwise against the reference before
// timing, so a speedup here is by construction lossless.
//
// Emits BENCH_ops.json (machine-readable, one record per workload plus a
// summary with the geometric-mean conv speedup) so the perf trajectory of the
// compute path can be tracked PR over PR. See bench/README.md.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "dnn/layer.h"
#include "dnn/tensor.h"
#include "exec/ops.h"
#include "exec/ops_reference.h"
#include "exec/weights.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace {

using d3::dnn::LayerSpec;
using d3::dnn::Shape;
using d3::dnn::Tensor;
using d3::dnn::Window;
using d3::exec::LayerWeights;

struct Workload {
  std::string name;   // model + layer it is taken from
  std::string kind;   // conv | fc | maxpool
  LayerSpec spec;
  Shape input;
};

// Representative layers of the five paper models (§IV): hyper-parameters match
// the zoo definitions in dnn/model_zoo.cpp.
std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"alexnet.conv1", "conv", LayerSpec::conv("conv1", 96, Window{11, 11, 4, 4, 2, 2}),
               Shape{3, 224, 224}});
  w.push_back({"alexnet.conv3", "conv", LayerSpec::conv("conv3", 384, Window{3, 3, 1, 1, 1, 1}),
               Shape{256, 13, 13}});
  w.push_back({"vgg16.conv3_2", "conv", LayerSpec::conv("conv3_2", 256, Window{3, 3, 1, 1, 1, 1}),
               Shape{256, 28, 28}});
  w.push_back({"vgg16.conv5_1", "conv", LayerSpec::conv("conv5_1", 512, Window{3, 3, 1, 1, 1, 1}),
               Shape{512, 14, 14}});
  w.push_back({"resnet18.block3", "conv", LayerSpec::conv("b3conv", 128, Window{3, 3, 1, 1, 1, 1}),
               Shape{128, 28, 28}});
  w.push_back({"resnet18.down4", "conv", LayerSpec::conv("down", 256, Window{3, 3, 2, 2, 1, 1}),
               Shape{128, 28, 28}});
  w.push_back({"darknet53.reduce", "conv", LayerSpec::conv("red", 128, Window{1, 1, 1, 1, 0, 0}),
               Shape{256, 52, 52}});
  w.push_back({"inception.stem3x3", "conv", LayerSpec::conv("stem", 64, Window{3, 3, 2, 2, 0, 0}),
               Shape{32, 147, 147}});
  w.push_back({"alexnet.fc2", "fc", LayerSpec::fully_connected("fc2", 4096),
               Shape{4096, 1, 1}});
  w.push_back({"alexnet.maxpool1", "maxpool", LayerSpec::max_pool("mp1", Window{3, 3, 2, 2, 0, 0}),
               Shape{96, 55, 55}});
  return w;
}

LayerWeights random_weights_for(const Workload& wl, d3::util::Rng& rng) {
  LayerWeights w;
  if (wl.kind == "conv") {
    const Window& win = wl.spec.window;
    w.weights.resize(static_cast<std::size_t>(wl.spec.out_channels) * wl.input.c *
                     win.kernel_h * win.kernel_w);
    w.bias.resize(static_cast<std::size_t>(wl.spec.out_channels));
  } else if (wl.kind == "fc") {
    w.weights.resize(static_cast<std::size_t>(wl.spec.out_features) * wl.input.elements());
    w.bias.resize(static_cast<std::size_t>(wl.spec.out_features));
  }
  for (auto& x : w.weights) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : w.bias) x = static_cast<float>(rng.uniform(-1, 1));
  return w;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs `fn` repeatedly until `min_seconds` of wall clock is covered (at least
// once) and returns the best per-call seconds — the standard low-noise
// microbenchmark estimate.
template <typename Fn>
double time_best(const Fn& fn, double min_seconds) {
  double best = std::numeric_limits<double>::infinity();
  double spent = 0.0;
  int reps = 0;
  while (spent < min_seconds || reps < 2) {
    const double t0 = now_seconds();
    fn();
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++reps;
    if (reps >= 50) break;
  }
  return best;
}

struct Result {
  Workload wl;
  std::int64_t macs = 0;
  double ref_s = 0.0;
  double fast_s = 0.0;
  double par_s = 0.0;
  bool bitwise_equal = false;
};

Tensor run_kernel(const Workload& wl, const Tensor& in, const LayerWeights& w,
                  const d3::exec::OpContext& ctx) {
  if (wl.kind == "conv") return d3::exec::conv2d(in, wl.spec, w, ctx);
  if (wl.kind == "fc") return d3::exec::fully_connected(in, wl.spec, w);
  return d3::exec::pool2d(in, wl.spec);
}

Tensor run_reference(const Workload& wl, const Tensor& in, const LayerWeights& w) {
  if (wl.kind == "conv") return d3::exec::reference::conv2d(in, wl.spec, w);
  if (wl.kind == "fc") return d3::exec::reference::fully_connected(in, wl.spec, w);
  return d3::exec::reference::pool2d(in, wl.spec);
}

std::string json_escape_number(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  // --enforce-gate: exit nonzero when the conv geomean speedup drops below 3x
  // (the PR-2 acceptance gate) in addition to any bitwise mismatch. Default is
  // record-only so local runs on unusual machines never hard-fail.
  bool enforce_gate = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--enforce-gate") enforce_gate = true;
  d3::bench::banner("ops_kernels",
                    "Optimised operator kernels (im2col + cache-blocked GEMM, arena scratch)\n"
                    "vs the scalar reference oracle, on zoo layer workloads. Outputs are\n"
                    "verified bitwise-identical before timing. Writes BENCH_ops.json.");

  d3::util::Rng rng(42);
  const std::size_t threads = d3::runtime::ThreadPool::hardware_threads();
  d3::runtime::ThreadPool pool(threads);
  const d3::exec::ParallelFor parallel =
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      };

  std::vector<Result> results;
  for (const Workload& wl : workloads()) {
    Result r;
    r.wl = wl;
    const Tensor in = d3::exec::random_tensor(wl.input, rng);
    const LayerWeights w = random_weights_for(wl, rng);
    const Shape out = d3::dnn::infer_output_shape(wl.spec, {wl.input});
    if (wl.kind == "conv")
      r.macs = static_cast<std::int64_t>(wl.input.c) * wl.spec.window.kernel_h *
               wl.spec.window.kernel_w * out.elements();
    else if (wl.kind == "fc")
      r.macs = wl.input.elements() * wl.spec.out_features;
    else
      r.macs = static_cast<std::int64_t>(wl.spec.window.kernel_h) * wl.spec.window.kernel_w *
               out.elements();

    const Tensor want = run_reference(wl, in, w);
    const Tensor got = run_kernel(wl, in, w, {});
    r.bitwise_equal = got.shape() == want.shape() &&
                      std::memcmp(got.data(), want.data(), want.size() * sizeof(float)) == 0;

    r.ref_s = time_best([&] { run_reference(wl, in, w); }, 0.3);
    r.fast_s = time_best([&] { run_kernel(wl, in, w, {}); }, 0.3);
    r.par_s = time_best(
        [&] { run_kernel(wl, in, w, d3::exec::OpContext{nullptr, &parallel}); }, 0.3);
    results.push_back(r);

    std::cout << std::left << std::setw(20) << wl.name << std::right << std::fixed
              << std::setprecision(2) << std::setw(9) << r.ref_s * 1e3 << " ms ref "
              << std::setw(8) << r.fast_s * 1e3 << " ms fast " << std::setw(8)
              << r.par_s * 1e3 << " ms par  " << std::setprecision(1) << std::setw(5)
              << r.ref_s / r.fast_s << "x 1T " << std::setw(5) << r.ref_s / r.par_s << "x "
              << threads << "T  " << (r.bitwise_equal ? "bitwise-ok" : "MISMATCH") << "\n";
  }

  double log_sum = 0.0;
  int conv_count = 0;
  bool all_equal = true;
  for (const Result& r : results) {
    all_equal = all_equal && r.bitwise_equal;
    if (r.wl.kind == "conv") {
      log_sum += std::log(r.ref_s / r.fast_s);
      ++conv_count;
    }
  }
  const double conv_geomean = std::exp(log_sum / std::max(conv_count, 1));
  std::cout << "\nconv geomean single-thread speedup: " << std::setprecision(2)
            << conv_geomean << "x   (all outputs " << (all_equal ? "bitwise-identical" : "NOT identical!")
            << ")\n";

  std::ofstream json("BENCH_ops.json");
  json << "{\n  \"bench\": \"ops_kernels\",\n  \"threads\": " << threads
       << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"name\": \"" << r.wl.name << "\", \"kind\": \"" << r.wl.kind
         << "\", \"input\": \"" << r.wl.input.to_string() << "\", \"macs\": " << r.macs
         << ", \"ref_ms\": " << json_escape_number(r.ref_s * 1e3)
         << ", \"fast_ms\": " << json_escape_number(r.fast_s * 1e3)
         << ", \"parallel_ms\": " << json_escape_number(r.par_s * 1e3)
         << ", \"speedup_1t\": " << json_escape_number(r.ref_s / r.fast_s)
         << ", \"speedup_parallel\": " << json_escape_number(r.ref_s / r.par_s)
         << ", \"bitwise_equal\": " << (r.bitwise_equal ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"summary\": {\"conv_geomean_speedup_1t\": "
       << json_escape_number(conv_geomean)
       << ", \"all_bitwise_equal\": " << (all_equal ? "true" : "false") << "}\n}\n";
  std::cout << "wrote BENCH_ops.json\n";
  d3::bench::paper_note(
      "no per-kernel timings in the paper; this tracks the repo's own compute path. "
      "Acceptance gate: conv geomean >= 3x single-thread, all outputs bitwise-identical "
      "(pass --enforce-gate to fail the run when the geomean drops below 3x).");
  const bool gate_ok = !enforce_gate || conv_geomean >= 3.0;
  if (!gate_ok)
    std::cerr << "GATE FAILED: conv geomean " << conv_geomean << "x < 3x\n";
  return all_equal && gate_ok ? 0 : 1;
}
