// Fig. 13: per-image data transmitted over the Internet backbone to the cloud
// (Mb) for cloud-only, DADS and D3 across models and network conditions.
#include <iostream>

#include "common.h"
#include "util/units.h"

using namespace d3;

int main() {
  bench::banner("Fig. 13 - per-image communication overhead to the cloud",
                "Megabits entering the cloud per frame; lower is better. "
                "Cloud-only always ships the raw 4.82 Mb frame.");

  for (const auto& model : bench::models()) {
    util::Table table({"condition", "Cloud-only (Mb)", "DADS (Mb)", "D3 (Mb)",
                       "D3 / Cloud-only %"});
    for (const auto& condition : net::paper_conditions()) {
      sim::ExperimentConfig config;
      config.condition = condition;
      const auto cloud = bench::run(model, sim::Method::kCloudOnly, config);
      const auto dads = bench::run(model, sim::Method::kDads, config);
      const auto d3 = bench::run(model, sim::Method::kHpaVsm, config);
      const double cloud_mb =
          util::bytes_to_megabits(static_cast<double>(cloud.traffic.to_cloud_bytes()));
      const double d3_mb =
          util::bytes_to_megabits(static_cast<double>(d3.traffic.to_cloud_bytes()));
      table.row()
          .cell(condition.name)
          .cell(cloud_mb, 2)
          .cell(util::bytes_to_megabits(static_cast<double>(dads.traffic.to_cloud_bytes())), 2)
          .cell(d3_mb, 2)
          .cell(cloud_mb > 0 ? 100.0 * d3_mb / cloud_mb : 0.0, 1);
    }
    table.print(std::cout, model.name());
    std::cout << "\n";
  }
  bench::paper_note(
      "Fig. 13: D3 shrinks backbone traffic to 27.21-66.67% of cloud-only "
      "(27.21-80.42% of DADS); with faster backhaul D3 offloads more layers and "
      "ships more intermediate data.");
  return 0;
}
