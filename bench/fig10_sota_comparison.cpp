// Fig. 10: end-to-end latency speedup of HPA vs Neurosurgeon and DADS under
// the four network conditions. Neurosurgeon (chain-only) is the 1x baseline on
// AlexNet/VGG-16; DADS is the baseline for the DAG models it cannot handle.
#include <iostream>

#include "common.h"

using namespace d3;

int main() {
  bench::banner("Fig. 10 - HPA vs Neurosurgeon and DADS",
                "Speedup normalised to the applicable state-of-the-art baseline "
                "(Neurosurgeon on chains, DADS otherwise).");

  for (const auto& condition : net::paper_conditions()) {
    sim::ExperimentConfig config;
    config.condition = condition;
    util::Table table({"DNN", "Neurosurgeon", "DADS", "HPA"});
    for (const auto& net : bench::models()) {
      const auto ns = bench::run(net, sim::Method::kNeurosurgeon, config);
      const auto dd = bench::run(net, sim::Method::kDads, config);
      const auto hpa = bench::run(net, sim::Method::kHpa, config);
      const auto& base = ns.applicable ? ns : dd;
      table.row()
          .cell(net.name())
          .cell(ns.applicable ? std::to_string(bench::speedup(base, ns)).substr(0, 4) : "N.A.")
          .cell(bench::speedup(base, dd), 2)
          .cell(bench::speedup(base, hpa), 2);
    }
    table.print(std::cout, "(" + condition.name + ")");
    std::cout << "\n";
  }
  bench::paper_note(
      "Fig. 10: HPA outperforms Neurosurgeon up to 2.33x on chain models and "
      "DADS up to 2.97x on DAG models; Neurosurgeon is not applicable to "
      "ResNet-18 / Darknet-53 / Inception-v4.");
  return 0;
}
