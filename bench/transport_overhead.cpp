// Transport overhead: what the wire costs relative to zero-copy in-process
// execution, per inference and per boundary byte.
//
// The same deployment plan runs on all three transports:
//
//   in-process   — zero-copy (the PR-1/2 engine behaviour; the baseline)
//   loopback     — every inter-node tensor round-trips encode/decode
//   socket       — each tier its own OS process over localhost TCP, star
//                  topology: boundary tensors relay through the coordinator
//                  (spawned on demand; skipped if the worker binary is missing)
//   socket+peer  — same processes with peer channels (connect_peers): boundary
//                  tensors are pushed producer -> consumer directly, and the
//                  relay KB column drops to zero while peer KB picks them up
//
// The delta between in-process and loopback divided by the bytes moved is the
// pure serialization cost (µs/MB); the socket delta adds framing + kernel TCP.
// The relay-vs-peer byte columns quantify what the star topology costs: every
// relay byte crosses the coordinator twice (fetch + send), so the peer path
// removes 2x relay KB of coordinator traffic per inference. Put against
// Options::emulated_tier_service_seconds (the knob the concurrency bench uses
// to stand in for remote service time) and the fig13 per-frame boundary
// traffic, it closes the loop on the paper's communication-overhead story
// with measured numbers. Writes BENCH_transport.json.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.h"
#include "core/bundle.h"
#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/fault_injection.h"
#include "rpc/socket_transport.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "runtime/address_book.h"
#include "runtime/engine.h"
#include "runtime/failover.h"
#include "runtime/request_journal.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace d3;

struct PlanCase {
  std::string name;
  dnn::Network net;
  core::Assignment assignment;
  std::optional<core::FusedTilePlan> vsm;
};

PlanCase tiny_chain_vsm() {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : stack) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  auto vsm = core::make_fused_tile_plan(net, stack, 2, 2);
  return {"tiny-chain 2x2 vsm", std::move(net), std::move(a), std::move(vsm)};
}

PlanCase tiny_branch_split() {
  dnn::Network net = dnn::zoo::tiny_branch();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1, 2, 3, 4})
    a.tier[dnn::Network::vertex_of(id)] =
        id < 2 ? core::Tier::kDevice : core::Tier::kEdge;
  return {"tiny-branch 3-tier", std::move(net), std::move(a), std::nullopt};
}

// Best-of-N wall clock of one engine inference, seconds.
double time_infer(const runtime::OnlineEngine& engine, const dnn::Tensor& input,
                  int repetitions) {
  double best = 1e300;
  for (int i = 0; i < repetitions; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const runtime::InferenceResult r = engine.infer(input);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (r.output.size() == 0) std::abort();  // keep the result observable
  }
  return best;
}

struct Row {
  std::string plan;
  std::string transport;
  double seconds = 0;
  std::int64_t boundary_bytes = 0;
  double overhead_us = 0;    // vs in-process
  double us_per_mb = 0;      // overhead normalised by boundary traffic
  // Per-inference coordinator-relay vs direct peer-to-peer payload bytes
  // (socket modes only): peer channels exist to move relay -> peer.
  std::uint64_t relay_bytes = 0;
  std::uint64_t peer_bytes = 0;
};

// What one mid-request death costs, end to end. Worker deaths (a SIGKILL'd
// edge worker, deterministically placed via FaultInjectionTransport) complete
// either by the old full-replay contract or by tier-granular migration;
// coordinator deaths (abandon mid-request) complete on a standby restoring the
// request journal, with or without a buddy replica store to re-deliver from.
struct RecoveryRow {
  // full-replay | tier-migration | coordinator-failover[+buddy] | promotion
  std::string mode;
  double seconds = 0;          // interrupted-request wall clock, death -> result
  std::uint64_t bytes = 0;     // tensor bytes re-moved to finish the request
};

// Boot-time configuration traffic (ISSUE 10): the classic kConfig ships the
// full weights blob to every node — O(model) per worker — while a cluster
// booted from d3c bundles takes the weights-elided form, plan + weights hash
// only. Both forms are run against real worker processes on the same plan
// (outputs verified bitwise-identical) and the bytes are the measured kConfig
// bodies, not an estimate.
struct ConfigRow {
  std::string form;
  std::uint64_t config_bytes = 0;
};

#ifdef D3_NODE_BINARY
// Runs the 3-tier tiny-chain plan on a fresh 3-process cluster with an edge
// respawn hook, SIGKILLs the edge worker right before its 2nd kRunLayer, and
// measures the interrupted request. `migrate` selects the engine contract.
RecoveryRow measure_recovery(bool migrate) {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3, 4, 5})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 21);
  util::Rng rng(22);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  std::vector<std::unique_ptr<rpc::WorkerProcess>> workers;
  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> respawned;
  auto socket = std::make_shared<rpc::SocketTransport>();
  std::map<std::string, pid_t> pids;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    workers.push_back(std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY));
    pids[node] = workers.back()->pid();
    socket->add_node(node, workers.back()->take_socket());
  }
  const core::SerializablePlan plan{net.name(), a, std::nullopt};
  socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  socket->set_reconnect(
      "edge0",
      [&respawned] {
        respawned["edge0"] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
        return respawned["edge0"]->take_socket();
      },
      rpc::SocketTransport::RetryPolicy{3, std::chrono::milliseconds(2), 2.0});

  auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
  faults->set_kill_handler([&pids](const std::string& node) { ::kill(pids[node], SIGKILL); });

  runtime::OnlineEngine::Options options;
  options.transport = faults;
  options.tier_recovery = migrate;
  const runtime::OnlineEngine engine(net, weights, a, std::nullopt, options);
  engine.infer(input);  // warm run before the fault is armed
  // SIGKILL the edge worker right before the 2nd edge layer of the next
  // request: mid-edge-tier, with one lost layer to re-run.
  faults->schedule(rpc::FaultInjectionTransport::Fault{
      rpc::FaultInjectionTransport::Op::kRunLayer, "edge0", 2,
      rpc::FaultInjectionTransport::Action::kKill, {}, ""});

  // The interrupted request: wall clock from submission to a bitwise-correct
  // result, whichever contract finishes it.
  const auto t0 = std::chrono::steady_clock::now();
  runtime::InferenceResult result;
  std::uint64_t replay_shipped = 0;
  try {
    result = engine.infer(input);
  } catch (const rpc::ChannelDied&) {
    // Full-replay contract: the request failed; replay it end-to-end.
    const rpc::SocketTransport::Stats before = socket->stats();
    result = engine.infer(input);
    replay_shipped = socket->stats().payload_bytes_sent - before.payload_bytes_sent;
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reference.size(); ++i)
    if (result.output[i] != reference[i]) std::abort();

  RecoveryRow row;
  row.mode = migrate ? "tier-migration" : "full-replay";
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.bytes = migrate ? engine.stats().recovery_bytes : replay_shipped;
  return row;
}

// The coordinator dies instead of a worker: a journalling primary is
// interrupted mid-edge-tier (scripted kFail, recovery disabled — the request
// is abandoned exactly as a SIGKILL'd process would leave it, workers keeping
// their slots and the journal its snapshots) and a standby engine over the
// surviving workers restores the last snapshot and resumes. At the abandon
// point the device->edge boundary has shipped — and, in buddy mode, been
// replicated to the buddy's store — so the standby either re-seeds it from
// the device (recovery bytes > 0) or re-delivers it worker->worker out of the
// replica store (recovery bytes == 0).
RecoveryRow measure_failover(bool buddy) {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3, 4, 5})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 23);
  util::Rng rng(24);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  std::vector<std::unique_ptr<rpc::WorkerProcess>> workers;
  auto socket = std::make_shared<rpc::SocketTransport>();
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    workers.push_back(std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY));
    socket->add_node(node, workers.back()->take_socket());
  }
  const core::SerializablePlan plan{net.name(), a, std::nullopt};
  socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  if (buddy) socket->set_buddy("cloud0");

  const std::string journal_path =
      buddy ? "BENCH_failover_buddy.d3j" : "BENCH_failover.d3j";
  std::remove(journal_path.c_str());

  auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
  runtime::OnlineEngine::Options options;
  options.transport = faults;
  options.tier_recovery = false;  // the primary dies; it does not recover
  options.journal = std::make_shared<runtime::RequestJournal>(journal_path);
  const runtime::OnlineEngine primary(net, weights, a, std::nullopt, options);
  faults->schedule(rpc::FaultInjectionTransport::Fault{
      rpc::FaultInjectionTransport::Op::kRunLayer, "edge0", 2,
      rpc::FaultInjectionTransport::Action::kFail, {}, ""});

  const auto t0 = std::chrono::steady_clock::now();
  runtime::OnlineEngine::Continuation c = primary.start(input);
  try {
    while (!primary.step(c)) {
    }
    std::abort();  // the scripted fault must interrupt the request
  } catch (const rpc::ChannelDied&) {
    primary.abandon(std::move(c));
  }

  runtime::OnlineEngine::Options standby_options;
  standby_options.transport = socket;
  standby_options.journal = std::make_shared<runtime::RequestJournal>(journal_path);
  const runtime::OnlineEngine standby(net, weights, a, std::nullopt, standby_options);
  const std::vector<runtime::Snapshot> live = runtime::RequestJournal::load(journal_path);
  if (live.size() != 1) std::abort();
  runtime::OnlineEngine::Continuation resumed = standby.restore(live[0]);
  while (!standby.step(resumed)) {
  }
  const runtime::InferenceResult result = standby.take(std::move(resumed));
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reference.size(); ++i)
    if (result.output[i] != reference[i]) std::abort();
  std::remove(journal_path.c_str());

  RecoveryRow row;
  row.mode = buddy ? "coordinator-failover+buddy" : "coordinator-failover";
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.bytes = standby.stats().recovery_bytes;
  return row;
}

// Unattended promotion (PR 9): the failover row above hands the journal to a
// standby by hand; here nothing does. The active coordinator (a journalling
// engine plus its CoordinatorBeacon) is interrupted mid-edge-tier and the
// beacon goes dark; a StandbyCoordinator watching it over the address book
// misses its beats, promotes itself at a higher fencing epoch, redials the
// listen-mode workers, and resumes the snapshot. Seconds run from beacon
// death to the bitwise-correct resumed result, so the row prices the whole
// pipeline: the detection window (miss_threshold x probe_interval), the
// epoch-stamped redial + kConfig replay, the journal restore, and the
// re-run of the interrupted tier.
RecoveryRow measure_promotion() {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3, 4, 5})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 25);
  util::Rng rng(26);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  // Listen-mode workers: they outlive the coordinator, and the standby dials
  // them back by the addresses the book advertises.
  std::map<std::string, std::unique_ptr<rpc::ListenWorkerProcess>> workers;
  for (const char* node : {"device0", "edge0", "cloud0"})
    workers[node] = std::make_unique<rpc::ListenWorkerProcess>(D3_NODE_BINARY);

  const std::string journal_path = "BENCH_promotion.d3j";
  std::remove(journal_path.c_str());
  auto beacon = std::make_unique<runtime::CoordinatorBeacon>(/*epoch=*/1, journal_path);

  std::string book_text = "[coordinator]\nactive 127.0.0.1:" + std::to_string(beacon->port()) +
                          "\n[workers]\n";
  for (const auto& [node, proc] : workers)
    book_text += node + std::string(" 127.0.0.1:") + std::to_string(proc->port()) + "\n";
  book_text += "[standbys]\nstandby0 127.0.0.1:65000\n";
  const runtime::AddressBook book = runtime::AddressBook::parse(book_text);

  auto socket = std::make_shared<rpc::SocketTransport>();
  socket->set_epoch(1);
  for (const auto& [node, proc] : workers) socket->add_node(node, proc->dial());
  const core::SerializablePlan plan{net.name(), a, std::nullopt};
  socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);

  auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
  runtime::OnlineEngine::Options options;
  options.transport = faults;
  options.tier_recovery = false;
  options.journal = std::make_shared<runtime::RequestJournal>(journal_path);
  const runtime::OnlineEngine primary(net, weights, a, std::nullopt, options);
  faults->schedule(rpc::FaultInjectionTransport::Fault{
      rpc::FaultInjectionTransport::Op::kRunLayer, "edge0", 2,
      rpc::FaultInjectionTransport::Action::kFail, {}, ""});

  runtime::StandbyCoordinator::Options standby_options;
  standby_options.book = book;
  standby_options.journal_path = journal_path;
  standby_options.probe_interval = std::chrono::milliseconds(20);
  standby_options.probe_timeout = std::chrono::milliseconds(200);
  standby_options.miss_threshold = 2;
  standby_options.epoch_hint = 1;
  runtime::StandbyCoordinator standby(net, weights, a, std::nullopt,
                                      std::move(standby_options));
  standby.start();

  runtime::OnlineEngine::Continuation c = primary.start(input);
  try {
    while (!primary.step(c)) {
    }
    std::abort();  // the scripted fault must interrupt the request
  } catch (const rpc::ChannelDied&) {
    primary.abandon(std::move(c));
  }

  const auto t0 = std::chrono::steady_clock::now();
  beacon.reset();  // the active coordinator goes dark
  if (!standby.wait_promoted(std::chrono::seconds(30))) std::abort();
  if (standby.resumed().size() != 1) std::abort();
  const auto t1 = std::chrono::steady_clock::now();
  const runtime::InferenceResult& result = standby.resumed().front().result;
  for (std::size_t i = 0; i < reference.size(); ++i)
    if (result.output[i] != reference[i]) std::abort();
  std::remove(journal_path.c_str());

  RecoveryRow row;
  row.mode = "promotion";
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.bytes = standby.engine().stats().recovery_bytes;
  return row;
}

std::vector<ConfigRow> measure_config_bytes() {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3, 4, 5})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 27);
  const core::SerializablePlan plan{net.name(), a, std::nullopt};
  const std::vector<std::uint8_t> plan_bytes = core::serialize_plan_binary(plan);
  util::Rng rng(28);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  std::vector<ConfigRow> rows;

  // Full form: the weights blob rides every node's kConfig.
  {
    std::vector<std::unique_ptr<rpc::WorkerProcess>> workers;
    auto transport = std::make_shared<rpc::SocketTransport>();
    for (const char* node : {"device0", "edge0", "cloud0"}) {
      workers.push_back(std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY));
      transport->add_node(node, workers.back()->take_socket());
    }
    transport->configure(net.name(), net, weights, plan_bytes, 0);
    rows.push_back({"full kConfig", transport->stats().config_bytes_sent});
    runtime::OnlineEngine::Options options;
    options.transport = transport;
    const runtime::InferenceResult r =
        runtime::OnlineEngine(net, weights, a, std::nullopt, options).infer(input);
    for (std::size_t i = 0; i < reference.size(); ++i)
      if (r.output[i] != reference[i]) std::abort();
  }

  // Elided form: workers boot from d3c bundles; kConfig carries the hash.
  {
    const std::uint64_t weights_hash = rpc::fnv1a(rpc::encode_weights(weights, net));
    std::map<std::string, std::unique_ptr<rpc::ListenWorkerProcess>> workers;
    auto transport = std::make_shared<rpc::SocketTransport>();
    for (const char* node : {"device0", "edge0", "cloud0"}) {
      core::DeploymentBundle bundle;
      bundle.node_name = node;
      bundle.model_name = net.name();
      bundle.weights_hash = weights_hash;
      bundle.plan_bytes = plan_bytes;
      bundle.shard_bytes = rpc::encode_weight_shard(
          weights, net, exec::WeightStore::layers_for_node(plan, node));
      bundle.book_text = "[workers]\n";
      const std::string path = std::string("BENCH_") + node + ".d3b";
      core::write_bundle_file(path, bundle);
      workers[node] = std::make_unique<rpc::ListenWorkerProcess>(
          D3_NODE_BINARY, std::vector<std::string>{"--bundle", path, node});
      transport->add_node(node, workers[node]->dial());
    }
    transport->set_elide_weights(true);
    transport->configure(net.name(), net, weights, plan_bytes, 0);
    rows.push_back({"elided kConfig (bundle boot)", transport->stats().config_bytes_sent});
    runtime::OnlineEngine::Options options;
    options.transport = transport;
    const runtime::InferenceResult r =
        runtime::OnlineEngine(net, weights, a, std::nullopt, options).infer(input);
    for (std::size_t i = 0; i < reference.size(); ++i)
      if (r.output[i] != reference[i]) std::abort();
    for (const char* node : {"device0", "edge0", "cloud0"})
      std::remove((std::string("BENCH_") + node + ".d3b").c_str());
  }

  if (rows[1].config_bytes >= rows[0].config_bytes) {
    std::cerr << "FATAL: elided kConfig sent " << rows[1].config_bytes
              << " bytes, not below the full form's " << rows[0].config_bytes << "\n";
    std::abort();
  }
  return rows;
}
#endif

}  // namespace

int main() {
  bench::banner("transport overhead",
                "per-inference cost of the wire: in-process (zero-copy) vs "
                "serializing loopback vs one-OS-process-per-tier sockets, on "
                "identical plans with bitwise-identical outputs");

  const int reps = 15;
  std::vector<Row> rows;

  std::vector<PlanCase> cases;
  cases.push_back(tiny_chain_vsm());
  cases.push_back(tiny_branch_split());

  for (const PlanCase& c : cases) {
    const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 11);
    util::Rng rng(12);
    const dnn::Tensor input = exec::random_tensor(c.net.input_shape(), rng);
    const dnn::Tensor reference = exec::Executor(c.net, weights).run(input);

    const auto check = [&](const runtime::InferenceResult& r) {
      if (!(r.output.shape() == reference.shape())) std::abort();
      for (std::size_t i = 0; i < reference.size(); ++i)
        if (r.output[i] != reference[i]) {
          std::cerr << "FATAL: transport broke bitwise identity on " << c.name << "\n";
          std::abort();
        }
      return r.device_edge_bytes + r.edge_cloud_bytes + r.device_cloud_bytes;
    };

    // In-process (baseline).
    const runtime::OnlineEngine inproc(c.net, weights, c.assignment, c.vsm);
    const std::int64_t boundary = check(inproc.infer(input));
    const double inproc_s = time_infer(inproc, input, reps);
    rows.push_back({c.name, "in-process", inproc_s, boundary, 0.0, 0.0});

    // Serializing loopback.
    {
      runtime::OnlineEngine::Options options;
      options.transport = std::make_shared<rpc::SerializingLoopback>();
      const runtime::OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);
      check(engine.infer(input));
      const double s = time_infer(engine, input, reps);
      const double overhead_us = (s - inproc_s) * 1e6;
      rows.push_back({c.name, "loopback", s, boundary, overhead_us,
                      boundary > 0 ? overhead_us / (boundary / 1e6) : 0.0});
    }

    // Socket: three worker processes, first the star topology (coordinator
    // relays every boundary tensor), then the same topology with peer
    // channels. Skipped (with a note) if spawning fails.
#ifdef D3_NODE_BINARY
    for (const bool peers : {false, true}) {
      try {
        std::vector<std::unique_ptr<rpc::WorkerProcess>> workers;
        auto transport = std::make_shared<rpc::SocketTransport>();
        for (const char* node : {"device0", "edge0", "cloud0"}) {
          workers.push_back(std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY));
          transport->add_node(node, workers.back()->take_socket());
        }
        const core::SerializablePlan plan{c.net.name(), c.assignment, c.vsm};
        transport->configure(c.net.name(), c.net, weights, core::serialize_plan_binary(plan),
                             /*vsm_workers=*/2);
        if (peers) transport->connect_peers();
        runtime::OnlineEngine::Options options;
        options.transport = transport;
        const runtime::OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);
        const rpc::SocketTransport::Stats before = transport->stats();
        check(engine.infer(input));
        const rpc::SocketTransport::Stats after = transport->stats();
        const double s = time_infer(engine, input, reps);
        const double overhead_us = (s - inproc_s) * 1e6;
        rows.push_back({c.name, peers ? "socket+peer" : "socket", s, boundary, overhead_us,
                        boundary > 0 ? overhead_us / (boundary / 1e6) : 0.0,
                        after.relay_bytes - before.relay_bytes,
                        after.peer_bytes - before.peer_bytes});
      } catch (const std::exception& e) {
        std::cerr << "note: socket mode skipped (" << e.what() << ")\n";
      }
    }
#endif
  }

  util::Table table({"plan", "transport", "infer ms", "boundary KB", "overhead us",
                     "us per MB moved", "relay KB", "peer KB"});
  for (const Row& r : rows)
    table.row()
        .cell(r.plan)
        .cell(r.transport)
        .cell(r.seconds * 1e3)
        .cell(static_cast<double>(r.boundary_bytes) / 1024.0)
        .cell(r.overhead_us)
        .cell(r.us_per_mb)
        .cell(static_cast<double>(r.relay_bytes) / 1024.0)
        .cell(static_cast<double>(r.peer_bytes) / 1024.0);
  table.print(std::cout, "transport overhead (outputs verified bitwise-identical first)");

  // Recovery cost: the same SIGKILL mid-edge-tier, finished by the PR-4
  // full-replay contract vs tier-granular migration. Bytes are the tensor
  // payloads re-moved to complete the interrupted request.
  std::vector<RecoveryRow> recovery;
#ifdef D3_NODE_BINARY
  for (const bool migrate : {false, true}) {
    try {
      recovery.push_back(measure_recovery(migrate));
    } catch (const std::exception& e) {
      std::cerr << "note: recovery mode skipped (" << e.what() << ")\n";
    }
  }
  // Coordinator failover: same interruption point, but the *coordinator* is
  // the casualty and a standby resumes from the request journal. The buddy
  // row must re-move strictly fewer bytes — that saving is the entire point
  // of ship-time replication.
  std::optional<std::uint64_t> reseed_bytes;
  for (const bool buddy : {false, true}) {
    try {
      recovery.push_back(measure_failover(buddy));
      if (!buddy) {
        reseed_bytes = recovery.back().bytes;
      } else if (reseed_bytes && recovery.back().bytes >= *reseed_bytes) {
        std::cerr << "FATAL: buddy failover re-moved " << recovery.back().bytes
                  << " bytes, not below the " << *reseed_bytes << " re-seed cost\n";
        std::abort();
      }
    } catch (const std::exception& e) {
      std::cerr << "note: failover mode skipped (" << e.what() << ")\n";
    }
  }
  // Unattended promotion: the same restore, but nothing hands the journal
  // over — the standby detects the dead beacon itself and takes the workers
  // at a higher fencing epoch. The delta vs the coordinator-failover row is
  // the price of automation: the miss window plus the epoch-fenced redial.
  try {
    recovery.push_back(measure_promotion());
  } catch (const std::exception& e) {
    std::cerr << "note: promotion mode skipped (" << e.what() << ")\n";
  }
  if (!recovery.empty()) {
    util::Table rtable({"recovery mode", "interrupted-request ms", "recovery KB"});
    for (const RecoveryRow& r : recovery)
      rtable.row().cell(r.mode).cell(r.seconds * 1e3).cell(static_cast<double>(r.bytes) /
                                                           1024.0);
    rtable.print(std::cout,
                 "mid-tier death: edge-worker SIGKILL rows vs coordinator-failover "
                 "rows (tiny-chain 3-tier, outputs verified)");
  }
#endif

  // Boot-time configuration traffic: full kConfig (weights blob per node) vs
  // the weights-elided form against bundle-booted workers.
  std::vector<ConfigRow> config_rows;
#ifdef D3_NODE_BINARY
  try {
    config_rows = measure_config_bytes();
    util::Table ctable({"kConfig form", "config KB (3 nodes)"});
    for (const ConfigRow& r : config_rows)
      ctable.row().cell(r.form).cell(static_cast<double>(r.config_bytes) / 1024.0);
    ctable.print(std::cout,
                 "boot-time configuration traffic: O(model) weights blob vs the "
                 "O(1) elided form on d3c-bundle-booted workers (outputs verified)");
  } catch (const std::exception& e) {
    std::cerr << "note: config-bytes mode skipped (" << e.what() << ")\n";
  }
#endif

  std::ofstream json("BENCH_transport.json");
  json << "{\n  \"bench\": \"transport_overhead\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"plan\": \"" << r.plan << "\", \"transport\": \"" << r.transport
         << "\", \"infer_ms\": " << r.seconds * 1e3
         << ", \"boundary_bytes\": " << r.boundary_bytes
         << ", \"overhead_us\": " << r.overhead_us << ", \"us_per_mb\": " << r.us_per_mb
         << ", \"relay_bytes\": " << r.relay_bytes << ", \"peer_bytes\": " << r.peer_bytes
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"recovery\": [\n";
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryRow& r = recovery[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"interrupted_request_ms\": " << r.seconds * 1e3
         << ", \"recovery_bytes\": " << r.bytes << "}" << (i + 1 < recovery.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"config\": [\n";
  for (std::size_t i = 0; i < config_rows.size(); ++i) {
    const ConfigRow& r = config_rows[i];
    json << "    {\"form\": \"" << r.form << "\", \"config_bytes\": " << r.config_bytes << "}"
         << (i + 1 < config_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  bench::paper_note(
      "The loopback-vs-in-process delta is pure serialization cost; socket adds "
      "framing + TCP. socket+peer moves the relay KB column to peer KB: those "
      "bytes flow worker -> worker and never cross the coordinator. The recovery "
      "table is the failure story: the same mid-tier SIGKILL finished by an "
      "end-to-end replay vs tier-granular migration (reopen + re-seed + re-run "
      "one tier) — migration re-moves only the interrupted tier's inputs. The "
      "coordinator-failover rows interrupt the *coordinator* instead: a standby "
      "replays the request journal and resumes the snapshot, re-seeding the "
      "interrupted tier's boundary from the producer — or, with a buddy replica "
      "store, re-delivering it worker -> worker for zero re-moved bytes. The "
      "promotion row automates the whole takeover: a StandbyCoordinator misses "
      "the dead beacon's heartbeats, redials the workers at a higher fencing "
      "epoch and resumes unattended, so its latency includes the detection "
      "window itself. "
      "Compare us/MB here with the per-frame boundary traffic of "
      "bench_fig13_comm_overhead and with Options::emulated_tier_service_seconds "
      "when emulating remote tiers on one host.");
  return 0;
}
