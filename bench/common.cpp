#include "common.h"

namespace d3::bench {

void banner(const std::string& experiment, const std::string& description) {
  std::cout << "==================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "==================================================================\n";
}

void paper_note(const std::string& note) { std::cout << "paper: " << note << "\n\n"; }

sim::MethodResult run(const dnn::Network& net, sim::Method method,
                      const sim::ExperimentConfig& config) {
  return sim::run_method(net, method, config);
}

double speedup(const sim::MethodResult& baseline, const sim::MethodResult& method) {
  return sim::speedup_over(baseline, method);
}

std::vector<dnn::Network> models() { return dnn::zoo::paper_models(); }

}  // namespace d3::bench
