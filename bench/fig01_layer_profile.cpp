// Fig. 1: layer-wise inference latency and per-layer output size of VGG-16,
// ResNet-18 and Darknet-53 on a Raspberry-Pi-class device (3x224x224 input).
// Layers are aggregated by the paper's row labels (blocks / residual groups).
#include <iostream>
#include <map>

#include "common.h"
#include "profile/hardware_model.h"
#include "util/units.h"

using namespace d3;

namespace {

void profile_model(const dnn::Network& net, const profile::NodeSpec& device) {
  // Aggregate per group, preserving first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, double> latency;
  std::map<std::string, double> out_mb;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const std::string& group = net.layer(id).spec.group;
    if (!latency.count(group)) order.push_back(group);
    latency[group] +=
        profile::HardwareModel::expected_latency(profile::layer_cost(net, id), device);
    // The group's output size is the last layer's output within it.
    out_mb[group] = static_cast<double>(net.lambda_out_bytes(id)) / 1e6;
  }

  util::Table table({"layer", "latency (s)", "output size (MB)"});
  double total = 0;
  for (const std::string& group : order) {
    table.row().cell(group).cell(latency[group], 4).cell(out_mb[group], 2);
    total += latency[group];
  }
  table.print(std::cout, net.name() + " on " + device.name);
  std::cout << "total: " << total << " s\n\n";
}

}  // namespace

int main() {
  bench::banner("Fig. 1 - per-layer latency and output size on the device tier",
                "Latency from the calibrated hardware model (stands in for the "
                "paper's Raspberry Pi 4B measurements); sizes are exact.");
  const profile::NodeSpec device = profile::raspberry_pi_4b();
  for (const auto& net : {dnn::zoo::vgg16(), dnn::zoo::resnet18(), dnn::zoo::darknet53()})
    profile_model(net, device);
  bench::paper_note(
      "Fig. 1 shows VGG-16 conv layers at 0.2-0.6 s each (seconds in total), "
      "ResNet-18 blocks at 0.02-0.1 s, Darknet-53 groups at 0.1-0.75 s; early "
      "conv outputs are the largest tensors (VGG conv1/conv2 ~12.5 MB).");
  return 0;
}
