// Promotion crash-point sweep — the ISSUE-9 acceptance drill. For every
// protocol point of a three-tier socket run (each message kind at each tier
// boundary), the *active* coordinator process is SIGKILLed exactly there, and
// a StandbyCoordinator watching its beacon must notice the silence and
// promote itself unattended: fence the dead incarnation out of the workers,
// load the write-ahead journal, resume whatever was mid-flight, and keep
// serving. After every takeover:
//
//   * outputs are bitwise-identical to the single-process exec::Executor,
//   * transcripts are byte-identical to an in-process engine that never saw
//     a failure,
//   * exactly one coordinator holds the workers — a transport still carrying
//     the dead incarnation's epoch gets rpc::Fenced on every attempt while
//     the promoted one keeps inferring.
//
// Plus the kJournalSync leg: a standby on a *different* filesystem path
// mirrors the journal over the beacon wire and promotes from its local copy.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/fault_injection.h"
#include "rpc/socket_transport.h"
#include "runtime/address_book.h"
#include "runtime/engine.h"
#include "runtime/failover.h"
#include "runtime/request_journal.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "promotion_sweep_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

std::string temp_path(const std::string& name) {
  const std::string path = (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove(path);
  return path;
}

// conv1+relu1 on the device, pool1+conv2 on the edge, the tail in the cloud.
core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  return a;
}

using Fault = rpc::FaultInjectionTransport::Fault;
using Op = rpc::FaultInjectionTransport::Op;
using Action = rpc::FaultInjectionTransport::Action;

struct KillPoint {
  const char* label;
  Op op;
  const char* node;
  std::uint64_t nth;
};

// Every message kind of the three-tier run, at every tier boundary it
// crosses: request open, input seed, both device layers, the device->edge
// ship, both edge layers, the edge->cloud ship, the cloud tail, the output
// fetch, and the teardown.
constexpr KillPoint kKillPoints[] = {
    {"begin", Op::kBegin, "", 1},
    {"seed-device", Op::kPut, "device0", 1},
    {"device-layer-1", Op::kRunLayer, "device0", 1},
    {"device-layer-2", Op::kRunLayer, "device0", 2},
    {"ship-device-edge", Op::kPut, "edge0", 1},
    {"edge-layer-1", Op::kRunLayer, "edge0", 1},
    {"edge-layer-2", Op::kRunLayer, "edge0", 2},
    {"ship-edge-cloud", Op::kPut, "cloud0", 1},
    {"cloud-layer-1", Op::kRunLayer, "cloud0", 1},
    {"fetch-output", Op::kGet, "cloud0", 1},
    {"end", Op::kEnd, "", 1},
};

class PromotionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PromotionSweep, StandbyPromotesUnattendedAtEveryCrashPoint) {
  const KillPoint& kill = kKillPoints[GetParam()];

  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 211);
  util::Rng rng(212);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};
  const std::string journal_path =
      temp_path(std::string("promotion_") + kill.label + ".d3j");

  // The workers outlive any one coordinator; their listen ports and the
  // beacon's go into the address book the standby promotes from.
  const rpc::ListenWorkerProcess device(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess edge(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess cloud(D3_NODE_BINARY);

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // The doomed active coordinator. No gtest in here — every path ends in
    // _exit, and a nonzero code tells the parent the SIGKILL never happened.
    ::close(pipe_fds[0]);
    try {
      const CoordinatorBeacon beacon(/*epoch=*/1, journal_path);
      const std::uint16_t beacon_port = beacon.port();
      if (::write(pipe_fds[1], &beacon_port, sizeof(beacon_port)) !=
          static_cast<ssize_t>(sizeof(beacon_port)))
        ::_exit(3);
      ::close(pipe_fds[1]);

      auto socket = std::make_shared<rpc::SocketTransport>();
      socket->set_epoch(1);
      socket->add_node("device0", device.dial());
      socket->add_node("edge0", edge.dial());
      socket->add_node("cloud0", cloud.dial());
      socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);

      auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
      faults->set_kill_handler([](const std::string&) { ::raise(SIGKILL); });
      faults->schedule(Fault{kill.op, kill.node, kill.nth, Action::kKill, {}, ""});

      OnlineEngine::Options options;
      options.transport = faults;
      options.journal = std::make_shared<RequestJournal>(journal_path);
      const OnlineEngine primary(net, weights, assignment, std::nullopt, options);
      primary.infer(frame);
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(1);
  }

  ::close(pipe_fds[1]);
  std::uint16_t beacon_port = 0;
  ASSERT_EQ(::read(pipe_fds[0], &beacon_port, sizeof(beacon_port)),
            static_cast<ssize_t>(sizeof(beacon_port)));
  ::close(pipe_fds[0]);

  const auto entry = [](const char* name, std::uint16_t port) {
    return std::string(name) + " 127.0.0.1:" + std::to_string(port) + "\n";
  };
  StandbyCoordinator::Options options;
  options.book = AddressBook::parse("[coordinator]\n" + entry("beacon", beacon_port) +
                                    "[workers]\n" + entry("device0", device.port()) +
                                    entry("edge0", edge.port()) + entry("cloud0", cloud.port()) +
                                    "[standbys]\n" + entry("standby0", 65000));
  options.journal_path = journal_path;
  options.probe_interval = std::chrono::milliseconds(20);
  options.probe_timeout = std::chrono::milliseconds(500);
  options.miss_threshold = 2;
  options.epoch_hint = 1;
  StandbyCoordinator standby(net, weights, assignment, std::nullopt, std::move(options));
  standby.start();

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "active exited with code "
                                   << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
                                   << " — the scripted SIGKILL at '" << kill.label
                                   << "' never fired";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The unattended path: missed beats trip the threshold, the standby fences
  // and resumes with nobody pressing any buttons.
  ASSERT_TRUE(standby.wait_promoted(std::chrono::seconds(30)));
  EXPECT_EQ(standby.epoch(), 2u);

  const InferenceResult no_failure = OnlineEngine(net, weights, assignment).infer(frame);

  // Crash points before the first durable snapshot leave nothing to resume;
  // every later one leaves exactly the interrupted request.
  ASSERT_LE(standby.resumed().size(), 1u);
  if (standby.resumed().size() == 1) {
    expect_identical(standby.resumed()[0].result.output, reference);
    expect_same_transcript(standby.resumed()[0].result, no_failure);
  }
  // Resumption (or the no-op) journalled its finish: nothing is left live.
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());

  // Fencing: the dead incarnation's epoch no longer opens any door. A fresh
  // transport claiming epoch 1 is turned away at kConfig...
  auto deposed = std::make_shared<rpc::SocketTransport>();
  deposed->set_epoch(1);
  deposed->add_node("device0", device.dial());
  deposed->add_node("edge0", edge.dial());
  deposed->add_node("cloud0", cloud.dial());
  EXPECT_THROW(
      deposed->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0),
      rpc::Fenced);

  // ...while the promoted coordinator keeps driving the same workers: a fresh
  // request through its engine stays bitwise- and transcript-identical.
  const InferenceResult fresh = standby.engine().infer(frame);
  expect_identical(fresh.output, reference);
  expect_same_transcript(fresh, no_failure);
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, PromotionSweep,
                         ::testing::Range<std::size_t>(0, std::size(kKillPoints)),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name = kKillPoints[info.param].label;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// --- kJournalSync mirror leg -------------------------------------------------

TEST(JournalMirror, StandbyPromotesFromItsKJournalSyncCopy) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 311);
  util::Rng rng(312);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};
  const std::string active_journal = temp_path("mirror_active.d3j");
  const std::string standby_journal = temp_path("mirror_standby.d3j");

  const rpc::ListenWorkerProcess device(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess edge(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess cloud(D3_NODE_BINARY);

  // The active coordinator dies mid-request (scripted SIGKILL before the
  // second edge layer), leaving a one-snapshot journal on *its* filesystem.
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    try {
      auto socket = std::make_shared<rpc::SocketTransport>();
      socket->set_epoch(1);
      socket->add_node("device0", device.dial());
      socket->add_node("edge0", edge.dial());
      socket->add_node("cloud0", cloud.dial());
      socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
      auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
      faults->set_kill_handler([](const std::string&) { ::raise(SIGKILL); });
      faults->schedule(Fault{Op::kRunLayer, "edge0", 2, Action::kKill, {}, ""});
      OnlineEngine::Options options;
      options.transport = faults;
      options.journal = std::make_shared<RequestJournal>(active_journal);
      const OnlineEngine primary(net, weights, assignment, std::nullopt, options);
      primary.infer(frame);
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // A beacon still serving the dead coordinator's journal file (in a real
  // deployment the beacon dies with the coordinator and the standby promotes
  // from whatever its *last* pull captured; serving the post-mortem file here
  // makes the pulled bytes deterministic for the fidelity check below).
  auto beacon = std::make_unique<CoordinatorBeacon>(/*epoch=*/1, active_journal);

  const auto entry = [](const char* name, std::uint16_t port) {
    return std::string(name) + " 127.0.0.1:" + std::to_string(port) + "\n";
  };
  StandbyCoordinator::Options options;
  options.book = AddressBook::parse("[coordinator]\n" + entry("beacon", beacon->port()) +
                                    "[workers]\n" + entry("device0", device.port()) +
                                    entry("edge0", edge.port()) + entry("cloud0", cloud.port()) +
                                    "[standbys]\n" + entry("standby0", 65000));
  options.journal_path = standby_journal;  // NOT the active's path: wire-fed copy
  options.mirror_journal = true;
  options.probe_interval = std::chrono::milliseconds(10);
  options.probe_timeout = std::chrono::milliseconds(500);
  options.miss_threshold = 2;
  options.epoch_hint = 1;
  StandbyCoordinator standby(net, weights, assignment, std::nullopt, std::move(options));
  standby.start();

  // Wait until at least one successful probe round has mirrored the journal.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    std::error_code ec;
    if (std::filesystem::file_size(standby_journal, ec) ==
            std::filesystem::file_size(active_journal) &&
        !ec)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(std::filesystem::file_size(standby_journal),
            std::filesystem::file_size(active_journal));

  // Kill the beacon: the standby must promote from its local mirror alone.
  beacon.reset();
  ASSERT_TRUE(standby.wait_promoted(std::chrono::seconds(30)));
  EXPECT_EQ(standby.epoch(), 2u);

  ASSERT_EQ(standby.resumed().size(), 1u);
  expect_identical(standby.resumed()[0].result.output, reference);
  const InferenceResult no_failure = OnlineEngine(net, weights, assignment).infer(frame);
  expect_same_transcript(standby.resumed()[0].result, no_failure);
  EXPECT_TRUE(RequestJournal::load(standby_journal).empty());
}

}  // namespace
}  // namespace d3::runtime
