#include <gtest/gtest.h>

#include "sim/pipeline.h"

namespace d3::sim {
namespace {

PipelinePlan three_tier_plan() {
  PipelinePlan p;
  p.device_seconds = 0.002;
  p.edge_seconds = 0.010;
  p.cloud_seconds = 0.001;
  p.de_bytes = 1'000'000;
  p.ec_bytes = 250'000;
  p.dc_bytes = 0;
  p.edge_used = true;
  p.cloud_used = true;
  p.condition = net::NetworkCondition{"t", 80.0, 20.0, 10.0, 0};
  return p;
}

TEST(Pipeline, TransferTimesFromBytes) {
  const PipelinePlan p = three_tier_plan();
  EXPECT_NEAR(p.de_seconds(), 1e6 * 8 / 80e6, 1e-12);
  EXPECT_NEAR(p.ec_seconds(), 2.5e5 * 8 / 20e6, 1e-12);
  EXPECT_DOUBLE_EQ(p.dc_seconds(), 0.0);
}

TEST(Pipeline, FrameLatencyClosedForm) {
  const PipelinePlan p = three_tier_plan();
  const double expected = 0.002 + (p.de_seconds() + 0.010 + p.ec_seconds()) + 0.001;
  EXPECT_NEAR(p.frame_latency_seconds(), expected, 1e-12);
}

TEST(Pipeline, DirectPathOverlapsEdgePath) {
  PipelinePlan p = three_tier_plan();
  p.dc_bytes = 4'000'000;  // 3.2 s on 10 Mbps, slower than the edge path
  const double edge_path = p.de_seconds() + p.edge_seconds + p.ec_seconds();
  EXPECT_GT(p.dc_seconds(), edge_path);
  EXPECT_NEAR(p.frame_latency_seconds(), p.device_seconds + p.dc_seconds() + p.cloud_seconds,
              1e-12);
}

TEST(Pipeline, DeviceOnlyLatency) {
  PipelinePlan p;
  p.device_seconds = 0.5;
  p.condition = net::wifi();
  EXPECT_DOUBLE_EQ(p.frame_latency_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(p.bottleneck_stage_seconds(), 0.5);
}

TEST(Pipeline, BottleneckIsSlowestStage) {
  const PipelinePlan p = three_tier_plan();
  EXPECT_NEAR(p.bottleneck_stage_seconds(), p.de_seconds(), 1e-12);  // 0.1 s link
}

TEST(Stream, FastPipelineCompletesEverything) {
  PipelinePlan p;
  p.device_seconds = 0.001;
  p.condition = net::wifi();
  StreamOptions opts;
  opts.fps = 30;
  opts.duration_seconds = 10;
  const StreamResult r = simulate_stream(p, opts);
  EXPECT_EQ(r.frames_offered, 300u);
  EXPECT_EQ(r.frames_completed, 300u);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_NEAR(r.avg_latency_seconds, 0.001, 1e-9);
  EXPECT_NEAR(r.throughput_fps, 30.0, 0.2);
}

TEST(Stream, SlowDeviceDropsFrames) {
  PipelinePlan p;
  p.device_seconds = 0.1;  // 10 fps capacity vs 30 fps offered
  p.condition = net::wifi();
  StreamOptions opts;
  opts.fps = 30;
  opts.duration_seconds = 10;
  const StreamResult r = simulate_stream(p, opts);
  EXPECT_GT(r.frames_dropped, 150u);
  EXPECT_NEAR(r.throughput_fps, 10.0, 1.0);
  // Dropped-frame policy keeps per-frame latency at the pipeline traversal time.
  EXPECT_NEAR(r.avg_latency_seconds, 0.1, 1e-6);
}

TEST(Stream, QueueModeGrowsLatency) {
  PipelinePlan p;
  p.device_seconds = 0.05;  // 20 fps capacity vs 30 offered
  p.condition = net::wifi();
  StreamOptions opts;
  opts.fps = 30;
  opts.duration_seconds = 10;
  opts.drop_when_busy = false;
  const StreamResult r = simulate_stream(p, opts);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_EQ(r.frames_completed, 300u);
  // Unbounded queue: average latency far exceeds the isolated frame latency.
  EXPECT_GT(r.avg_latency_seconds, 10 * p.frame_latency_seconds());
  EXPECT_GT(r.p99_latency_seconds, r.p50_latency_seconds);
}

TEST(Stream, PipeliningOverlapsStages) {
  // Two-stage pipeline where each stage alone is under the frame interval:
  // all frames complete even though the total latency exceeds the interval.
  PipelinePlan p;
  p.device_seconds = 0.02;
  p.edge_seconds = 0.02;
  p.de_bytes = 10'000;
  p.edge_used = true;
  p.condition = net::NetworkCondition{"fast", 1000.0, 1000.0, 1000.0, 0};
  StreamOptions opts;
  opts.fps = 30;
  opts.duration_seconds = 5;
  const StreamResult r = simulate_stream(p, opts);
  EXPECT_GT(p.frame_latency_seconds(), 1.0 / 30);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_NEAR(r.avg_latency_seconds, p.frame_latency_seconds(), 1e-6);
}

TEST(Pipeline, PredictedCompletionChargesInflightOccupancy) {
  const PipelinePlan p = three_tier_plan();
  const double frame = p.frame_latency_seconds();
  const double bottleneck = p.bottleneck_stage_seconds();

  // Empty pipe: both forms agree, and a lone request costs one frame latency.
  EXPECT_NEAR(predicted_completion_seconds(p, 0, 0), frame, 1e-12);
  EXPECT_NEAR(predicted_completion_seconds(p, 0, 0), predicted_completion_seconds(p, 0),
              1e-12);

  // Multi-stage pipe under load: each in-flight frame holds its stages for a
  // full frame latency, so the occupancy-aware prediction exceeds the 2-arg
  // form, which priced an in-flight frame like a mere queue entry.
  const std::size_t queued = 3, inflight = 4;
  const double corrected = predicted_completion_seconds(p, queued, inflight);
  EXPECT_NEAR(corrected,
              static_cast<double>(inflight) * frame + frame +
                  static_cast<double>(queued) * bottleneck,
              1e-12);
  EXPECT_GT(corrected, predicted_completion_seconds(p, queued + inflight));

  // Single-stage pipe: occupancy IS the queue wait, so the forms coincide.
  PipelinePlan solo;
  solo.device_seconds = 0.5;
  solo.condition = net::wifi();
  EXPECT_NEAR(predicted_completion_seconds(solo, queued, inflight),
              predicted_completion_seconds(solo, queued + inflight), 1e-12);
}

TEST(Stream, BackboneBytesReported) {
  PipelinePlan p = three_tier_plan();
  p.dc_bytes = 100'000;
  const StreamResult r = simulate_stream(p);
  EXPECT_NEAR(r.backbone_megabits_per_frame, (250'000 + 100'000) * 8.0 / 1e6, 1e-9);
}

TEST(Stream, OptionValidation) {
  PipelinePlan p;
  p.condition = net::wifi();
  StreamOptions bad;
  bad.fps = 0;
  EXPECT_THROW(simulate_stream(p, bad), std::invalid_argument);
}

}  // namespace
}  // namespace d3::sim
