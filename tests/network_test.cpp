#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "dnn/network.h"

namespace d3::dnn {
namespace {

TEST(Network, BuilderInfersShapesEagerly) {
  Network net("t", Shape{3, 32, 32});
  const LayerId c1 = net.conv("c1", kNetworkInput, 8, 3, 1, 1);
  EXPECT_EQ(net.layer(c1).output_shape, (Shape{8, 32, 32}));
  const LayerId p = net.max_pool("p", c1, 2, 2);
  EXPECT_EQ(net.layer(p).output_shape, (Shape{8, 16, 16}));
}

TEST(Network, RejectsBadInputs) {
  Network net("t", Shape{3, 8, 8});
  EXPECT_THROW(net.add(LayerSpec::relu("r"), {}), std::invalid_argument);
  EXPECT_THROW(net.add(LayerSpec::relu("r"), {5}), std::invalid_argument);
  const LayerId c = net.conv("c", kNetworkInput, 4, 3, 1, 1);
  EXPECT_THROW(net.add(LayerSpec::add("a"), {c, c}), std::invalid_argument);  // duplicate
  EXPECT_THROW(Network("bad", Shape{0, 8, 8}), std::invalid_argument);
}

TEST(Network, LambdaBytes) {
  Network net("t", Shape{3, 8, 8});
  const LayerId c = net.conv("c", kNetworkInput, 4, 3, 1, 1);
  EXPECT_EQ(net.lambda_in_bytes(c), 3 * 8 * 8 * 4);
  EXPECT_EQ(net.lambda_out_bytes(c), 4 * 8 * 8 * 4);
  const LayerId c2 = net.conv("c2", c, 4, 3, 1, 1);
  const LayerId cat = net.concat("cat", {c, c2});
  // Concat consumes both inputs: lambda_in sums them.
  EXPECT_EQ(net.lambda_in_bytes(cat), 2 * 4 * 8 * 8 * 4);
}

TEST(Network, ToDagAddsVirtualInput) {
  const Network net = zoo::tiny_branch();
  const graph::Dag dag = net.to_dag();
  EXPECT_EQ(dag.size(), net.num_layers() + 1);
  // v0 feeds exactly the layers that consume the network input.
  EXPECT_EQ(dag.successors(0).size(), 1u);
  EXPECT_TRUE(dag.is_acyclic());
}

TEST(Network, VertexLayerMapping) {
  EXPECT_EQ(Network::vertex_of(0), 1u);
  EXPECT_EQ(Network::layer_of(1), 0u);
  EXPECT_EQ(Network::layer_of(Network::vertex_of(41)), 41u);
}

TEST(Network, ChainDetection) {
  EXPECT_TRUE(zoo::tiny_chain().is_chain());
  EXPECT_FALSE(zoo::tiny_branch().is_chain());
}

TEST(Network, TotalsAccumulate) {
  const Network net = zoo::tiny_chain();
  std::int64_t flops = 0, params = 0;
  for (LayerId id = 0; id < net.num_layers(); ++id) {
    flops += net.layer(id).flops;
    params += net.layer(id).params;
  }
  EXPECT_EQ(net.total_flops(), flops);
  EXPECT_EQ(net.total_params(), params);
  EXPECT_GT(flops, 0);
  EXPECT_GT(params, 0);
}

TEST(Network, LastThrowsWhenEmpty) {
  Network net("t", Shape{1, 2, 2});
  EXPECT_THROW(net.last(), std::logic_error);
}

TEST(Network, GroupDefaultsToName) {
  Network net("t", Shape{3, 8, 8});
  const LayerId c = net.conv("conv_a", kNetworkInput, 4, 3);
  EXPECT_EQ(net.layer(c).spec.group, "conv_a");
}

}  // namespace
}  // namespace d3::dnn
