#include <gtest/gtest.h>

#include "dnn/layer.h"

namespace d3::dnn {
namespace {

TEST(ShapeInference, ConvFollowsEq3) {
  // AlexNet conv1: 3x224x224, 96 filters 11x11, stride 4, pad 2 -> 96x55x55.
  const LayerSpec conv = LayerSpec::conv("c", 96, Window{11, 11, 4, 4, 2, 2});
  EXPECT_EQ(infer_output_shape(conv, {Shape{3, 224, 224}}), (Shape{96, 55, 55}));
}

TEST(ShapeInference, ConvSamePadding) {
  const LayerSpec conv = LayerSpec::conv("c", 64, Window{3, 3, 1, 1, 1, 1});
  EXPECT_EQ(infer_output_shape(conv, {Shape{3, 224, 224}}), (Shape{64, 224, 224}));
}

TEST(ShapeInference, RectangularConv) {
  // 1x7 conv (kernel_w=7, kernel_h=1, pad_w=3) preserves shape.
  const LayerSpec conv = LayerSpec::conv("c", 64, Window{7, 1, 1, 1, 3, 0});
  EXPECT_EQ(infer_output_shape(conv, {Shape{64, 17, 17}}), (Shape{64, 17, 17}));
}

TEST(ShapeInference, FloorDivision) {
  // (224 - 3) / 2 + 1 = 111 (floor).
  const LayerSpec conv = LayerSpec::conv("c", 32, Window{3, 3, 2, 2, 0, 0});
  EXPECT_EQ(infer_output_shape(conv, {Shape{3, 224, 224}}), (Shape{32, 111, 111}));
}

TEST(ShapeInference, PoolKeepsChannels) {
  const LayerSpec pool = LayerSpec::max_pool("p", Window{3, 3, 2, 2, 0, 0});
  EXPECT_EQ(infer_output_shape(pool, {Shape{96, 55, 55}}), (Shape{96, 27, 27}));
}

TEST(ShapeInference, GlobalAvgPool) {
  const LayerSpec gap = LayerSpec::global_avg_pool("g");
  EXPECT_EQ(infer_output_shape(gap, {Shape{512, 7, 7}}), (Shape{512, 1, 1}));
}

TEST(ShapeInference, FullyConnectedFlattens) {
  const LayerSpec fc = LayerSpec::fully_connected("f", 4096);
  EXPECT_EQ(infer_output_shape(fc, {Shape{256, 6, 6}}), (Shape{4096, 1, 1}));
}

TEST(ShapeInference, ConcatSumsChannels) {
  const LayerSpec cat = LayerSpec::concat("c");
  EXPECT_EQ(infer_output_shape(cat, {Shape{96, 14, 14}, Shape{64, 14, 14}, Shape{32, 14, 14}}),
            (Shape{192, 14, 14}));
}

TEST(ShapeInference, ConcatRejectsSpatialMismatch) {
  const LayerSpec cat = LayerSpec::concat("c");
  EXPECT_THROW(infer_output_shape(cat, {Shape{3, 4, 4}, Shape{3, 5, 4}}),
               std::invalid_argument);
}

TEST(ShapeInference, AddRequiresEqualShapes) {
  const LayerSpec add = LayerSpec::add("a");
  EXPECT_EQ(infer_output_shape(add, {Shape{8, 4, 4}, Shape{8, 4, 4}}), (Shape{8, 4, 4}));
  EXPECT_THROW(infer_output_shape(add, {Shape{8, 4, 4}, Shape{4, 4, 4}}),
               std::invalid_argument);
}

TEST(ShapeInference, WindowLargerThanInputThrows) {
  const LayerSpec pool = LayerSpec::max_pool("p", Window{5, 5, 1, 1, 0, 0});
  EXPECT_THROW(infer_output_shape(pool, {Shape{3, 4, 4}}), std::invalid_argument);
}

TEST(ShapeInference, WrongArityThrows) {
  const LayerSpec relu = LayerSpec::relu("r");
  EXPECT_THROW(infer_output_shape(relu, {Shape{1, 2, 2}, Shape{1, 2, 2}}),
               std::invalid_argument);
  EXPECT_THROW(infer_output_shape(LayerSpec::concat("c"), {Shape{1, 2, 2}}),
               std::invalid_argument);
}

TEST(LayerCosting, ConvFlopsAndParams) {
  // conv: 2*MACs + bias-add per output element.
  const LayerSpec conv = LayerSpec::conv("c", 96, Window{11, 11, 4, 4, 2, 2});
  const Shape in{3, 224, 224};
  const Shape out = infer_output_shape(conv, {in});
  const std::int64_t taps = 11 * 11 * 3;
  EXPECT_EQ(layer_flops(conv, {in}, out), out.elements() * (2 * taps + 1));
  EXPECT_EQ(layer_params(conv, {in}), (taps + 1) * 96);  // 34,944 in AlexNet
  EXPECT_EQ(layer_params(conv, {in}), 34944);
}

TEST(LayerCosting, FcParamsMatchAlexNetFc1) {
  const LayerSpec fc = LayerSpec::fully_connected("f", 4096);
  EXPECT_EQ(layer_params(fc, {Shape{256, 6, 6}}), 37752832);
}

TEST(LayerCosting, ElementwiseCosts) {
  const Shape s{16, 8, 8};
  EXPECT_EQ(layer_flops(LayerSpec::relu("r"), {s}, s), s.elements());
  EXPECT_EQ(layer_flops(LayerSpec::batch_norm("b"), {s}, s), 2 * s.elements());
  EXPECT_EQ(layer_flops(LayerSpec::add("a"), {s, s}, s), s.elements());
  EXPECT_EQ(layer_flops(LayerSpec::concat("c"), {s, s}, Shape{32, 8, 8}), 0);
  EXPECT_EQ(layer_params(LayerSpec::batch_norm("b"), {s}), 32);
}

TEST(LayerCosting, ShapeBytes) {
  EXPECT_EQ((Shape{3, 224, 224}).bytes(), 602112);  // the 4.82 Mb raw frame of Fig. 13
}

TEST(Tileability, OnlySpatialKindsAreTileable) {
  EXPECT_TRUE(is_vsm_tileable(LayerKind::kConv));
  EXPECT_TRUE(is_vsm_tileable(LayerKind::kMaxPool));
  EXPECT_TRUE(is_vsm_tileable(LayerKind::kAvgPool));
  EXPECT_TRUE(is_vsm_tileable(LayerKind::kReLU));
  EXPECT_TRUE(is_vsm_tileable(LayerKind::kBatchNorm));
  EXPECT_FALSE(is_vsm_tileable(LayerKind::kFullyConnected));
  EXPECT_FALSE(is_vsm_tileable(LayerKind::kConcat));
  EXPECT_FALSE(is_vsm_tileable(LayerKind::kAdd));
  EXPECT_FALSE(is_vsm_tileable(LayerKind::kGlobalAvgPool));
  EXPECT_FALSE(is_vsm_tileable(LayerKind::kSoftmax));
}

}  // namespace
}  // namespace d3::dnn
