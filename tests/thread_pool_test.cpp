// Unit tests of the runtime worker pool: full coverage of every index, safety
// under concurrent parallel_for callers (the batch scheduler's sharing
// pattern), no deadlock on a single-thread pool, and exception propagation.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace d3::runtime {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneIndexDegenerateCases) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run for n=0"; });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadPoolDoesNotDeadlock) {
  // The caller helps drain the queue, so even a 1-thread pool completes a wide
  // parallel_for.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, AtLeastOneWorkerEvenWhenZeroRequested) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  // Several threads issue parallel_for on the same pool at once — the batch
  // scheduler's usage. Each call must see exactly its own indices completed.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 128;
  std::vector<std::vector<int>> sums(kCallers, std::vector<int>(kN, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(kN, [&, c](std::size_t i) { sums[c][i] += static_cast<int>(i); });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(sums[c][i], static_cast<int>(i));
}

TEST(ThreadPool, BodyExceptionIsRethrownOnCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("tile failed");
                                 }),
               std::runtime_error);
  // The pool survives a failed call.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, SubmitDrainsBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&] { ++count; });
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace d3::runtime
