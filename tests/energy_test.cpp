#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "sim/energy.h"
#include "sim/experiment.h"

namespace d3::sim {
namespace {

PipelinePlan device_only_plan(double seconds) {
  PipelinePlan p;
  p.device_seconds = seconds;
  p.condition = net::wifi();
  return p;
}

TEST(Energy, DeviceOnlyIsPureComputeDraw) {
  const auto power = raspberry_pi_4b_power();
  const FrameEnergy e = device_energy_per_frame(device_only_plan(0.5), power);
  EXPECT_DOUBLE_EQ(e.compute_joules, 0.5 * power.active_watts);
  EXPECT_DOUBLE_EQ(e.radio_joules, 0.0);
  EXPECT_DOUBLE_EQ(e.idle_joules, 0.0);
}

TEST(Energy, RadioCostScalesWithTransmittedBytes) {
  PipelinePlan p = device_only_plan(0.01);
  p.edge_used = true;
  p.edge_seconds = 0.1;
  p.de_bytes = 1'000'000;
  const auto power = raspberry_pi_4b_power();
  const FrameEnergy e = device_energy_per_frame(p, power);
  EXPECT_DOUBLE_EQ(e.radio_joules, 1e6 * power.tx_nj_per_byte * 1e-9);
  // While the edge works, the device idles.
  EXPECT_GT(e.idle_joules, 0.0);
}

TEST(Energy, OffloadingSavesDeviceEnergyForHeavyModels) {
  // The Neurosurgeon argument: shipping VGG-16 off the RPi costs far less
  // battery than computing it locally.
  ExperimentConfig config;
  config.stream.duration_seconds = 5;
  const dnn::Network net = dnn::zoo::vgg16();
  const auto device = run_method(net, Method::kDeviceOnly, config);
  const auto hpa = run_method(net, Method::kHpa, config);
  const auto power = raspberry_pi_4b_power();
  const double device_j = device_energy_per_frame(device.pipeline, power).total_joules();
  const double hpa_j = device_energy_per_frame(hpa.pipeline, power).total_joules();
  EXPECT_LT(hpa_j, device_j / 5.0);
}

TEST(Energy, IdleNeverNegative) {
  // Busy time can exceed the closed-form frame latency only through rounding;
  // idle is clamped at zero.
  PipelinePlan p = device_only_plan(1.0);
  p.dc_bytes = 1;  // negligible transfer
  p.cloud_used = true;
  const FrameEnergy e = device_energy_per_frame(p, jetson_nano_2gb_power());
  EXPECT_GE(e.idle_joules, 0.0);
}

TEST(Energy, PresetsAreSane) {
  const auto rpi = raspberry_pi_4b_power();
  const auto jetson = jetson_nano_2gb_power();
  EXPECT_GT(rpi.active_watts, rpi.idle_watts);
  EXPECT_GT(jetson.active_watts, jetson.idle_watts);
  EXPECT_GT(rpi.tx_nj_per_byte, 0.0);
}

}  // namespace
}  // namespace d3::sim
