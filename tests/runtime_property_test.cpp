// Property sweep over the distributed runtime: randomised networks, randomised
// feasible plans, randomised VSM grids — the distributed output must equal the
// single-node reference bitwise in every case, and the transcript's boundary
// bytes must match the analytical accounting. Plus failure-injection scenarios
// for the adaptive path (link outage -> repartition -> recovery).
#include <filesystem>
#include <memory>
#include <numeric>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/hpa.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "rpc/fault_injection.h"
#include "runtime/engine.h"
#include "runtime/request_journal.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

// Random small CNN: conv/relu/pool chain with an optional two-branch fork.
dnn::Network random_network(util::Rng& rng) {
  const int size = static_cast<int>(rng.uniform_int(12, 24));
  dnn::Network net("rand", dnn::Shape{3, size, size});
  dnn::LayerId x = net.conv("c0", dnn::kNetworkInput, 4, 3, 1, 1);
  const int body = static_cast<int>(rng.uniform_int(1, 3));
  for (int j = 0; j < body; ++j) {
    x = net.relu("r" + std::to_string(j), x);
    x = net.conv("c" + std::to_string(j + 1), x, 4, 3, 1, 1);
  }
  if (rng.chance(0.5)) {
    const dnn::LayerId a = net.conv("fork_a", x, 4, 1);
    const dnn::LayerId b = net.conv("fork_b", x, 4, 3, 1, 1);
    x = net.concat("cat", {a, b});
  }
  x = net.global_avg_pool("gap", x);
  x = net.fully_connected("fc", x, 8);
  net.softmax("sm", x);
  return net;
}

// Random Prop.-1-feasible assignment: walk the layers in order, never moving
// device-ward of the most device-ward input.
core::Assignment random_feasible_plan(const dnn::Network& net, util::Rng& rng) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kDevice);
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    core::Tier bound = core::Tier::kCloud;
    for (const dnn::LayerId in : net.layer(id).inputs) {
      const core::Tier t = in == dnn::kNetworkInput
                               ? core::Tier::kDevice
                               : a.tier[dnn::Network::vertex_of(in)];
      if (core::before(t, bound)) bound = t;
    }
    const int lo = core::index(bound);
    a.tier[dnn::Network::vertex_of(id)] =
        static_cast<core::Tier>(rng.uniform_int(lo, 2));
  }
  return a;
}

class RuntimeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeFuzz, DistributedAlwaysMatchesReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam());
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  const core::Assignment plan = random_feasible_plan(net, rng);
  const InferenceResult result = OnlineEngine(net, weights, plan).infer(input);

  ASSERT_EQ(result.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(result.output[i], reference[i]);

  // Boundary bytes match the analytical accounting for the same plan.
  const auto problem =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, plan);
  EXPECT_EQ(result.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(result.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(result.device_cloud_bytes, traffic.device_cloud_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzz, ::testing::Range(1, 21));

class RuntimeVsmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeVsmFuzz, TiledEdgeStackAlwaysLossless) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7877);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam() + 100);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  // Everything on the edge except the tail on the cloud; tile the heaviest run.
  core::Assignment plan;
  plan.tier.assign(net.num_layers() + 1, core::Tier::kEdge);
  plan.tier[0] = core::Tier::kDevice;
  plan.tier.back() = core::Tier::kCloud;

  std::vector<dnn::LayerId> edge_layers;
  for (dnn::LayerId id = 0; id + 1 < net.num_layers(); ++id) edge_layers.push_back(id);
  const auto run = core::longest_tileable_run(net, edge_layers);
  if (run.empty()) GTEST_SKIP() << "no tileable run";
  const dnn::Shape out = net.layer(run.back()).output_shape;
  const int rows = static_cast<int>(rng.uniform_int(1, std::min(3, out.h)));
  const int cols = static_cast<int>(rng.uniform_int(1, std::min(3, out.w)));
  if (rows * cols < 2) GTEST_SKIP() << "degenerate grid";
  const auto vsm = core::make_fused_tile_plan(net, run, rows, cols);

  const InferenceResult result = OnlineEngine(net, weights, plan, vsm).infer(input);
  ASSERT_EQ(result.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(result.output[i], reference[i]);
  EXPECT_GT(result.vsm_scatter_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeVsmFuzz, ::testing::Range(1, 16));

// The threaded engine under the same randomised sweep: for every random
// network and random Prop.-1-feasible plan, the concurrent engine's transcript
// byte counts must equal core::boundary_traffic on every tier boundary, its
// output must equal the reference bitwise, and its transcript must be
// message-for-message identical to the sequential engine's (seq, endpoints,
// payload, bytes) — thread interleaving must be unobservable.
class ThreadedRuntimeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedRuntimeFuzz, TranscriptBytesMatchBoundaryTrafficOnEveryBoundary) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 9257);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam() + 500);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  const core::Assignment plan = random_feasible_plan(net, rng);
  const OnlineEngine sequential(net, weights, plan);
  const OnlineEngine threaded(net, weights, plan, std::nullopt,
                              OnlineEngine::Options{.vsm_workers = 3});
  const InferenceResult result = threaded.infer(input);
  const InferenceResult expected = sequential.infer(input);

  ASSERT_EQ(result.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(result.output[i], reference[i]);

  const auto problem =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, plan);
  EXPECT_EQ(result.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(result.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(result.device_cloud_bytes, traffic.device_cloud_bytes);

  // Summing the transcript itself per boundary must agree too (the accounting
  // fields are not allowed to drift from the recorded messages).
  std::int64_t de = 0, ec = 0, dc = 0;
  for (std::size_t i = 0; i < result.messages.size(); ++i) {
    const MessageRecord& m = result.messages[i];
    EXPECT_EQ(m.seq, i);
    const int lo = std::min(core::index(m.from_tier), core::index(m.to_tier));
    const int hi = std::max(core::index(m.from_tier), core::index(m.to_tier));
    if (lo == 0 && hi == 1) de += m.bytes;
    if (lo == 1 && hi == 2) ec += m.bytes;
    if (lo == 0 && hi == 2) dc += m.bytes;
  }
  EXPECT_EQ(de, traffic.device_edge_bytes);
  EXPECT_EQ(ec, traffic.edge_cloud_bytes);
  EXPECT_EQ(dc, traffic.device_cloud_bytes);

  ASSERT_EQ(result.messages.size(), expected.messages.size());
  for (std::size_t i = 0; i < result.messages.size(); ++i) {
    EXPECT_EQ(result.messages[i].from_node, expected.messages[i].from_node);
    EXPECT_EQ(result.messages[i].to_node, expected.messages[i].to_node);
    EXPECT_EQ(result.messages[i].payload, expected.messages[i].payload);
    EXPECT_EQ(result.messages[i].bytes, expected.messages[i].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedRuntimeFuzz, ::testing::Range(1, 21));

class ThreadedVsmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedVsmFuzz, ParallelTilesKeepTrafficAndLosslessness) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 4679);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam() + 900);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);

  core::Assignment plan;
  plan.tier.assign(net.num_layers() + 1, core::Tier::kEdge);
  plan.tier[0] = core::Tier::kDevice;
  plan.tier.back() = core::Tier::kCloud;

  std::vector<dnn::LayerId> edge_layers;
  for (dnn::LayerId id = 0; id + 1 < net.num_layers(); ++id) edge_layers.push_back(id);
  const auto run = core::longest_tileable_run(net, edge_layers);
  if (run.empty()) GTEST_SKIP() << "no tileable run";
  const dnn::Shape out = net.layer(run.back()).output_shape;
  const int rows = static_cast<int>(rng.uniform_int(1, std::min(3, out.h)));
  const int cols = static_cast<int>(rng.uniform_int(1, std::min(3, out.w)));
  if (rows * cols < 2) GTEST_SKIP() << "degenerate grid";
  const auto vsm = core::make_fused_tile_plan(net, run, rows, cols);

  const InferenceResult tiled =
      OnlineEngine(net, weights, plan, vsm, OnlineEngine::Options{.vsm_workers = 4})
          .infer(input);
  const InferenceResult plain = OnlineEngine(net, weights, plan).infer(input);

  ASSERT_EQ(tiled.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(tiled.output[i], reference[i]);

  // VSM is intra-edge: tier-boundary traffic is invariant under tiling and
  // threading, and still matches the analytical accounting.
  const auto problem =
      core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, plan);
  EXPECT_EQ(tiled.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(tiled.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(tiled.device_cloud_bytes, traffic.device_cloud_bytes);
  EXPECT_EQ(tiled.device_edge_bytes, plain.device_edge_bytes);
  EXPECT_EQ(tiled.edge_cloud_bytes, plain.edge_cloud_bytes);
  EXPECT_GT(tiled.vsm_scatter_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedVsmFuzz, ::testing::Range(1, 16));

// Randomised recovery property: random networks, random Prop.-1-feasible
// plans, and a randomly scripted state-loss fault (FaultInjectionTransport's
// kFail over the serializing-loopback wire path). Whatever the fault hits, the
// recovered output must stay bitwise-equal to the reference, the transcript
// must be message-for-message identical to a fault-free run, and the recovery
// cost must obey its bounds: at most one tier replayed per injected fault, and
// strictly fewer bytes re-moved than an end-to-end replay would ship.
class RecoveryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryFuzz, ScriptedStateLossKeepsLosslessnessAndBoundsRecoveryCost) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 11939);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam() + 700);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);
  const core::Assignment plan = random_feasible_plan(net, rng);

  using rpc::FaultInjectionTransport;
  auto faults = std::make_shared<FaultInjectionTransport>(
      std::make_shared<rpc::SerializingLoopback>());
  const FaultInjectionTransport::Op ops[] = {
      FaultInjectionTransport::Op::kPut, FaultInjectionTransport::Op::kRunLayer,
      FaultInjectionTransport::Op::kGet, FaultInjectionTransport::Op::kAny};
  const char* nodes[] = {"device0", "edge0", "cloud0", ""};
  FaultInjectionTransport::Fault fault;
  fault.op = ops[rng.uniform_int(0, 3)];
  fault.node = nodes[rng.uniform_int(0, 3)];
  fault.nth = rng.uniform_int(1, 8);
  fault.action = FaultInjectionTransport::Action::kFail;
  faults->schedule(fault);

  OnlineEngine::Options options;
  options.transport = faults;
  const OnlineEngine engine(net, weights, plan, std::nullopt, options);
  const InferenceResult result = engine.infer(input);

  ASSERT_EQ(result.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(result.output[i], reference[i]);

  // Transcript identical to a fault-free engine on the same plan: state-loss
  // recovery must be unobservable in the record.
  const InferenceResult expected = OnlineEngine(net, weights, plan).infer(input);
  ASSERT_EQ(result.messages.size(), expected.messages.size());
  for (std::size_t i = 0; i < result.messages.size(); ++i) {
    EXPECT_EQ(result.messages[i].seq, expected.messages[i].seq);
    EXPECT_EQ(result.messages[i].from_node, expected.messages[i].from_node);
    EXPECT_EQ(result.messages[i].to_node, expected.messages[i].to_node);
    EXPECT_EQ(result.messages[i].payload, expected.messages[i].payload);
    EXPECT_EQ(result.messages[i].bytes, expected.messages[i].bytes);
  }
  EXPECT_EQ(result.layers_executed, expected.layers_executed);

  // Recovery-cost bounds. The fault may or may not fire (nth can exceed the
  // op count for this plan); when it does, each injected fault buys at most
  // one tier replay, and the bytes recovery re-moves stay strictly below the
  // full-replay baseline (raw input + every boundary message re-shipped).
  const OnlineEngine::Stats stats = engine.stats();
  const FaultInjectionTransport::Stats fit = faults->stats();
  EXPECT_LE(stats.tiers_replayed, fit.faults_injected);
  EXPECT_LE(stats.recoveries, fit.faults_injected);
  std::uint64_t full_replay_bytes = static_cast<std::uint64_t>(net.input_shape().bytes());
  for (const MessageRecord& m : expected.messages)
    full_replay_bytes += static_cast<std::uint64_t>(m.bytes);
  EXPECT_LT(stats.recovery_bytes, full_replay_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz, ::testing::Range(1, 25));

// --- Randomized failover fuzz (ISSUE 9) --------------------------------------

// The in-process stand-in for a SIGKILLed coordinator: the kill handler
// throws this through the engine, the continuation is abandon()ed (no kEnd,
// so worker slots survive exactly as they would a real coordinator death),
// and a standby engine over the same worker fabric must converge from the
// journal alone.
struct CoordinatorKilled {};

class FailoverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FailoverFuzz, StandbyPromotionConvergesFromRandomKillPoints) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17477);
  const dnn::Network net = random_network(rng);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, GetParam() + 900);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(input);
  const core::Assignment plan = random_feasible_plan(net, rng);
  const std::string journal_path =
      (std::filesystem::path(::testing::TempDir()) /
       ("failover_fuzz_" + std::to_string(GetParam()) + ".d3j"))
          .string();
  std::filesystem::remove(journal_path);

  // Random nets can't ride the socket transport (kConfig resolves models by
  // zoo name), so the worker fabric is a SerializingLoopback shared by both
  // coordinator incarnations — its per-node state survives the "death" the
  // same way listen-mode worker processes survive a real SIGKILL.
  using rpc::FaultInjectionTransport;
  auto workers = std::make_shared<rpc::SerializingLoopback>();
  auto faults = std::make_shared<FaultInjectionTransport>(workers);
  faults->set_kill_handler([](const std::string&) { throw CoordinatorKilled{}; });
  FaultInjectionTransport::Fault fault;
  fault.op = FaultInjectionTransport::Op::kAny;
  fault.node = "";
  fault.nth = rng.uniform_int(1, 30);  // may exceed the op count: then no kill
  fault.action = FaultInjectionTransport::Action::kKill;
  faults->schedule(fault);

  OnlineEngine::Options active_options;
  active_options.transport = faults;
  active_options.journal = std::make_shared<RequestJournal>(journal_path);
  const OnlineEngine active(net, weights, plan, std::nullopt, active_options);

  std::optional<OnlineEngine::Continuation> c;
  bool killed = false;
  try {
    c.emplace(active.start(input));
    while (!active.step(*c)) {
    }
  } catch (const CoordinatorKilled&) {
    killed = true;
  }
  if (!killed) {
    // The random kill point fell past this plan's op count: a plain lossless
    // run, and nothing for any standby to do.
    const InferenceResult done = active.take(std::move(*c));
    ASSERT_EQ(done.output.shape(), reference.shape());
    for (std::size_t i = 0; i < reference.size(); ++i)
      ASSERT_EQ(done.output[i], reference[i]);
    EXPECT_TRUE(RequestJournal::load(journal_path).empty());
    return;
  }
  if (c.has_value()) active.abandon(std::move(*c));

  // The standby: same surviving workers, the dead incarnation's journal.
  OnlineEngine::Options standby_options;
  standby_options.transport = workers;
  standby_options.journal = std::make_shared<RequestJournal>(journal_path);
  const OnlineEngine standby(net, weights, plan, std::nullopt, standby_options);

  const std::vector<Snapshot> live = RequestJournal::load(journal_path);
  ASSERT_LE(live.size(), 1u);
  InferenceResult result;
  if (live.empty()) {
    // Killed before the first durable stage: promotion has nothing to resume
    // and the request is simply re-run from its (re-submitted) input.
    result = standby.infer(input);
  } else {
    OnlineEngine::Continuation rc = standby.restore(live[0]);
    while (!standby.step(rc)) {
    }
    result = standby.take(std::move(rc));
  }

  // Convergence is lossless: bitwise output, transcript identical to an
  // engine that never saw the failover.
  ASSERT_EQ(result.output.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(result.output[i], reference[i]);
  const InferenceResult expected = OnlineEngine(net, weights, plan).infer(input);
  ASSERT_EQ(result.messages.size(), expected.messages.size());
  for (std::size_t i = 0; i < result.messages.size(); ++i) {
    EXPECT_EQ(result.messages[i].seq, expected.messages[i].seq);
    EXPECT_EQ(result.messages[i].from_node, expected.messages[i].from_node);
    EXPECT_EQ(result.messages[i].to_node, expected.messages[i].to_node);
    EXPECT_EQ(result.messages[i].payload, expected.messages[i].payload);
    EXPECT_EQ(result.messages[i].bytes, expected.messages[i].bytes);
  }
  EXPECT_EQ(result.layers_executed, expected.layers_executed);
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());

  // Recovery-cost pin: with the already-delivered boundary tensors still
  // live on the workers (the in-process analogue of buddy replicas), the
  // promotion moves strictly fewer bytes than a full replay would — raw
  // input plus every boundary message re-shipped.
  std::uint64_t full_replay_bytes = static_cast<std::uint64_t>(net.input_shape().bytes());
  for (const MessageRecord& m : expected.messages)
    full_replay_bytes += static_cast<std::uint64_t>(m.bytes);
  EXPECT_LT(standby.stats().recovery_bytes, full_replay_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverFuzz, ::testing::Range(1, 21));

TEST(FailureInjection, BackhaulOutageAndRecovery) {
  // The backbone collapses to near-zero, then recovers: the adaptive
  // repartitioner must evacuate the cloud during the outage and use it again
  // afterwards, staying feasible throughout.
  const dnn::Network net = dnn::zoo::vgg16();
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  core::AdaptiveRepartitioner rep(
      core::make_problem(net, estimators, net::optical()));

  const auto cloud_load = [&] {
    return core::tier_load(rep.problem(), rep.assignment()).at(core::Tier::kCloud);
  };
  const double healthy_cloud = cloud_load();
  EXPECT_GT(healthy_cloud, 0.0);  // optical backhaul: the fc tail runs in the cloud

  net::NetworkCondition outage = net::optical();
  outage.edge_cloud_mbps = 0.05;
  outage.device_cloud_mbps = 0.05;
  rep.update_condition(outage);
  EXPECT_TRUE(core::respects_precedence(rep.problem(), rep.assignment()));
  EXPECT_LT(cloud_load(), 1e-6);  // nothing heavy left behind the dead link

  rep.update_condition(net::optical());
  EXPECT_TRUE(core::respects_precedence(rep.problem(), rep.assignment()));
  EXPECT_NEAR(cloud_load(), healthy_cloud, 1e-9);  // full recovery
  EXPECT_EQ(rep.full_repartitions(), 2u);
}

TEST(FailureInjection, EdgeDegradationShiftsWorkOffTheEdge) {
  // An overloaded edge node (e.g. a co-tenant burst) slows every edge layer
  // 50x; vertex-by-vertex updates must drain the edge without ever producing
  // an infeasible plan.
  const dnn::Network net = dnn::zoo::resnet18();
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  core::AdaptiveRepartitioner rep(core::make_problem(net, estimators, net::wifi()));
  const double before = core::tier_load(rep.problem(), rep.assignment()).at(core::Tier::kEdge);
  ASSERT_GT(before, 0.0);

  for (graph::VertexId v = 1; v < rep.problem().size(); ++v) {
    core::TierTimes t = rep.problem().vertex_time[v];
    t.at(core::Tier::kEdge) *= 50.0;
    rep.update_vertex_time(v, t);
    ASSERT_TRUE(core::respects_precedence(rep.problem(), rep.assignment()));
  }
  const double after = core::tier_load(rep.problem(), rep.assignment()).at(core::Tier::kEdge);
  EXPECT_LT(after, before * 50.0 * 0.2);  // most edge work moved away
}

}  // namespace
}  // namespace d3::runtime
