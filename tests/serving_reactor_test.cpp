// Reactor-mode equivalence matrix (ISSUE 6): the same plans pushed through
// the blocking BatchScheduler and the event-driven ServingReactor must
// produce bitwise-identical outputs and byte-identical transcripts — on the
// zero-copy in-process transport, over the serializing loopback wire path,
// with a VSM tile stack, and under mid-request fault injection. Plus the
// reactor's own serving policies: priority ordering, drop-oldest admission,
// predictive shedding, and deadline expiry.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/fault_injection.h"
#include "rpc/transport.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "runtime/serving_reactor.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

struct Fixture {
  dnn::Network net;
  exec::WeightStore weights;
  dnn::Tensor input;
  dnn::Tensor reference;

  explicit Fixture(dnn::Network n, std::uint64_t seed = 21)
      : net(std::move(n)), weights(exec::WeightStore::random_for(net, seed)) {
    util::Rng rng(seed + 1);
    input = exec::random_tensor(net.input_shape(), rng);
    reference = exec::Executor(net, weights).run(input);
  }
};

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

// Runs `count` requests through both front ends of `engine` and checks every
// result bitwise and transcript-byte identical to `reference`.
void expect_front_ends_equivalent(const OnlineEngine& engine, const dnn::Tensor& input,
                                  const InferenceResult& reference, std::size_t count = 4) {
  {
    BatchScheduler scheduler(engine);
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < count; ++i) ids.push_back(scheduler.submit(input));
    for (const std::size_t id : ids) {
      const InferenceResult result = scheduler.wait(id);
      expect_identical(result.output, reference.output);
      expect_same_transcript(result, reference);
    }
  }
  {
    ServingReactor reactor(engine);
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < count; ++i) ids.push_back(reactor.submit(input));
    for (const std::size_t id : ids) {
      const InferenceResult result = reactor.wait(id);
      expect_identical(result.output, reference.output);
      expect_same_transcript(result, reference);
    }
    EXPECT_EQ(reactor.stats().completed, count);
  }
}

// --- Equivalence matrix -----------------------------------------------------

TEST(ServingReactorEquivalence, MatchesSchedulerAndInferAcrossTransports) {
  for (const char* which : {"chain", "branch"}) {
    Fixture f(std::string(which) == "chain" ? dnn::zoo::tiny_chain()
                                            : dnn::zoo::tiny_branch());
    const core::Assignment plan = three_tier_plan(f.net);

    const OnlineEngine in_process(f.net, f.weights, plan);
    const InferenceResult reference = in_process.infer(f.input);
    expect_identical(reference.output, f.reference);
    expect_front_ends_equivalent(in_process, f.input, reference);

    OnlineEngine::Options options;
    options.transport = std::make_shared<rpc::SerializingLoopback>();
    const OnlineEngine wired(f.net, f.weights, plan, std::nullopt, options);
    // The transcript is a pure function of the plan: the wire path must match
    // the in-process reference byte for byte, through either front end.
    expect_front_ends_equivalent(wired, f.input, reference);
  }
}

TEST(ServingReactorEquivalence, MatchesSchedulerWithVsmStackOverLoopback) {
  Fixture f(dnn::zoo::tiny_chain());
  core::Assignment a;
  a.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  for (const dnn::LayerId id : stack) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(f.net, stack, 2, 2);

  const OnlineEngine plain(f.net, f.weights, a, vsm);
  const InferenceResult reference = plain.infer(f.input);
  expect_identical(reference.output, f.reference);

  OnlineEngine::Options options;
  options.transport = std::make_shared<rpc::SerializingLoopback>();
  options.vsm_workers = 3;
  const OnlineEngine wired(f.net, f.weights, a, vsm, options);
  expect_front_ends_equivalent(wired, f.input, reference);
}

// Mid-request state loss at assorted protocol points: the engine's
// tier-granular recovery absorbs each fault inside a reactor step, so outputs
// stay bitwise-identical and transcripts byte-identical to a fault-free run.
TEST(ServingReactorEquivalence, MatchesUnderMidRequestStateLoss) {
  using Op = rpc::FaultInjectionTransport::Op;
  using Action = rpc::FaultInjectionTransport::Action;
  struct Point {
    Op op;
    const char* node;
    std::uint64_t nth;
  };
  const Point points[] = {
      {Op::kPut, "edge0", 1},        // boundary tensor lost entering the edge
      {Op::kRunLayer, "edge0", 2},   // edge dies mid-tier
      {Op::kPut, "cloud0", 1},       // boundary tensor lost entering the cloud
      {Op::kRunLayer, "cloud0", 4},  // cloud dies on its final layer
  };

  Fixture f(dnn::zoo::tiny_branch());
  const core::Assignment plan = three_tier_plan(f.net);
  const InferenceResult reference = OnlineEngine(f.net, f.weights, plan).infer(f.input);

  for (const Point& point : points) {
    auto faults = std::make_shared<rpc::FaultInjectionTransport>(
        std::make_shared<rpc::SerializingLoopback>());
    faults->schedule({point.op, point.node, point.nth, Action::kFail, {}, ""});

    OnlineEngine::Options options;
    options.transport = faults;
    const OnlineEngine engine(f.net, f.weights, plan, std::nullopt, options);

    ServingReactor reactor(engine);
    const std::size_t id = reactor.submit(f.input);
    const InferenceResult result = reactor.wait(id);
    expect_identical(result.output, f.reference);
    expect_same_transcript(result, reference);
    EXPECT_EQ(faults->stats().synthetic_failures, 1u);
    EXPECT_GE(engine.stats().recoveries, 1u);
  }
}

// With the engine's own recovery disabled, a channel death surfaces from the
// step and the reactor's end-to-end replay produces the identical result.
TEST(ServingReactorEquivalence, EndToEndReplayAfterUnrecoverableDeath) {
  using Op = rpc::FaultInjectionTransport::Op;
  using Action = rpc::FaultInjectionTransport::Action;

  Fixture f(dnn::zoo::tiny_chain());
  const core::Assignment plan = three_tier_plan(f.net);
  const InferenceResult reference = OnlineEngine(f.net, f.weights, plan).infer(f.input);

  auto faults = std::make_shared<rpc::FaultInjectionTransport>(
      std::make_shared<rpc::SerializingLoopback>());
  faults->schedule({Op::kRunLayer, "edge0", 1, Action::kFail, {}, ""});

  OnlineEngine::Options options;
  options.transport = faults;
  options.tier_recovery = false;
  const OnlineEngine engine(f.net, f.weights, plan, std::nullopt, options);

  ServingReactor::Options serving;
  serving.max_replays = 1;
  ServingReactor reactor(engine, serving);
  const std::size_t id = reactor.submit(f.input);
  const InferenceResult result = reactor.wait(id);
  expect_identical(result.output, f.reference);
  expect_same_transcript(result, reference);
  EXPECT_EQ(reactor.stats().replayed, 1u);
}

// --- Serving policies -------------------------------------------------------

TEST(ServingReactorPolicy, HigherPriorityCompletesFirst) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));

  ServingReactor::Options options;
  options.start_paused = true;  // pile everything up so admission order is fixed
  ServingReactor reactor(engine, options);

  std::vector<std::size_t> low, high;
  for (int i = 0; i < 3; ++i) low.push_back(reactor.submit(f.input, {-1.0, 0}));
  for (int i = 0; i < 3; ++i) high.push_back(reactor.submit(f.input, {-1.0, 5}));
  reactor.resume();
  const std::vector<InferenceResult> results = reactor.drain();
  ASSERT_EQ(results.size(), 6u);
  for (const InferenceResult& r : results) expect_identical(r.output, f.reference);

  // Admission is FIFO (low ids first), but stepping drains the priority-5
  // bucket before the priority-0 one: every high-priority request finishes
  // before any low-priority one.
  const std::vector<std::size_t> order = reactor.completion_order();
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_GE(order[i], low.size()) << "low-priority id finished in the first half";
}

TEST(ServingReactorPolicy, DropOldestAdmissionIsDeterministicWhilePaused) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));

  ServingReactor::Options options;
  options.start_paused = true;  // nothing leaves the waiting queue
  options.admission_capacity = 1;
  ServingReactor reactor(engine, options);

  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(reactor.submit(f.input));
  reactor.resume();

  // Each submission evicted its predecessor from the depth-1 queue: ids 0-2
  // dropped, id 3 (the newest) survives — deterministically.
  for (std::size_t i = 0; i + 1 < ids.size(); ++i)
    EXPECT_THROW(reactor.wait(ids[i]), RequestDropped);
  expect_identical(reactor.wait(ids.back()).output, f.reference);

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.dropped, 3u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ServingReactorPolicy, PredictiveSheddingRefusesDoomedRequests) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));

  // A pipeline model whose single frame already takes 10 s: any request with
  // a sub-second deadline is doomed at submit() and must be refused before it
  // opens transport state.
  sim::PipelinePlan pipeline;
  pipeline.device_seconds = 10.0;

  ServingReactor::Options options;
  options.pipeline = pipeline;
  options.default_deadline_seconds = 0.5;
  ServingReactor reactor(engine, options);

  const std::size_t doomed = reactor.submit(f.input);
  EXPECT_THROW(reactor.wait(doomed), RequestShed);
  // A deadline-free request ignores the model and completes normally.
  const std::size_t free = reactor.submit(f.input, {0.0, 0});
  expect_identical(reactor.wait(free).output, f.reference);

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.steps, 4u);  // only the free request's four stages ran
}

TEST(ServingReactorPolicy, DeadlineExpiresWhileWaitingPaused) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));

  ServingReactor::Options options;
  options.start_paused = true;
  ServingReactor reactor(engine, options);

  const std::size_t id = reactor.submit(f.input, {0.02, 0});
  // The reactor expires waiting requests on its own wake-up at the earliest
  // deadline — no resume() needed for the expiry itself.
  EXPECT_THROW(reactor.wait(id), RequestShed);
  EXPECT_EQ(reactor.stats().expired, 1u);
  reactor.resume();
}

// --- Deterministic shutdown ---------------------------------------------------

TEST(ServingReactorShutdown, ShedsWaitingRequestsWithDistinctReasonExactlyOnce) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));

  ServingReactor::Options options;
  options.start_paused = true;  // all four requests sit in the waiting queue
  ServingReactor reactor(engine, options);

  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(reactor.submit(f.input));
  reactor.shutdown();

  // Each request observes the shutdown exactly once: the first wait() throws
  // RequestShed naming the distinct reason, a second wait() throws logic_error
  // — identical to the already-collected contract of a completed result.
  for (const std::size_t id : ids) {
    try {
      reactor.wait(id);
      FAIL() << "request " << id << " was not shed";
    } catch (const RequestShed& e) {
      EXPECT_NE(std::string(e.what()).find("reactor shutdown"), std::string::npos);
    }
    EXPECT_THROW(reactor.wait(id), std::logic_error);
  }

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.shutdown_shed, 4u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.expired, 0u);  // shutdown sheds are not deadline expiries
  EXPECT_THROW(reactor.submit(f.input), std::logic_error);
  reactor.shutdown();  // idempotent: every ticket is already finished
}

TEST(ServingReactorShutdown, InflightRequestsAreShedOrCompletedNeverLost) {
  Fixture f(dnn::zoo::tiny_chain());
  // A slow edge stage keeps the burst genuinely in flight when shutdown lands:
  // admitted continuations must be torn down on the reactor thread, not leak.
  OnlineEngine::Options engine_options;
  engine_options.emulated_tier_service_seconds = {0.0, 0.01, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt,
                            engine_options);

  ServingReactor reactor(engine);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(reactor.submit(f.input));
  reactor.shutdown();  // returns only once every ticket is finished

  std::size_t completed = 0;
  std::size_t shed = 0;
  for (const std::size_t id : ids) {
    try {
      expect_identical(reactor.wait(id).output, f.reference);
      ++completed;
    } catch (const RequestShed& e) {
      EXPECT_NE(std::string(e.what()).find("reactor shutdown"), std::string::npos);
      ++shed;
    }
  }
  EXPECT_EQ(completed + shed, ids.size());

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.shutdown_shed, shed);
  EXPECT_GE(stats.shutdown_shed, 1u);  // shutdown beat the 10 ms edge stages
}

TEST(ServingReactorPolicy, WaitIsExactlyOncePerId) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));
  ServingReactor reactor(engine);
  const std::size_t id = reactor.submit(f.input);
  expect_identical(reactor.wait(id).output, f.reference);
  EXPECT_THROW(reactor.wait(id), std::logic_error);
  EXPECT_THROW(reactor.wait(id + 1), std::out_of_range);
}

}  // namespace
}  // namespace d3::runtime
