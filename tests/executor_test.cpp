#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "exec/weights.h"
#include "util/rng.h"

namespace d3::exec {
namespace {

TEST(Weights, DeterministicInSeed) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore a = WeightStore::random_for(net, 7);
  const WeightStore b = WeightStore::random_for(net, 7);
  const WeightStore c = WeightStore::random_for(net, 8);
  EXPECT_EQ(a.layer(0).weights, b.layer(0).weights);
  EXPECT_NE(a.layer(0).weights, c.layer(0).weights);
}

TEST(Weights, SizesMatchSpecs) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore w = WeightStore::random_for(net, 1);
  // conv1: 8 filters x 3x3x3 taps.
  EXPECT_EQ(w.layer(0).weights.size(), 8u * 27u);
  EXPECT_EQ(w.layer(0).bias.size(), 8u);
  // relu has no parameters.
  EXPECT_TRUE(w.layer(1).weights.empty());
}

TEST(Executor, RunAllProducesDeclaredShapes) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const WeightStore w = WeightStore::random_for(net, 2);
  util::Rng rng(5);
  const dnn::Tensor input = random_tensor(net.input_shape(), rng);
  const auto outputs = Executor(net, w).run_all(input);
  ASSERT_EQ(outputs.size(), net.num_layers());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    EXPECT_EQ(outputs[id].shape(), net.layer(id).output_shape) << net.layer(id).spec.name;
}

TEST(Executor, SoftmaxOutputIsDistribution) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore w = WeightStore::random_for(net, 3);
  util::Rng rng(6);
  const dnn::Tensor out = Executor(net, w).run(random_tensor(net.input_shape(), rng));
  float sum = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    sum += out[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Executor, DeterministicAcrossRuns) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const WeightStore w = WeightStore::random_for(net, 4);
  util::Rng rng(7);
  const dnn::Tensor input = random_tensor(net.input_shape(), rng);
  const Executor exec(net, w);
  const dnn::Tensor a = exec.run(input);
  const dnn::Tensor b = exec.run(input);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Executor, InputShapeChecked) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore w = WeightStore::random_for(net, 5);
  EXPECT_THROW(Executor(net, w).run(dnn::Tensor(dnn::Shape{1, 8, 8})), std::invalid_argument);
}

TEST(Executor, SegmentedChainEqualsWhole) {
  // Split tiny_chain at every boundary: prefix then suffix must reproduce the
  // full result exactly (what the horizontal partition executes across tiers).
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore w = WeightStore::random_for(net, 6);
  util::Rng rng(8);
  const dnn::Tensor input = random_tensor(net.input_shape(), rng);
  const Executor exec(net, w);
  const dnn::Tensor whole = exec.run(input);

  for (dnn::LayerId split = 0; split + 1 < net.num_layers(); ++split) {
    const dnn::Tensor mid = exec.run_segment(input, 0, split);
    const dnn::Tensor out = exec.run_segment(mid, split + 1, net.num_layers() - 1);
    ASSERT_EQ(out.size(), whole.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], whole[i]) << "split after layer " << split;
  }
}

TEST(Executor, SegmentRangeValidation) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const WeightStore w = WeightStore::random_for(net, 9);
  util::Rng rng(9);
  const dnn::Tensor input = random_tensor(net.input_shape(), rng);
  const Executor exec(net, w);
  EXPECT_THROW(exec.run_segment(input, 3, 2), std::invalid_argument);
  EXPECT_THROW(exec.run_segment(input, 0, 99), std::invalid_argument);
}

TEST(Executor, SegmentRejectsCrossBoundaryReads) {
  // tiny_branch's concat reads two earlier layers; a segment starting between
  // them cannot be self-contained.
  const dnn::Network net = dnn::zoo::tiny_branch();
  const WeightStore w = WeightStore::random_for(net, 10);
  util::Rng rng(10);
  // Layer ids: stem(0) stem_relu(1) branch_a(2) branch_b1(3) branch_b2(4) concat(5)...
  const dnn::Tensor mid = Executor(net, w).run_segment(random_tensor(net.input_shape(), rng), 0, 2);
  EXPECT_THROW(Executor(net, w).run_segment(mid, 3, 5), std::invalid_argument);
}

TEST(Executor, GridModuleRuns) {
  // The Fig. 3 grid module is executable end to end.
  const dnn::Network net = dnn::zoo::grid_module(4, 4);
  const WeightStore w = WeightStore::random_for(net, 11);
  util::Rng rng(11);
  const dnn::Tensor out = Executor(net, w).run(random_tensor(net.input_shape(), rng));
  EXPECT_EQ(out.shape(), (dnn::Shape{1536, 4, 4}));
}

}  // namespace
}  // namespace d3::exec
