// Survivable-coordinator acceptance (ISSUE 7). The coordinator process is
// fork()ed, SIGKILLed mid-request at a scripted protocol point (fault
// injection), and a standby coordinator in the parent process restores the
// request from the write-ahead journal against the *same* surviving listen-mode
// workers — the resumed output must be bitwise-identical to exec::Executor and
// the transcript byte-identical to a no-failure run. Buddy-replicated
// boundaries must make that failover strictly cheaper (recovery_bytes) than
// the re-seed path. Plus the proactive-detection legs: the serving reactor's
// idle heartbeats declare a silently SIGKILLed worker dead with no request in
// flight, the missed-beat threshold catches a SIGSTOPped (wedged, not dead)
// worker, and a flapping tile worker is readmitted without double-attachment.
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/fault_injection.h"
#include "rpc/socket_transport.h"
#include "runtime/address_book.h"
#include "runtime/engine.h"
#include "runtime/failover.h"
#include "runtime/request_journal.h"
#include "runtime/serving_reactor.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "coordinator_failover_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

std::string temp_journal(const char* name) {
  const std::string path = (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove(path);
  return path;
}

// conv1+relu1 on the device, pool1+conv2 on the edge, the tail in the cloud:
// two boundaries, two run_layer calls per remote tier.
core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  return a;
}

// --- The acceptance scenario -------------------------------------------------

struct FailoverOutcome {
  InferenceResult result;
  std::uint64_t recovery_bytes = 0;
  rpc::SocketTransport::Stats standby;
};

// Forks a coordinator that SIGKILLs itself right before the second edge
// run_layer — the device->edge boundary has shipped (and replicated, with a
// buddy), but the snapshot on disk is the end-of-device-tier one, so the
// standby re-runs the whole edge tier including the boundary delivery. The
// standby in the parent process then restores from the journal and finishes
// the request against the same worker incarnations.
void run_failover(bool buddy, const char* journal_name, FailoverOutcome& out) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 111);
  util::Rng rng(112);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};
  const std::string journal_path = temp_journal(journal_name);

  // Workers listen and outlive any one coordinator: per-request slots (and the
  // buddy's replica store) must survive the SIGKILL below.
  const rpc::ListenWorkerProcess device(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess edge(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess cloud(D3_NODE_BINARY);

  const auto dial_all = [&](rpc::SocketTransport& transport) {
    transport.add_node("device0", device.dial());
    transport.add_node("edge0", edge.dial());
    transport.add_node("cloud0", cloud.dial());
    transport.configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
    if (buddy) transport.set_buddy("cloud0");
  };

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // The doomed primary. No gtest in here — every path ends in _exit, and a
    // nonzero code tells the parent the scripted SIGKILL never happened.
    try {
      auto socket = std::make_shared<rpc::SocketTransport>();
      dial_all(*socket);
      auto faults = std::make_shared<rpc::FaultInjectionTransport>(socket);
      faults->set_kill_handler([](const std::string&) { ::raise(SIGKILL); });
      faults->schedule({rpc::FaultInjectionTransport::Op::kRunLayer, "edge0", 2,
                        rpc::FaultInjectionTransport::Action::kKill, {}, ""});
      OnlineEngine::Options options;
      options.transport = faults;
      options.journal = std::make_shared<RequestJournal>(journal_path);
      const OnlineEngine primary(net, weights, assignment, std::nullopt, options);
      primary.infer(frame);
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(1);
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "primary exited with code "
                                   << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The standby: fresh channels to the same workers, the byte-identical config
  // bundle (idempotent on the workers — request slots and replicas survive it),
  // and the dead primary's journal.
  auto standby = std::make_shared<rpc::SocketTransport>();
  dial_all(*standby);

  const std::vector<Snapshot> live = RequestJournal::load(journal_path);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].next_stage, 1);  // device tier durable, edge tier interrupted

  OnlineEngine::Options options;
  options.transport = standby;
  options.journal = std::make_shared<RequestJournal>(journal_path);
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);

  OnlineEngine::Continuation c = engine.restore(live[0]);
  while (!engine.step(c)) {
  }
  out.result = engine.take(std::move(c));
  out.recovery_bytes = engine.stats().recovery_bytes;
  out.standby = standby->stats();

  // The lossless contract holds across the failover: output bitwise-equal to
  // the single-process executor, transcript byte-identical to a run that never
  // saw a failure.
  expect_identical(out.result.output, reference);
  const InferenceResult no_failure = OnlineEngine(net, weights, assignment).infer(frame);
  expect_same_transcript(out.result, no_failure);

  // take() journalled the finish: nothing is left for a second standby.
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());
}

TEST(CoordinatorFailover, StandbyResumesSigkilledRequestBitwiseIdentically) {
  // Without a buddy the standby re-materialises the unshipped boundary from
  // the device worker and re-ships it: the PR-5-style re-seed cost.
  FailoverOutcome reseed;
  run_failover(/*buddy=*/false, "failover_reseed.d3j", reseed);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_GT(reseed.recovery_bytes, 0u);
  EXPECT_EQ(reseed.standby.replica_restores, 0u);

  // With cloud0 as the buddy, the ship-time kPutReplica copy serves the
  // boundary peer-to-peer at failover: zero re-seed bytes move through the
  // standby.
  FailoverOutcome replicated;
  run_failover(/*buddy=*/true, "failover_buddy.d3j", replicated);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(replicated.recovery_bytes, 0u);
  EXPECT_GE(replicated.standby.replica_restores, 1u);
  EXPECT_GE(replicated.standby.peer_pushes, 1u);
  EXPECT_LT(replicated.recovery_bytes, reseed.recovery_bytes);
}

// --- Proactive failure detection ---------------------------------------------

TEST(CoordinatorFailover, ReactorHeartbeatDetectsSilentWorkerDeathWhileIdle) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 121);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
  auto transport = std::make_shared<rpc::SocketTransport>();
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
    transport->add_node(node, procs[node]->take_socket());
  }
  transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  transport->enable_heartbeats(
      {std::chrono::milliseconds(20), std::chrono::milliseconds(20), 3});

  OnlineEngine::Options options;
  options.transport = transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  ServingReactor reactor(engine);

  // Not a single request is submitted: the only thing that can notice the
  // SIGKILL is the reactor's idle branch driving heartbeat_poll(). A dead
  // socket fails its very first probe (EOF), well inside the liveness window.
  ::kill(procs["edge0"]->pid(), SIGKILL);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         reactor.stats().heartbeat_deaths == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EXPECT_GE(reactor.stats().heartbeat_deaths, 1u);
  EXPECT_GE(transport->stats().heartbeat_deaths, 1u);
  EXPECT_GT(transport->stats().pings, 0u);
  EXPECT_EQ(reactor.stats().completed, 0u);
}

TEST(CoordinatorFailover, MissedBeatThresholdDeclaresStalledWorkerDead) {
  // SIGSTOP, not SIGKILL: the worker is wedged but its socket never closes, so
  // there is no EOF to trip over — only the missed-beat threshold can declare
  // this channel dead.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 131);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  rpc::WorkerProcess worker(D3_NODE_BINARY);
  const pid_t pid = worker.pid();
  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->add_node("device0", worker.take_socket());
  transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  transport->enable_heartbeats(
      {std::chrono::milliseconds(10), std::chrono::milliseconds(15), 3});

  ::kill(pid, SIGSTOP);
  bool detected = false;
  std::string message;
  for (int i = 0; i < 400 && !detected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
      transport->heartbeat_poll();
    } catch (const rpc::ChannelDied& e) {
      detected = true;
      EXPECT_EQ(e.node(), "device0");
      EXPECT_FALSE(e.channel_restored());  // no reconnect hook was registered
      message = e.what();
    }
  }
  ::kill(pid, SIGCONT);

  ASSERT_TRUE(detected);
  EXPECT_NE(message.find("device0"), std::string::npos) << message;
  EXPECT_NE(message.find("missed"), std::string::npos) << message;
  EXPECT_NE(message.find("heartbeat probe"), std::string::npos) << message;
  const rpc::SocketTransport::Stats stats = transport->stats();
  EXPECT_GE(stats.pings, 3u);  // one probe per miss until the threshold
  EXPECT_EQ(stats.heartbeat_deaths, 1u);
}

TEST(CoordinatorFailover, FlappingTileWorkerIsReadmittedWithoutDoubleAttachment) {
  // Heartbeat-flapping: a tile worker goes silent long enough to be declared
  // dead and pruned, then answers again. The late reconnect hook must readmit
  // the same incarnation exactly once — shard map back to the original layout,
  // transcript byte-identical, no ghost third attachment.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 141);
  util::Rng rng(142);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);
  const core::SerializablePlan plan{net.name(), assignment, vsm};

  rpc::WorkerProcess device(D3_NODE_BINARY);
  rpc::WorkerProcess cloud(D3_NODE_BINARY);
  // The flapping shard listens, so the readmission can dial the *same*
  // incarnation instead of respawning a fresh one.
  const rpc::ListenWorkerProcess shard1(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess shard2(D3_NODE_BINARY);

  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->add_node("device0", device.take_socket());
  transport->add_node("cloud0", cloud.take_socket());
  transport->add_tile_worker(shard1.dial());  // "edge1"
  transport->add_tile_worker(shard2.dial());  // "edge2"
  transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);

  OnlineEngine::Options options;
  options.transport = transport;
  options.vsm_workers = 0;
  const OnlineEngine engine(net, weights, assignment, vsm, options);

  const InferenceResult before = engine.infer(frame);
  expect_identical(before.output, reference);

  // Phase 1: edge1 stops answering; the miss threshold declares it dead and
  // the prune reshards its tiles onto edge2.
  transport->enable_heartbeats(
      {std::chrono::milliseconds(10), std::chrono::milliseconds(15), 2});
  ::kill(shard1.pid(), SIGSTOP);
  bool detected = false;
  for (int i = 0; i < 400 && !detected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
      transport->heartbeat_poll();
    } catch (const rpc::ChannelDied& e) {
      detected = true;
      EXPECT_EQ(e.node(), "edge1");
      EXPECT_FALSE(e.channel_restored());
    }
  }
  ASSERT_TRUE(detected);
  EXPECT_EQ(transport->prune_tile_workers(), 1u);
  EXPECT_EQ(transport->tile_worker_count(), 1u);
  EXPECT_EQ(transport->stats().detached_workers, 1u);

  // Phase 2: the worker answers again; the late hook readmits it exactly once.
  ::kill(shard1.pid(), SIGCONT);
  transport->set_reconnect("edge1", [&shard1] { return shard1.dial(); });
  EXPECT_EQ(transport->tile_worker_count(), 2u);
  EXPECT_EQ(transport->stats().readmitted_workers, 1u);

  const InferenceResult after = engine.infer(frame);
  expect_identical(after.output, reference);
  expect_same_transcript(after, before);
}

// --- Split-brain drill (ISSUE 9 satellite) -----------------------------------

TEST(CoordinatorFailover, SplitBrainDeposedCoordinatorIsFencedOutOfEveryVerb) {
  // The nightmare failover race: the "dead" coordinator was only slow, and
  // wakes up mid-request after a standby has already taken over. The fencing
  // epoch must turn every one of its verbs into rpc::Fenced — before any
  // worker state is touched — while the promoted coordinator's runs stay
  // bitwise- and transcript-identical.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 161);
  util::Rng rng(162);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};
  const std::string journal_path = temp_journal("split_brain.d3j");

  const rpc::ListenWorkerProcess device(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess edge(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess cloud(D3_NODE_BINARY);

  // Coordinator A: epoch 1, one request run exactly one stage deep — the
  // device tier is durable in the journal, the edge tier is next.
  auto a = std::make_shared<rpc::SocketTransport>();
  a->set_epoch(1);
  a->add_node("device0", device.dial());
  a->add_node("edge0", edge.dial());
  a->add_node("cloud0", cloud.dial());
  a->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  OnlineEngine::Options a_options;
  a_options.transport = a;
  a_options.journal = std::make_shared<RequestJournal>(journal_path);
  const OnlineEngine stalled(net, weights, assignment, std::nullopt, a_options);
  OnlineEngine::Continuation c = stalled.start(frame);
  ASSERT_FALSE(stalled.step(c));
  ASSERT_EQ(RequestJournal::load(journal_path).size(), 1u);

  // Coordinator B: a standby force-promoted (the deterministic drill form of
  // the heartbeat path). Its epoch-2 kConfig fences A out of all three
  // workers and its promote() resumes A's request to completion.
  const auto entry = [](const char* name, std::uint16_t port) {
    return std::string(name) + " 127.0.0.1:" + std::to_string(port) + "\n";
  };
  StandbyCoordinator::Options options;
  options.book = AddressBook::parse("[coordinator]\n" + entry("beacon", 65001) + "[workers]\n" +
                                    entry("device0", device.port()) +
                                    entry("edge0", edge.port()) + entry("cloud0", cloud.port()) +
                                    "[standbys]\n" + entry("standby0", 65000));
  options.journal_path = journal_path;
  options.epoch_hint = 1;
  StandbyCoordinator standby(net, weights, assignment, std::nullopt, std::move(options));
  standby.promote();
  EXPECT_TRUE(standby.promoted());
  EXPECT_EQ(standby.epoch(), 2u);

  ASSERT_EQ(standby.resumed().size(), 1u);
  expect_identical(standby.resumed()[0].result.output, reference);
  const InferenceResult no_failure = OnlineEngine(net, weights, assignment).infer(frame);
  expect_same_transcript(standby.resumed()[0].result, no_failure);
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());

  // A wakes up and keeps driving: every verb — resuming its continuation
  // (kPut + kRunLayer against the edge), opening a new request (kBegin),
  // a whole fresh inference, even replaying its own kConfig — is rejected
  // with rpc::Fenced. The channels stay healthy; only the epoch is dead.
  EXPECT_THROW(stalled.step(c), rpc::Fenced);
  EXPECT_THROW(a->open_request(), rpc::Fenced);
  EXPECT_THROW(stalled.infer(frame), rpc::Fenced);
  EXPECT_THROW(a->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0),
               rpc::Fenced);
  stalled.abandon(std::move(c));  // disarm: no kEnd from the deposed side

  // None of those attempts touched worker state: B's fresh run over the same
  // workers is still bitwise- and transcript-identical.
  const InferenceResult fresh = standby.engine().infer(frame);
  expect_identical(fresh.output, reference);
  expect_same_transcript(fresh, no_failure);
  EXPECT_TRUE(RequestJournal::load(journal_path).empty());
}

// --- Channel error context (ISSUE 7 satellite) -------------------------------

TEST(CoordinatorFailover, ChannelErrorsNameNodePeerAddressAndCause) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 151);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  rpc::WorkerProcess worker(D3_NODE_BINARY);
  const pid_t pid = worker.pid();
  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->add_node("device0", worker.take_socket());
  transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);

  ::kill(pid, SIGKILL);
  try {
    transport->open_request();  // kBegin hits the corpse
    FAIL() << "open_request on a dead channel did not throw";
  } catch (const rpc::ChannelDied& e) {
    // Failover triage reads these messages: they must name the node, the peer
    // endpoint, and the underlying socket-level cause.
    EXPECT_EQ(e.node(), "device0");
    const std::string what = e.what();
    EXPECT_NE(what.find("device0"), std::string::npos) << what;
    EXPECT_NE(what.find("peer 127.0.0.1"), std::string::npos) << what;
    EXPECT_NE(what.find("died mid-request"), std::string::npos) << what;
  }
}

TEST(CoordinatorFailover, LostPromotionRaceFoldsEpochAndWinsTheNextTakeover) {
  // Two standbys race after a dead active: the slower one's promote() hits
  // rpc::Fenced on its very first redial (a rival already fenced the workers
  // at a higher epoch). That must NOT kill its monitor thread or surface as a
  // promotion error — the standby folds the observed epoch in, returns to
  // monitoring, and when the rival proves dead too (its beacon never answers)
  // the next takeover bids strictly above the rival's incarnation and wins.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 171);
  const core::Assignment assignment = three_tier_plan(net);
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};
  const std::string journal_path = temp_journal("lost_race.d3j");

  const rpc::ListenWorkerProcess device(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess edge(D3_NODE_BINARY);
  const rpc::ListenWorkerProcess cloud(D3_NODE_BINARY);

  // The rival: already promoted at epoch 5, beaconless (it is "active" from
  // the workers' point of view but undetectable to the standby's probes).
  auto rival = std::make_shared<rpc::SocketTransport>();
  rival->set_epoch(5);
  rival->add_node("device0", device.dial());
  rival->add_node("edge0", edge.dial());
  rival->add_node("cloud0", cloud.dial());
  rival->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);

  const auto entry = [](const char* name, std::uint16_t port) {
    return std::string(name) + " 127.0.0.1:" + std::to_string(port) + "\n";
  };
  StandbyCoordinator::Options options;
  // The beacon entry points at a dead port: every probe misses, so the
  // monitor trips, promotes (losing to the rival), and trips again.
  options.book = AddressBook::parse("[coordinator]\n" + entry("beacon", 65001) + "[workers]\n" +
                                    entry("device0", device.port()) +
                                    entry("edge0", edge.port()) + entry("cloud0", cloud.port()) +
                                    "[standbys]\n" + entry("standby0", 65000));
  options.journal_path = journal_path;
  options.probe_interval = std::chrono::milliseconds(10);
  options.miss_threshold = 2;
  StandbyCoordinator standby(net, weights, assignment, std::nullopt, std::move(options));
  standby.start();

  // With the pre-fix behaviour this rethrows rpc::Fenced (the first promotion
  // attempt at epoch 1 stored it as a promotion error and the monitor died).
  // Fixed: the Fenced epoch is folded into the observation high-water mark
  // and the second attempt takes over at 6.
  ASSERT_TRUE(standby.wait_promoted(std::chrono::seconds(30)));
  EXPECT_GE(standby.observed_epoch(), 5u);
  EXPECT_EQ(standby.epoch(), 6u);

  // The successful takeover fenced the rival, as any promotion must.
  EXPECT_THROW(rival->open_request(), rpc::Fenced);
}

TEST(CoordinatorFailover, KilledMirrorRefreshNeverLeavesATornJournal) {
  // SIGKILL a child mid-refresh, at an arbitrary instant of the temp-write /
  // fsync / rename sequence, repeatedly: the journal path must always hold
  // one of the two complete payloads — a torn middle would feed promotion a
  // corrupt journal. (The loader tolerates torn tails only; the mirror's
  // atomic-replace contract is what keeps a *refresh* from tearing the file.)
  const std::string path = temp_journal("mirror_kill.d3j");
  const std::vector<std::uint8_t> a(512 * 1024, 0xAA);
  const std::vector<std::uint8_t> b(768 * 1024, 0xBB);
  mirror_file_atomically(path, a);

  for (int round = 0; round < 5; ++round) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // The doomed refresher: alternate payloads as fast as possible until
      // the parent's SIGKILL lands somewhere inside a refresh.
      for (;;) {
        mirror_file_atomically(path, a);
        mirror_file_atomically(path, b);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20 + 7 * round));
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const std::vector<std::uint8_t> seen((std::istreambuf_iterator<char>(file)),
                                         std::istreambuf_iterator<char>());
    EXPECT_TRUE(seen == a || seen == b)
        << "round " << round << ": journal is " << seen.size()
        << " bytes, neither complete payload";
  }
}

}  // namespace
}  // namespace d3::runtime
