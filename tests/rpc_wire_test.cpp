// The binary wire format: randomized tensor round-trips (including NaN
// payloads, infinities and denormals, compared bit-for-bit), envelope framing,
// weight shipping, and the strict error paths — truncation at every prefix
// length, bad magic, bad version, corrupt shapes and trailing bytes.
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "rpc/wire.h"
#include "util/rng.h"

namespace d3::rpc {
namespace {

// Bitwise tensor equality: float== would lie about NaNs and signed zeros.
void expect_bits_equal(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]), std::bit_cast<std::uint32_t>(b[i])) << i;
}

TEST(RpcWire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f32(-0.0f);
  w.str("hello wire");
  w.blob(std::vector<std::uint8_t>{1, 2, 3});

  WireReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(r.f32()), std::bit_cast<std::uint32_t>(-0.0f));
  EXPECT_EQ(r.str(), "hello wire");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  r.expect_end("test");
}

TEST(RpcWire, EncodingIsFixedEndianness) {
  // The format is defined little-endian regardless of host: pin exact bytes.
  WireWriter w;
  w.u32(0x11223344);
  ASSERT_EQ(w.buffer().size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x44);
  EXPECT_EQ(w.buffer()[1], 0x33);
  EXPECT_EQ(w.buffer()[2], 0x22);
  EXPECT_EQ(w.buffer()[3], 0x11);
}

TEST(RpcWire, TensorRoundTripRandomized) {
  util::Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    const dnn::Shape shape{1 + static_cast<int>(rng.uniform(0, 8)),
                           1 + static_cast<int>(rng.uniform(0, 12)),
                           1 + static_cast<int>(rng.uniform(0, 12))};
    dnn::Tensor t(shape);
    for (std::size_t i = 0; i < t.size(); ++i)
      t[i] = static_cast<float>(rng.normal(0.0, 100.0));
    expect_bits_equal(decode_tensor(encode_tensor(t)), t);
  }
}

TEST(RpcWire, TensorRoundTripPreservesSpecialValues) {
  dnn::Tensor t(dnn::Shape{2, 2, 2});
  t[0] = std::numeric_limits<float>::quiet_NaN();
  // A NaN with a distinctive payload: survives only if bits are preserved.
  t[1] = std::bit_cast<float>(0x7FC12345u);
  t[2] = std::numeric_limits<float>::infinity();
  t[3] = -std::numeric_limits<float>::infinity();
  t[4] = std::numeric_limits<float>::denorm_min();
  t[5] = -std::numeric_limits<float>::denorm_min();
  t[6] = -0.0f;
  t[7] = std::numeric_limits<float>::max();
  expect_bits_equal(decode_tensor(encode_tensor(t)), t);
}

TEST(RpcWire, TensorTruncationAlwaysThrows) {
  dnn::Tensor t(dnn::Shape{2, 3, 4});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const std::vector<std::uint8_t> bytes = encode_tensor(t);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(decode_tensor(std::span(bytes).first(len)), WireError) << len;
}

TEST(RpcWire, TensorRejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = encode_tensor(dnn::Tensor(dnn::Shape{1, 1, 1}));
  bytes.push_back(0);
  EXPECT_THROW(decode_tensor(std::span<const std::uint8_t>(bytes)), WireError);
}

TEST(RpcWire, TensorRejectsBadMagicVersionAndShape) {
  const dnn::Tensor t(dnn::Shape{1, 2, 2});
  {
    std::vector<std::uint8_t> bytes = encode_tensor(t);
    bytes[0] ^= 0xFF;  // magic
    EXPECT_THROW(decode_tensor(std::span<const std::uint8_t>(bytes)), WireError);
  }
  {
    std::vector<std::uint8_t> bytes = encode_tensor(t);
    bytes[4] = 0x7F;  // version
    EXPECT_THROW(decode_tensor(std::span<const std::uint8_t>(bytes)), WireError);
  }
  {
    // Negative channel count.
    WireWriter w;
    w.u32(kTensorMagic);
    w.u16(kWireVersion);
    w.i32(-1);
    w.i32(2);
    w.i32(2);
    EXPECT_THROW(decode_tensor(std::span<const std::uint8_t>(w.buffer())), WireError);
  }
  {
    // Shape whose element count overflows the sanity cap: must throw, not
    // attempt a giant allocation.
    WireWriter w;
    w.u32(kTensorMagic);
    w.u16(kWireVersion);
    w.i32(1 << 19);
    w.i32(1 << 19);
    w.i32(1 << 19);
    EXPECT_THROW(decode_tensor(std::span<const std::uint8_t>(w.buffer())), WireError);
  }
}

TEST(RpcWire, EnvelopeRoundTrip) {
  dnn::Tensor t(dnn::Shape{3, 4, 5});
  util::Rng rng(7);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

  Envelope env;
  env.meta = {42, "edge0", "cloud0", "conv5", core::Tier::kEdge, core::Tier::kCloud,
              t.shape().bytes()};
  env.payload = encode_tensor(t);

  const Envelope back = decode_envelope(encode_envelope(env));
  EXPECT_EQ(back.meta.seq, 42u);
  EXPECT_EQ(back.meta.from_node, "edge0");
  EXPECT_EQ(back.meta.to_node, "cloud0");
  EXPECT_EQ(back.meta.payload, "conv5");
  EXPECT_EQ(back.meta.from_tier, core::Tier::kEdge);
  EXPECT_EQ(back.meta.to_tier, core::Tier::kCloud);
  EXPECT_EQ(back.meta.bytes, t.shape().bytes());
  expect_bits_equal(decode_tensor(std::span<const std::uint8_t>(back.payload)), t);
}

TEST(RpcWire, EnvelopeTruncationAlwaysThrows) {
  Envelope env;
  env.meta = {7, "device0", "edge0", "raw input", core::Tier::kDevice, core::Tier::kEdge, 64};
  env.payload = encode_tensor(dnn::Tensor(dnn::Shape{1, 2, 2}));
  const std::vector<std::uint8_t> bytes = encode_envelope(env);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(decode_envelope(std::span(bytes).first(len)), WireError) << len;
}

TEST(RpcWire, EnvelopeRejectsBadMagicTierAndNegativeBytes) {
  Envelope env;
  env.meta = {0, "a", "b", "x", core::Tier::kDevice, core::Tier::kEdge, 16};
  {
    std::vector<std::uint8_t> bytes = encode_envelope(env);
    bytes[1] ^= 0x40;
    EXPECT_THROW(decode_envelope(std::span<const std::uint8_t>(bytes)), WireError);
  }
  {
    // Tier byte out of range: from_tier sits right after seq + three
    // 1-char strings.
    std::vector<std::uint8_t> bytes = encode_envelope(env);
    const std::size_t tier_at = 4 + 2 + 8 + (4 + 1) * 3;
    bytes[tier_at] = 9;
    EXPECT_THROW(decode_envelope(std::span<const std::uint8_t>(bytes)), WireError);
  }
  {
    Envelope negative = env;
    negative.meta.bytes = -5;
    const std::vector<std::uint8_t> bytes = encode_envelope(negative);
    EXPECT_THROW(decode_envelope(std::span<const std::uint8_t>(bytes)), WireError);
  }
}

TEST(RpcWire, WeightsRoundTripBitwise) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 99);
  const exec::WeightStore back = decode_weights(encode_weights(weights, net), net);
  ASSERT_EQ(back.size(), weights.size());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const exec::LayerWeights& a = weights.layer(id);
    const exec::LayerWeights& b = back.layer(id);
    ASSERT_EQ(a.weights.size(), b.weights.size());
    for (std::size_t i = 0; i < a.weights.size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a.weights[i]),
                std::bit_cast<std::uint32_t>(b.weights[i]));
    EXPECT_EQ(a.bias, b.bias);
    EXPECT_EQ(a.bn_scale, b.bn_scale);
    EXPECT_EQ(a.bn_shift, b.bn_shift);
  }
}

TEST(RpcWire, WeightsRejectWrongNetworkAndTruncation) {
  const dnn::Network chain = dnn::zoo::tiny_chain();
  const dnn::Network branch = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(chain, 5);
  const std::vector<std::uint8_t> bytes = encode_weights(weights, chain);
  // Decoding against a different model: layer count/sizes mismatch.
  EXPECT_THROW(decode_weights(bytes, branch), WireError);
  // Truncation at a few prefix lengths (full sweep would be slow here).
  for (const std::size_t len : {std::size_t{0}, std::size_t{5}, bytes.size() / 2, bytes.size() - 1})
    EXPECT_THROW(decode_weights(std::span(bytes).first(len), chain), WireError) << len;
}

}  // namespace
}  // namespace d3::rpc
