// Deployment-bundle codec acceptance (ISSUE 10): the d3c bundle container and
// the weight-shard codec inside it are exactly as strict as plan_io —
// truncation at every byte boundary, bad magic/version, trailing bytes, and
// content-hash corruption all throw instead of yielding a partially-populated
// bundle; round-trips are lossless; and the plan-driven shard mask puts
// parameters on exactly the layers a node executes.
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.h"
#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/weights.h"
#include "rpc/wire.h"

namespace d3::core {
namespace {

SerializablePlan sample_plan(const dnn::Network& net) {
  SerializablePlan plan;
  plan.model_name = net.name();
  plan.assignment.tier.assign(net.num_layers() + 1, Tier::kCloud);
  plan.assignment.tier[0] = Tier::kDevice;
  for (graph::VertexId v = 1; v <= 3; ++v) plan.assignment.tier[v] = Tier::kDevice;
  for (graph::VertexId v = 4; v <= 6; ++v) plan.assignment.tier[v] = Tier::kEdge;
  return plan;
}

DeploymentBundle sample_bundle(const dnn::Network& net, const exec::WeightStore& weights,
                               const std::string& node) {
  const SerializablePlan plan = sample_plan(net);
  DeploymentBundle bundle;
  bundle.node_name = node;
  bundle.model_name = net.name();
  bundle.vsm_workers = 0;
  bundle.weights_hash = rpc::fnv1a(rpc::encode_weights(weights, net));
  bundle.plan_bytes = serialize_plan_binary(plan);
  bundle.shard_bytes = rpc::encode_weight_shard(
      weights, net, exec::WeightStore::layers_for_node(plan, node));
  bundle.book_text =
      "[coordinator]\nactive 127.0.0.1:9000\n[workers]\n"
      "device0 127.0.0.1:9001\nedge0 127.0.0.1:9002\ncloud0 127.0.0.1:9003\n";
  return bundle;
}

// Recomputes the trailing content hash after a deliberate field corruption,
// so the test exercises the *field* check, not just the checksum.
std::vector<std::uint8_t> rehash(std::vector<std::uint8_t> bytes) {
  rpc::WireWriter w;
  w.u64(rpc::fnv1a(std::span(bytes).first(bytes.size() - 8)));
  const std::vector<std::uint8_t> trailer = w.take();
  std::copy(trailer.begin(), trailer.end(), bytes.end() - 8);
  return bytes;
}

TEST(BundleIo, RoundTripPreservesEveryField) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  const DeploymentBundle original = sample_bundle(net, weights, "edge0");
  const DeploymentBundle parsed = decode_bundle(encode_bundle(original));
  EXPECT_EQ(parsed.node_name, original.node_name);
  EXPECT_EQ(parsed.model_name, original.model_name);
  EXPECT_EQ(parsed.vsm_workers, original.vsm_workers);
  EXPECT_EQ(parsed.weights_hash, original.weights_hash);
  EXPECT_EQ(parsed.plan_bytes, original.plan_bytes);
  EXPECT_EQ(parsed.shard_bytes, original.shard_bytes);
  EXPECT_EQ(parsed.book_text, original.book_text);
}

TEST(BundleIo, FileRoundTripAndAtomicOverwrite) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "edge0.d3b").string();
  std::filesystem::remove(path);
  write_bundle_file(path, sample_bundle(net, weights, "edge0"));
  EXPECT_EQ(load_bundle_file(path).node_name, "edge0");
  // A recompile overwrites in place (tmp + rename): the new content wins and
  // no ".tmp" residue is left behind.
  write_bundle_file(path, sample_bundle(net, weights, "cloud0"));
  EXPECT_EQ(load_bundle_file(path).node_name, "cloud0");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(BundleIo, TruncationAlwaysThrows) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  const std::vector<std::uint8_t> wire = encode_bundle(sample_bundle(net, weights, "device0"));
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_THROW(decode_bundle(std::span(wire).first(len)), rpc::WireError) << len;
}

TEST(BundleIo, AnySingleFlippedByteIsCaughtByTheContentHash) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  const std::vector<std::uint8_t> wire = encode_bundle(sample_bundle(net, weights, "cloud0"));
  // Every position, including the trailer itself: a corrupted checksum is as
  // fatal as corrupted content.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{6}, wire.size() / 2,
                                wire.size() - 9, wire.size() - 1}) {
    std::vector<std::uint8_t> bad = wire;
    bad[pos] ^= 0xFF;
    EXPECT_THROW(decode_bundle(bad), rpc::WireError) << pos;
  }
}

TEST(BundleIo, RejectsBadMagicVersionAndTrailingBytes) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 7);
  const std::vector<std::uint8_t> wire = encode_bundle(sample_bundle(net, weights, "edge0"));
  {
    // Valid checksum over a wrong magic: the magic check itself must fire.
    std::vector<std::uint8_t> bad = wire;
    bad[0] ^= 0xFF;
    EXPECT_THROW(decode_bundle(rehash(std::move(bad))), rpc::WireError);
  }
  {
    // Valid checksum over an unsupported version.
    std::vector<std::uint8_t> bad = wire;
    bad[4] ^= 0xFF;
    EXPECT_THROW(decode_bundle(rehash(std::move(bad))), rpc::WireError);
  }
  {
    // A surplus byte between the fields and the trailer, checksummed as if it
    // belonged: strict expect_end must still reject it.
    std::vector<std::uint8_t> bad = wire;
    bad.insert(bad.end() - 8, 0);
    EXPECT_THROW(decode_bundle(rehash(std::move(bad))), rpc::WireError);
  }
  {
    std::vector<std::uint8_t> bad = wire;
    bad.push_back(0);  // trailing byte shifts the trailer: hash mismatch
    EXPECT_THROW(decode_bundle(bad), rpc::WireError);
  }
}

TEST(BundleIo, EmptyAndMissingFilesFailLoudly) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "empty.d3b").string();
  { std::FILE* f = std::fopen(path.c_str(), "wb"); ASSERT_NE(f, nullptr); std::fclose(f); }
  EXPECT_THROW(load_bundle_file(path), rpc::WireError);
  EXPECT_THROW(load_bundle_file(path + ".does-not-exist"), std::runtime_error);
}

// --- the weight-shard codec inside the bundle --------------------------------

TEST(WeightShard, RoundTripCarriesExactlyTheKeptLayers) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 9);
  const SerializablePlan plan = sample_plan(net);
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    const std::vector<bool> keep = exec::WeightStore::layers_for_node(plan, node);
    const rpc::WeightShard shard =
        rpc::decode_weight_shard(rpc::encode_weight_shard(weights, net, keep), net);
    ASSERT_EQ(shard.present.size(), net.num_layers());
    for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
      EXPECT_EQ(shard.present[id], keep[id]) << node << " layer " << id;
      if (keep[id]) {
        EXPECT_EQ(shard.weights.layer(id).weights, weights.layer(id).weights);
        EXPECT_EQ(shard.weights.layer(id).bias, weights.layer(id).bias);
      } else {
        EXPECT_TRUE(shard.weights.layer(id).weights.empty());
        EXPECT_TRUE(shard.weights.layer(id).bias.empty());
      }
    }
  }
}

TEST(WeightShard, TierMasksPartitionTheModel) {
  // Every layer belongs to exactly one tier head's shard — no layer is
  // shipped twice, none is orphaned.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const SerializablePlan plan = sample_plan(net);
  const std::vector<bool> device = exec::WeightStore::layers_for_node(plan, "device0");
  const std::vector<bool> edge = exec::WeightStore::layers_for_node(plan, "edge0");
  const std::vector<bool> cloud = exec::WeightStore::layers_for_node(plan, "cloud0");
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    EXPECT_EQ(int{device[id]} + int{edge[id]} + int{cloud[id]}, 1) << id;
}

TEST(WeightShard, UnknownNodeAndMissingVsmThrow) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const SerializablePlan plan = sample_plan(net);  // no vsm
  EXPECT_THROW(exec::WeightStore::layers_for_node(plan, "gpu7"), std::invalid_argument);
  // edge1 is a VSM fan-out worker; without a fused-tile plan there is nothing
  // for it to execute and the mask must refuse, not return all-absent.
  EXPECT_THROW(exec::WeightStore::layers_for_node(plan, "edge1"), std::invalid_argument);
}

TEST(WeightShard, VsmFanOutWorkersGetTheStackLayers) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  SerializablePlan plan = sample_plan(net);
  plan.vsm = make_fused_tile_plan(net, std::vector<dnn::LayerId>{3, 4, 5}, 2, 2);
  const std::vector<bool> keep = exec::WeightStore::layers_for_node(plan, "edge1");
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const bool in_stack = id == 3 || id == 4 || id == 5;
    EXPECT_EQ(keep[id], in_stack) << id;
  }
}

TEST(WeightShard, ShardForPlanElidesForeignTiers) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 9);
  const SerializablePlan plan = sample_plan(net);
  const exec::WeightStore shard = weights.shard_for_plan(plan, "device0");
  const std::vector<bool> keep = exec::WeightStore::layers_for_node(plan, "device0");
  ASSERT_EQ(shard.size(), weights.size());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    if (keep[id])
      EXPECT_EQ(shard.layer(id).weights, weights.layer(id).weights);
    else
      EXPECT_TRUE(shard.layer(id).weights.empty());
  }
}

TEST(WeightShard, TruncationAlwaysThrows) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 9);
  const std::vector<bool> keep =
      exec::WeightStore::layers_for_node(sample_plan(net), "edge0");
  const std::vector<std::uint8_t> wire = rpc::encode_weight_shard(weights, net, keep);
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_THROW(rpc::decode_weight_shard(std::span(wire).first(len), net),
                 rpc::WireError)
        << len;
}

TEST(WeightShard, RejectsBadMagicFlagWrongModelAndTrailingBytes) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 9);
  const std::vector<bool> keep =
      exec::WeightStore::layers_for_node(sample_plan(net), "edge0");
  const std::vector<std::uint8_t> wire = rpc::encode_weight_shard(weights, net, keep);
  {
    std::vector<std::uint8_t> bad = wire;
    bad[0] ^= 0xFF;
    EXPECT_THROW(rpc::decode_weight_shard(bad, net), rpc::WireError);
  }
  {
    // The first presence flag sits right after magic+version+count; anything
    // but 0/1 is corruption, not a truthy bool.
    std::vector<std::uint8_t> bad = wire;
    bad[4 + 2 + 4] = 2;
    EXPECT_THROW(rpc::decode_weight_shard(bad, net), rpc::WireError);
  }
  {
    std::vector<std::uint8_t> bad = wire;
    bad.push_back(0);
    EXPECT_THROW(rpc::decode_weight_shard(bad, net), rpc::WireError);
  }
  // A shard encoded for one model must not decode against another (layer
  // count and parameter sizes disagree).
  EXPECT_THROW(rpc::decode_weight_shard(wire, dnn::zoo::tiny_branch()), rpc::WireError);
}

TEST(WeightShard, EncodeRejectsMismatchedMaskOrStore) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 9);
  EXPECT_THROW(rpc::encode_weight_shard(weights, net, std::vector<bool>(2, true)),
               rpc::WireError);
  const dnn::Network bigger = dnn::zoo::alexnet();
  ASSERT_NE(bigger.num_layers(), net.num_layers());
  EXPECT_THROW(rpc::encode_weight_shard(
                   weights, bigger, std::vector<bool>(bigger.num_layers(), true)),
               rpc::WireError);
}

}  // namespace
}  // namespace d3::core
