#include <cmath>

#include <gtest/gtest.h>

#include "exec/ops.h"
#include "util/rng.h"

namespace d3::exec {
namespace {

using dnn::LayerSpec;
using dnn::Shape;
using dnn::Tensor;
using dnn::Window;

LayerWeights identity_conv_1x1() {
  LayerWeights w;
  w.weights = {1.0f};
  w.bias = {0.0f};
  return w;
}

TEST(Ops, Conv1x1IdentityPassesThrough) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{1, 1, 1, 1, 0, 0});
  const Tensor out = conv2d(in, spec, identity_conv_1x1());
  EXPECT_EQ(out.shape(), in.shape());
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) EXPECT_FLOAT_EQ(out.at(0, y, x), in.at(0, y, x));
}

TEST(Ops, Conv3x3HandComputed) {
  // 3x3 all-ones filter over a 3x3 ramp with pad 1: centre output = sum of all.
  Tensor in(Shape{1, 3, 3});
  float v = 1;
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) in.at(0, y, x) = v++;
  LayerWeights w;
  w.weights.assign(9, 1.0f);
  w.bias = {0.5f};
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{3, 3, 1, 1, 1, 1});
  const Tensor out = conv2d(in, spec, w);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 45.0f + 0.5f);
  // Top-left: only the 2x2 block {1,2,4,5} is inside the image.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5 + 0.5f);
}

TEST(Ops, ConvStrideSkips) {
  Tensor in(Shape{1, 4, 4});
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) in.at(0, y, x) = static_cast<float>(y * 4 + x);
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{1, 1, 2, 2, 0, 0});
  const Tensor out = conv2d(in, spec, identity_conv_1x1());
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0), 8.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 10.0f);
}

TEST(Ops, ConvMultiChannelAccumulates) {
  Tensor in(Shape{2, 1, 1});
  in.at(0, 0, 0) = 3;
  in.at(1, 0, 0) = 5;
  LayerWeights w;
  w.weights = {2.0f, 10.0f};  // one filter over both channels
  w.bias = {1.0f};
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{1, 1, 1, 1, 0, 0});
  const Tensor out = conv2d(in, spec, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3 * 2 + 5 * 10 + 1);
}

TEST(Ops, MaxPoolPaddingIsNeutral) {
  // With padding, border windows must ignore the pad entries (-inf), not treat
  // them as zeros (matters for all-negative inputs).
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = -5;
  in.at(0, 0, 1) = -3;
  in.at(0, 1, 0) = -2;
  in.at(0, 1, 1) = -7;
  const LayerSpec spec = LayerSpec::max_pool("p", Window{3, 3, 1, 1, 1, 1});
  const Tensor out = pool2d(in, spec);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), -2.0f);  // max of the visible window
}

TEST(Ops, AvgPoolDividesByFullWindow) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 4;
  const LayerSpec spec = LayerSpec::avg_pool("p", Window{2, 2, 1, 1, 1, 1});
  const Tensor out = pool2d(in, spec);
  // Top-left window covers only in(0,0): average over the full 2x2 window
  // (count_include_pad semantics) = 4/4 = 1.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
}

TEST(Ops, GlobalAvgPool) {
  Tensor in(Shape{2, 2, 2});
  for (int c = 0; c < 2; ++c)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x) in.at(c, y, x) = static_cast<float>(c + 1);
  const Tensor out = global_avg_pool(in);
  EXPECT_EQ(out.shape(), (Shape{2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 2.0f);
}

TEST(Ops, FullyConnected) {
  Tensor in(Shape{3, 1, 1});
  in[0] = 1;
  in[1] = 2;
  in[2] = 3;
  LayerWeights w;
  w.weights = {1, 0, 0, /*row2*/ 1, 1, 1};
  w.bias = {0.5f, -0.5f};
  const LayerSpec spec = LayerSpec::fully_connected("f", 2);
  const Tensor out = fully_connected(in, spec, w);
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[1], 5.5f);
}

TEST(Ops, ReluClampsNegatives) {
  Tensor in(Shape{1, 1, 3});
  in[0] = -1;
  in[1] = 0;
  in[2] = 2;
  const Tensor out = relu(in);
  EXPECT_FLOAT_EQ(out[0], 0);
  EXPECT_FLOAT_EQ(out[1], 0);
  EXPECT_FLOAT_EQ(out[2], 2);
}

TEST(Ops, BatchNormAppliesScaleShift) {
  Tensor in(Shape{2, 1, 1});
  in.at(0, 0, 0) = 2;
  in.at(1, 0, 0) = 3;
  LayerWeights w;
  w.bn_scale = {2.0f, 0.5f};
  w.bn_shift = {1.0f, -1.0f};
  const Tensor out = batch_norm(in, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 0.5f);
}

TEST(Ops, ConcatStacksChannels) {
  Tensor a(Shape{1, 1, 2}), b(Shape{2, 1, 2});
  a.at(0, 0, 0) = 1;
  b.at(1, 0, 1) = 7;
  const Tensor out = concat({&a, &b});
  EXPECT_EQ(out.shape(), (Shape{3, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1);
  EXPECT_FLOAT_EQ(out.at(2, 0, 1), 7);
}

TEST(Ops, AddSums) {
  Tensor a(Shape{1, 1, 2}), b(Shape{1, 1, 2});
  a[0] = 1;
  a[1] = 2;
  b[0] = 10;
  b[1] = 20;
  const Tensor out = add({&a, &b});
  EXPECT_FLOAT_EQ(out[0], 11);
  EXPECT_FLOAT_EQ(out[1], 22);
}

TEST(Ops, SoftmaxNormalises) {
  Tensor in(Shape{3, 1, 1});
  in[0] = 1;
  in[1] = 2;
  in[2] = 3;
  const Tensor out = softmax(in);
  float sum = 0;
  for (int i = 0; i < 3; ++i) sum += out[i];
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(out[2], out[1]);
  EXPECT_GT(out[1], out[0]);
}

TEST(RegionOps, RegionEqualsWholeRestriction) {
  util::Rng rng(3);
  Tensor in = random_tensor(Shape{3, 9, 9}, rng);
  const LayerSpec spec = LayerSpec::conv("c", 4, Window{3, 3, 1, 1, 1, 1});
  LayerWeights w;
  w.weights.resize(4 * 3 * 3 * 3);
  for (auto& x : w.weights) x = static_cast<float>(rng.uniform(-1, 1));
  w.bias.resize(4);
  for (auto& x : w.bias) x = static_cast<float>(rng.uniform(-1, 1));

  const Tensor full = conv2d(in, spec, w);
  const Region region{2, 3, 7, 8};
  const Tile tile = conv2d_region(Tile::whole(in), spec, w, region, 9, 9);
  for (int c = 0; c < 4; ++c)
    for (int y = region.y0; y < region.y1; ++y)
      for (int x = region.x0; x < region.x1; ++x)
        EXPECT_FLOAT_EQ(tile.data.at(c, y - region.y0, x - region.x0), full.at(c, y, x));
}

TEST(RegionOps, MissingHaloThrows) {
  // A tile that does not include the receptive field of the requested output
  // region must fail loudly.
  util::Rng rng(4);
  Tensor in = random_tensor(Shape{1, 8, 8}, rng);
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{3, 3, 1, 1, 0, 0});
  LayerWeights w;
  w.weights.assign(9, 1.0f);
  w.bias = {0.0f};
  // Tile covering input columns [0,4) but asking for output column 4 (needs
  // input columns 4..6).
  Tile tile;
  tile.data = Tensor(Shape{1, 8, 4});
  tile.origin_x = 0;
  tile.origin_y = 0;
  tile.full_w = 8;
  tile.full_h = 8;
  EXPECT_THROW(conv2d_region(tile, spec, w, Region{4, 0, 5, 1}, 6, 6), std::logic_error);
}

TEST(RegionOps, BadRegionThrows) {
  Tensor in(Shape{1, 4, 4});
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{1, 1, 1, 1, 0, 0});
  EXPECT_THROW(
      conv2d_region(Tile::whole(in), spec, identity_conv_1x1(), Region{0, 0, 0, 0}, 4, 4),
      std::invalid_argument);
  EXPECT_THROW(
      conv2d_region(Tile::whole(in), spec, identity_conv_1x1(), Region{0, 0, 5, 5}, 4, 4),
      std::invalid_argument);
}

TEST(RegionOps, WeightSizeValidated) {
  Tensor in(Shape{2, 4, 4});
  const LayerSpec spec = LayerSpec::conv("c", 1, Window{3, 3, 1, 1, 1, 1});
  LayerWeights w;  // empty
  EXPECT_THROW(conv2d(in, spec, w), std::invalid_argument);
}

}  // namespace
}  // namespace d3::exec
