// Asynchronous transport end-to-end (ISSUE 8): the readiness-dispatch serving
// path — issue/complete transport verbs, step_async's phase machine, and the
// reactor's parked-stage epoll plumbing — against real worker processes over
// localhost TCP. The invariants are the repo's bedrock ones: outputs bitwise
// and transcripts byte-identical to blocking dispatch and to the wired
// engine's own infer(), regardless of how parked stages of different requests
// interleave. On top of the equivalence matrix: a concurrent-submitter stress
// (TSan hunts the reactor's park/unpark bookkeeping), a worker-kill sweep
// through the async path (bounded-backoff respawn, every request correct),
// and the heartbeat-starvation regression — a reactor saturated with parked
// and runnable stages must still fire due liveness probes, so a SIGSTOPped
// worker is declared dead by the probe, not by a stalled request.
#include <atomic>
#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/socket_transport.h"
#include "runtime/engine.h"
#include "runtime/serving_reactor.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "async_transport_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

// One worker process per tier, wired into a configured SocketTransport
// (same shape as socket_transport_test's cluster, minus the tile pool).
struct Cluster {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
  std::shared_ptr<rpc::SocketTransport> transport =
      std::make_shared<rpc::SocketTransport>();

  Cluster(const dnn::Network& net, const exec::WeightStore& weights,
          const core::SerializablePlan& plan,
          const std::vector<std::string>& worker_args = {}) {
    for (const char* node : {"device0", "edge0", "cloud0"}) {
      auto proc = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY, worker_args);
      rpc::Socket socket = proc->take_socket();
      {
        std::lock_guard<std::mutex> lock(mutex);
        procs[node] = std::move(proc);
      }
      transport->add_node(node, std::move(socket));
    }
    transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  }

  void enable_respawn(const std::string& node) {
    transport->set_reconnect(
        node,
        [this, node] {
          std::lock_guard<std::mutex> lock(mutex);
          // The transport only asks for a replacement after declaring this
          // incarnation dead. Kill it outright: ~WorkerProcess otherwise waits
          // out its EOF grace period, which a SIGSTOPped worker never answers.
          if (procs.count(node)) ::kill(procs[node]->pid(), SIGKILL);
          procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
          return procs[node]->take_socket();
        },
        rpc::SocketTransport::RetryPolicy{4, std::chrono::milliseconds(10), 2.0});
  }

  void signal_worker(const std::string& node, int sig) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_TRUE(procs.count(node));
    ::kill(procs[node]->pid(), sig);
  }
};

struct Fixture {
  dnn::Network net;
  exec::WeightStore weights;
  dnn::Tensor input;
  dnn::Tensor reference;

  explicit Fixture(dnn::Network n, std::uint64_t seed = 8)
      : net(std::move(n)), weights(exec::WeightStore::random_for(net, seed)) {
    util::Rng rng(seed + 1);
    input = exec::random_tensor(net.input_shape(), rng);
    reference = exec::Executor(net, weights).run(input);
  }
};

core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

OnlineEngine make_wired(const Fixture& f, const core::Assignment& plan,
                        const std::shared_ptr<rpc::Transport>& transport,
                        const std::optional<core::FusedTilePlan>& vsm = std::nullopt) {
  OnlineEngine::Options options;
  options.transport = transport;
  return OnlineEngine(f.net, f.weights, plan, vsm, options);
}

// --- Equivalence matrix -----------------------------------------------------

TEST(AsyncTransport, ReadinessDispatchMatchesBlockingAcrossProcesses) {
  for (const char* which : {"chain", "branch"}) {
    Fixture f(std::string(which) == "chain" ? dnn::zoo::tiny_chain()
                                            : dnn::zoo::tiny_branch());
    const core::Assignment plan = three_tier_plan(f.net);
    Cluster cluster(f.net, f.weights, core::SerializablePlan{f.net.name(), plan, std::nullopt});
    const OnlineEngine wired = make_wired(f, plan, cluster.transport);

    // The wired engine's own blocking infer() is the reference for both the
    // transcript and the (bitwise single-node-identical) output.
    const InferenceResult reference = wired.infer(f.input);
    expect_identical(reference.output, f.reference);

    for (const bool readiness : {false, true}) {
      ServingReactor::Options options;
      options.readiness_dispatch = readiness;
      ServingReactor reactor(wired, options);
      std::vector<std::size_t> ids;
      for (int i = 0; i < 6; ++i) ids.push_back(reactor.submit(f.input));
      for (const std::size_t id : ids) {
        const InferenceResult result = reactor.wait(id);
        expect_identical(result.output, reference.output);
        expect_same_transcript(result, reference);
      }
      const ServingReactor::Stats stats = reactor.stats();
      EXPECT_EQ(stats.completed, ids.size());
      if (readiness) {
        // The async walk must actually have parked on the wire at least once
        // — otherwise this test silently degenerated to the blocking path.
        EXPECT_GT(stats.parked_stages, 0u);
        EXPECT_GT(stats.wire_wait_ms, 0.0);
      } else {
        EXPECT_EQ(stats.parked_stages, 0u);
      }
    }
  }
}

TEST(AsyncTransport, ReadinessDispatchMatchesBlockingWithVsmStack) {
  Fixture f(dnn::zoo::tiny_chain());
  core::Assignment plan;
  plan.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  plan.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    plan.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    plan.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const std::optional<core::FusedTilePlan> vsm =
      core::make_fused_tile_plan(f.net, edge_stack, 2, 2);

  Cluster cluster(f.net, f.weights, core::SerializablePlan{f.net.name(), plan, vsm});
  const OnlineEngine wired = make_wired(f, plan, cluster.transport, vsm);
  const InferenceResult reference = wired.infer(f.input);
  expect_identical(reference.output, f.reference);

  ServingReactor::Options options;
  options.readiness_dispatch = true;
  ServingReactor reactor(wired, options);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(reactor.submit(f.input));
  for (const std::size_t id : ids) {
    const InferenceResult result = reactor.wait(id);
    expect_identical(result.output, reference.output);
    expect_same_transcript(result, reference);
  }
}

// --- Concurrency stress (run under TSan by the sanitizer CI job) ------------

TEST(AsyncTransport, ConcurrentSubmittersOverReadinessDispatch) {
  Fixture f(dnn::zoo::tiny_chain());
  const core::Assignment plan = three_tier_plan(f.net);
  Cluster cluster(f.net, f.weights, core::SerializablePlan{f.net.name(), plan, std::nullopt});
  const OnlineEngine wired = make_wired(f, plan, cluster.transport);
  const InferenceResult reference = wired.infer(f.input);

  ServingReactor::Options options;
  options.readiness_dispatch = true;
  ServingReactor reactor(wired, options);

  constexpr int kThreads = 4, kPerThread = 5;
  std::vector<std::vector<std::size_t>> ids(kThreads);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ids[t].push_back(reactor.submit(f.input));
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    for (std::thread& s : submitters) s.join();
  }
  for (const auto& thread_ids : ids)
    for (const std::size_t id : thread_ids) {
      const InferenceResult result = reactor.wait(id);
      expect_identical(result.output, reference.output);
      expect_same_transcript(result, reference);
    }
  EXPECT_EQ(reactor.stats().completed,
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- Worker death through the async path ------------------------------------

TEST(AsyncTransport, WorkerKillMidBatchRecoversThroughReadinessDispatch) {
  Fixture f(dnn::zoo::tiny_chain());
  const core::Assignment plan = three_tier_plan(f.net);
  Cluster cluster(f.net, f.weights, core::SerializablePlan{f.net.name(), plan, std::nullopt});
  cluster.enable_respawn("edge0");
  const OnlineEngine wired = make_wired(f, plan, cluster.transport);
  const InferenceResult reference = wired.infer(f.input);

  ServingReactor::Options options;
  options.readiness_dispatch = true;
  options.max_replays = 2;  // belt for deaths the engine cannot absorb in place
  ServingReactor reactor(wired, options);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(reactor.submit(f.input));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cluster.signal_worker("edge0", SIGKILL);

  for (const std::size_t id : ids) {
    const InferenceResult result = reactor.wait(id);
    // Recovery replays are bitwise-identical by the transcript-purity
    // invariant — a request that survived a mid-flight worker death is
    // indistinguishable from one that never saw it.
    expect_identical(result.output, reference.output);
    expect_same_transcript(result, reference);
  }
  EXPECT_EQ(reactor.stats().completed, ids.size());
}

// --- Heartbeat starvation regression ----------------------------------------
//
// Before ISSUE 8 the reactor only probed liveness from its *idle* branch: a
// reactor saturated with runnable or parked stages never went idle, so a
// wedged (not dead — no RST, no EOF) worker was discovered only when a
// request's own round-trip timed out. The loop now checks heartbeat_due_ms()
// at the top of every iteration. This test wedges the cloud worker with
// SIGSTOP while a stream of arrivals keeps the reactor busy, and requires the
// liveness probe — not request traffic — to declare the channel dead.
TEST(AsyncTransport, HeartbeatFiresWhileReactorIsBusyWithSigstoppedWorker) {
  Fixture f(dnn::zoo::tiny_chain());
  const core::Assignment plan = three_tier_plan(f.net);
  Cluster cluster(f.net, f.weights, core::SerializablePlan{f.net.name(), plan, std::nullopt});
  cluster.enable_respawn("cloud0");
  cluster.transport->enable_heartbeats(rpc::SocketTransport::HeartbeatPolicy{
      std::chrono::milliseconds(15), std::chrono::milliseconds(15), 2});
  const OnlineEngine wired = make_wired(f, plan, cluster.transport);

  ServingReactor::Options options;
  options.readiness_dispatch = true;
  options.max_replays = 4;
  ServingReactor reactor(wired, options);

  cluster.signal_worker("cloud0", SIGSTOP);
  // Open-loop arrivals: device/edge stages keep completing, so the reactor
  // loop keeps turning (runnable + parked work) instead of idling in epoll.
  std::vector<std::size_t> ids;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reactor.stats().heartbeat_deaths == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    ids.push_back(reactor.submit(f.input));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(reactor.stats().heartbeat_deaths, 1u);

  // The SIGSTOPped incarnation was declared dead, SIGKILLed by its owning
  // WorkerProcess when the respawn hook replaced it (SIGKILL terminates a
  // stopped process), and every request must still complete correctly —
  // in-place recovery or end-to-end replay, both bitwise-identical by the
  // purity invariant.
  for (const std::size_t id : ids) {
    const InferenceResult result = reactor.wait(id);
    expect_identical(result.output, f.reference);
  }
}

}  // namespace
}  // namespace d3::runtime
