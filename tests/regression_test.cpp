#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "profile/profiler.h"
#include "profile/regression.h"
#include "util/rng.h"

namespace d3::profile {
namespace {

TEST(Ridge, RecoversExactLinearModel) {
  // y = 2 + 3a - 5b, no noise: ridge with tiny l2 must recover coefficients.
  util::Rng rng(31);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(-10, 10);
    const double b = rng.uniform(-10, 10);
    rows.push_back({1.0, a, b});
    targets.push_back(2.0 + 3.0 * a - 5.0 * b);
  }
  const RidgeRegression model = RidgeRegression::fit(rows, targets);
  ASSERT_EQ(model.coefficients().size(), 3u);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[2], -5.0, 1e-6);
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 1.0, 1.0}), 0.0, 1e-6);
}

TEST(Ridge, RejectsBadInput) {
  EXPECT_THROW(RidgeRegression::fit({}, {}), std::invalid_argument);
  EXPECT_THROW(RidgeRegression::fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(RidgeRegression::fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), std::invalid_argument);
  const RidgeRegression m = RidgeRegression::fit({{1.0, 2.0}}, {1.0});
  EXPECT_THROW(m.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Regression, LayerClassification) {
  EXPECT_EQ(classify_layer(dnn::LayerKind::kConv), LayerClass::kConv);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kFullyConnected), LayerClass::kFullyConnected);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kMaxPool), LayerClass::kWindowed);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kAvgPool), LayerClass::kWindowed);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kGlobalAvgPool), LayerClass::kWindowed);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kReLU), LayerClass::kElementwise);
  EXPECT_EQ(classify_layer(dnn::LayerKind::kConcat), LayerClass::kElementwise);
}

TEST(Regression, FeaturesScaleSanely) {
  LayerCost cost{dnn::LayerKind::kConv, 2'000'000'000, 1'000'000, 3'000'000, 5'000'000, 4};
  const auto f = layer_features(cost);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);  // GFLOPs
  EXPECT_DOUBLE_EQ(f[2], 4.0);  // activation MB
  EXPECT_DOUBLE_EQ(f[3], 5.0);  // parameter MB
  EXPECT_DOUBLE_EQ(f[4], 6.0);  // excess GFLOPs: 2 * (16/4 - 1)
  LayerCost fc{dnn::LayerKind::kFullyConnected, 1'000'000'000, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(layer_features(fc)[4], 0.0);
}

TEST(Profiler, CalibrationWorkloadCoversAllClasses) {
  const auto workload = Profiler::calibration_workload({});
  int per_class[kNumLayerClasses] = {};
  for (const auto& cost : workload) ++per_class[static_cast<int>(classify_layer(cost.kind))];
  for (int c = 0; c < kNumLayerClasses; ++c) EXPECT_GT(per_class[c], 50) << "class " << c;
}

TEST(Profiler, WorkloadDeterministicInSeed) {
  const auto a = Profiler::calibration_workload({});
  const auto b = Profiler::calibration_workload({});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].flops, b[i].flops);
}

TEST(Estimator, RequiresAllClasses) {
  std::vector<TrainingSample> only_conv = {
      {LayerCost{dnn::LayerKind::kConv, 1000, 100, 100, 100}, 1e-3}};
  EXPECT_THROW(LatencyEstimator::fit(only_conv), std::invalid_argument);
}

// Fig. 4: the fitted regression tracks the actual per-layer time closely.
class EstimatorAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(EstimatorAccuracy, Fig4MapeWithinBounds) {
  const std::string which = GetParam();
  const NodeSpec node = which == "cpu" ? i7_8700() : rtx_2080ti_server();
  const LatencyEstimator est = Profiler::profile_node(node);
  const dnn::Network alexnet = dnn::zoo::alexnet();
  // Mean absolute percentage error under 35% across AlexNet layers; per-layer
  // prediction is within 3x everywhere (no gross misprediction).
  EXPECT_LT(est.mape_on(alexnet, node), 0.35);
  for (dnn::LayerId id = 0; id < alexnet.num_layers(); ++id) {
    const LayerCost cost = layer_cost(alexnet, id);
    const double truth = HardwareModel::expected_latency(cost, node);
    const double pred = est.predict(cost);
    EXPECT_LT(pred, truth * 3.0) << alexnet.layer(id).spec.name;
    EXPECT_GT(pred, truth / 3.0) << alexnet.layer(id).spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(CpuGpu, EstimatorAccuracy, ::testing::Values("cpu", "gpu"));

TEST(Estimator, PreservesDeviceEdgeCloudOrdering) {
  // Predictions must preserve the tier ordering HPA relies on for heavy layers.
  const auto estimators = Profiler::profile_tiers(paper_testbed());
  const dnn::Network net = dnn::zoo::vgg16();
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const LayerCost cost = layer_cost(net, id);
    if (cost.kind != dnn::LayerKind::kConv) continue;
    const double d = estimators[0].predict(cost);
    const double e = estimators[1].predict(cost);
    EXPECT_GT(d, e) << net.layer(id).spec.name;
  }
}

TEST(Estimator, PredictionsNonNegative) {
  const LatencyEstimator est = Profiler::profile_node(rtx_2080ti_server());
  // A degenerate micro-layer must not yield a negative prediction.
  LayerCost tiny{dnn::LayerKind::kReLU, 1, 4, 4, 0};
  EXPECT_GE(est.predict(tiny), 0.0);
}

}  // namespace
}  // namespace d3::profile
