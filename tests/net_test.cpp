#include <gtest/gtest.h>

#include "net/conditions.h"
#include "net/dynamics.h"
#include "util/rng.h"

namespace d3::net {
namespace {

TEST(Conditions, TableThreeValuesVerbatim) {
  const NetworkCondition w = wifi();
  EXPECT_DOUBLE_EQ(w.device_edge_mbps, 84.95);
  EXPECT_DOUBLE_EQ(w.edge_cloud_mbps, 31.53);
  EXPECT_DOUBLE_EQ(w.device_cloud_mbps, 18.75);

  const NetworkCondition g4 = lte_4g();
  EXPECT_DOUBLE_EQ(g4.edge_cloud_mbps, 13.79);
  EXPECT_DOUBLE_EQ(g4.device_cloud_mbps, 6.12);

  const NetworkCondition g5 = nr_5g();
  EXPECT_DOUBLE_EQ(g5.edge_cloud_mbps, 22.75);
  EXPECT_DOUBLE_EQ(g5.device_cloud_mbps, 11.64);

  const NetworkCondition opt = optical();
  EXPECT_DOUBLE_EQ(opt.edge_cloud_mbps, 50.23);
  // Device reaches the cloud over Wi-Fi when the edge is on optical backhaul.
  EXPECT_DOUBLE_EQ(opt.device_cloud_mbps, 18.75);
}

TEST(Conditions, LanIsAlwaysWifi) {
  for (const auto& c : paper_conditions()) EXPECT_DOUBLE_EQ(c.device_edge_mbps, 84.95);
}

TEST(Conditions, PaperOrder) {
  const auto cs = paper_conditions();
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0].name, "Wi-Fi");
  EXPECT_EQ(cs[1].name, "4G");
  EXPECT_EQ(cs[2].name, "5G");
  EXPECT_EQ(cs[3].name, "Optical Network");
}

TEST(Conditions, TransferSecondsMatchesSizeOverBandwidth) {
  const NetworkCondition w = wifi();
  // 1 MB over 31.53 Mbps.
  EXPECT_NEAR(w.transfer_seconds(1'000'000, w.edge_cloud_mbps), 8.0 / 31.53, 1e-9);
}

TEST(Conditions, RttAddsConstant) {
  NetworkCondition w = wifi();
  w.rtt_seconds = 0.02;
  EXPECT_NEAR(w.transfer_seconds(1'000'000, 8.0), 1.0 + 0.02, 1e-12);
}

TEST(Conditions, WithCloudUplinkScalesBothPaths) {
  const NetworkCondition base = wifi();
  const NetworkCondition doubled = with_cloud_uplink(base, base.edge_cloud_mbps * 2);
  EXPECT_DOUBLE_EQ(doubled.edge_cloud_mbps, base.edge_cloud_mbps * 2);
  EXPECT_DOUBLE_EQ(doubled.device_cloud_mbps, base.device_cloud_mbps * 2);
  EXPECT_DOUBLE_EQ(doubled.device_edge_mbps, base.device_edge_mbps);
  EXPECT_THROW(with_cloud_uplink(base, 0), std::invalid_argument);
}

TEST(Dynamics, TraceLookup) {
  const BandwidthTrace trace({{0.0, 10.0}, {5.0, 20.0}, {9.0, 5.0}});
  EXPECT_DOUBLE_EQ(trace.mbps_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(trace.mbps_at(4.999), 10.0);
  EXPECT_DOUBLE_EQ(trace.mbps_at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(trace.mbps_at(100.0), 5.0);
}

TEST(Dynamics, TraceValidation) {
  EXPECT_THROW(BandwidthTrace({}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({{1.0, 5.0}}), std::invalid_argument);        // not t=0
  EXPECT_THROW(BandwidthTrace({{0.0, 5.0}, {0.0, 6.0}}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({{0.0, -5.0}}), std::invalid_argument);
}

TEST(Dynamics, RandomWalkStaysInBounds) {
  util::Rng rng(41);
  const NetworkCondition base = wifi();
  const BandwidthTrace trace =
      BandwidthTrace::random_walk(base, 100.0, 1.0, 0.3, 0.25, 4.0, rng);
  EXPECT_EQ(trace.steps().size(), 100u);
  for (const auto& step : trace.steps()) {
    EXPECT_GE(step.edge_cloud_mbps, base.edge_cloud_mbps * 0.25 - 1e-9);
    EXPECT_LE(step.edge_cloud_mbps, base.edge_cloud_mbps * 4.0 + 1e-9);
  }
}

TEST(Dynamics, ConditionAtScalesUplink) {
  const NetworkCondition base = wifi();
  const BandwidthTrace trace({{0.0, base.edge_cloud_mbps}, {10.0, base.edge_cloud_mbps / 2}});
  const NetworkCondition late = trace.condition_at(base, 50.0);
  EXPECT_NEAR(late.edge_cloud_mbps, base.edge_cloud_mbps / 2, 1e-9);
  EXPECT_NEAR(late.device_cloud_mbps, base.device_cloud_mbps / 2, 1e-9);
}

}  // namespace
}  // namespace d3::net
