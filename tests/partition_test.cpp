#include <cmath>

#include <gtest/gtest.h>

#include "core/partition.h"
#include "dnn/model_zoo.h"
#include "profile/profiler.h"

namespace d3::core {
namespace {

// v0 -> v1 -> v2 chain with easily hand-checked weights.
PartitionProblem tiny_chain_problem() {
  PartitionProblem p;
  p.dag = graph::Dag(3);
  p.dag.add_edge(0, 1);
  p.dag.add_edge(1, 2);
  p.vertex_time = {TierTimes{}, TierTimes{{0.9, 0.3, 0.1}}, TierTimes{{0.8, 0.4, 0.05}}};
  p.out_bytes = {1'000'000, 500'000, 1'000};
  p.in_bytes = {0, 1'000'000, 500'000};
  p.condition = net::NetworkCondition{"test", 80.0, 20.0, 10.0, 0.0};
  return p;
}

TEST(Partition, TierOrderRelation) {
  EXPECT_TRUE(before(Tier::kDevice, Tier::kEdge));
  EXPECT_TRUE(before(Tier::kEdge, Tier::kCloud));
  EXPECT_FALSE(before(Tier::kCloud, Tier::kDevice));
  EXPECT_TRUE(before_or_same(Tier::kEdge, Tier::kEdge));
  EXPECT_EQ(tier_name(Tier::kDevice), "device");
}

TEST(Partition, BandwidthLookup) {
  const PartitionProblem p = tiny_chain_problem();
  EXPECT_DOUBLE_EQ(p.bandwidth_mbps(Tier::kDevice, Tier::kEdge), 80.0);
  EXPECT_DOUBLE_EQ(p.bandwidth_mbps(Tier::kEdge, Tier::kDevice), 80.0);  // symmetric
  EXPECT_DOUBLE_EQ(p.bandwidth_mbps(Tier::kEdge, Tier::kCloud), 20.0);
  EXPECT_DOUBLE_EQ(p.bandwidth_mbps(Tier::kDevice, Tier::kCloud), 10.0);
  EXPECT_TRUE(std::isinf(p.bandwidth_mbps(Tier::kEdge, Tier::kEdge)));
}

TEST(Partition, IntraTierTransferIsFree) {
  const PartitionProblem p = tiny_chain_problem();
  EXPECT_DOUBLE_EQ(p.transfer_seconds(123456, Tier::kEdge, Tier::kEdge), 0.0);
}

TEST(Partition, TotalLatencyHandComputed) {
  const PartitionProblem p = tiny_chain_problem();
  // v1 on edge, v2 on cloud: t_e(v1) + t_c(v2) + 1MB over 80Mbps + 0.5MB over 20Mbps.
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kEdge, Tier::kCloud};
  const double expected = 0.3 + 0.05 + (1e6 * 8 / 80e6) + (5e5 * 8 / 20e6);
  EXPECT_NEAR(total_latency(p, a), expected, 1e-12);
}

TEST(Partition, UniformAssignmentsKeepV0OnDevice) {
  const PartitionProblem p = tiny_chain_problem();
  for (const Tier t : kAllTiers) {
    const Assignment a = uniform_assignment(p, t);
    EXPECT_EQ(a.tier[0], Tier::kDevice);
    EXPECT_EQ(a.tier[1], t);
    EXPECT_TRUE(respects_precedence(p, a));
  }
}

TEST(Partition, PrecedenceViolationDetected) {
  const PartitionProblem p = tiny_chain_problem();
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kCloud, Tier::kEdge};  // v2 device-ward of v1
  EXPECT_FALSE(respects_precedence(p, a));
  a.tier = {Tier::kEdge, Tier::kEdge, Tier::kEdge};  // v0 off the device
  EXPECT_FALSE(respects_precedence(p, a));
}

TEST(Partition, BoundaryTrafficBuckets) {
  const PartitionProblem p = tiny_chain_problem();
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kEdge, Tier::kCloud};
  const BoundaryTraffic t = boundary_traffic(p, a);
  EXPECT_EQ(t.device_edge_bytes, 1'000'000);
  EXPECT_EQ(t.edge_cloud_bytes, 500'000);
  EXPECT_EQ(t.device_cloud_bytes, 0);
  EXPECT_EQ(t.to_cloud_bytes(), 500'000);
}

TEST(Partition, BoundaryTrafficDedupsPerDestinationTier) {
  // v1 fans out to v2 and v3, both on the cloud: the tensor ships once.
  PartitionProblem p;
  p.dag = graph::Dag(4);
  p.dag.add_edge(0, 1);
  p.dag.add_edge(1, 2);
  p.dag.add_edge(1, 3);
  p.vertex_time.assign(4, TierTimes{});
  p.out_bytes = {10, 1000, 1, 1};
  p.in_bytes = {0, 10, 1000, 1000};
  p.condition = net::wifi();
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kDevice, Tier::kCloud, Tier::kCloud};
  EXPECT_EQ(boundary_traffic(p, a).device_cloud_bytes, 1000);
}

TEST(Partition, TierLoadAccumulates) {
  const PartitionProblem p = tiny_chain_problem();
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kEdge, Tier::kEdge};
  const TierLoad load = tier_load(p, a);
  EXPECT_DOUBLE_EQ(load.at(Tier::kDevice), 0.0);
  EXPECT_DOUBLE_EQ(load.at(Tier::kEdge), 0.3 + 0.4);
  EXPECT_DOUBLE_EQ(load.at(Tier::kCloud), 0.0);
}

TEST(Partition, ValidationCatchesInconsistency) {
  PartitionProblem p = tiny_chain_problem();
  p.vertex_time.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  PartitionProblem q = tiny_chain_problem();
  q.vertex_time[0].at(Tier::kDevice) = 1.0;  // v0 must cost nothing
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

TEST(Partition, MakeProblemExactMirrorsNetwork) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const PartitionProblem p = make_problem_exact(net, profile::paper_testbed(), net::wifi());
  EXPECT_EQ(p.size(), net.num_layers() + 1);
  EXPECT_EQ(p.out_bytes[0], net.input_shape().bytes());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const auto v = dnn::Network::vertex_of(id);
    EXPECT_EQ(p.out_bytes[v], net.lambda_out_bytes(id));
    EXPECT_EQ(p.in_bytes[v], net.lambda_in_bytes(id));
    // Device slower than cloud for every layer on this testbed.
    EXPECT_GE(p.vertex_time[v].at(Tier::kDevice), p.vertex_time[v].at(Tier::kCloud));
  }
}

TEST(Partition, MakeProblemUsesEstimators) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  const PartitionProblem est = make_problem(net, estimators, net::wifi());
  const PartitionProblem exact = make_problem_exact(net, profile::paper_testbed(), net::wifi());
  ASSERT_EQ(est.size(), exact.size());
  // Estimated and exact vertex weights agree within a loose factor.
  for (graph::VertexId v = 1; v < est.size(); ++v) {
    for (const Tier t : kAllTiers) {
      if (exact.vertex_time[v].at(t) > 1e-5) {
        EXPECT_LT(est.vertex_time[v].at(t) / exact.vertex_time[v].at(t), 10.0);
      }
    }
  }
}

}  // namespace
}  // namespace d3::core
