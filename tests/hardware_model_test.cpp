#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "profile/hardware_model.h"
#include "util/units.h"

namespace d3::profile {
namespace {

// The n-th conv layer of VGG-16 (0-based). n=0 is the shallow 3-channel conv1;
// n=1 is the deep-channel conv2 where kernels run at full utilisation.
LayerCost sample_conv(int n = 1) {
  const dnn::Network net = dnn::zoo::vgg16();
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    if (net.layer(id).spec.kind == dnn::LayerKind::kConv && n-- == 0)
      return layer_cost(net, id);
  throw std::logic_error("no conv");
}

LayerCost sample_fc() {
  const dnn::Network net = dnn::zoo::vgg16();
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    if (net.layer(id).spec.kind == dnn::LayerKind::kFullyConnected) return layer_cost(net, id);
  throw std::logic_error("no fc");
}

TEST(HardwareModel, FasterNodesAreFaster) {
  const LayerCost conv = sample_conv();
  const double rpi = HardwareModel::expected_latency(conv, raspberry_pi_4b());
  const double i7 = HardwareModel::expected_latency(conv, i7_8700());
  const double gpu = HardwareModel::expected_latency(conv, rtx_2080ti_server());
  EXPECT_GT(rpi, i7);
  EXPECT_GT(i7, gpu);
}

TEST(HardwareModel, LatencyIsPositiveAndIncludesOverhead) {
  const LayerCost tiny{dnn::LayerKind::kReLU, 10, 40, 40, 0};
  const NodeSpec node = i7_8700();
  EXPECT_GE(HardwareModel::expected_latency(tiny, node), node.layer_overhead_seconds);
}

TEST(HardwareModel, ConvComputeBoundOnDevice) {
  // Deep-channel VGG conv layers on the RPi must be compute-limited: latency
  // scales with FLOPs, roughly FLOPs / effective_gflops.
  const LayerCost conv = sample_conv(1);
  const NodeSpec rpi = raspberry_pi_4b();
  const double t = HardwareModel::expected_latency(conv, rpi);
  const double compute_floor = static_cast<double>(conv.flops) / (rpi.effective_gflops * 1e9);
  EXPECT_GE(t, compute_floor * 0.99);
  EXPECT_LE(t, compute_floor * 1.5);
}

TEST(HardwareModel, ShallowChannelConvRunsBelowPeak) {
  // Fig. 1a: conv1 (3 input channels) is several times slower than its FLOPs
  // alone suggest — the vector lanes cannot fill.
  const LayerCost conv1 = sample_conv(0);
  const NodeSpec rpi = raspberry_pi_4b();
  const double t = HardwareModel::expected_latency(conv1, rpi);
  const double compute_floor =
      static_cast<double>(conv1.flops) / (rpi.effective_gflops * 1e9);
  EXPECT_GT(t, compute_floor * 3.0);
  EXPECT_LT(t, compute_floor * 8.0);
}

TEST(HardwareModel, FcMemoryBoundOnGpu) {
  // VGG fc1 has 103M parameters; on the 2080 Ti its time must be dominated by
  // parameter traffic, not arithmetic.
  const LayerCost fc = sample_fc();
  const NodeSpec gpu = rtx_2080ti_server();
  const double t = HardwareModel::expected_latency(fc, gpu);
  const double mem_floor = static_cast<double>(fc.param_bytes) /
                           (gpu.memory_bandwidth_gbps * 1e9);
  EXPECT_GE(t, mem_floor * 0.9);
  const double pure_compute = static_cast<double>(fc.flops) / (gpu.effective_gflops * 1e9);
  EXPECT_GT(t, pure_compute);  // memory wall, not FLOPs
}

TEST(HardwareModel, MeasurementNoiseIsBoundedAndCentred) {
  const LayerCost conv = sample_conv();
  const NodeSpec node = i7_8700();
  const double expected = HardwareModel::expected_latency(conv, node);
  util::Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 500; ++i) {
    const double m = HardwareModel::measure(conv, node, rng);
    EXPECT_GT(m, expected * 0.7);
    EXPECT_LT(m, expected * 1.4);
    sum += m;
  }
  EXPECT_NEAR(sum / 500.0, expected, expected * 0.02);
}

TEST(HardwareModel, NetworkLatencyOrdersTestbedTiers) {
  const dnn::Network net = dnn::zoo::alexnet();
  const TierNodes nodes = paper_testbed();
  const double device = HardwareModel::network_latency(net, nodes.device);
  const double edge = HardwareModel::network_latency(net, nodes.edge);
  const double cloud = HardwareModel::network_latency(net, nodes.cloud);
  // t_d > t_e > t_c (§III-C "typically").
  EXPECT_GT(device, edge);
  EXPECT_GT(edge, cloud);
}

TEST(HardwareModel, Fig1ScaleSanity) {
  // Fig. 1a: VGG-16 conv layers on an RPi-class device run in the 0.05..1 s
  // range; total network latency is seconds, not milliseconds.
  const dnn::Network net = dnn::zoo::vgg16();
  const NodeSpec rpi = raspberry_pi_4b();
  const double total = HardwareModel::network_latency(net, rpi);
  EXPECT_GT(total, 1.0);
  EXPECT_LT(total, 30.0);
  // And on the cloud GPU the same network is multiple orders faster.
  EXPECT_LT(HardwareModel::network_latency(net, rtx_2080ti_server()), total / 100.0);
}

TEST(HardwareModel, LayerCostPullsNetworkQuantities) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const LayerCost c = layer_cost(net, 0);  // conv1
  EXPECT_EQ(c.kind, dnn::LayerKind::kConv);
  EXPECT_EQ(c.flops, net.layer(0).flops);
  EXPECT_EQ(c.input_bytes, net.lambda_in_bytes(0));
  EXPECT_EQ(c.output_bytes, net.lambda_out_bytes(0));
  EXPECT_EQ(c.param_bytes, net.layer(0).params * 4);
}

TEST(HardwareModel, CacheCliffSlowsLargeWorkingSets) {
  // Same FLOPs, working set below vs far above cache: the spilled one is slower.
  const NodeSpec node = i7_8700();
  LayerCost small{dnn::LayerKind::kReLU, 1000, 1 << 18, 1 << 18, 0};
  LayerCost large = small;
  large.input_bytes = 1 << 28;
  large.output_bytes = 1 << 28;
  const double t_small = HardwareModel::expected_latency(small, node);
  const double t_large = HardwareModel::expected_latency(large, node);
  const double naive_ratio = static_cast<double>(large.input_bytes + large.output_bytes) /
                             static_cast<double>(small.input_bytes + small.output_bytes);
  // Slower than pure linear scaling because bandwidth derates.
  EXPECT_GT((t_large - node.layer_overhead_seconds) /
                (t_small - node.layer_overhead_seconds),
            naive_ratio);
}

}  // namespace
}  // namespace d3::profile
