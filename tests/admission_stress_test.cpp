// Concurrency stress for the admission-control paths of both serving front
// ends (run under TSan in CI). Pins the ISSUE-6 bugfix: a request evicted by
// drop-oldest admission between submit() and wait() raises RequestDropped
// exactly once — to whichever caller claims it first — and a concurrent
// drain() skips claimed requests instead of hanging or throwing for them.
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "runtime/serving_reactor.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kPerThread = 16;

struct Fixture {
  dnn::Network net;
  exec::WeightStore weights;
  dnn::Tensor input;
  dnn::Tensor reference;

  Fixture() : net(dnn::zoo::tiny_chain()), weights(exec::WeightStore::random_for(net, 21)) {
    util::Rng rng(22);
    input = exec::random_tensor(net.input_shape(), rng);
    reference = exec::Executor(net, weights).run(input);
  }
};

core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

// Submits then waits from `kThreads` concurrent threads against `front`,
// which must expose submit/wait with BatchScheduler-compatible semantics.
// Every id is waited by exactly one thread, so the dropped count observed by
// callers must equal the count admission control recorded.
template <typename FrontEnd>
void hammer_own_ids(FrontEnd& front, const dnn::Tensor& input, const dnn::Tensor& reference,
                    std::atomic<std::size_t>& completed, std::atomic<std::size_t>& refused) {
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::size_t> ids;
      ids.reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) ids.push_back(front.submit(input));
      for (const std::size_t id : ids) {
        try {
          const InferenceResult result = front.wait(id);
          ASSERT_EQ(result.output.shape(), reference.shape());
          for (std::size_t i = 0; i < reference.size(); ++i)
            ASSERT_EQ(result.output[i], reference[i]);
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const RequestDropped&) {
          refused.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

TEST(AdmissionStress, SchedulerDropsAreObservedExactlyOnce) {
  Fixture f;
  // Slow device stage so the depth-2 queue overflows and evictions race
  // against the submitters' own wait() calls.
  OnlineEngine::Options slow;
  slow.emulated_tier_service_seconds = {0.001, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, slow);

  BatchScheduler::Options options;
  options.admission_capacity = 2;
  BatchScheduler scheduler(engine, options);

  std::atomic<std::size_t> completed{0}, refused{0};
  hammer_own_ids(scheduler, f.input, f.reference, completed, refused);

  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(completed.load() + refused.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.completed, completed.load());
  EXPECT_EQ(stats.dropped, refused.load());
  EXPECT_GT(refused.load(), 0u) << "stress produced no drops; tighten the queue";
}

TEST(AdmissionStress, ReactorRefusalsAreObservedExactlyOnce) {
  Fixture f;
  OnlineEngine::Options slow;
  slow.emulated_tier_service_seconds = {0.001, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, slow);

  ServingReactor::Options options;
  options.admission_capacity = 2;
  options.max_inflight = 4;
  ServingReactor reactor(engine, options);

  std::atomic<std::size_t> completed{0}, refused{0};
  hammer_own_ids(reactor, f.input, f.reference, completed, refused);

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(completed.load() + refused.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.completed, completed.load());
  EXPECT_EQ(stats.dropped + stats.shed + stats.expired, refused.load());
  EXPECT_GT(refused.load(), 0u) << "stress produced no drops; tighten the queue";
}

// drain() racing wait() across threads: each request's result is claimed by
// exactly one caller; drain skips claimed and refused requests rather than
// hanging on them or throwing (the pre-fix drain did both). The regression
// this pins: wait() observing a drop concurrently with drain() walking the
// same id must never deadlock drain().
template <typename FrontEnd>
void run_drain_race(FrontEnd& front, const Fixture& f, std::size_t& drained,
                    std::atomic<std::size_t>& waited, std::atomic<std::size_t>& refused) {
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t id = front.submit(f.input);
        // Half the ids are waited here, racing the drainer for the claim.
        if (id % 2 == 0) {
          try {
            const InferenceResult result = front.wait(id);
            for (std::size_t j = 0; j < f.reference.size(); ++j)
              ASSERT_EQ(result.output[j], f.reference[j]);
            waited.fetch_add(1, std::memory_order_relaxed);
          } catch (const RequestDropped&) {
            refused.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::logic_error&) {
            // the drainer claimed it first — fine, but never twice
          }
        }
      }
    });
  }
  std::thread drainer([&] { drained = front.drain().size(); });
  for (std::thread& thread : submitters) thread.join();
  drainer.join();
  // Late drain: every remaining unclaimed result, and proof the front end is
  // still consistent after the race.
  drained += front.drain().size();
}

TEST(AdmissionStress, SchedulerDrainNeverHangsRacingWaiters) {
  Fixture f;
  OnlineEngine::Options slow;
  slow.emulated_tier_service_seconds = {0.001, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, slow);

  BatchScheduler::Options options;
  options.admission_capacity = 2;
  BatchScheduler scheduler(engine, options);

  std::size_t drained = 0;
  std::atomic<std::size_t> waited{0}, refused{0};
  run_drain_race(scheduler, f, drained, waited, refused);

  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  // Every completed result went to exactly one claimant.
  EXPECT_EQ(drained + waited.load(), stats.completed);
  EXPECT_EQ(stats.completed + stats.dropped, kThreads * kPerThread);
}

TEST(AdmissionStress, ReactorDrainNeverHangsRacingWaiters) {
  Fixture f;
  OnlineEngine::Options slow;
  slow.emulated_tier_service_seconds = {0.001, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, slow);

  ServingReactor::Options options;
  options.admission_capacity = 2;
  options.max_inflight = 4;
  ServingReactor reactor(engine, options);

  std::size_t drained = 0;
  std::atomic<std::size_t> waited{0}, refused{0};
  run_drain_race(reactor, f, drained, waited, refused);

  const ServingReactor::Stats stats = reactor.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(drained + waited.load(), stats.completed);
  EXPECT_EQ(stats.completed + stats.dropped + stats.shed + stats.expired,
            kThreads * kPerThread);
}

}  // namespace
}  // namespace d3::runtime
