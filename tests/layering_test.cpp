#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "graph/layering.h"

namespace d3::graph {
namespace {

// The Fig. 6 example: v5 has predecessors {v1..v4}, v6 has a proper subset of
// them, v7 has a predecessor outside Vp5.
Dag fig6() {
  Dag d(9);
  for (VertexId v = 1; v <= 4; ++v) d.add_edge(0, v);
  d.add_edge(0, 8);  // the extra predecessor feeding v7
  d.add_edge(1, 5);
  d.add_edge(2, 5);
  d.add_edge(3, 5);
  d.add_edge(4, 5);
  d.add_edge(1, 6);
  d.add_edge(2, 6);
  d.add_edge(1, 7);
  d.add_edge(8, 7);
  return d;
}

TEST(Layering, LongestDistanceOnChain) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  EXPECT_EQ(longest_distance(d), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Layering, LongestDistancePicksLongerPath) {
  // 0 -> 3 directly but also 0 -> 1 -> 2 -> 3: delta(3) must be 3.
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  d.add_edge(0, 3);
  EXPECT_EQ(longest_distance(d)[3], 3);
}

TEST(Layering, UnreachableVertexGetsMinusOne) {
  Dag d(3);
  d.add_edge(0, 1);
  EXPECT_EQ(longest_distance(d)[2], -1);
}

TEST(Layering, GraphLayersPartitionVertices) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  const auto layers = graph_layers(d);
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0], std::vector<VertexId>{0});
  EXPECT_EQ(layers[1], (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(layers[2], std::vector<VertexId>{3});
}

// §III-E worked example: the Inception-v4 grid module has 7 graph layers
// Z0={v0}, Z1={v1}, Z2={v2..v5}, Z3={v6..v9}, Z4={v10}, Z5={v11,v12}, Z6={v13}.
TEST(Layering, GridModuleMatchesPaperFig3) {
  const dnn::Network net = dnn::zoo::grid_module();
  const auto layers = graph_layers(net.to_dag());
  ASSERT_EQ(layers.size(), 7u);
  EXPECT_EQ(layers[0], std::vector<VertexId>{0});
  EXPECT_EQ(layers[1], std::vector<VertexId>{1});
  EXPECT_EQ(layers[2], (std::vector<VertexId>{2, 3, 4, 5}));
  EXPECT_EQ(layers[3], (std::vector<VertexId>{6, 7, 8, 9}));
  EXPECT_EQ(layers[4], std::vector<VertexId>{10});
  EXPECT_EQ(layers[5], (std::vector<VertexId>{11, 12}));
  EXPECT_EQ(layers[6], std::vector<VertexId>{13});
}

TEST(Sis, PaperFig6Example) {
  const Dag d = fig6();
  // Vp6 = {1,2} ⊂ Vp5 = {1,2,3,4}: v6 is a SIS vertex of v5.
  EXPECT_TRUE(is_sis_vertex(d, 5, 6));
  // Vp7 = {1,8} ⊄ Vp5: v7 is not.
  EXPECT_FALSE(is_sis_vertex(d, 5, 7));
}

TEST(Sis, RequiresProperSubset) {
  const Dag d = fig6();
  // A vertex is not its own SIS vertex, and equal predecessor sets don't count.
  EXPECT_FALSE(is_sis_vertex(d, 5, 5));
  Dag e(4);
  e.add_edge(0, 1);
  e.add_edge(0, 2);
  e.add_edge(1, 3);
  e.add_edge(2, 3);
  // Vp(3) = {1,2}; a sibling with identical preds is not a *proper* subset.
  Dag f(5);
  f.add_edge(0, 1);
  f.add_edge(0, 2);
  f.add_edge(1, 3);
  f.add_edge(2, 3);
  f.add_edge(1, 4);
  f.add_edge(2, 4);
  EXPECT_FALSE(is_sis_vertex(f, 3, 4));
}

TEST(Sis, EmptyPredecessorSetNeverSis) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  // Vp(0) = {} is not a SIS of anything.
  EXPECT_FALSE(is_sis_vertex(d, 1, 0));
}

TEST(Sis, FilterCandidates) {
  const Dag d = fig6();
  const auto sis = sis_vertices(d, 5, {5, 6, 7});
  EXPECT_EQ(sis, std::vector<VertexId>{6});
}

}  // namespace
}  // namespace d3::graph
