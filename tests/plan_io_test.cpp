#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "rpc/wire.h"

namespace d3::core {
namespace {

SerializablePlan sample_plan(const dnn::Network& net) {
  SerializablePlan plan;
  plan.model_name = net.name();
  plan.assignment.tier.assign(net.num_layers() + 1, Tier::kCloud);
  plan.assignment.tier[0] = Tier::kDevice;
  for (graph::VertexId v = 1; v <= 3; ++v) plan.assignment.tier[v] = Tier::kDevice;
  for (graph::VertexId v = 4; v <= 6; ++v) plan.assignment.tier[v] = Tier::kEdge;
  return plan;
}

TEST(PlanIo, RoundTripWithoutVsm) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const SerializablePlan original = sample_plan(net);
  const SerializablePlan parsed = parse_plan(serialize_plan(original), net);
  EXPECT_EQ(parsed.model_name, original.model_name);
  EXPECT_EQ(parsed.assignment.tier, original.assignment.tier);
  EXPECT_FALSE(parsed.vsm.has_value());
}

TEST(PlanIo, RoundTripWithVsm) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  SerializablePlan original = sample_plan(net);
  const std::vector<dnn::LayerId> stack = {3, 4, 5};
  original.vsm = make_fused_tile_plan(net, stack, 2, 2);
  const SerializablePlan parsed = parse_plan(serialize_plan(original), net);
  ASSERT_TRUE(parsed.vsm.has_value());
  EXPECT_EQ(parsed.vsm->stack, stack);
  EXPECT_EQ(parsed.vsm->grid_rows, 2);
  EXPECT_EQ(parsed.vsm->grid_cols, 2);
  // Full geometry is rebuilt identically.
  ASSERT_EQ(parsed.vsm->tiles.size(), original.vsm->tiles.size());
  for (std::size_t t = 0; t < parsed.vsm->tiles.size(); ++t) {
    EXPECT_EQ(parsed.vsm->tiles[t].output_region, original.vsm->tiles[t].output_region);
    EXPECT_EQ(parsed.vsm->tiles[t].input_regions, original.vsm->tiles[t].input_regions);
  }
}

TEST(PlanIo, FormatIsStable) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  SerializablePlan plan = sample_plan(net);
  plan.vsm = make_fused_tile_plan(net, std::vector<dnn::LayerId>{3, 4, 5}, 2, 2);
  EXPECT_EQ(serialize_plan(plan),
            "d3-plan v1\n"
            "model tiny-chain\n"
            "tiers d d d d e e e c c c c\n"
            "vsm 2x2 3,4,5\n");
}

TEST(PlanIo, RejectsMalformedInput) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  EXPECT_THROW(parse_plan("", net), std::invalid_argument);
  EXPECT_THROW(parse_plan("d3-plan v2\nmodel tiny-chain\ntiers d\n", net),
               std::invalid_argument);
  EXPECT_THROW(parse_plan("d3-plan v1\ntiers d d\n", net), std::invalid_argument);
  // Wrong tier count.
  EXPECT_THROW(parse_plan("d3-plan v1\nmodel tiny-chain\ntiers d e c\n", net),
               std::invalid_argument);
  // Unknown tier letter.
  std::string bad = "d3-plan v1\nmodel tiny-chain\ntiers d";
  for (std::size_t i = 0; i < net.num_layers(); ++i) bad += " x";
  EXPECT_THROW(parse_plan(bad + "\n", net), std::invalid_argument);
}

TEST(PlanIo, RejectsModelMismatch) {
  const dnn::Network chain = dnn::zoo::tiny_chain();
  const dnn::Network branch = dnn::zoo::tiny_branch();
  const std::string text = serialize_plan(sample_plan(chain));
  EXPECT_THROW(parse_plan(text, branch), std::invalid_argument);
}

TEST(PlanIo, RejectsV0OffDevice) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  std::string text = "d3-plan v1\nmodel tiny-chain\ntiers e";
  for (std::size_t i = 0; i < net.num_layers(); ++i) text += " e";
  EXPECT_THROW(parse_plan(text + "\n", net), std::invalid_argument);
}

TEST(PlanIo, RejectsBadVsmStack) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const std::string base = serialize_plan(sample_plan(net));
  // Out-of-range layer id.
  EXPECT_THROW(parse_plan(base + "vsm 2x2 98,99\n", net), std::invalid_argument);
  // Non-tileable stack (fc layer id 6).
  EXPECT_THROW(parse_plan(base + "vsm 2x2 6\n", net), std::invalid_argument);
  // Malformed grid.
  EXPECT_THROW(parse_plan(base + "vsm 22 3,4\n", net), std::invalid_argument);
}

TEST(PlanIo, RejectsHalfNumericTokensAndTrailingGarbage) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const std::string base = serialize_plan(sample_plan(net));
  // "2x2junk" must not be half-read as 2x2.
  EXPECT_THROW(parse_plan(base + "vsm 2x2junk 3,4,5\n", net), std::invalid_argument);
  // A grid dimension overflowing int must not be truncated into a small one.
  EXPECT_THROW(parse_plan(base + "vsm 4294967298x2 3,4,5\n", net), std::invalid_argument);
  EXPECT_THROW(parse_plan(base + "vsm 2x2 3,4,oops\n", net), std::invalid_argument);
  // Extra tokens on the vsm line and extra lines after it are corruption.
  EXPECT_THROW(parse_plan(base + "vsm 2x2 3,4,5 surplus\n", net), std::invalid_argument);
  EXPECT_THROW(parse_plan(base + "vsm 2x2 3,4,5\ngarbage\n", net), std::invalid_argument);
  // Empty stack list.
  EXPECT_THROW(parse_plan(base + "vsm 2x2 \n", net), std::invalid_argument);
}

TEST(PlanIoBinary, RoundTripWithAndWithoutVsm) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  for (const bool with_vsm : {false, true}) {
    SerializablePlan original = sample_plan(net);
    if (with_vsm)
      original.vsm = make_fused_tile_plan(net, std::vector<dnn::LayerId>{3, 4, 5}, 2, 2);
    const std::vector<std::uint8_t> wire = serialize_plan_binary(original);
    const SerializablePlan parsed = parse_plan_binary(wire, net);
    EXPECT_EQ(parsed.model_name, original.model_name);
    EXPECT_EQ(parsed.assignment.tier, original.assignment.tier);
    ASSERT_EQ(parsed.vsm.has_value(), with_vsm);
    if (with_vsm) {
      EXPECT_EQ(parsed.vsm->stack, original.vsm->stack);
      ASSERT_EQ(parsed.vsm->tiles.size(), original.vsm->tiles.size());
      for (std::size_t t = 0; t < parsed.vsm->tiles.size(); ++t)
        EXPECT_EQ(parsed.vsm->tiles[t].output_region, original.vsm->tiles[t].output_region);
    }
  }
}

TEST(PlanIoBinary, TextAndBinaryAgree) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  SerializablePlan plan = sample_plan(net);
  plan.vsm = make_fused_tile_plan(net, std::vector<dnn::LayerId>{3, 4, 5}, 2, 2);
  const SerializablePlan via_text = parse_plan(serialize_plan(plan), net);
  const SerializablePlan via_binary = parse_plan_binary(serialize_plan_binary(plan), net);
  EXPECT_EQ(via_text.assignment.tier, via_binary.assignment.tier);
  EXPECT_EQ(via_text.vsm->stack, via_binary.vsm->stack);
  EXPECT_EQ(via_text.vsm->grid_rows, via_binary.vsm->grid_rows);
  EXPECT_EQ(via_text.vsm->grid_cols, via_binary.vsm->grid_cols);
}

TEST(PlanIoBinary, TruncationAlwaysThrows) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  SerializablePlan plan = sample_plan(net);
  plan.vsm = make_fused_tile_plan(net, std::vector<dnn::LayerId>{3, 4, 5}, 2, 2);
  const std::vector<std::uint8_t> wire = serialize_plan_binary(plan);
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_THROW(parse_plan_binary(std::span(wire).first(len), net), std::runtime_error)
        << len;
}

TEST(PlanIoBinary, RejectsBadMagicTrailerAndWrongModel) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const std::vector<std::uint8_t> wire = serialize_plan_binary(sample_plan(net));
  {
    std::vector<std::uint8_t> bad = wire;
    bad[0] ^= 0xFF;
    EXPECT_THROW(parse_plan_binary(bad, net), rpc::WireError);
  }
  {
    std::vector<std::uint8_t> bad = wire;
    bad.push_back(0);  // trailing byte
    EXPECT_THROW(parse_plan_binary(bad, net), rpc::WireError);
  }
  EXPECT_THROW(parse_plan_binary(wire, dnn::zoo::tiny_branch()), std::invalid_argument);
}

}  // namespace
}  // namespace d3::core
