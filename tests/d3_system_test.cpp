#include <gtest/gtest.h>

#include "core/d3.h"
#include "dnn/model_zoo.h"
#include "net/conditions.h"

namespace d3::core {
namespace {

TEST(D3System, PlanPartitionsEveryVertex) {
  const dnn::Network net = dnn::zoo::alexnet();
  const D3System system(net, profile::paper_testbed());
  const DeploymentPlan plan = system.plan(net::wifi());
  EXPECT_EQ(plan.assignment.tier.size(), net.num_layers() + 1);
  EXPECT_TRUE(respects_precedence(plan.problem, plan.assignment));
  EXPECT_GT(plan.estimated_total_latency, 0.0);
  EXPECT_EQ(plan.vertices_on(Tier::kDevice) + plan.vertices_on(Tier::kEdge) +
                plan.vertices_on(Tier::kCloud),
            net.num_layers());
}

TEST(D3System, SingleEdgeNodeDisablesVsm) {
  const dnn::Network net = dnn::zoo::vgg16();
  D3Options opts;
  opts.edge_nodes = 1;
  const D3System system(net, profile::paper_testbed(), opts);
  EXPECT_FALSE(system.plan(net::wifi()).vsm.has_value());
}

TEST(D3System, VsmPlanCoversEdgeStack) {
  const dnn::Network net = dnn::zoo::vgg16();
  D3Options opts;
  opts.edge_nodes = 4;
  const D3System system(net, profile::paper_testbed(), opts);
  const DeploymentPlan plan = system.plan(net::wifi());
  if (!plan.vsm.has_value()) GTEST_SKIP() << "HPA placed no conv stack on the edge";
  EXPECT_EQ(plan.vsm->num_tiles(), 4u);
  // Every stack layer is an edge-assigned conv-family layer.
  for (const dnn::LayerId id : plan.vsm->stack) {
    EXPECT_EQ(plan.assignment.tier[dnn::Network::vertex_of(id)], Tier::kEdge);
    EXPECT_TRUE(dnn::is_vsm_tileable(net.layer(id).spec.kind));
  }
}

TEST(D3System, PlansAdaptToConditions) {
  // 4G's weak backbone must push work off the cloud relative to optical.
  const dnn::Network net = dnn::zoo::darknet53();
  const D3System system(net, profile::paper_testbed());
  const DeploymentPlan slow = system.plan(net::lte_4g());
  const DeploymentPlan fast = system.plan(net::optical());
  EXPECT_GE(fast.vertices_on(Tier::kCloud), slow.vertices_on(Tier::kCloud));
}

TEST(D3System, EstimatorsSharedAcrossPlans) {
  const dnn::Network net = dnn::zoo::alexnet();
  const D3System system(net, profile::paper_testbed());
  // Same condition twice: identical (deterministic) plans.
  const DeploymentPlan a = system.plan(net::wifi());
  const DeploymentPlan b = system.plan(net::wifi());
  EXPECT_EQ(a.assignment.tier, b.assignment.tier);
}

}  // namespace
}  // namespace d3::core
