// The motivation for VSM (§III-F): DeepThings-style padding-oblivious tiling
// corrupts the output whenever a layer uses padding, while VSM stays exact.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/naive_tiling.h"
#include "core/vsm.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "util/rng.h"

namespace d3::baselines {
namespace {

using dnn::Shape;
using dnn::Window;

std::vector<dnn::LayerId> all_layers(const dnn::Network& net) {
  std::vector<dnn::LayerId> ids(net.num_layers());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

double max_abs_diff(const dnn::Tensor& a, const dnn::Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, static_cast<double>(std::abs(a[i] - b[i])));
  return worst;
}

struct Outputs {
  dnn::Tensor reference;
  dnn::Tensor naive;
};

Outputs run_both(const dnn::Network& net, int rows, int cols, std::uint64_t seed) {
  const auto ids = all_layers(net);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, seed);
  util::Rng rng(seed + 1);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const NaiveTilePlan plan = make_naive_tile_plan(net, ids, rows, cols);
  return Outputs{core::run_stack_serial(net, weights, input, ids),
             run_naive_tiles(net, weights, input, plan)};
}

TEST(NaiveTiling, ExactForValidConvolutions) {
  // With no padding anywhere the padding-oblivious scheme is exact.
  const dnn::Network net = dnn::zoo::conv_stack(
      "valid", Shape{3, 20, 20},
      {{6, Window{3, 3, 1, 1, 0, 0}}, {6, Window{3, 3, 1, 1, 0, 0}}});
  const Outputs r = run_both(net, 2, 2, 60);
  EXPECT_EQ(max_abs_diff(r.reference, r.naive), 0.0);
}

TEST(NaiveTiling, LosesPrecisionWithPadding) {
  // One padded conv is enough: interior tile borders see zero padding where the
  // true map has neighbour values.
  const dnn::Network net = dnn::zoo::conv_stack(
      "padded", Shape{3, 20, 20},
      {{6, Window{3, 3, 1, 1, 1, 1}}, {6, Window{3, 3, 1, 1, 1, 1}}});
  const Outputs r = run_both(net, 2, 2, 61);
  EXPECT_GT(max_abs_diff(r.reference, r.naive), 1e-3);
}

TEST(NaiveTiling, ErrorGrowsWithDepth) {
  // Deeper padded stacks corrupt a wider band around each tile border.
  const Window w{3, 3, 1, 1, 1, 1};
  const dnn::Network shallow =
      dnn::zoo::conv_stack("shallow", Shape{3, 24, 24}, {{4, w}});
  const dnn::Network deep =
      dnn::zoo::conv_stack("deep", Shape{3, 24, 24}, {{4, w}, {4, w}, {4, w}});

  const auto wrong_fraction = [](const Outputs& r) {
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < r.reference.size(); ++i)
      wrong += std::abs(r.reference[i] - r.naive[i]) > 1e-5f;
    return static_cast<double>(wrong) / static_cast<double>(r.reference.size());
  };
  const double shallow_wrong = wrong_fraction(run_both(shallow, 2, 2, 62));
  const double deep_wrong = wrong_fraction(run_both(deep, 2, 2, 62));
  EXPECT_GT(shallow_wrong, 0.0);
  EXPECT_GT(deep_wrong, shallow_wrong);
}

TEST(NaiveTiling, VsmIsExactOnTheSameStack) {
  // Side-by-side on the identical padded workload: naive diverges, VSM does not.
  const dnn::Network net = dnn::zoo::conv_stack(
      "both", Shape{3, 20, 20},
      {{6, Window{3, 3, 1, 1, 1, 1}}, {6, Window{3, 3, 1, 1, 1, 1}}});
  const auto ids = all_layers(net);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 63);
  util::Rng rng(64);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = core::run_stack_serial(net, weights, input, ids);

  const core::FusedTilePlan vsm_plan = core::make_fused_tile_plan(net, ids, 2, 2);
  const dnn::Tensor vsm_out = core::run_fused_tiles(net, weights, input, vsm_plan);
  EXPECT_EQ(max_abs_diff(reference, vsm_out), 0.0);

  const NaiveTilePlan naive_plan = make_naive_tile_plan(net, ids, 2, 2);
  const dnn::Tensor naive_out = run_naive_tiles(net, weights, input, naive_plan);
  EXPECT_GT(max_abs_diff(reference, naive_out), 1e-3);
}

TEST(NaiveTiling, PlanValidation) {
  const dnn::Network net = dnn::zoo::conv_stack(
      "v", Shape{3, 8, 8}, {{4, Window{3, 3, 1, 1, 1, 1}}});
  EXPECT_THROW(make_naive_tile_plan(net, std::vector<dnn::LayerId>{}, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(make_naive_tile_plan(net, all_layers(net), 0, 1), std::invalid_argument);
  EXPECT_THROW(make_naive_tile_plan(net, all_layers(net), 99, 1), std::invalid_argument);
}

}  // namespace
}  // namespace d3::baselines
