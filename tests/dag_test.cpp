#include <gtest/gtest.h>

#include "graph/dag.h"

namespace d3::graph {
namespace {

Dag diamond() {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(Dag, AddEdgeUpdatesAdjacency) {
  const Dag d = diamond();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_edges(), 4u);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_FALSE(d.has_edge(1, 0));
  EXPECT_EQ(d.successors(0).size(), 2u);
  EXPECT_EQ(d.predecessors(3).size(), 2u);
  EXPECT_EQ(d.in_degree(0), 0u);
  EXPECT_EQ(d.out_degree(3), 0u);
}

TEST(Dag, RejectsBadEdges) {
  Dag d(2);
  EXPECT_THROW(d.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(d.add_edge(1, 1), std::invalid_argument);
  d.add_edge(0, 1);
  EXPECT_THROW(d.add_edge(0, 1), std::invalid_argument);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = diamond();
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& [u, v] : d.edges()) EXPECT_LT(pos[u], pos[v]);
}

TEST(Dag, CycleDetection) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_TRUE(d.is_acyclic());
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_THROW(d.topological_order(), std::logic_error);
}

TEST(Dag, SourcesAndSinks) {
  const Dag d = diamond();
  EXPECT_EQ(d.sources(), std::vector<VertexId>{0});
  EXPECT_EQ(d.sinks(), std::vector<VertexId>{3});
}

TEST(Dag, ChainDetection) {
  Dag chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_TRUE(chain.is_chain());
  EXPECT_FALSE(diamond().is_chain());
}

TEST(Dag, EdgesEnumeration) {
  const Dag d = diamond();
  const auto edges = d.edges();
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges.front(), (std::pair<VertexId, VertexId>{0, 1}));
}

TEST(Dag, AddVertexGrows) {
  Dag d;
  EXPECT_EQ(d.add_vertex(), 0u);
  EXPECT_EQ(d.add_vertex(), 1u);
  d.add_edge(0, 1);
  EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace d3::graph
