// Crash-point sweep over the distributed runtime's tier-granular recovery.
//
// Every test builds a real multi-process cluster (fork/exec'd d3_node workers
// over localhost TCP), wraps the SocketTransport in a FaultInjectionTransport,
// and SIGKILLs a worker at an exactly scripted protocol point — "before the
// Nth op of kind K targeting node X" — covering every message kind
// (kPut/kRunLayer/kRunStack/kGet/kPutTile/kRunTile/kGetTile/kPushPeer, plus
// the kConfig replay and a worker-side --crash-after frame counter) across
// every tier. The two invariants must survive every kill point:
//
//   1. the recovered output is bitwise-identical to exec::Executor, and
//   2. the final transcript is byte-identical to the in-process engine's
//      (messages are recorded exactly once, however many times recovery
//      re-ran a tier).
//
// Plus the recovery-cost pins of ISSUE 5: a SIGKILL during the edge tier of a
// 3-tier plan replays exactly one tier (tiers_replayed == 1) and moves
// strictly fewer bytes than an end-to-end replay; a death that lost no work
// re-executes zero layers.
#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/fault_injection.h"
#include "rpc/socket_transport.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "fault_injection_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

using rpc::FaultInjectionTransport;
using Op = FaultInjectionTransport::Op;
using Action = FaultInjectionTransport::Action;
using Fault = FaultInjectionTransport::Fault;

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

// Worker cluster + fault-injection wiring. The kill handler and respawn hooks
// run on engine/scheduler threads, so process bookkeeping is mutex-guarded.
struct FaultCluster {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
  std::shared_ptr<rpc::SocketTransport> socket = std::make_shared<rpc::SocketTransport>();
  std::shared_ptr<FaultInjectionTransport> faults =
      std::make_shared<FaultInjectionTransport>(socket);

  FaultCluster() {
    faults->set_kill_handler([this](const std::string& node) { kill_worker(node); });
  }

  void attach(const std::string& node, const std::vector<std::string>& extra_args = {}) {
    std::lock_guard<std::mutex> lock(mutex);
    procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY, extra_args);
    socket->add_node(node, procs[node]->take_socket());
  }

  void attach_tile_worker(std::size_t index) {
    const std::string node = "edge" + std::to_string(index + 1);
    std::lock_guard<std::mutex> lock(mutex);
    procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
    socket->add_tile_worker(procs[node]->take_socket());
  }

  void configure(const dnn::Network& net, const exec::WeightStore& weights,
                 const core::SerializablePlan& plan, std::size_t vsm_workers) {
    socket->configure(net.name(), net, weights, core::serialize_plan_binary(plan),
                      vsm_workers);
  }

  void enable_respawn(const std::string& node) {
    socket->set_reconnect(
        node,
        [this, node] {
          std::lock_guard<std::mutex> lock(mutex);
          procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
          return procs[node]->take_socket();
        },
        rpc::SocketTransport::RetryPolicy{4, std::chrono::milliseconds(5), 2.0});
  }

  void kill_worker(const std::string& node) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_TRUE(procs.count(node)) << "no worker process for '" << node << "'";
    ::kill(procs[node]->pid(), SIGKILL);
  }
};

// tiny-chain (10 layers) split 2/4/4: conv1+relu1 on the device, pool1..pool2
// as plain remote layers on the edge, the fc tail in the cloud. Every tier
// hosts real work, so every kill point has something to lose.
struct ThreeTierCase {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment assignment;
  core::SerializablePlan plan;

  ThreeTierCase() {
    assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
    assignment.tier[0] = core::Tier::kDevice;
    for (const dnn::LayerId id : {0, 1})
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    for (const dnn::LayerId id : {2, 3, 4, 5})
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
    plan = core::SerializablePlan{net.name(), assignment, std::nullopt};
  }
};

// Same split, but pool1..pool2 fused into a 2x2 VSM tile stack on the edge.
struct VsmCase {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment assignment;
  std::optional<core::FusedTilePlan> vsm;
  core::SerializablePlan plan;

  VsmCase() {
    assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
    assignment.tier[0] = core::Tier::kDevice;
    for (const dnn::LayerId id : {0, 1})
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    const std::vector<dnn::LayerId> stack = {2, 3, 4, 5};
    for (const dnn::LayerId id : stack)
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
    vsm = core::make_fused_tile_plan(net, stack, 2, 2);
    plan = core::SerializablePlan{net.name(), assignment, vsm};
  }
};

// --- The kill-point sweep ----------------------------------------------------

struct KillPoint {
  const char* label;
  Op op;
  const char* node;
  std::uint64_t nth;
  bool vsm;  // run on the VsmCase (remote kRunStack) instead of ThreeTierCase
};

class KillPointSweep : public ::testing::TestWithParam<KillPoint> {};

TEST_P(KillPointSweep, RecoversBitwiseWithByteIdenticalTranscript) {
  const KillPoint point = GetParam();
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 81);
  util::Rng rng(82);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  core::Assignment assignment;
  std::optional<core::FusedTilePlan> vsm;
  core::SerializablePlan plan;
  if (point.vsm) {
    const VsmCase c;
    assignment = c.assignment;
    vsm = c.vsm;
    plan = c.plan;
  } else {
    const ThreeTierCase c;
    assignment = c.assignment;
    plan = c.plan;
  }

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(net, weights, plan, /*vsm_workers=*/point.vsm ? 2 : 0);
  cluster.faults->schedule(Fault{point.op, point.node, point.nth, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(net, weights, assignment, vsm, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered, OnlineEngine(net, weights, assignment, vsm).infer(frame));

  const FaultInjectionTransport::Stats stats = cluster.faults->stats();
  EXPECT_EQ(stats.faults_injected, 1u) << point.label;
  EXPECT_EQ(stats.kills, 1u) << point.label;
  EXPECT_GE(cluster.socket->stats().reconnects, 1u) << point.label;
}

INSTANTIATE_TEST_SUITE_P(
    EveryMessageKindTimesEveryTier, KillPointSweep,
    ::testing::Values(
        // kPut: the raw-input seed, each tier's first boundary delivery.
        KillPoint{"seed_device", Op::kPut, "device0", 1, false},
        KillPoint{"put_edge", Op::kPut, "edge0", 1, false},
        KillPoint{"put_cloud", Op::kPut, "cloud0", 1, false},
        // kRunLayer: first and mid-tier layers on every tier.
        KillPoint{"run_device_first", Op::kRunLayer, "device0", 1, false},
        KillPoint{"run_device_second", Op::kRunLayer, "device0", 2, false},
        KillPoint{"run_edge_first", Op::kRunLayer, "edge0", 1, false},
        KillPoint{"run_edge_mid", Op::kRunLayer, "edge0", 3, false},
        KillPoint{"run_cloud_first", Op::kRunLayer, "cloud0", 1, false},
        KillPoint{"run_cloud_last", Op::kRunLayer, "cloud0", 4, false},
        // kGet: the cross-tier relay fetches and the final-output fetch.
        KillPoint{"fetch_device_for_edge_relay", Op::kGet, "device0", 1, false},
        KillPoint{"fetch_edge_for_cloud_relay", Op::kGet, "edge0", 1, false},
        KillPoint{"fetch_cloud_final_output", Op::kGet, "cloud0", 1, false},
        // kRunStack: the whole VSM stage dies on the remote edge.
        KillPoint{"run_stack_edge", Op::kRunStack, "edge0", 1, true},
        KillPoint{"put_edge_stack_input", Op::kPut, "edge0", 1, true}));

// --- ISSUE 5 acceptance: one-tier migration, measurably cheaper --------------

TEST(FaultInjection, EdgeTierKillReplaysExactlyOneTierForFewerBytesThanFullReplay) {
  // SIGKILL the edge worker mid-edge-tier (after pool1 ran, before conv2) in a
  // 3-tier plan: recovery must re-run only the edge tier — tiers_replayed ==
  // 1 — and move strictly fewer bytes than an end-to-end replay (raw input +
  // every boundary message), while output and transcript stay identical.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 83);
  util::Rng rng(84);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kRunLayer, "edge0", 2, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  const InferenceResult local =
      OnlineEngine(c.net, weights, c.assignment).infer(frame);
  expect_same_transcript(recovered, local);

  const OnlineEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.tiers_replayed, 1u);
  EXPECT_GE(stats.layers_replayed, 1u);
  EXPECT_GT(stats.recovery_bytes, 0u);

  // The full-replay baseline: replaying end-to-end re-seeds the raw input and
  // re-ships every boundary tensor of the transcript.
  std::uint64_t full_replay_bytes = static_cast<std::uint64_t>(c.net.input_shape().bytes());
  for (const MessageRecord& m : local.messages)
    full_replay_bytes += static_cast<std::uint64_t>(m.bytes);
  EXPECT_LT(stats.recovery_bytes, full_replay_bytes);
}

TEST(FaultInjection, DeathWithNoLostWorkReExecutesZeroLayers) {
  // Regression for the PR-4 behaviour, where *any* worker death forced a
  // whole-request replay: kill the cloud worker right before its first
  // kRunLayer — it has computed nothing, so recovery must re-seed its inputs
  // and re-execute nothing. Pinned three ways: layers_replayed == 0,
  // tiers_replayed == 0, and the transport saw exactly one kRunLayer op more
  // than the layer count (the interrupted call itself, reissued).
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 85);
  util::Rng rng(86);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kRunLayer, "cloud0", 1, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered, OnlineEngine(c.net, weights, c.assignment).infer(frame));

  const OnlineEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.tiers_replayed, 0u);
  EXPECT_EQ(stats.layers_replayed, 0u);
  EXPECT_GE(stats.tensors_reseeded, 1u);  // the cloud node's pending inputs
  // Every layer executed exactly once: the only extra kRunLayer op is the
  // interrupted call, which the worker never got to execute.
  EXPECT_EQ(cluster.faults->op_count(Op::kRunLayer), c.net.num_layers() + 1);
}

// --- Edge fan-out: tile-worker deaths ---------------------------------------

struct TileKillPoint {
  const char* label;
  Op op;
  const char* node;
  std::uint64_t nth;
};

class TileWorkerKillSweep : public ::testing::TestWithParam<TileKillPoint> {};

TEST_P(TileWorkerKillSweep, RespawnedShardRecovers) {
  // 4 processes: device + 2 tile workers + cloud; the engine is the edge
  // coordinator sharding the 2x2 tile plan. A tile worker dies at the
  // scripted scatter/compute/gather point, the transport respawns it, and the
  // whole stack re-runs with identical bits and transcript.
  const TileKillPoint point = GetParam();
  const VsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 87);
  util::Rng rng(88);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  cluster.attach("device0");
  cluster.attach("cloud0");
  cluster.attach_tile_worker(0);
  cluster.attach_tile_worker(1);
  for (const char* node : {"device0", "cloud0", "edge1", "edge2"})
    cluster.enable_respawn(node);
  cluster.configure(c.net, weights, c.plan, 0);
  ASSERT_TRUE(cluster.socket->has_tile_workers());
  cluster.faults->schedule(Fault{point.op, point.node, point.nth, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  // Sequential tile drive: the kill point stays at an exact op index.
  options.vsm_workers = 0;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));
  EXPECT_EQ(cluster.faults->stats().kills, 1u) << point.label;
  EXPECT_EQ(cluster.socket->tile_worker_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    ScatterComputeGather, TileWorkerKillSweep,
    ::testing::Values(TileKillPoint{"put_tile_first_shard", Op::kPutTile, "edge1", 1},
                      TileKillPoint{"put_tile_second_shard", Op::kPutTile, "edge2", 1},
                      TileKillPoint{"run_tile_first_shard", Op::kRunTile, "edge1", 1},
                      TileKillPoint{"run_tile_second_shard", Op::kRunTile, "edge2", 2},
                      TileKillPoint{"get_tile_first_shard", Op::kGetTile, "edge1", 1},
                      TileKillPoint{"get_tile_second_shard", Op::kGetTile, "edge2", 2}));

TEST(FaultInjection, DeadTileWorkerWithoutRespawnIsReshardedAcrossSurvivors) {
  // No reconnect hook for edge2: its death prunes it from the shard map and
  // the re-run lands all four tiles on edge1 — same bits, same transcript
  // (the transcript names the *virtual* per-tile nodes, not the shards).
  const VsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 89);
  util::Rng rng(90);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  cluster.attach("device0");
  cluster.attach("cloud0");
  cluster.attach_tile_worker(0);
  cluster.attach_tile_worker(1);
  cluster.enable_respawn("device0");
  cluster.enable_respawn("cloud0");
  cluster.enable_respawn("edge1");  // edge2 deliberately unrecoverable
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kRunTile, "edge2", 1, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  options.vsm_workers = 0;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));
  EXPECT_EQ(cluster.socket->tile_worker_count(), 1u);
  EXPECT_EQ(cluster.socket->stats().detached_workers, 1u);
  EXPECT_GE(engine.stats().tiers_replayed, 1u);

  // The pruned pool keeps serving: a second request runs 4 tiles on 1 shard.
  expect_identical(engine.infer(frame).output, reference);
}

// --- Peer-to-peer: producer and consumer deaths around kPushPeer -------------

TEST(FaultInjection, ProducerDeathBeforePeerPushRecovers) {
  const VsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 91);
  util::Rng rng(92);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, /*vsm_workers=*/2);
  cluster.socket->connect_peers();
  // The device (producer of the first boundary tensor) dies right before it
  // is asked to push to the edge: its computed layers are lost and re-run.
  cluster.faults->schedule(Fault{Op::kPushPeer, "device0", 1, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));
  EXPECT_GE(engine.stats().tiers_replayed, 1u);
}

TEST(FaultInjection, ConsumerDeathDuringPeerPushRecovers) {
  const VsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 93);
  util::Rng rng(94);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, /*vsm_workers=*/2);
  cluster.socket->connect_peers();
  // The *edge* (consumer) dies right before the device's push: the producer's
  // peer channel goes dark mid-handshake, the transport respawns the edge,
  // and recovery re-seeds what the fresh edge incarnation needs.
  cluster.faults->schedule(
      Fault{Op::kPushPeer, "device0", 1, Action::kKill, {}, "edge0"});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));
  EXPECT_GE(cluster.socket->stats().reconnects, 1u);
}

// --- Mid-batch through the scheduler ----------------------------------------

TEST(FaultInjection, MidBatchKillRecoversEveryRequest) {
  // Six pipelined requests; the edge worker dies inside request #2's edge
  // stage (7th kRunLayer on edge0 = 4 layers of request #1 + 3 of #2). Every
  // request must still complete bitwise-correct, with no caller-visible
  // failure.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 95);
  util::Rng rng(96);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kRunLayer, "edge0", 7, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);
  const exec::Executor executor(c.net, weights);

  BatchScheduler scheduler(engine);
  std::vector<dnn::Tensor> frames;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 6; ++i) {
    frames.push_back(exec::random_tensor(c.net.input_shape(), rng));
    ids.push_back(scheduler.submit(frames.back()));
  }
  for (std::size_t i = 0; i < ids.size(); ++i)
    expect_identical(scheduler.wait(ids[i]).output, executor.run(frames[i]));
  EXPECT_EQ(cluster.faults->stats().kills, 1u);
  EXPECT_GE(engine.stats().recoveries, 1u);
  EXPECT_EQ(scheduler.stats().replayed, 0u);  // recovered in place, not restarted
}

// --- Idempotence and benign perturbations -----------------------------------

TEST(FaultInjection, DuplicatedPutAndRunAreIdempotent) {
  // kPut re-delivery is the primitive recovery is built on: a duplicated put
  // (and a duplicated layer execution) must be byte-for-byte invisible.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 97);
  util::Rng rng(98);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) cluster.attach(node);
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kPut, "edge0", 1, Action::kDuplicate, {}, ""});
  cluster.faults->schedule(Fault{Op::kPut, "device0", 1, Action::kDuplicate, {}, ""});
  cluster.faults->schedule(Fault{Op::kRunLayer, "cloud0", 2, Action::kDuplicate, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult result = engine.infer(frame);
  expect_identical(result.output, reference);
  expect_same_transcript(result, OnlineEngine(c.net, weights, c.assignment).infer(frame));
  EXPECT_EQ(cluster.faults->stats().duplicates, 3u);
  EXPECT_EQ(engine.stats().recoveries, 0u);
}

TEST(FaultInjection, DelayedOpsPerturbNothing) {
  const VsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 99);
  util::Rng rng(100);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) cluster.attach(node);
  cluster.configure(c.net, weights, c.plan, /*vsm_workers=*/2);
  cluster.faults->schedule(
      Fault{Op::kRunStack, "edge0", 1, Action::kDelay, std::chrono::milliseconds(30), ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult result = engine.infer(frame);
  expect_identical(result.output, reference);
  expect_same_transcript(result,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));
  EXPECT_EQ(cluster.faults->stats().delays, 1u);
}

// --- Worker-side scripted crashes and kConfig-replay failures ----------------

TEST(FaultInjection, WorkerSideCrashAfterFramesRecoversMidRequest) {
  // The fault script can live on the worker side too: d3_node --crash-after N
  // dies abruptly on its (N+1)th coordinator frame, with no signal from the
  // test. Frames to device0 per request here: kBegin, kPut(seed), 2x
  // kRunLayer, kGet (relay fetch), kEnd = 6 — so --crash-after 8 dies inside
  // the second request's device tier, and that request recovers in place.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 101);
  util::Rng rng(102);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  cluster.attach("device0", {"--crash-after", "8"});
  cluster.attach("edge0");
  cluster.attach("cloud0");
  for (const char* node : {"device0", "edge0", "cloud0"}) cluster.enable_respawn(node);
  cluster.configure(c.net, weights, c.plan, 0);

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult first = engine.infer(frame);
  expect_identical(first.output, reference);
  const InferenceResult second = engine.infer(frame);  // crashes + recovers inside
  expect_identical(second.output, reference);
  expect_same_transcript(second, first);
  EXPECT_EQ(cluster.socket->stats().reconnects, 1u);
  EXPECT_GE(engine.stats().recoveries, 1u);
}

TEST(FaultInjection, ConfigReplayFailingOnceStillRecovers) {
  // The reconnect hook's first incarnation is unusable (invalid socket, so
  // the kConfig replay cannot even start); the bounded-backoff loop retries
  // and the second respawn recovers the request.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 103);
  util::Rng rng(104);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) cluster.attach(node);
  cluster.enable_respawn("device0");
  cluster.enable_respawn("cloud0");
  int attempts = 0;
  cluster.socket->set_reconnect(
      "edge0",
      [&cluster, &attempts]() -> rpc::Socket {
        if (++attempts == 1) return rpc::Socket();  // dead on arrival
        std::lock_guard<std::mutex> lock(cluster.mutex);
        cluster.procs["edge0"] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
        return cluster.procs["edge0"]->take_socket();
      },
      rpc::SocketTransport::RetryPolicy{4, std::chrono::milliseconds(5), 2.0});
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{Op::kRunLayer, "edge0", 2, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(cluster.socket->stats().reconnects, 1u);
  EXPECT_GE(engine.stats().recoveries, 1u);
}

// --- Peer-handshake kill points, heartbeat probes, buddy replication ---------

struct HandshakeKillPoint {
  const char* label;
  Op op;
  const char* node;
};

class PeerHandshakeKillSweep : public ::testing::TestWithParam<HandshakeKillPoint> {};

TEST_P(PeerHandshakeKillSweep, MeshRebuildsAndInferenceStaysBitwise) {
  // A node dies inside connect_peers() itself — before the listener opens,
  // between the listen and dial legs, or before the dialling worker is told
  // where to connect. Re-running connect_peers() after the respawn must
  // rebuild the full mesh (workers replace stale peer channels by name), and
  // the request then rides worker->worker pushes with identical bits.
  const HandshakeKillPoint point = GetParam();
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 105);
  util::Rng rng(106);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.faults->schedule(Fault{point.op, point.node, 1, Action::kKill, {}, ""});

  // The first attempt dies at the scripted handshake point (the kPeerHello
  // window needs one extra round: the dial leg fails against the dead
  // listener first, the *next* attempt touches the dead channel and
  // respawns). The linking loop is the caller-visible retry surface.
  int failed_attempts = 0;
  for (;; ++failed_attempts) {
    ASSERT_LT(failed_attempts, 4) << point.label;
    try {
      cluster.socket->connect_peers();
      break;
    } catch (const rpc::TransportError&) {
    }
  }
  EXPECT_GE(failed_attempts, 1) << point.label;

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult result = engine.infer(frame);
  expect_identical(result.output, reference);
  expect_same_transcript(result, OnlineEngine(c.net, weights, c.assignment).infer(frame));
  EXPECT_EQ(cluster.faults->stats().kills, 1u) << point.label;
  EXPECT_GE(cluster.socket->stats().reconnects, 1u) << point.label;
  // Both tier boundaries travelled worker->worker on the rebuilt mesh.
  EXPECT_EQ(cluster.socket->stats().peer_pushes, 2u) << point.label;
}

INSTANTIATE_TEST_SUITE_P(
    ListenHelloDial, PeerHandshakeKillSweep,
    ::testing::Values(
        HandshakeKillPoint{"receiver_dies_before_listen", Op::kPeerListen, "edge0"},
        HandshakeKillPoint{"receiver_dies_between_legs", Op::kPeerHello, "edge0"},
        HandshakeKillPoint{"dialler_dies_before_connect", Op::kConnectPeer, "device0"}));

TEST(FaultInjection, HeartbeatKillIsDetectedOnFirstProbeWithNoSendInFlight) {
  // SIGKILL a worker right before a liveness probe touches it, with *no*
  // request anywhere: the probe — not a send — must raise ChannelDied, and
  // its recovery (respawn + kConfig replay) must leave the cluster ready to
  // serve the next request without a send-time surprise.
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 107);
  util::Rng rng(108);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.socket->enable_heartbeats(rpc::SocketTransport::HeartbeatPolicy{
      std::chrono::milliseconds(10), std::chrono::milliseconds(100), 3});
  cluster.faults->schedule(Fault{Op::kPing, "edge0", 1, Action::kKill, {}, ""});

  EXPECT_THROW(cluster.faults->ping("edge0"), rpc::ChannelDied);
  EXPECT_EQ(cluster.faults->stats().kills, 1u);
  EXPECT_EQ(cluster.socket->stats().pings, 1u);
  // A dead socket is terminal on the very first probe: no miss-threshold wait.
  EXPECT_EQ(cluster.socket->stats().heartbeat_deaths, 1u);
  EXPECT_EQ(cluster.socket->stats().reconnects, 1u);

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);
  const InferenceResult result = engine.infer(frame);
  expect_identical(result.output, reference);
  expect_same_transcript(result, OnlineEngine(c.net, weights, c.assignment).infer(frame));
  EXPECT_EQ(engine.stats().recoveries, 0u);  // the probe already paid for it
}

TEST(FaultInjection, BuddyDeathMakesReplicationBestEffort) {
  // The buddy dies right before the first kPutReplica: replication is
  // best-effort by contract, so the request in flight must complete bitwise
  // identical anyway — the only trace is a replica_failures tick (and the
  // recovery the cloud tier later needs, since the buddy is also cloud0).
  const ThreeTierCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 109);
  util::Rng rng(110);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  FaultCluster cluster;
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    cluster.attach(node);
    cluster.enable_respawn(node);
  }
  cluster.configure(c.net, weights, c.plan, 0);
  cluster.socket->set_buddy("cloud0");
  cluster.faults->schedule(Fault{Op::kPutReplica, "cloud0", 1, Action::kKill, {}, ""});

  OnlineEngine::Options options;
  options.transport = cluster.faults;
  const OnlineEngine engine(c.net, weights, c.assignment, std::nullopt, options);

  const InferenceResult result = engine.infer(frame);
  expect_identical(result.output, reference);
  expect_same_transcript(result, OnlineEngine(c.net, weights, c.assignment).infer(frame));
  EXPECT_EQ(cluster.faults->stats().kills, 1u);
  EXPECT_GE(cluster.faults->op_count(Op::kPutReplica), 1u);
  EXPECT_EQ(cluster.socket->stats().replica_failures, 1u);
  EXPECT_EQ(cluster.socket->stats().replica_pushes, 0u);
  EXPECT_GE(cluster.socket->stats().reconnects, 1u);
}

}  // namespace
}  // namespace d3::runtime
