// AOT bundle-boot acceptance (ISSUE 10). Three worker processes boot from d3c
// deployment bundles (`d3_node --listen 0 --bundle <file> <name>`) and a
// coordinator in weights-elided mode drives them with an O(1) kConfig — plan
// bytes + weights hash, no weights blob. The lossless contract must carry
// across the boot path: outputs bitwise-identical to exec::Executor and the
// transcript byte-identical to the classic full-kConfig run. Version skew
// (bundle compiled from different weights, or no bundle at all) must be
// answered kBundleMismatch and surfaced as rpc::BundleMismatch BEFORE any
// worker state mutates; a bundle whose shard elides a plan-assigned layer
// must refuse to boot at all.
#include <sys/socket.h>

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.h"
#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/node_service.h"
#include "rpc/socket_transport.h"
#include "rpc/wire.h"
#include "runtime/engine.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "bundle_boot_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

// conv1+relu1 on the device, pool1+conv2 on the edge, the tail in the cloud.
core::SerializablePlan three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3})
    a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  return core::SerializablePlan{net.name(), a, std::nullopt};
}

// What d3c emits: one bundle per tier node, same full-model weights hash in
// each, per-node weight shard, shared plan and book.
std::string compile_bundles(const dnn::Network& net, const exec::WeightStore& weights,
                            const core::SerializablePlan& plan, std::uint32_t vsm_workers,
                            const char* dir_name) {
  const std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) / dir_name;
  std::filesystem::create_directories(dir);
  const std::vector<std::uint8_t> plan_bytes = core::serialize_plan_binary(plan);
  const std::uint64_t weights_hash = rpc::fnv1a(rpc::encode_weights(weights, net));
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    core::DeploymentBundle bundle;
    bundle.node_name = node;
    bundle.model_name = net.name();
    bundle.vsm_workers = vsm_workers;
    bundle.weights_hash = weights_hash;
    bundle.plan_bytes = plan_bytes;
    bundle.shard_bytes = rpc::encode_weight_shard(
        weights, net, exec::WeightStore::layers_for_node(plan, node));
    bundle.book_text =
        "[coordinator]\nactive 127.0.0.1:9000\n[workers]\n"
        "device0 127.0.0.1:9001\nedge0 127.0.0.1:9002\ncloud0 127.0.0.1:9003\n";
    core::write_bundle_file((dir / (std::string(node) + ".d3b")).string(), bundle);
  }
  return dir.string();
}

// A three-process cluster whose workers boot from bundles (or classically when
// `bundle_dir` is empty), plus a coordinator transport dialing them.
struct Cluster {
  std::map<std::string, std::unique_ptr<rpc::ListenWorkerProcess>> procs;
  std::shared_ptr<rpc::SocketTransport> transport =
      std::make_shared<rpc::SocketTransport>();

  explicit Cluster(const std::string& bundle_dir) {
    for (const char* node : {"device0", "edge0", "cloud0"}) {
      std::vector<std::string> extra;
      if (!bundle_dir.empty())
        extra = {"--bundle", bundle_dir + "/" + node + ".d3b", node};
      procs[node] = std::make_unique<rpc::ListenWorkerProcess>(D3_NODE_BINARY, extra);
      transport->add_node(node, procs[node]->dial());
    }
  }
};

TEST(BundleBoot, ElidedConfigRunsByteIdenticalToFullConfig) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 111);
  const core::SerializablePlan plan = three_tier_plan(net);
  util::Rng rng(112);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  // Classic boot: empty workers, full kConfig ships the weights blob.
  Cluster full("");
  full.transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  OnlineEngine::Options full_options;
  full_options.transport = full.transport;
  const OnlineEngine full_engine(net, weights, plan.assignment, plan.vsm, full_options);
  const InferenceResult via_full = full_engine.infer(frame);
  expect_identical(via_full.output, reference);

  // AOT boot: workers come up configured from their bundles, the coordinator
  // sends plan + weights hash only.
  const std::string dir = compile_bundles(net, weights, plan, 0, "bundles-ok");
  Cluster aot(dir);
  aot.transport->set_elide_weights(true);
  aot.transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  OnlineEngine::Options aot_options;
  aot_options.transport = aot.transport;
  const OnlineEngine aot_engine(net, weights, plan.assignment, plan.vsm, aot_options);
  const InferenceResult via_bundle = aot_engine.infer(frame);

  // The lossless contract crosses the boot path: bitwise output, byte-for-byte
  // transcript.
  expect_identical(via_bundle.output, reference);
  expect_same_transcript(via_full, via_bundle);
}

TEST(BundleBoot, FullConfigOnBundleBootedWorkerIsIdempotent) {
  // A coordinator that does NOT elide (say, an old standby) configures a
  // bundle-booted worker with the full weights blob. The content identity
  // (plan hash, weights hash) matches what the bundle preloaded, so the worker
  // keeps its shard-backed state — and still runs correctly.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 111);
  const core::SerializablePlan plan = three_tier_plan(net);
  util::Rng rng(112);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);

  const std::string dir = compile_bundles(net, weights, plan, 0, "bundles-idem");
  Cluster cluster(dir);
  cluster.transport->configure(net.name(), net, weights,
                               core::serialize_plan_binary(plan), 0);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, plan.assignment, plan.vsm, options);
  expect_identical(engine.infer(frame).output, exec::Executor(net, weights).run(frame));
}

TEST(BundleBoot, StaleBundleAnswersBundleMismatchBeforeAnyStateMutation) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore current = exec::WeightStore::random_for(net, 111);
  const exec::WeightStore stale = exec::WeightStore::random_for(net, 222);
  const core::SerializablePlan plan = three_tier_plan(net);

  // Workers hold bundles compiled from yesterday's weights.
  const std::string dir = compile_bundles(net, stale, plan, 0, "bundles-stale");
  Cluster cluster(dir);
  cluster.transport->set_elide_weights(true);
  try {
    cluster.transport->configure(net.name(), net, current,
                                 core::serialize_plan_binary(plan), 0);
    FAIL() << "configure() must surface the version skew";
  } catch (const rpc::BundleMismatch& e) {
    EXPECT_EQ(e.worker_hash(), rpc::fnv1a(rpc::encode_weights(stale, net)));
    EXPECT_EQ(e.wanted_hash(), rpc::fnv1a(rpc::encode_weights(current, net)));
  }
  // The skew is diagnosed before any state mutation: recompiling (here,
  // re-configuring with the weights the bundles actually hold) brings the
  // same worker incarnations up without a respawn.
  cluster.transport->configure(net.name(), net, stale,
                               core::serialize_plan_binary(plan), 0);
  util::Rng rng(112);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, stale, plan.assignment, plan.vsm, options);
  expect_identical(engine.infer(frame).output, exec::Executor(net, stale).run(frame));
}

TEST(BundleBoot, ElidingAgainstAnUnbootstrappedWorkerIsRefused) {
  // No bundle at all: the worker has nothing to check the hash against and
  // must refuse (worker_hash 0 = never configured) rather than come up with
  // missing weights.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 111);
  const core::SerializablePlan plan = three_tier_plan(net);
  Cluster cluster("");
  cluster.transport->set_elide_weights(true);
  try {
    cluster.transport->configure(net.name(), net, weights,
                                 core::serialize_plan_binary(plan), 0);
    FAIL() << "an unconfigured worker cannot accept an elided kConfig";
  } catch (const rpc::BundleMismatch& e) {
    EXPECT_EQ(e.worker_hash(), 0u);
  }
}

TEST(BundleBoot, ShardPlanDisagreementRefusesToBoot) {
  // A bundle whose shard elides a layer its own plan assigns to the node is
  // corrupt by construction (d3c can never emit it): preload must throw
  // before the node starts serving.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 111);
  const core::SerializablePlan plan = three_tier_plan(net);
  core::DeploymentBundle bundle;
  bundle.node_name = "device0";
  bundle.model_name = net.name();
  bundle.weights_hash = rpc::fnv1a(rpc::encode_weights(weights, net));
  bundle.plan_bytes = core::serialize_plan_binary(plan);
  // edge0's shard in device0's bundle: the device layers carry no parameters.
  bundle.shard_bytes = rpc::encode_weight_shard(
      weights, net, exec::WeightStore::layers_for_node(plan, "edge0"));
  bundle.book_text = "[workers]\ndevice0 127.0.0.1:9001\n";

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  rpc::ServeOptions options;
  options.bundle = &bundle;
  EXPECT_THROW(rpc::serve_node(fds[0], options), rpc::WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(BundleBoot, VsmPoolWidthRidesTheBundle) {
  // The bundle's vsm_workers field sizes the worker's tile pool exactly like
  // the kConfig field does: a VSM plan runs losslessly on bundle-booted
  // workers with the pool width baked in at compile time.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 5);
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);
  const core::SerializablePlan plan{net.name(), assignment, vsm};
  util::Rng rng(6);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);

  const std::string dir = compile_bundles(net, weights, plan, 2, "bundles-vsm");
  Cluster cluster(dir);
  cluster.transport->set_elide_weights(true);
  cluster.transport->configure(net.name(), net, weights,
                               core::serialize_plan_binary(plan), 2);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, vsm, options);
  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, exec::Executor(net, weights).run(frame));
  // Transcript parity with the in-process engine (transport-independence).
  const InferenceResult local = OnlineEngine(net, weights, assignment, vsm).infer(frame);
  expect_same_transcript(distributed, local);
}

}  // namespace
}  // namespace d3::runtime
