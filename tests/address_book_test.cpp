// The deployment roster must be strict: a typo'd address book has to fail the
// process at startup, not strand a standby dialling a wrong port during a
// real outage. Every negative case pins both the exception type and that the
// message quotes the offending line.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "runtime/address_book.h"

namespace d3::runtime {
namespace {

constexpr const char* kGoodBook = R"(# three-tier drill deployment
[coordinator]
beacon 127.0.0.1:7000

[workers]
device0 127.0.0.1:7001
edge0   127.0.0.1:7002   # inline comments are fine
cloud0  127.0.0.1:7003
edge1   10.0.0.4:7004

[standbys]
standby0 127.0.0.1:7100
standby1 127.0.0.1:7101
)";

TEST(AddressBook, ParsesSectionsNamesAndPorts) {
  const AddressBook book = AddressBook::parse(kGoodBook);

  ASSERT_TRUE(book.coordinator().has_value());
  EXPECT_EQ(book.coordinator()->name, "beacon");
  EXPECT_EQ(book.coordinator()->host, "127.0.0.1");
  EXPECT_EQ(book.coordinator()->port, 7000);

  ASSERT_EQ(book.workers().size(), 4u);
  EXPECT_EQ(book.workers()[0], (Endpoint{"device0", "127.0.0.1", 7001}));
  EXPECT_EQ(book.workers()[1], (Endpoint{"edge0", "127.0.0.1", 7002}));
  EXPECT_EQ(book.workers()[2], (Endpoint{"cloud0", "127.0.0.1", 7003}));
  EXPECT_EQ(book.workers()[3], (Endpoint{"edge1", "10.0.0.4", 7004}));

  ASSERT_EQ(book.standbys().size(), 2u);
  EXPECT_EQ(book.standbys()[0].name, "standby0");
  EXPECT_EQ(book.standbys()[1].port, 7101);
}

TEST(AddressBook, FindLooksUpEverySectionAndMissesReturnNull) {
  const AddressBook book = AddressBook::parse(kGoodBook);
  ASSERT_NE(book.find("beacon"), nullptr);
  ASSERT_NE(book.find("edge1"), nullptr);
  EXPECT_EQ(book.find("edge1")->port, 7004);
  ASSERT_NE(book.find("standby1"), nullptr);
  EXPECT_EQ(book.find("edge7"), nullptr);
}

TEST(AddressBook, EmptyStandbySectionIsExplicitlyAllowed) {
  const AddressBook book = AddressBook::parse(
      "[workers]\ndevice0 127.0.0.1:1\nedge0 127.0.0.1:2\ncloud0 127.0.0.1:3\n[standbys]\n");
  EXPECT_TRUE(book.standbys().empty());
  EXPECT_FALSE(book.coordinator().has_value());
}

// --- Negative cases: invalid_argument quoting the offending line -------------

void expect_rejects(const std::string& text, const std::string& quoted_line) {
  try {
    AddressBook::parse(text);
    FAIL() << "parse accepted malformed book; expected a line quoting: " << quoted_line;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(quoted_line), std::string::npos)
        << "error message \"" << e.what() << "\" does not quote \"" << quoted_line << "\"";
  }
}

TEST(AddressBook, RejectsDuplicateNamesAcrossSections) {
  expect_rejects(
      "[workers]\ndevice0 127.0.0.1:1\ndevice0 127.0.0.1:2\n[standbys]\n",
      "device0 127.0.0.1:2");
  // A standby reusing a worker name is the same startup-fatal typo.
  expect_rejects(
      "[workers]\ndevice0 127.0.0.1:1\n[standbys]\ndevice0 127.0.0.1:9\n",
      "device0 127.0.0.1:9");
}

TEST(AddressBook, RejectsBadPorts) {
  expect_rejects("[workers]\nedge0 127.0.0.1:bad\n[standbys]\n", "edge0 127.0.0.1:bad");
  expect_rejects("[workers]\nedge0 127.0.0.1:0\n[standbys]\n", "edge0 127.0.0.1:0");
  expect_rejects("[workers]\nedge0 127.0.0.1:70000\n[standbys]\n", "edge0 127.0.0.1:70000");
  expect_rejects("[workers]\nedge0 127.0.0.1\n[standbys]\n", "edge0 127.0.0.1");
}

TEST(AddressBook, RejectsTrailingGarbage) {
  expect_rejects("[workers]\nedge0 127.0.0.1:2 surprise\n[standbys]\n",
                 "edge0 127.0.0.1:2 surprise");
}

TEST(AddressBook, RejectsEntriesOutsideAnySection) {
  expect_rejects("edge0 127.0.0.1:2\n[workers]\nedge0 127.0.0.1:2\n[standbys]\n",
                 "edge0 127.0.0.1:2");
}

TEST(AddressBook, RejectsUnknownSections) {
  expect_rejects("[workers]\nedge0 127.0.0.1:2\n[observers]\n[standbys]\n", "[observers]");
}

TEST(AddressBook, RejectsMissingStandbySection) {
  EXPECT_THROW(AddressBook::parse("[workers]\nedge0 127.0.0.1:2\n"), std::invalid_argument);
  try {
    AddressBook::parse("[workers]\nedge0 127.0.0.1:2\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("standbys"), std::string::npos);
  }
}

TEST(AddressBook, RejectsMissingOrEmptyWorkersSection) {
  EXPECT_THROW(AddressBook::parse("[standbys]\nstandby0 127.0.0.1:2\n"), std::invalid_argument);
  EXPECT_THROW(AddressBook::parse("[workers]\n[standbys]\nstandby0 127.0.0.1:2\n"),
               std::invalid_argument);
}

TEST(AddressBook, RejectsSecondCoordinatorEntry) {
  expect_rejects(
      "[coordinator]\nbeacon 127.0.0.1:1\nbeacon2 127.0.0.1:2\n"
      "[workers]\nedge0 127.0.0.1:3\n[standbys]\n",
      "beacon2 127.0.0.1:2");
}

TEST(AddressBook, ErrorsCarryTheLineNumber) {
  try {
    AddressBook::parse("[workers]\ndevice0 127.0.0.1:1\nedge0 127.0.0.1:bad\n[standbys]\n");
    FAIL() << "parse accepted a bad port";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(AddressBook, LoadRejectsMissingFile) {
  EXPECT_THROW(AddressBook::load("/nonexistent/address.book"), std::invalid_argument);
}

}  // namespace
}  // namespace d3::runtime
