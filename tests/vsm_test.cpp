#include <numeric>

#include <gtest/gtest.h>

#include "core/d3.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "profile/node_spec.h"

namespace d3::core {
namespace {

using dnn::Shape;
using dnn::Window;

TEST(Rtc, FullExtentRoundTrips) {
  // A tile covering the whole output maps to the whole input: Eq. (5)'s special
  // case β̂ = W + 2P ⇒ β = W. Conv 3x3, stride 1, pad 1 on W=8: out W=8.
  const Interval in = rtc_dimension(Interval{0, 8}, 3, 1, 1, 8);
  EXPECT_EQ(in.begin, 0);
  EXPECT_EQ(in.end, 8);
}

TEST(Rtc, InteriorTileGrowsByHalo) {
  // Output columns [2,4) of a 3x3/s1/p1 conv need inputs [1,5).
  const Interval in = rtc_dimension(Interval{2, 4}, 3, 1, 1, 8);
  EXPECT_EQ(in.begin, 1);
  EXPECT_EQ(in.end, 5);
}

TEST(Rtc, LeftBorderClampsToZero) {
  // Output [0,2): padded coords start at 0, minus pad 1 clamps to 0.
  const Interval in = rtc_dimension(Interval{0, 2}, 3, 1, 1, 8);
  EXPECT_EQ(in.begin, 0);
  EXPECT_EQ(in.end, 3);
}

TEST(Rtc, StrideScalesCoordinates) {
  // Conv 3x3 stride 2 pad 0 on W=9 (out W=4): output [1,3) needs inputs [2,7).
  const Interval in = rtc_dimension(Interval{1, 3}, 3, 2, 0, 9);
  EXPECT_EQ(in.begin, 2);
  EXPECT_EQ(in.end, 7);
}

TEST(Rtc, PartialBorderTileNeedsClamp) {
  // The case the paper's Eq. (5) misses: pad 2, output tile ending one short of
  // the full extent. β̂ = 1*(6-1)+5 = 10 < W+2P = 12, so β = β̂-P = 8 > W = 8?
  // Here exactly W; push further: W=8, P=3, F=7, out [0,7) of 8: β̂ = 13,
  // β̂-P = 10 > 8 ⇒ must clamp to 8.
  const Interval in = rtc_dimension(Interval{0, 7}, 7, 1, 3, 8);
  EXPECT_EQ(in.begin, 0);
  EXPECT_EQ(in.end, 8);
}

TEST(Rtc, RejectsBadIntervals) {
  EXPECT_THROW(rtc_dimension(Interval{2, 2}, 3, 1, 1, 8), std::invalid_argument);
  EXPECT_THROW(rtc_dimension(Interval{-1, 2}, 3, 1, 1, 8), std::invalid_argument);
}

dnn::Network three_conv_stack() {
  return dnn::zoo::conv_stack("s", Shape{3, 16, 16},
                              {{8, Window{3, 3, 1, 1, 1, 1}},
                               {8, Window{3, 3, 1, 1, 1, 1}},
                               {8, Window{3, 3, 1, 1, 1, 1}}});
}

std::vector<dnn::LayerId> all_layers(const dnn::Network& net) {
  std::vector<dnn::LayerId> ids(net.num_layers());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(FusedTilePlan, OutputTilesPartitionTheMap) {
  const dnn::Network net = three_conv_stack();
  const auto ids = all_layers(net);
  const FusedTilePlan plan = make_fused_tile_plan(net, ids, 2, 2);
  ASSERT_EQ(plan.num_tiles(), 4u);
  // Non-overlapping cover: areas sum to the full map, bounds within extent.
  std::int64_t covered = 0;
  for (const auto& tile : plan.tiles) {
    const auto& r = tile.output_region;
    EXPECT_GE(r.x0, 0);
    EXPECT_GE(r.y0, 0);
    EXPECT_LE(r.x1, plan.output_shape.w);
    EXPECT_LE(r.y1, plan.output_shape.h);
    covered += static_cast<std::int64_t>(r.width()) * r.height();
  }
  EXPECT_EQ(covered,
            static_cast<std::int64_t>(plan.output_shape.w) * plan.output_shape.h);
}

TEST(FusedTilePlan, InputRegionsIncludeHalo) {
  const dnn::Network net = three_conv_stack();
  const FusedTilePlan plan = make_fused_tile_plan(net, all_layers(net), 2, 2);
  // Tile (0,0): output [0,8)x[0,8); after three 3x3/p1 layers the input region
  // must extend 3 halo columns/rows beyond the tile: [0,11)x[0,11).
  const auto& tile = plan.tiles[0];
  EXPECT_EQ(tile.output_region, (exec::Region{0, 0, 8, 8}));
  EXPECT_EQ(tile.input_regions.front(), (exec::Region{0, 0, 11, 11}));
}

TEST(FusedTilePlan, Fig7WalkThrough) {
  // Fig. 7: layer c_{i-1} with 3x3 filter, stride 1, pad 1 whose output (input
  // of c_i) is 2x2, split into 2x2 tiles of one entry each. Each padded tile
  // maps back to the whole 2x2 unpadded input (clamped at the borders).
  const dnn::Network net =
      dnn::zoo::conv_stack("fig7", Shape{3, 2, 2}, {{3, Window{3, 3, 1, 1, 1, 1}}});
  const FusedTilePlan plan = make_fused_tile_plan(net, all_layers(net), 2, 2);
  for (const auto& tile : plan.tiles) {
    EXPECT_EQ(tile.input_regions[0].width(), 2);
    EXPECT_EQ(tile.input_regions[0].height(), 2);
  }
}

TEST(FusedTilePlan, ValidatesInput) {
  const dnn::Network net = three_conv_stack();
  const auto ids = all_layers(net);
  EXPECT_THROW(make_fused_tile_plan(net, std::vector<dnn::LayerId>{}, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(make_fused_tile_plan(net, ids, 0, 2), std::invalid_argument);
  EXPECT_THROW(make_fused_tile_plan(net, ids, 2, 999), std::invalid_argument);
  // Non-chain stack (skipping the middle layer) is rejected.
  EXPECT_THROW(make_fused_tile_plan(net, std::vector<dnn::LayerId>{0, 2}, 2, 2),
               std::invalid_argument);
  // Non-tileable layer is rejected.
  const dnn::Network chain = dnn::zoo::tiny_chain();
  EXPECT_THROW(make_fused_tile_plan(chain, std::vector<dnn::LayerId>{6}, 1, 1),
               std::invalid_argument);
}

TEST(FusedTilePlan, RedundancyAtLeastOneAndGrowsWithGrid) {
  const dnn::Network net = three_conv_stack();
  const auto ids = all_layers(net);
  const double r1 = redundancy_factor(net, make_fused_tile_plan(net, ids, 1, 1));
  const double r2 = redundancy_factor(net, make_fused_tile_plan(net, ids, 2, 2));
  const double r4 = redundancy_factor(net, make_fused_tile_plan(net, ids, 4, 4));
  EXPECT_NEAR(r1, 1.0, 0.05);
  EXPECT_GT(r2, 1.0);
  EXPECT_GT(r4, r2);  // finer grids overlap more (Fig. 12 discussion)
}

TEST(FusedTilePlan, ParallelBeatsSerialDespiteRedundancy) {
  // Big enough stack that 4-way tiling wins even with halo recompute.
  const dnn::Network net = dnn::zoo::conv_stack(
      "big", Shape{32, 64, 64},
      {{64, Window{3, 3, 1, 1, 1, 1}}, {64, Window{3, 3, 1, 1, 1, 1}}});
  const FusedTilePlan plan = make_fused_tile_plan(net, all_layers(net), 2, 2);
  const profile::NodeSpec edge = profile::i7_8700();
  const double serial = serial_stack_latency(net, plan, edge);
  const double parallel = parallel_stack_latency(net, plan, edge);
  EXPECT_LT(parallel, serial);
  EXPECT_GT(parallel, serial / 4.0);  // redundancy prevents a perfect 4x
}

TEST(LongestTileableRun, FindsConvRunInChain) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  // Layers: conv relu pool conv relu pool fc relu fc softmax -> the tileable
  // prefix 0..5 is the longest run.
  const auto run = longest_tileable_run(net, all_layers(net));
  EXPECT_EQ(run, (std::vector<dnn::LayerId>{0, 1, 2, 3, 4, 5}));
}

TEST(LongestTileableRun, BreaksAtNonChainOrNonTileable) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const auto run = longest_tileable_run(net, all_layers(net));
  // Runs break at the two-input concat; the winner is a contiguous chain.
  for (std::size_t j = 1; j < run.size(); ++j) {
    ASSERT_EQ(net.layer(run[j]).inputs.size(), 1u);
    EXPECT_EQ(net.layer(run[j]).inputs[0], run[j - 1]);
  }
  EXPECT_FALSE(run.empty());
}

TEST(LongestTileableRun, EmptyInputGivesEmptyRun) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  EXPECT_TRUE(longest_tileable_run(net, std::vector<dnn::LayerId>{}).empty());
}

TEST(ChooseTileGrid, NearSquareFactorisations) {
  EXPECT_EQ(choose_tile_grid(4, 100, 100), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(choose_tile_grid(6, 100, 100), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(choose_tile_grid(1, 100, 100), (std::pair<int, int>{1, 1}));
  // Prime counts use 1xN when it fits.
  EXPECT_EQ(choose_tile_grid(7, 100, 100), (std::pair<int, int>{1, 7}));
  // Falls back to fewer nodes when the extent cannot host the grid.
  const auto [r, c] = choose_tile_grid(9, 2, 2);
  EXPECT_LE(r, 2);
  EXPECT_LE(c, 2);
  EXPECT_GT(r * c, 1);
}

}  // namespace
}  // namespace d3::core
