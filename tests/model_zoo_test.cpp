#include <set>

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"

namespace d3::dnn::zoo {
namespace {

std::int64_t conv_fc_params(const Network& net) {
  std::int64_t total = 0;
  for (LayerId id = 0; id < net.num_layers(); ++id) {
    const auto kind = net.layer(id).spec.kind;
    if (kind == LayerKind::kConv || kind == LayerKind::kFullyConnected)
      total += net.layer(id).params;
  }
  return total;
}

Shape final_shape(const Network& net) { return net.layer(net.last()).output_shape; }

TEST(Zoo, AlexNetMatchesReference) {
  const Network net = alexnet();
  // Classic AlexNet (96/256/384/384/256 convs): 62,378,344 parameters.
  EXPECT_EQ(conv_fc_params(net), 62378344);
  EXPECT_EQ(final_shape(net), (Shape{1000, 1, 1}));
  EXPECT_TRUE(net.is_chain());
  // ~2.3 GFLOPs total (2 FLOPs per MAC; ungrouped 96/256/384/384/256 convs).
  EXPECT_GT(net.total_flops(), static_cast<std::int64_t>(2.0e9));
  EXPECT_LT(net.total_flops(), static_cast<std::int64_t>(2.6e9));
}

TEST(Zoo, Vgg16MatchesReference) {
  const Network net = vgg16();
  EXPECT_EQ(conv_fc_params(net), 138357544);  // torchvision VGG-16
  EXPECT_EQ(final_shape(net), (Shape{1000, 1, 1}));
  EXPECT_TRUE(net.is_chain());
  // ~31 GFLOPs (2 FLOPs per MAC, 15.5 GMACs).
  EXPECT_GT(net.total_flops(), static_cast<std::int64_t>(28e9));
  EXPECT_LT(net.total_flops(), static_cast<std::int64_t>(34e9));
}

TEST(Zoo, Vgg16HasThirteenConvGroups) {
  const Network net = vgg16();
  std::set<std::string> conv_groups;
  for (LayerId id = 0; id < net.num_layers(); ++id)
    if (net.layer(id).spec.kind == LayerKind::kConv) conv_groups.insert(net.layer(id).spec.group);
  EXPECT_EQ(conv_groups.size(), 13u);
}

TEST(Zoo, ResNet18MatchesReference) {
  const Network net = resnet18();
  // torchvision resnet18: 11,689,512 params (conv bias-free); our convs carry
  // biases, so allow a small positive delta.
  EXPECT_GT(conv_fc_params(net), static_cast<std::int64_t>(11.6e6));
  EXPECT_LT(conv_fc_params(net), static_cast<std::int64_t>(11.8e6));
  EXPECT_EQ(final_shape(net), (Shape{1000, 1, 1}));
  EXPECT_FALSE(net.is_chain());  // residual adds make it a DAG
  // ~3.6 GFLOPs.
  EXPECT_GT(net.total_flops(), static_cast<std::int64_t>(3.2e9));
  EXPECT_LT(net.total_flops(), static_cast<std::int64_t>(4.2e9));
}

TEST(Zoo, ResNet18HasEightBlocks) {
  const Network net = resnet18();
  std::set<std::string> groups;
  for (LayerId id = 0; id < net.num_layers(); ++id) groups.insert(net.layer(id).spec.group);
  for (int b = 1; b <= 8; ++b)
    EXPECT_TRUE(groups.count("block" + std::to_string(b))) << "missing block" << b;
}

TEST(Zoo, Darknet53MatchesReference) {
  const Network net = darknet53();
  // Darknet-53 classifier: ~41.6M params.
  EXPECT_GT(conv_fc_params(net), static_cast<std::int64_t>(40e6));
  EXPECT_LT(conv_fc_params(net), static_cast<std::int64_t>(43e6));
  EXPECT_EQ(final_shape(net), (Shape{1000, 1, 1}));
  EXPECT_FALSE(net.is_chain());
  // 52 convs + fc = "53"; count the convs.
  int convs = 0;
  for (LayerId id = 0; id < net.num_layers(); ++id)
    convs += net.layer(id).spec.kind == LayerKind::kConv;
  EXPECT_EQ(convs, 52);
}

TEST(Zoo, Darknet53GroupsFollowFig1) {
  const Network net = darknet53();
  std::set<std::string> groups;
  for (LayerId id = 0; id < net.num_layers(); ++id) groups.insert(net.layer(id).spec.group);
  for (const char* g : {"conv1", "conv2", "residual1", "conv3", "residual2", "conv4",
                        "residual3", "conv5", "residual4", "conv6", "residual5", "fc"})
    EXPECT_TRUE(groups.count(g)) << "missing group " << g;
}

TEST(Zoo, InceptionV4Structure) {
  const Network net = inception_v4();
  EXPECT_EQ(final_shape(net), (Shape{1000, 1, 1}));
  EXPECT_FALSE(net.is_chain());
  // Conv+fc parameters land near the official ~42.7M.
  EXPECT_GT(conv_fc_params(net), static_cast<std::int64_t>(38e6));
  EXPECT_LT(conv_fc_params(net), static_cast<std::int64_t>(46e6));
  // Inception-C concat output is 1536 channels before global pooling.
  for (LayerId id = 0; id < net.num_layers(); ++id) {
    if (net.layer(id).spec.kind == LayerKind::kGlobalAvgPool) {
      EXPECT_EQ(net.input_shapes(id)[0].c, 1536);
    }
  }
}

TEST(Zoo, InceptionV4IsLargeDag) {
  const Network net = inception_v4();
  EXPECT_GT(net.num_layers(), 400u);  // conv+bn+relu triples across 145 convs
  const graph::Dag dag = net.to_dag();
  EXPECT_TRUE(dag.is_acyclic());
  // Concats have fan-in > 1 (true multi-branch DAG).
  bool found_fan_in = false;
  for (graph::VertexId v = 1; v < dag.size(); ++v) found_fan_in |= dag.in_degree(v) > 2;
  EXPECT_TRUE(found_fan_in);
}

TEST(Zoo, PaperModelsComeInPaperOrder) {
  const auto models = paper_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name(), "AlexNet");
  EXPECT_EQ(models[1].name(), "VGG-16");
  EXPECT_EQ(models[2].name(), "ResNet-18");
  EXPECT_EQ(models[3].name(), "Darknet-53");
  EXPECT_EQ(models[4].name(), "Inception-v4");
  for (const auto& m : models) EXPECT_EQ(m.input_shape(), (Shape{3, 224, 224}));
}

TEST(Zoo, GridModuleShapesMatchInceptionC) {
  const Network net = grid_module(8, 8);
  // Concat2 output: 256 + 256 + 256 + 256 + 256 + 256 = 1536 channels.
  EXPECT_EQ(final_shape(net), (Shape{1536, 8, 8}));
  EXPECT_EQ(net.num_layers(), 13u);  // v1..v13
}

TEST(Zoo, ConvStackBuilds) {
  const Network net = conv_stack("s", Shape{3, 16, 16},
                                 {{8, Window{3, 3, 1, 1, 1, 1}}, {16, Window{3, 3, 2, 2, 0, 0}}});
  EXPECT_EQ(net.num_layers(), 2u);
  EXPECT_EQ(final_shape(net), (Shape{16, 7, 7}));
  EXPECT_THROW(conv_stack("bad", Shape{3, 8, 8}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace d3::dnn::zoo
