// End-to-end tests of the online execution engine: the distributed inference
// must be bitwise-identical to the single-node reference for every plan shape,
// and its message transcript must match the analytical traffic accounting.
#include <numeric>

#include <gtest/gtest.h>

#include "core/hpa.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "runtime/engine.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

struct Fixture {
  dnn::Network net;
  exec::WeightStore weights;
  dnn::Tensor input;
  dnn::Tensor reference;

  explicit Fixture(dnn::Network n, std::uint64_t seed = 77)
      : net(std::move(n)), weights(exec::WeightStore::random_for(net, seed)) {
    util::Rng rng(seed + 1);
    input = exec::random_tensor(net.input_shape(), rng);
    reference = exec::Executor(net, weights).run(input);
  }
};

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

core::Assignment uniform(const dnn::Network& net, core::Tier tier) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, tier);
  a.tier[0] = core::Tier::kDevice;
  return a;
}

// Distributed output == reference for every uniform plan, on chain and DAG nets.
class RuntimeUniform
    : public ::testing::TestWithParam<std::tuple<const char*, core::Tier>> {};

TEST_P(RuntimeUniform, LosslessOnEveryTier) {
  const auto [which, tier] = GetParam();
  Fixture f(std::string(which) == "chain" ? dnn::zoo::tiny_chain() : dnn::zoo::tiny_branch());
  const OnlineEngine engine(f.net, f.weights, uniform(f.net, tier));
  const InferenceResult result = engine.infer(f.input);
  expect_identical(result.output, f.reference);
  // All compute landed on the planned tier.
  EXPECT_EQ(result.layers_executed[static_cast<std::size_t>(core::index(tier))],
            f.net.num_layers());
}

INSTANTIATE_TEST_SUITE_P(
    Plans, RuntimeUniform,
    ::testing::Combine(::testing::Values("chain", "branch"),
                       ::testing::Values(core::Tier::kDevice, core::Tier::kEdge,
                                         core::Tier::kCloud)));

TEST(Runtime, RawInputShipsOnceForOffloadedPlans) {
  Fixture f(dnn::zoo::tiny_branch());
  const OnlineEngine engine(f.net, f.weights, uniform(f.net, core::Tier::kEdge));
  const InferenceResult result = engine.infer(f.input);
  // Exactly one boundary message: the raw frame, device -> edge.
  ASSERT_EQ(result.messages.size(), 1u);
  EXPECT_EQ(result.messages[0].payload, "raw input");
  EXPECT_EQ(result.device_edge_bytes, f.net.input_shape().bytes());
  EXPECT_EQ(result.edge_cloud_bytes, 0);
}

TEST(Runtime, HpaPlanLosslessAndTrafficMatchesAnalysis) {
  Fixture f(dnn::zoo::tiny_branch());
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  const auto problem = core::make_problem(f.net, estimators, net::wifi());
  const core::Assignment assignment = core::hpa(problem).assignment;

  const OnlineEngine engine(f.net, f.weights, assignment);
  const InferenceResult result = engine.infer(f.input);
  expect_identical(result.output, f.reference);

  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, assignment);
  EXPECT_EQ(result.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(result.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(result.device_cloud_bytes, traffic.device_cloud_bytes);
}

TEST(Runtime, FanOutToSameTierShipsOnce) {
  // tiny_branch: the stem relu feeds two branches; if both land on the cloud
  // the tensor must cross the boundary once.
  Fixture f(dnn::zoo::tiny_branch());
  core::Assignment a = uniform(f.net, core::Tier::kCloud);
  const InferenceResult result = OnlineEngine(f.net, f.weights, a).infer(f.input);
  expect_identical(result.output, f.reference);
  ASSERT_EQ(result.messages.size(), 1u);  // only the raw frame crosses
}

TEST(Runtime, VsmScatterGatherLossless) {
  // Three-tier plan with a 2x2 VSM stack on the edge.
  Fixture f(dnn::zoo::tiny_chain());
  core::Assignment a;
  a.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  // conv1(0) relu1(1) pool1(2) conv2(3) relu2(4) pool2(5) on the edge.
  std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  for (const dnn::LayerId id : stack) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;

  const auto plan = core::make_fused_tile_plan(f.net, stack, 2, 2);
  const OnlineEngine engine(f.net, f.weights, a, plan);
  const InferenceResult result = engine.infer(f.input);
  expect_identical(result.output, f.reference);

  // 4 scatter + 4 gather intra-edge messages, plus raw input and the
  // edge->cloud boundary tensor.
  std::size_t scatter = 0, gather = 0;
  for (const auto& m : result.messages) {
    scatter += m.payload.find("input") != std::string::npos && m.from_node == "edge0";
    gather += m.payload.find("output") != std::string::npos && m.to_node == "edge0";
  }
  EXPECT_EQ(scatter, 4u);  // one tile input per edge worker
  EXPECT_EQ(gather, 4u);
  EXPECT_GT(result.vsm_scatter_bytes, 0);
  EXPECT_GT(result.vsm_gather_bytes, 0);
  // Scatter ships halos: more bytes than the gathered (disjoint) outputs cover.
  EXPECT_GT(result.vsm_scatter_bytes, f.net.layer(0).output_shape.bytes() / 4);
}

TEST(Runtime, VsmTrafficStillMatchesBoundaryAnalysis) {
  // VSM is intra-edge: tier-boundary bytes must be unaffected by tiling.
  Fixture f(dnn::zoo::tiny_chain());
  core::Assignment a = uniform(f.net, core::Tier::kCloud);
  std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  for (const dnn::LayerId id : stack) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;

  const auto plan = core::make_fused_tile_plan(f.net, stack, 2, 2);
  const InferenceResult tiled = OnlineEngine(f.net, f.weights, a, plan).infer(f.input);
  const InferenceResult plain = OnlineEngine(f.net, f.weights, a).infer(f.input);
  EXPECT_EQ(tiled.device_edge_bytes, plain.device_edge_bytes);
  EXPECT_EQ(tiled.edge_cloud_bytes, plain.edge_cloud_bytes);
  expect_identical(tiled.output, plain.output);
}

TEST(Runtime, RejectsInvalidPlans) {
  Fixture f(dnn::zoo::tiny_chain());
  // Wrong size.
  core::Assignment bad;
  bad.tier.assign(3, core::Tier::kDevice);
  EXPECT_THROW(OnlineEngine(f.net, f.weights, bad), std::invalid_argument);
  // v0 off-device.
  core::Assignment off = uniform(f.net, core::Tier::kEdge);
  off.tier[0] = core::Tier::kEdge;
  EXPECT_THROW(OnlineEngine(f.net, f.weights, off), std::invalid_argument);
  // Precedence violation: consumer device-ward of its producer.
  core::Assignment prec = uniform(f.net, core::Tier::kCloud);
  prec.tier[dnn::Network::vertex_of(3)] = core::Tier::kDevice;
  EXPECT_THROW(OnlineEngine(f.net, f.weights, prec), std::invalid_argument);
}

TEST(Runtime, RejectsVsmStackOffEdgeOrLeakyIntermediates) {
  Fixture f(dnn::zoo::tiny_chain());
  const std::vector<dnn::LayerId> stack = {0, 1, 2};
  const auto plan = core::make_fused_tile_plan(f.net, stack, 2, 2);
  // Stack assigned to the cloud: invalid.
  EXPECT_THROW(OnlineEngine(f.net, f.weights, uniform(f.net, core::Tier::kCloud), plan),
               std::invalid_argument);

  // Intermediate consumed outside the stack: tiny_branch's stem feeds two
  // branches; a stack ending inside the fork must be rejected.
  Fixture b(dnn::zoo::tiny_branch());
  core::Assignment a = uniform(b.net, core::Tier::kEdge);
  // stem(0), stem_relu(1): stem_relu feeds branch_a(2) and branch_b1(3).
  const auto leaky =
      core::make_fused_tile_plan(b.net, std::vector<dnn::LayerId>{0, 1}, 2, 2);
  // Stack ends at the fork layer itself: fine (output is assembled centrally).
  EXPECT_NO_THROW(OnlineEngine(b.net, b.weights, a, leaky));
  const auto mid =
      core::make_fused_tile_plan(b.net, std::vector<dnn::LayerId>{0}, 2, 2);
  // Stack {0}: layer 0's only consumer is layer 1 — also fine.
  EXPECT_NO_THROW(OnlineEngine(b.net, b.weights, a, mid));
}

TEST(Runtime, WrongInputShapeThrows) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, uniform(f.net, core::Tier::kDevice));
  EXPECT_THROW(engine.infer(dnn::Tensor(dnn::Shape{1, 4, 4})), std::invalid_argument);
}

TEST(Runtime, GridModuleDistributedLossless) {
  // The Fig. 3 grid module across all three tiers.
  Fixture f(dnn::zoo::grid_module(4, 4), 123);
  core::Assignment a;
  a.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  // v1 (relu) on device, the four branch heads on the edge, the rest cloud.
  a.tier[1] = core::Tier::kDevice;
  for (graph::VertexId v = 2; v <= 5; ++v) a.tier[v] = core::Tier::kEdge;
  const InferenceResult result = OnlineEngine(f.net, f.weights, a).infer(f.input);
  expect_identical(result.output, f.reference);
  EXPECT_GT(result.edge_cloud_bytes, 0);
}

TEST(LongestTileableRun, BreaksAtResidualForks) {
  // In Darknet-53 the downsampling conv's relu output feeds both the residual
  // body and the add: it may end a stack but never sit inside one.
  const dnn::Network net = dnn::zoo::darknet53();
  std::vector<dnn::LayerId> ids(net.num_layers());
  std::iota(ids.begin(), ids.end(), 0);
  const auto run = core::longest_tileable_run(net, ids);
  ASSERT_FALSE(run.empty());
  std::vector<int> consumers(net.num_layers(), 0);
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    for (const dnn::LayerId in : net.layer(id).inputs)
      if (in != dnn::kNetworkInput) ++consumers[in];
  for (std::size_t j = 0; j + 1 < run.size(); ++j)
    EXPECT_LE(consumers[run[j]], 1) << net.layer(run[j]).spec.name;
}

}  // namespace
}  // namespace d3::runtime
