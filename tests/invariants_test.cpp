// Cross-cutting invariants over the full model x condition matrix — the
// relations every figure of the paper rests on, asserted exhaustively rather
// than on the quick subsets the per-module tests use.
#include <gtest/gtest.h>

#include "baselines/dads.h"
#include "baselines/neurosurgeon.h"
#include "core/hpa.h"
#include "dnn/model_zoo.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "sim/experiment.h"

namespace d3 {
namespace {

class FullMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  dnn::Network net() const {
    return dnn::zoo::paper_models()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  net::NetworkCondition condition() const {
    return net::paper_conditions()[static_cast<std::size_t>(std::get<1>(GetParam()))];
  }
};

TEST_P(FullMatrix, HpaThetaNeverLosesToSingleTiers) {
  const auto model = net();
  const auto problem = core::make_problem_exact(model, profile::paper_testbed(), condition());
  const core::HpaResult result = core::hpa(problem);
  for (const core::Tier tier : core::kAllTiers) {
    const double uniform = core::total_latency(problem, core::uniform_assignment(problem, tier));
    EXPECT_LE(result.total_latency_seconds, uniform + 1e-12)
        << model.name() << " vs uniform " << core::tier_name(tier);
  }
}

TEST_P(FullMatrix, HpaThetaNeverLosesToTwoTierBaselines) {
  const auto model = net();
  const auto problem = core::make_problem_exact(model, profile::paper_testbed(), condition());
  const double hpa_theta = core::hpa(problem).total_latency_seconds;
  const double dads_theta = baselines::dads(problem).total_latency_seconds;
  EXPECT_LE(hpa_theta, dads_theta + 1e-9) << model.name();
  if (const auto ns = baselines::neurosurgeon(problem)) {
    EXPECT_LE(hpa_theta, ns->total_latency_seconds + 1e-9) << model.name();
  }
}

TEST_P(FullMatrix, BackboneTrafficNeverExceedsRawFrame) {
  // Fig. 13's upper bound: no partition ships more to the cloud than the raw
  // input (HPA crossings happen at tensors smaller than what cloud-only ships).
  const auto model = net();
  const auto problem = core::make_problem_exact(model, profile::paper_testbed(), condition());
  const core::Assignment assignment = core::hpa(problem).assignment;
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, assignment);
  EXPECT_LE(traffic.to_cloud_bytes(), model.input_shape().bytes()) << model.name();
}

TEST_P(FullMatrix, StreamSimulatorConsistentWithClosedForm) {
  sim::ExperimentConfig config;
  config.condition = condition();
  config.stream.duration_seconds = 5;
  const sim::MethodResult hpa = sim::run_method(net(), sim::Method::kHpa, config);
  if (hpa.pipeline.bottleneck_stage_seconds() < 1.0 / config.stream.fps) {
    // Unsaturated pipeline: every frame completes with the closed-form latency.
    EXPECT_EQ(hpa.stream.frames_dropped, 0u);
    EXPECT_NEAR(hpa.stream.avg_latency_seconds, hpa.frame_latency_seconds, 1e-6);
  } else {
    // Saturated: the drop policy sheds load, completed frames keep the
    // closed-form latency (no queueing inflation).
    EXPECT_GT(hpa.stream.frames_dropped, 0u);
    EXPECT_NEAR(hpa.stream.avg_latency_seconds, hpa.frame_latency_seconds,
                hpa.frame_latency_seconds * 0.01);
  }
}

TEST_P(FullMatrix, LocalUpdateKeepsFeasibilityUnderPerturbations) {
  // Fuzz the adaptive path: random vertex-time perturbations must never leave
  // the assignment Prop.-1 infeasible.
  auto problem = core::make_problem_exact(net(), profile::paper_testbed(), condition());
  core::Assignment assignment = core::hpa(problem).assignment;
  util::Rng rng(std::get<0>(GetParam()) * 17u + std::get<1>(GetParam()));
  for (int round = 0; round < 10; ++round) {
    const auto v = static_cast<graph::VertexId>(
        rng.uniform_int(1, static_cast<std::int64_t>(problem.size()) - 1));
    for (const core::Tier t : core::kAllTiers)
      problem.vertex_time[v].at(t) *= rng.uniform(0.2, 5.0);
    core::hpa_local_update(problem, assignment, v);
    ASSERT_TRUE(core::respects_precedence(problem, assignment))
        << net().name() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(ModelsTimesConditions, FullMatrix,
                         ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)));

TEST(Invariants, VsmPipelineNeverSlowerAcrossModels) {
  sim::ExperimentConfig config;
  config.stream.duration_seconds = 5;
  for (const auto& model : dnn::zoo::paper_models()) {
    const auto hpa = sim::run_method(model, sim::Method::kHpa, config);
    const auto vsm = sim::run_method(model, sim::Method::kHpaVsm, config);
    EXPECT_LE(vsm.frame_latency_seconds, hpa.frame_latency_seconds + 1e-9) << model.name();
    if (vsm.vsm_redundancy) {
      EXPECT_GE(*vsm.vsm_redundancy, 1.0) << model.name();
    }
  }
}

TEST(Invariants, ConditionsOrderCloudAttractiveness) {
  // Faster backhaul can only move vertices cloud-ward in aggregate: the cloud
  // load under optical must be >= the cloud load under 4G for every model.
  for (const auto& model : dnn::zoo::paper_models()) {
    const auto slow =
        core::make_problem_exact(model, profile::paper_testbed(), net::lte_4g());
    const auto fast =
        core::make_problem_exact(model, profile::paper_testbed(), net::optical());
    const auto count_cloud = [](const core::Assignment& a) {
      std::size_t n = 0;
      for (const auto t : a.tier) n += t == core::Tier::kCloud;
      return n;
    };
    EXPECT_GE(count_cloud(core::hpa(fast).assignment),
              count_cloud(core::hpa(slow).assignment))
        << model.name();
  }
}

}  // namespace
}  // namespace d3
