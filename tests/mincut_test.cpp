#include <gtest/gtest.h>

#include "graph/mincut.h"

namespace d3::graph {
namespace {

TEST(MaxFlow, SingleEdge) {
  FlowNetwork f(2);
  f.add_edge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 1), 5.0);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  FlowNetwork f(3);
  f.add_edge(0, 1, 5.0);
  f.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  FlowNetwork f(4);
  f.add_edge(0, 1, 2.0);
  f.add_edge(1, 3, 2.0);
  f.add_edge(0, 2, 3.0);
  f.add_edge(2, 3, 1.5);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 3.5);
}

TEST(MaxFlow, ClassicCrossNetwork) {
  // CLRS-style example with a cross edge; max flow = 19... use a known small one:
  //   s->a 10, s->b 10, a->b 2, a->t 4, b->t 9, a->c 8, c->t 10
  FlowNetwork f(5);
  const std::size_t s = 0, a = 1, b = 2, c = 3, t = 4;
  f.add_edge(s, a, 10);
  f.add_edge(s, b, 10);
  f.add_edge(a, b, 2);
  f.add_edge(a, t, 4);
  f.add_edge(b, t, 9);
  f.add_edge(a, c, 8);
  f.add_edge(c, t, 10);
  EXPECT_DOUBLE_EQ(f.max_flow(s, t), 19.0);
}

TEST(MaxFlow, SourceSideIsMinCut) {
  FlowNetwork f(4);
  f.add_edge(0, 1, 10.0);
  f.add_edge(1, 2, 1.0);  // bottleneck
  f.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 1.0);
  EXPECT_TRUE(f.source_side()[0]);
  EXPECT_TRUE(f.source_side()[1]);
  EXPECT_FALSE(f.source_side()[2]);
  EXPECT_FALSE(f.source_side()[3]);
  const auto cut = f.cut_edges();
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(std::get<0>(cut[0]), 1u);
  EXPECT_EQ(std::get<1>(cut[0]), 2u);
}

TEST(MaxFlow, CutCapacityEqualsFlow) {
  FlowNetwork f(6);
  f.add_edge(0, 1, 7.0);
  f.add_edge(0, 2, 4.0);
  f.add_edge(1, 3, 5.0);
  f.add_edge(2, 3, 3.0);
  f.add_edge(1, 4, 3.0);
  f.add_edge(3, 5, 8.0);
  f.add_edge(4, 5, 5.0);
  const double flow = f.max_flow(0, 5);
  double cut_cap = 0;
  for (const auto& [u, v, cap] : f.cut_edges()) cut_cap += cap;
  EXPECT_NEAR(flow, cut_cap, 1e-12);
}

TEST(MaxFlow, InfiniteEdgeNeverCut) {
  FlowNetwork f(3);
  f.add_edge(0, 1, FlowNetwork::kInfinity);
  f.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 2.0);
  for (const auto& [u, v, cap] : f.cut_edges()) EXPECT_NE(cap, FlowNetwork::kInfinity);
}

TEST(MaxFlow, FlowOnReportsPerEdge) {
  FlowNetwork f(3);
  const auto e01 = f.add_edge(0, 1, 4.0);
  const auto e12 = f.add_edge(1, 2, 9.0);
  f.max_flow(0, 2);
  EXPECT_DOUBLE_EQ(f.flow_on(e01), 4.0);
  EXPECT_DOUBLE_EQ(f.flow_on(e12), 4.0);
}

TEST(MaxFlow, ApiMisuseThrows) {
  FlowNetwork f(2);
  f.add_edge(0, 1, 1.0);
  EXPECT_THROW(f.flow_on(0), std::logic_error);  // before max_flow
  EXPECT_THROW(f.max_flow(0, 0), std::invalid_argument);
  f.max_flow(0, 1);
  EXPECT_THROW(f.max_flow(0, 1), std::logic_error);  // already solved
  FlowNetwork g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork f(3);
  f.add_edge(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 0.0);
  EXPECT_TRUE(f.source_side()[1]);
  EXPECT_FALSE(f.source_side()[2]);
}

}  // namespace
}  // namespace d3::graph
