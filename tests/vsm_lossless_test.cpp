// The paper's central claim for VSM (§III-F): tiled execution is *lossless*.
// Because tiles carry their global coordinates and the exact halo computed by
// RTC, tiled and serial execution perform identical float operations — so these
// tests assert bitwise equality, not approximate closeness, across a
// parameterised sweep of stack shapes, windows and tile grids.
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "core/vsm.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "util/rng.h"

namespace d3::core {
namespace {

using dnn::Shape;
using dnn::Window;

std::vector<dnn::LayerId> all_layers(const dnn::Network& net) {
  std::vector<dnn::LayerId> ids(net.num_layers());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

void expect_bitwise_equal(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "element " << i;
}

void check_lossless(const dnn::Network& net, int rows, int cols, std::uint64_t seed) {
  const auto ids = all_layers(net);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, seed);
  util::Rng rng(seed ^ 0xabcdef);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);

  const dnn::Tensor serial = run_stack_serial(net, weights, input, ids);
  const FusedTilePlan plan = make_fused_tile_plan(net, ids, rows, cols);
  const dnn::Tensor tiled = run_fused_tiles(net, weights, input, plan);
  expect_bitwise_equal(serial, tiled);
}

// Sweep: (kernel, stride, pad) x grid over a 3-conv stack.
class VsmWindowSweep
    : public ::testing::TestWithParam<std::tuple<std::tuple<int, int, int>, std::pair<int, int>>> {
};

TEST_P(VsmWindowSweep, TiledEqualsSerialBitwise) {
  const auto [window, grid] = GetParam();
  const auto [kernel, stride, pad] = window;
  const auto [rows, cols] = grid;
  const Window w{kernel, kernel, stride, stride, pad, pad};
  const dnn::Network net =
      dnn::zoo::conv_stack("sweep", Shape{3, 24, 24}, {{6, w}, {6, w}, {6, w}});
  const Shape out = net.layer(net.last()).output_shape;
  if (rows > out.h || cols > out.w) GTEST_SKIP() << "grid larger than output";
  check_lossless(net, rows, cols, 1000 + static_cast<std::uint64_t>(kernel * 100 + stride * 10 + pad));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, VsmWindowSweep,
    ::testing::Combine(::testing::Values(std::tuple<int, int, int>{1, 1, 0},
                                         std::tuple<int, int, int>{3, 1, 0},
                                         std::tuple<int, int, int>{3, 1, 1},
                                         std::tuple<int, int, int>{3, 2, 1},
                                         std::tuple<int, int, int>{5, 1, 2},
                                         std::tuple<int, int, int>{5, 2, 2},
                                         std::tuple<int, int, int>{7, 1, 3},
                                         std::tuple<int, int, int>{2, 2, 0}),
                       ::testing::Values(std::pair<int, int>{1, 2}, std::pair<int, int>{2, 2},
                                         std::pair<int, int>{3, 3},
                                         std::pair<int, int>{1, 4})));

TEST(VsmLossless, MixedConvPoolReluBnStack) {
  dnn::Network net("mixed", Shape{3, 20, 20});
  dnn::LayerId x = net.conv("c1", dnn::kNetworkInput, 8, 3, 1, 1);
  x = net.add(dnn::LayerSpec::batch_norm("bn1"), {x});
  x = net.relu("r1", x);
  x = net.max_pool("p1", x, 2, 2);
  x = net.conv("c2", x, 8, 3, 1, 1);
  x = net.relu("r2", x);
  x = net.avg_pool("p2", x, 3, 1, 1);
  check_lossless(net, 2, 2, 42);
}

TEST(VsmLossless, AsymmetricKernelsAndPads) {
  // Inception-style 1x7 / 7x1 pairs.
  dnn::Network net("asym", Shape{4, 18, 18});
  dnn::LayerId x = net.conv_rect("c1x7", dnn::kNetworkInput, 6, 7, 1, 3, 0);
  x = net.conv_rect("c7x1", x, 6, 1, 7, 0, 3);
  x = net.conv_rect("c1x3", x, 6, 3, 1, 1, 0);
  check_lossless(net, 3, 2, 43);
}

TEST(VsmLossless, StridedDownsamplingStack) {
  const dnn::Network net = dnn::zoo::conv_stack(
      "strided", Shape{3, 33, 33},
      {{8, Window{3, 3, 2, 2, 1, 1}}, {8, Window{3, 3, 2, 2, 1, 1}}});
  check_lossless(net, 2, 2, 44);
}

TEST(VsmLossless, MaxPoolPaddingWithNegativeActivations) {
  // Max-pool padding must be -inf, not 0: feed a stack whose activations are
  // negative at the borders (bn shifts negative).
  dnn::Network net("negpool", Shape{2, 12, 12});
  dnn::LayerId x = net.conv("c", dnn::kNetworkInput, 4, 3, 1, 1);
  x = net.max_pool("p", x, 3, 1, 1);
  check_lossless(net, 2, 2, 45);
}

TEST(VsmLossless, UnevenGridDivision) {
  // 13 is not divisible by 3: balanced split produces uneven tiles.
  const dnn::Network net = dnn::zoo::conv_stack(
      "uneven", Shape{3, 13, 13}, {{5, Window{3, 3, 1, 1, 1, 1}}});
  check_lossless(net, 3, 3, 46);
}

TEST(VsmLossless, DeepStack) {
  // Six layers: halos accumulate across the stack (paper Fig. 8 shows three).
  std::vector<std::pair<int, Window>> convs(6, {4, Window{3, 3, 1, 1, 1, 1}});
  const dnn::Network net = dnn::zoo::conv_stack("deep", Shape{3, 30, 30}, convs);
  check_lossless(net, 2, 2, 47);
}

TEST(VsmLossless, VggStylePrefix) {
  // Two VGG blocks (3x3/p1 convs + 2x2 pools) on a reduced input.
  dnn::Network net("vggish", Shape{3, 32, 32});
  dnn::LayerId x = net.conv("c1", dnn::kNetworkInput, 8, 3, 1, 1);
  x = net.relu("r1", x);
  x = net.conv("c2", x, 8, 3, 1, 1);
  x = net.relu("r2", x);
  x = net.max_pool("p1", x, 2, 2);
  x = net.conv("c3", x, 16, 3, 1, 1);
  x = net.relu("r3", x);
  x = net.max_pool("p2", x, 2, 2);
  check_lossless(net, 2, 2, 48);
}

// Randomised stacks: any window/stride/pad combination must stay lossless.
class VsmRandomStack : public ::testing::TestWithParam<int> {};

TEST_P(VsmRandomStack, TiledEqualsSerialBitwise) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int size = static_cast<int>(rng.uniform_int(16, 32));
  dnn::Network net("rand", Shape{3, size, size});
  dnn::LayerId x = dnn::kNetworkInput;
  const int layers = static_cast<int>(rng.uniform_int(1, 4));
  for (int j = 0; j < layers; ++j) {
    const Shape cur = x == dnn::kNetworkInput ? net.input_shape() : net.layer(x).output_shape;
    const int max_k = std::min({5, cur.h, cur.w});
    const int k = static_cast<int>(rng.uniform_int(1, max_k));
    const int s = static_cast<int>(rng.uniform_int(1, 2));
    const int p = static_cast<int>(rng.uniform_int(0, k / 2));
    x = net.conv("c" + std::to_string(j), x, 4, k, s, p);
    if (rng.chance(0.5)) x = net.relu("r" + std::to_string(j), x);
  }
  const Shape out = net.layer(net.last()).output_shape;
  const int rows = static_cast<int>(rng.uniform_int(1, std::min(3, out.h)));
  const int cols = static_cast<int>(rng.uniform_int(1, std::min(3, out.w)));
  check_lossless(net, rows, cols, static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsmRandomStack, ::testing::Range(1, 26));

TEST(VsmLossless, SingleTileDegenerateGrid) {
  // 1x1 grid: one "tile" covering everything must equal serial trivially.
  const dnn::Network net = dnn::zoo::conv_stack(
      "one", Shape{3, 10, 10}, {{4, Window{3, 3, 1, 1, 1, 1}}});
  check_lossless(net, 1, 1, 49);
}

TEST(VsmExecutor, SingleTileMatchesItsRegion) {
  const dnn::Network net = dnn::zoo::conv_stack(
      "region", Shape{3, 16, 16}, {{4, Window{3, 3, 1, 1, 1, 1}}});
  const auto ids = all_layers(net);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 50);
  util::Rng rng(51);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor serial = run_stack_serial(net, weights, input, ids);
  const FusedTilePlan plan = make_fused_tile_plan(net, ids, 2, 2);

  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    const exec::Tile in = extract_tile_input(input, plan, t);
    const exec::Tile out = run_single_tile(net, weights, in, plan, t);
    const exec::Region& r = plan.tiles[t].output_region;
    EXPECT_EQ(out.origin_x, r.x0);
    EXPECT_EQ(out.origin_y, r.y0);
    for (int c = 0; c < serial.shape().c; ++c)
      for (int y = r.y0; y < r.y1; ++y)
        for (int x = r.x0; x < r.x1; ++x)
          ASSERT_EQ(out.data.at(c, y - r.y0, x - r.x0), serial.at(c, y, x));
  }
}

TEST(VsmExecutor, RejectsWrongInputShape) {
  const dnn::Network net = dnn::zoo::conv_stack(
      "bad", Shape{3, 16, 16}, {{4, Window{3, 3, 1, 1, 1, 1}}});
  const FusedTilePlan plan = make_fused_tile_plan(net, all_layers(net), 2, 2);
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 52);
  EXPECT_THROW(run_fused_tiles(net, weights, dnn::Tensor(Shape{3, 8, 8}), plan),
               std::invalid_argument);
}

}  // namespace
}  // namespace d3::core
