#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "dnn/model_zoo.h"
#include "net/conditions.h"
#include "profile/profiler.h"

namespace d3::core {
namespace {

PartitionProblem sample_problem() {
  const dnn::Network net = dnn::zoo::resnet18();
  return make_problem_exact(net, profile::paper_testbed(), net::wifi());
}

TEST(Adaptive, InitialAssignmentIsHpa) {
  const PartitionProblem p = sample_problem();
  AdaptiveRepartitioner rep(p);
  const Assignment fresh = hpa(p).assignment;
  EXPECT_EQ(rep.assignment().tier, fresh.tier);
  EXPECT_EQ(rep.local_updates(), 0u);
  EXPECT_EQ(rep.full_repartitions(), 0u);
}

TEST(Adaptive, SmallTimeJitterAbsorbed) {
  AdaptiveRepartitioner rep(sample_problem());
  const Assignment before = rep.assignment();
  TierTimes t = rep.problem().vertex_time[5];
  for (const Tier tier : kAllTiers) t.at(tier) *= 1.05;  // 5% < 15% threshold
  EXPECT_TRUE(rep.update_vertex_time(5, t).empty());
  EXPECT_EQ(rep.assignment().tier, before.tier);
  EXPECT_EQ(rep.absorbed_updates(), 1u);
  EXPECT_EQ(rep.local_updates(), 0u);
}

TEST(Adaptive, LargeTimeChangeTriggersLocalUpdate) {
  AdaptiveRepartitioner rep(sample_problem());
  // Pick a non-cloud vertex (edge node contention scenario) and make its
  // current tier catastrophic; the repartitioner must move it locally.
  graph::VertexId victim = 0;
  for (graph::VertexId v = 1; v < rep.problem().size(); ++v)
    if (rep.assignment().tier[v] != Tier::kCloud) {
      victim = v;
      break;
    }
  ASSERT_NE(victim, 0u);
  const Tier old_tier = rep.assignment().tier[victim];
  TierTimes t = rep.problem().vertex_time[victim];
  t.at(old_tier) *= 1e5;
  rep.update_vertex_time(victim, t);
  EXPECT_EQ(rep.local_updates(), 1u);
  EXPECT_NE(rep.assignment().tier[victim], old_tier);
  EXPECT_TRUE(respects_precedence(rep.problem(), rep.assignment()));
}

TEST(Adaptive, SmallBandwidthJitterAbsorbed) {
  AdaptiveRepartitioner rep(sample_problem());
  net::NetworkCondition c = net::wifi();
  c.edge_cloud_mbps *= 1.1;  // 10% < 15%
  EXPECT_TRUE(rep.update_condition(c).empty());
  EXPECT_EQ(rep.full_repartitions(), 0u);
}

TEST(Adaptive, BandwidthCollapseRepartitions) {
  AdaptiveRepartitioner rep(sample_problem());
  net::NetworkCondition collapsed = net::wifi();
  collapsed.edge_cloud_mbps = 0.5;
  collapsed.device_cloud_mbps = 0.25;
  rep.update_condition(collapsed);
  EXPECT_EQ(rep.full_repartitions(), 1u);
  EXPECT_TRUE(respects_precedence(rep.problem(), rep.assignment()));
  // With a collapsed backbone nothing heavy should sit in the cloud.
  const TierLoad load = tier_load(rep.problem(), rep.assignment());
  EXPECT_LT(load.at(Tier::kCloud), 0.01);
}

TEST(Adaptive, RepartitionMatchesFreshHpa) {
  AdaptiveRepartitioner rep(sample_problem());
  const net::NetworkCondition c = net::lte_4g();
  rep.update_condition(c);
  PartitionProblem fresh = sample_problem();
  fresh.condition = c;
  EXPECT_EQ(rep.assignment().tier, hpa(fresh).assignment.tier);
}

TEST(Adaptive, ThresholdsConfigurable) {
  AdaptiveOptions opts;
  opts.time_threshold = 0.0;  // every change significant
  AdaptiveRepartitioner rep(sample_problem(), opts);
  TierTimes t = rep.problem().vertex_time[3];
  t.at(Tier::kDevice) *= 1.01;
  rep.update_vertex_time(3, t);
  EXPECT_EQ(rep.local_updates(), 1u);
  EXPECT_EQ(rep.absorbed_updates(), 0u);
}

TEST(Adaptive, RejectsBadVertex) {
  AdaptiveRepartitioner rep(sample_problem());
  EXPECT_THROW(rep.update_vertex_time(0, TierTimes{}), std::invalid_argument);
  EXPECT_THROW(rep.update_vertex_time(99999, TierTimes{}), std::invalid_argument);
}

TEST(Adaptive, CurrentLatencyTracksProblem) {
  AdaptiveRepartitioner rep(sample_problem());
  EXPECT_NEAR(rep.current_latency(), total_latency(rep.problem(), rep.assignment()), 1e-12);
}

}  // namespace
}  // namespace d3::core
