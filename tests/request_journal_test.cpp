// Unit coverage for the request journal (ISSUE 7): snapshot wire round-trips,
// write-ahead replay semantics (last snapshot wins, finish kills, ascending
// order), torn-tail tolerance after a mid-append death, plan-hash guarding,
// and the engine-side journal lifecycle on a completed request.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "runtime/engine.h"
#include "runtime/request_journal.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

std::string temp_journal(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

core::Assignment three_tier_plan(const dnn::Network& net) {
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

Snapshot sample_snapshot(std::uint64_t request, int next_stage) {
  Snapshot s;
  s.rpc_request = request;
  s.plan_hash = 0x1234abcd5678ef00ull;
  s.next_stage = next_stage;
  s.input = {0x01, 0x02, 0xff, 0x00, 0x7f};
  MessageRecord m;
  m.seq = 0;
  m.from_node = "device0";
  m.to_node = "edge0";
  m.payload = "layer1";
  m.from_tier = core::Tier::kDevice;
  m.to_tier = core::Tier::kEdge;
  m.bytes = 4096;
  s.messages.push_back(m);
  m.seq = 1;
  m.from_node = "edge0";
  m.to_node = "cloud0";
  m.payload = "layer3";
  m.from_tier = core::Tier::kEdge;
  m.to_tier = core::Tier::kCloud;
  m.bytes = 1024;
  s.messages.push_back(m);
  s.device_edge_bytes = 4096;
  s.edge_cloud_bytes = 1024;
  s.device_cloud_bytes = 0;
  s.layers_executed = {2, 3, 0};
  s.vsm_scatter_bytes = 17;
  s.vsm_gather_bytes = 23;
  s.computed = {true, true, false, true};
  s.sent = {{{true, true, false}}, {{false, true, false}}};
  s.shipped = {{{true, false, false}}, {{false, true, true}}};
  s.vsm_recorded = {{{true, false}}, {{true, true}}};
  return s;
}

void expect_snapshot_eq(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.rpc_request, b.rpc_request);
  EXPECT_EQ(a.plan_hash, b.plan_hash);
  EXPECT_EQ(a.next_stage, b.next_stage);
  EXPECT_EQ(a.input, b.input);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].from_tier, b.messages[i].from_tier);
    EXPECT_EQ(a.messages[i].to_tier, b.messages[i].to_tier);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.computed, b.computed);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.shipped, b.shipped);
  EXPECT_EQ(a.vsm_recorded, b.vsm_recorded);
}

TEST(Snapshot, EncodeDecodeRoundTripsEveryField) {
  const Snapshot original = sample_snapshot(42, 2);
  const std::vector<std::uint8_t> bytes = original.encode();
  const Snapshot decoded = Snapshot::decode(bytes);
  expect_snapshot_eq(decoded, original);
}

TEST(Snapshot, DecodeRejectsTruncatedBody) {
  const std::vector<std::uint8_t> bytes = sample_snapshot(7, 1).encode();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4}, bytes.size() - 1})
    EXPECT_THROW(Snapshot::decode(std::span(bytes.data(), keep)), std::runtime_error);
}

TEST(RequestJournal, MissingFileLoadsEmpty) {
  EXPECT_TRUE(RequestJournal::load(temp_journal("journal_never_written.d3j")).empty());
}

TEST(RequestJournal, LastSnapshotWinsFinishKillsOrderAscending) {
  const std::string path = temp_journal("journal_replay.d3j");
  std::filesystem::remove(path);
  {
    RequestJournal journal(path);
    journal.record(sample_snapshot(3, 0));
    journal.record(sample_snapshot(1, 1));
    journal.record(sample_snapshot(3, 2));  // supersedes the next_stage=0 record
    journal.record(sample_snapshot(2, 1));
    journal.finish(2);  // request 2 completed: its snapshot is dead
  }
  const std::vector<Snapshot> live = RequestJournal::load(path);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].rpc_request, 1u);
  EXPECT_EQ(live[0].next_stage, 1);
  EXPECT_EQ(live[1].rpc_request, 3u);
  EXPECT_EQ(live[1].next_stage, 2);
}

TEST(RequestJournal, TornTailStopsAtLastCompleteRecord) {
  const std::string path = temp_journal("journal_torn.d3j");
  std::filesystem::remove(path);
  {
    RequestJournal journal(path);
    journal.record(sample_snapshot(1, 1));
    journal.record(sample_snapshot(2, 2));
  }
  // A coordinator SIGKILLed mid-append leaves a partial record; every torn
  // length must replay as "stop at the last complete record", never throw.
  const std::uintmax_t full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);
  std::vector<Snapshot> live = RequestJournal::load(path);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].rpc_request, 1u);

  // Tearing into the first record leaves an empty journal, not an error.
  std::filesystem::resize_file(path, 5);
  EXPECT_TRUE(RequestJournal::load(path).empty());
}

TEST(RequestJournal, TornTailSweepEveryByteOffsetYieldsLastDurablePrefix) {
  // The property the failover story rests on, exhaustively: truncate a
  // multi-request, multi-snapshot journal (with a finish in the mix) at EVERY
  // byte offset. load() must never throw, and must always replay exactly the
  // operations whose records are fully contained in the prefix.
  const std::string path = temp_journal("journal_torn_sweep.d3j");
  std::filesystem::remove(path);
  std::vector<std::uintmax_t> boundaries;  // file size after each append
  {
    RequestJournal journal(path);
    journal.record(sample_snapshot(7, 1));
    boundaries.push_back(std::filesystem::file_size(path));
    journal.record(sample_snapshot(9, 1));
    boundaries.push_back(std::filesystem::file_size(path));
    journal.record(sample_snapshot(7, 2));  // supersedes 7's first snapshot
    boundaries.push_back(std::filesystem::file_size(path));
    journal.finish(9);  // kills 9 entirely
    boundaries.push_back(std::filesystem::file_size(path));
  }
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.good());
    bytes.assign(std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(bytes.size(), boundaries.back());

  // Replay state after k complete operations, ascending by rpc_request (the
  // load order the engine restores in).
  const auto expected_after = [](std::size_t k) {
    std::vector<Snapshot> live;
    switch (k) {
      case 0: break;
      case 1: live = {sample_snapshot(7, 1)}; break;
      case 2: live = {sample_snapshot(7, 1), sample_snapshot(9, 1)}; break;
      case 3: live = {sample_snapshot(7, 2), sample_snapshot(9, 1)}; break;
      case 4: live = {sample_snapshot(7, 2)}; break;
    }
    return live;
  };

  const std::string torn = temp_journal("journal_torn_sweep_prefix.d3j");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    {
      std::ofstream file(torn, std::ios::binary | std::ios::trunc);
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(len));
    }
    std::size_t complete = 0;
    while (complete < boundaries.size() && boundaries[complete] <= len) ++complete;

    std::vector<Snapshot> live;
    ASSERT_NO_THROW(live = RequestJournal::load(torn)) << "torn at byte " << len;
    const std::vector<Snapshot> want = expected_after(complete);
    ASSERT_EQ(live.size(), want.size()) << "torn at byte " << len;
    for (std::size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE("torn at byte " + std::to_string(len) + ", snapshot " + std::to_string(i));
      expect_snapshot_eq(live[i], want[i]);
    }
  }
}

TEST(RequestJournal, PlanHashIsDeterministicAndPlanSensitive) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment plan = three_tier_plan(net);
  const std::uint64_t h1 = plan_hash(core::SerializablePlan{"", plan, std::nullopt});
  const std::uint64_t h2 = plan_hash(core::SerializablePlan{"", plan, std::nullopt});
  EXPECT_EQ(h1, h2);

  core::Assignment other = plan;  // move one edge layer to the cloud
  other.tier[dnn::Network::vertex_of(2)] = core::Tier::kCloud;
  EXPECT_NE(h1, plan_hash(core::SerializablePlan{"", other, std::nullopt}));
}

TEST(RequestJournal, RestoreRejectsPlanHashMismatch) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 21);
  const core::Assignment plan = three_tier_plan(net);
  const OnlineEngine engine(net, weights, plan);

  Snapshot snapshot = sample_snapshot(1, 1);
  snapshot.plan_hash = plan_hash(core::SerializablePlan{"", plan, std::nullopt}) + 1;
  // The hash guard fires before any size or transport validation: a snapshot
  // from a different deployment plan must never start mis-routing slots.
  EXPECT_THROW(engine.restore(snapshot), std::invalid_argument);
}

TEST(RequestJournal, CompletedRequestsLeaveNoLiveSnapshots) {
  const std::string path = temp_journal("journal_lifecycle.d3j");
  std::filesystem::remove(path);

  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 21);
  util::Rng rng(22);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);

  OnlineEngine::Options options;
  options.journal = std::make_shared<RequestJournal>(path);
  const OnlineEngine engine(net, weights, three_tier_plan(net), std::nullopt, options);
  engine.infer(input);
  engine.infer(input);

  // Snapshots were appended at every tier boundary (the file is non-trivial),
  // but both requests finished, so a standby replaying the journal has
  // nothing to take over.
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  EXPECT_TRUE(RequestJournal::load(path).empty());
}

}  // namespace
}  // namespace d3::runtime
