#include <sstream>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace d3::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Units, TransferSeconds) {
  // 1 MB over 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(transfer_seconds(1e6, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_megabits(1e6), 8.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ms(0.5), 500.0);
  EXPECT_DOUBLE_EQ(from_ms(250.0), 0.25);
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(8.0), 1e6);
}

TEST(Table, AlignsAndPrints) {
  Table t({"model", "latency"});
  t.row().cell("AlexNet").cell(1.25, 2);
  t.row().cell("VGG-16").cell(std::int64_t{42});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("AlexNet"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a"});
  t.row().cell("x,y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

}  // namespace
}  // namespace d3::util
