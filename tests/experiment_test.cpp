// Integration tests across the whole stack: profiler -> partitioners ->
// pipeline simulation, checking the qualitative relations the paper's
// evaluation (Figs. 9-13) rests on.
#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "sim/experiment.h"

namespace d3::sim {
namespace {

ExperimentConfig quick_config() {
  ExperimentConfig cfg;
  cfg.stream.duration_seconds = 10;  // keep integration tests fast
  return cfg;
}

TEST(Experiment, MethodNames) {
  EXPECT_STREQ(method_name(Method::kHpa), "HPA");
  EXPECT_STREQ(method_name(Method::kDeviceOnly), "Device-only");
  EXPECT_STREQ(method_name(Method::kHpaVsm), "HPA+VSM");
}

TEST(Experiment, HpaBeatsOrMatchesEverySingleTier) {
  const auto cfg = quick_config();
  for (const auto& net : {dnn::zoo::alexnet(), dnn::zoo::resnet18()}) {
    const MethodResult hpa = run_method(net, Method::kHpa, cfg);
    for (const Method single :
         {Method::kDeviceOnly, Method::kEdgeOnly, Method::kCloudOnly}) {
      const MethodResult base = run_method(net, single, cfg);
      // Decisions use noisy estimates; allow a small tolerance.
      EXPECT_LE(hpa.frame_latency_seconds, base.frame_latency_seconds * 1.05)
          << net.name() << " vs " << method_name(single);
    }
  }
}

TEST(Experiment, NeurosurgeonOnlyOnChains) {
  const auto cfg = quick_config();
  EXPECT_TRUE(run_method(dnn::zoo::alexnet(), Method::kNeurosurgeon, cfg).applicable);
  EXPECT_TRUE(run_method(dnn::zoo::vgg16(), Method::kNeurosurgeon, cfg).applicable);
  EXPECT_FALSE(run_method(dnn::zoo::resnet18(), Method::kNeurosurgeon, cfg).applicable);
}

TEST(Experiment, HpaCompetitiveWithTwoTierBaselines) {
  // The headline of Fig. 10: three-tier HPA is at least as good as two-tier
  // splits (up to estimate noise).
  const auto cfg = quick_config();
  const dnn::Network vgg = dnn::zoo::vgg16();
  const MethodResult hpa = run_method(vgg, Method::kHpa, cfg);
  const MethodResult ns = run_method(vgg, Method::kNeurosurgeon, cfg);
  const MethodResult dd = run_method(vgg, Method::kDads, cfg);
  EXPECT_LE(hpa.frame_latency_seconds, ns.frame_latency_seconds * 1.1);
  EXPECT_LE(hpa.frame_latency_seconds, dd.frame_latency_seconds * 1.1);
}

TEST(Experiment, VsmNeverSlowsThePipeline) {
  const auto cfg = quick_config();
  for (const auto& net : {dnn::zoo::vgg16(), dnn::zoo::darknet53()}) {
    const MethodResult hpa = run_method(net, Method::kHpa, cfg);
    const MethodResult vsm = run_method(net, Method::kHpaVsm, cfg);
    EXPECT_LE(vsm.pipeline.edge_seconds, hpa.pipeline.edge_seconds + 1e-9) << net.name();
    EXPECT_LE(vsm.frame_latency_seconds, hpa.frame_latency_seconds + 1e-9) << net.name();
  }
}

TEST(Experiment, VsmRedundancyReported) {
  const auto cfg = quick_config();
  const MethodResult vsm = run_method(dnn::zoo::vgg16(), Method::kHpaVsm, cfg);
  if (vsm.vsm_redundancy) {
    EXPECT_GE(*vsm.vsm_redundancy, 1.0);
    EXPECT_LT(*vsm.vsm_redundancy, 4.0);  // far below the 4x worst case
  }
}

TEST(Experiment, CloudOnlyShipsRawFrame) {
  // Fig. 13 anchor: cloud-only sends the full 3x224x224 fp32 frame (4.82 Mb).
  const auto cfg = quick_config();
  const MethodResult cloud = run_method(dnn::zoo::alexnet(), Method::kCloudOnly, cfg);
  EXPECT_EQ(cloud.traffic.to_cloud_bytes(), 602112);
  EXPECT_NEAR(cloud.stream.backbone_megabits_per_frame, 4.82, 0.01);
}

TEST(Experiment, D3ReducesBackboneTraffic) {
  // Fig. 13: D3 ships intermediate tensors, smaller than the raw frame.
  const auto cfg = quick_config();
  for (const auto& net : dnn::zoo::paper_models()) {
    const MethodResult cloud = run_method(net, Method::kCloudOnly, cfg);
    const MethodResult hpa = run_method(net, Method::kHpa, cfg);
    EXPECT_LE(hpa.traffic.to_cloud_bytes(), cloud.traffic.to_cloud_bytes()) << net.name();
  }
}

TEST(Experiment, BandwidthSweepMonotoneOffload) {
  // Fig. 11 trend: more LAN->cloud bandwidth, more layers offloaded.
  ExperimentConfig lo = quick_config();
  lo.condition = net::with_cloud_uplink(net::wifi(), 5.0);
  ExperimentConfig hi = quick_config();
  hi.condition = net::with_cloud_uplink(net::wifi(), 200.0);
  const dnn::Network net = dnn::zoo::inception_v4();
  const MethodResult slow = run_method(net, Method::kHpa, lo);
  const MethodResult fast = run_method(net, Method::kHpa, hi);
  const auto cloud_count = [](const MethodResult& r) {
    std::size_t n = 0;
    for (const auto t : r.assignment.tier) n += t == core::Tier::kCloud;
    return n;
  };
  EXPECT_GE(cloud_count(fast), cloud_count(slow));
  EXPECT_LE(fast.frame_latency_seconds, slow.frame_latency_seconds);
}

TEST(Experiment, StreamAndClosedFormAgreeWhenUnsaturated) {
  const auto cfg = quick_config();
  const MethodResult hpa = run_method(dnn::zoo::alexnet(), Method::kHpa, cfg);
  if (hpa.pipeline.bottleneck_stage_seconds() < 1.0 / cfg.stream.fps) {
    EXPECT_NEAR(hpa.stream.avg_latency_seconds, hpa.frame_latency_seconds, 1e-6);
  }
}

TEST(Experiment, SpeedupHelper) {
  const auto cfg = quick_config();
  const dnn::Network net = dnn::zoo::alexnet();
  const MethodResult dev = run_method(net, Method::kDeviceOnly, cfg);
  const MethodResult hpa = run_method(net, Method::kHpa, cfg);
  EXPECT_NEAR(speedup_over(dev, hpa),
              dev.frame_latency_seconds / hpa.frame_latency_seconds, 1e-12);
  MethodResult na;
  na.applicable = false;
  EXPECT_THROW(speedup_over(dev, na), std::invalid_argument);
}

}  // namespace
}  // namespace d3::sim
