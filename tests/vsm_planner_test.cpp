#include <numeric>

#include <gtest/gtest.h>

#include "core/vsm_executor.h"
#include "core/vsm_planner.h"
#include "dnn/model_zoo.h"
#include "exec/weights.h"
#include "profile/node_spec.h"
#include "util/rng.h"

namespace d3::core {
namespace {

using dnn::Shape;
using dnn::Window;

dnn::Network deep_stack() {
  std::vector<std::pair<int, Window>> convs(8, {16, Window{3, 3, 1, 1, 1, 1}});
  return dnn::zoo::conv_stack("deep", Shape{8, 32, 32}, convs);
}

std::vector<dnn::LayerId> all_layers(const dnn::Network& net) {
  std::vector<dnn::LayerId> ids(net.num_layers());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(VsmPlanner, SyncBytesAccounting) {
  const dnn::Network net = deep_stack();
  const auto plan = make_fused_tile_plan(net, all_layers(net), 2, 2);
  // Gather bytes = the exact output tensor; scatter >= the input tensor
  // (halo inflation).
  EXPECT_EQ(stack_gather_bytes(plan), plan.output_shape.bytes());
  EXPECT_GE(stack_scatter_bytes(plan), plan.input_shapes.front().bytes());
  // Zero-rate LAN reproduces the paper's free-intra-tier idealisation.
  EXPECT_DOUBLE_EQ(stack_sync_seconds(plan, 0.0), 0.0);
  EXPECT_GT(stack_sync_seconds(plan, 1000.0), 0.0);
}

TEST(VsmPlanner, SegmentsCoverRunInOrder) {
  const dnn::Network net = deep_stack();
  const auto ids = all_layers(net);
  const EdgeStackPlan plan =
      plan_edge_stacks(net, ids, 2, 2, profile::i7_8700(), 1000.0);
  std::vector<dnn::LayerId> covered;
  for (const auto& stack : plan.stacks)
    covered.insert(covered.end(), stack.stack.begin(), stack.stack.end());
  EXPECT_EQ(covered, ids);
}

TEST(VsmPlanner, FreeLanPrefersFineSplits) {
  // With free sync, splitting removes halo redundancy: the optimum uses many
  // stacks and costs no more than the single fused stack.
  const dnn::Network net = deep_stack();
  const auto ids = all_layers(net);
  const auto node = profile::i7_8700();
  const EdgeStackPlan optimal = plan_edge_stacks(net, ids, 2, 2, node, 0.0);
  const EdgeStackPlan single = single_stack_plan(net, ids, 2, 2, node, 0.0);
  EXPECT_GT(optimal.stacks.size(), 1u);
  EXPECT_LE(optimal.total_seconds(), single.total_seconds() + 1e-12);
}

TEST(VsmPlanner, SlowLanPrefersDeepFusion) {
  // On a very slow LAN every sync costs more than any recompute: one stack.
  const dnn::Network net = deep_stack();
  const auto ids = all_layers(net);
  const auto node = profile::i7_8700();
  const EdgeStackPlan plan = plan_edge_stacks(net, ids, 2, 2, node, 0.5);
  EXPECT_EQ(plan.stacks.size(), 1u);
}

TEST(VsmPlanner, OptimalNeverWorseThanSingleStack) {
  const dnn::Network net = deep_stack();
  const auto ids = all_layers(net);
  const auto node = profile::i7_8700();
  for (const double lan : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const EdgeStackPlan optimal = plan_edge_stacks(net, ids, 2, 2, node, lan);
    const EdgeStackPlan single = single_stack_plan(net, ids, 2, 2, node, lan);
    EXPECT_LE(optimal.total_seconds(), single.total_seconds() + 1e-12) << "lan=" << lan;
  }
}

TEST(VsmPlanner, MultiStackExecutionStaysLossless) {
  // Chaining the per-stack tiled executions reproduces serial execution.
  const dnn::Network net = deep_stack();
  const auto ids = all_layers(net);
  const EdgeStackPlan plan =
      plan_edge_stacks(net, ids, 2, 2, profile::i7_8700(), 1000.0);

  const exec::WeightStore weights = exec::WeightStore::random_for(net, 91);
  util::Rng rng(92);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor serial = run_stack_serial(net, weights, input, ids);

  dnn::Tensor current = input;
  for (const auto& stack : plan.stacks)
    current = run_fused_tiles(net, weights, current, stack);
  ASSERT_EQ(current.shape(), serial.shape());
  for (std::size_t i = 0; i < current.size(); ++i) ASSERT_EQ(current[i], serial[i]);
}

TEST(VsmPlanner, RejectsEmptyRun) {
  const dnn::Network net = deep_stack();
  EXPECT_THROW(plan_edge_stacks(net, std::vector<dnn::LayerId>{}, 2, 2,
                                profile::i7_8700(), 0.0),
               std::invalid_argument);
}

TEST(VsmPlanner, DownsampledRunSplitsWhereGridFits) {
  // A run whose tail shrinks below the grid must still be plannable: the DP
  // may place the tail in a segment whose output fits, or fail loudly if no
  // segmentation fits.
  dnn::Network net("shrink", Shape{4, 16, 16});
  dnn::LayerId x = net.conv("c1", dnn::kNetworkInput, 8, 3, 1, 1);
  x = net.conv("c2", x, 8, 3, 2, 1);   // 8x8
  x = net.conv("c3", x, 8, 3, 2, 1);   // 4x4
  net.conv("c4", x, 8, 3, 2, 1);       // 2x2 — fits a 2x2 grid exactly
  const auto plan = plan_edge_stacks(net, all_layers(net), 2, 2, profile::i7_8700(), 100.0);
  EXPECT_FALSE(plan.stacks.empty());
}

}  // namespace
}  // namespace d3::core
