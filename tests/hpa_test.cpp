#include <gtest/gtest.h>

#include "core/hpa.h"
#include "dnn/model_zoo.h"
#include "graph/layering.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "util/rng.h"

namespace d3::core {
namespace {

PartitionProblem chain_problem(std::vector<TierTimes> times, std::vector<std::int64_t> bytes,
                               net::NetworkCondition condition) {
  PartitionProblem p;
  p.dag = graph::Dag(times.size());
  for (graph::VertexId v = 0; v + 1 < times.size(); ++v) p.dag.add_edge(v, v + 1);
  p.vertex_time = std::move(times);
  p.out_bytes = std::move(bytes);
  p.in_bytes.assign(p.out_bytes.size(), 0);
  for (graph::VertexId v = 1; v < p.dag.size(); ++v) p.in_bytes[v] = p.out_bytes[v - 1];
  p.condition = std::move(condition);
  p.validate();
  return p;
}

TEST(PotentialTiers, FollowsProposition1) {
  PartitionProblem p;
  p.dag = graph::Dag(4);
  p.dag.add_edge(0, 1);
  p.dag.add_edge(1, 2);
  p.dag.add_edge(1, 3);
  p.vertex_time.assign(4, TierTimes{});
  p.out_bytes.assign(4, 100);
  p.in_bytes.assign(4, 100);
  p.condition = net::wifi();

  Assignment a;
  a.tier = {Tier::kDevice, Tier::kDevice, Tier::kCloud, Tier::kCloud};
  // v0 is pinned to the device.
  EXPECT_EQ(potential_tiers(p, a, 0), std::vector<Tier>{Tier::kDevice});
  // Predecessor on device: all three tiers allowed.
  EXPECT_EQ(potential_tiers(p, a, 1),
            (std::vector<Tier>{Tier::kDevice, Tier::kEdge, Tier::kCloud}));
  a.tier[1] = Tier::kEdge;
  EXPECT_EQ(potential_tiers(p, a, 2), (std::vector<Tier>{Tier::kEdge, Tier::kCloud}));
  a.tier[1] = Tier::kCloud;
  EXPECT_EQ(potential_tiers(p, a, 2), std::vector<Tier>{Tier::kCloud});
}

TEST(PotentialTiers, MixedPredecessorsBoundByMostDeviceward) {
  // Preds at {edge, cloud}: max under d≻e≻c is edge, so Γ = {edge, cloud}
  // (the proof of Prop. 1 walks exactly this case).
  PartitionProblem p;
  p.dag = graph::Dag(4);
  p.dag.add_edge(0, 1);
  p.dag.add_edge(0, 2);
  p.dag.add_edge(1, 3);
  p.dag.add_edge(2, 3);
  p.vertex_time.assign(4, TierTimes{});
  p.out_bytes.assign(4, 100);
  p.in_bytes.assign(4, 100);
  p.condition = net::wifi();
  Assignment a;
  a.tier = {Tier::kDevice, Tier::kEdge, Tier::kCloud, Tier::kCloud};
  EXPECT_EQ(potential_tiers(p, a, 3), (std::vector<Tier>{Tier::kEdge, Tier::kCloud}));
}

TEST(Hpa, AllCloudWhenCloudFreeAndLinksFast) {
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{1.0, 0.5, 1e-6}}, TierTimes{{1.0, 0.5, 1e-6}}},
      {1000, 1000, 1000}, net::NetworkCondition{"fast", 1e6, 1e6, 1e6, 0});
  const HpaResult r = hpa(p);
  EXPECT_EQ(r.assignment.tier[1], Tier::kCloud);
  EXPECT_EQ(r.assignment.tier[2], Tier::kCloud);
}

TEST(Hpa, AllDeviceWhenLinksAreTerrible) {
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{0.01, 0.005, 0.001}}, TierTimes{{0.01, 0.005, 0.001}}},
      {10'000'000, 10'000'000, 10'000'000},
      net::NetworkCondition{"awful", 0.01, 0.01, 0.01, 0});
  const HpaResult r = hpa(p);
  EXPECT_EQ(r.assignment.tier[1], Tier::kDevice);
  EXPECT_EQ(r.assignment.tier[2], Tier::kDevice);
}

TEST(Hpa, ResultReportsThetaAndLayers) {
  auto p = chain_problem({TierTimes{}, TierTimes{{0.1, 0.05, 0.01}}}, {1000, 10},
                         net::wifi());
  const HpaResult r = hpa(p);
  EXPECT_NEAR(r.total_latency_seconds, total_latency(p, r.assignment), 1e-12);
  EXPECT_EQ(r.graph_layers, graph::graph_layers(p.dag, 0));
}

TEST(Hpa, SisUpdatePullsSiblingForward) {
  // v3 (preds {v1,v2}) lands on the edge; v4 (preds {v1} ⊂ {v1,v2}) locally
  // prefers the device but is a SIS vertex of v3, so the SIS update moves it.
  PartitionProblem p;
  p.dag = graph::Dag(5);
  p.dag.add_edge(0, 1);
  p.dag.add_edge(0, 2);
  p.dag.add_edge(1, 3);
  p.dag.add_edge(2, 3);
  p.dag.add_edge(1, 4);
  p.vertex_time = {TierTimes{},
                   TierTimes{{0.01, 10.0, 10.0}},   // v1: stays on device
                   TierTimes{{0.01, 10.0, 10.0}},   // v2: stays on device
                   TierTimes{{10.0, 0.01, 5.0}},    // v3: edge wins
                   TierTimes{{0.01, 0.02, 5.0}}};   // v4: device wins locally
  p.out_bytes = {1'000'000, 1'000, 1'000, 100, 100};
  p.in_bytes = {0, 1'000'000, 1'000'000, 2'000, 1'000};
  p.condition = net::wifi();

  HpaOptions with_sis;
  const HpaResult sis_on = hpa(p, with_sis);
  EXPECT_EQ(sis_on.assignment.tier[3], Tier::kEdge);
  EXPECT_EQ(sis_on.assignment.tier[4], Tier::kEdge);  // pulled by SIS update

  HpaOptions no_sis;
  no_sis.sis_update = false;
  const HpaResult sis_off = hpa(p, no_sis);
  EXPECT_EQ(sis_off.assignment.tier[4], Tier::kDevice);
}

// HPA must produce Prop-1-feasible partitions on every paper model under every
// paper network condition.
class HpaFeasibility : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HpaFeasibility, RespectsPrecedenceOnPaperModels) {
  const auto [model_index, condition_index] = GetParam();
  const dnn::Network net = dnn::zoo::paper_models()[static_cast<std::size_t>(model_index)];
  const auto condition = net::paper_conditions()[static_cast<std::size_t>(condition_index)];
  const PartitionProblem p = make_problem_exact(net, profile::paper_testbed(), condition);
  const HpaResult r = hpa(p);
  EXPECT_TRUE(respects_precedence(p, r.assignment));
  EXPECT_GT(r.total_latency_seconds, 0.0);
  // HPA never loses to the worst single-tier placement.
  double worst_single = 0.0;
  for (const Tier t : kAllTiers)
    worst_single = std::max(worst_single, total_latency(p, uniform_assignment(p, t)));
  EXPECT_LE(r.total_latency_seconds, worst_single);
}

INSTANTIATE_TEST_SUITE_P(ModelsTimesConditions, HpaFeasibility,
                         ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)));

// Randomised comparison against the exhaustive optimum on small DAGs.
class HpaVsOptimal : public ::testing::TestWithParam<int> {};

TEST_P(HpaVsOptimal, WithinFactorOfBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PartitionProblem p;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(5, 8));
  p.dag = graph::Dag(n);
  // Random forward DAG: each vertex gets 1-2 predecessors among earlier ones.
  for (graph::VertexId v = 1; v < n; ++v) {
    const auto preds = rng.uniform_int(1, std::min<std::int64_t>(2, static_cast<std::int64_t>(v)));
    std::vector<graph::VertexId> chosen;
    while (chosen.size() < static_cast<std::size_t>(preds)) {
      const auto cand = static_cast<graph::VertexId>(rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
      if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) chosen.push_back(cand);
    }
    for (const auto u : chosen) p.dag.add_edge(u, v);
  }
  p.vertex_time.assign(n, TierTimes{});
  p.out_bytes.assign(n, 0);
  p.in_bytes.assign(n, 0);
  p.out_bytes[0] = 600'000;
  for (graph::VertexId v = 1; v < n; ++v) {
    const double cloud = rng.uniform(0.0005, 0.01);
    const double edge = cloud * rng.uniform(2.0, 10.0);
    const double device = edge * rng.uniform(2.0, 10.0);
    p.vertex_time[v] = TierTimes{{device, edge, cloud}};
    p.out_bytes[v] = rng.uniform_int(10'000, 2'000'000);
  }
  for (graph::VertexId v = 1; v < n; ++v)
    for (const auto u : p.dag.predecessors(v)) p.in_bytes[v] += p.out_bytes[u];
  p.condition = net::wifi();

  const HpaResult r = hpa(p);
  EXPECT_TRUE(respects_precedence(p, r.assignment));
  const Assignment best = brute_force_optimal(p);
  EXPECT_GE(r.total_latency_seconds, total_latency(p, best) - 1e-12);
  // Heuristic quality bound on these instances.
  EXPECT_LE(r.total_latency_seconds, total_latency(p, best) * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpaVsOptimal, ::testing::Range(1, 21));

TEST(HpaLocalUpdate, MovesVertexWhenTimesShift) {
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{0.001, 0.1, 0.2}}, TierTimes{{0.001, 0.1, 0.2}}},
      {600'000, 1'000, 1'000}, net::wifi());
  Assignment a = hpa(p).assignment;
  ASSERT_EQ(a.tier[2], Tier::kDevice);
  // v2 becomes catastrophically slow on the device: local update must move it.
  p.vertex_time[2] = TierTimes{{50.0, 0.001, 0.0005}};
  const auto changed = hpa_local_update(p, a, 2);
  EXPECT_FALSE(changed.empty());
  EXPECT_NE(a.tier[2], Tier::kDevice);
  EXPECT_TRUE(respects_precedence(p, a));
}

TEST(HpaLocalUpdate, NoChangeReturnsEmpty) {
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{0.001, 0.1, 0.2}}, TierTimes{{0.001, 0.1, 0.2}}},
      {600'000, 1'000, 1'000}, net::wifi());
  Assignment a = hpa(p).assignment;
  const Assignment before = a;
  const auto changed = hpa_local_update(p, a, 1);
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(a.tier, before.tier);
}

TEST(HpaLocalUpdate, RepairsDownstreamFeasibility) {
  // Chain v0->v1->v2->v3; v1 moves to the cloud, dragging v2/v3 with it
  // (Prop. 1 leaves {cloud} as their only option).
  auto p = chain_problem({TierTimes{}, TierTimes{{0.001, 0.01, 0.1}},
                          TierTimes{{0.002, 0.01, 0.1}}, TierTimes{{0.002, 0.01, 0.1}}},
                         {600'000, 1'000, 1'000, 1'000}, net::wifi());
  Assignment a = hpa(p).assignment;
  ASSERT_EQ(a.tier[1], Tier::kDevice);
  p.vertex_time[1] = TierTimes{{100.0, 50.0, 0.0001}};
  hpa_local_update(p, a, 1);
  EXPECT_EQ(a.tier[1], Tier::kCloud);
  EXPECT_TRUE(respects_precedence(p, a));
}

TEST(HpaLocalUpdate, RejectsBadVertex) {
  auto p = chain_problem({TierTimes{}, TierTimes{{0.1, 0.05, 0.01}}}, {100, 10}, net::wifi());
  Assignment a = hpa(p).assignment;
  EXPECT_THROW(hpa_local_update(p, a, 0), std::invalid_argument);
  EXPECT_THROW(hpa_local_update(p, a, 99), std::invalid_argument);
}

TEST(BruteForce, MatchesObviousOptimum) {
  // Cloud free, links free: optimal is everything on the cloud.
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{1.0, 0.5, 0.0}}, TierTimes{{1.0, 0.5, 0.0}}},
      {10, 10, 10}, net::NetworkCondition{"fast", 1e9, 1e9, 1e9, 0});
  const Assignment best = brute_force_optimal(p);
  EXPECT_EQ(best.tier[1], Tier::kCloud);
  EXPECT_EQ(best.tier[2], Tier::kCloud);
}

TEST(BruteForce, RefusesLargeGraphs) {
  PartitionProblem p;
  p.dag = graph::Dag(20);
  for (graph::VertexId v = 0; v + 1 < 20; ++v) p.dag.add_edge(v, v + 1);
  p.vertex_time.assign(20, TierTimes{});
  p.out_bytes.assign(20, 1);
  p.in_bytes.assign(20, 1);
  p.condition = net::wifi();
  EXPECT_THROW(brute_force_optimal(p), std::invalid_argument);
}

TEST(Hpa, IoHeuristicAblationChangesNothingStructural) {
  // With the pairwise heuristic disabled HPA still yields a feasible partition.
  const dnn::Network net = dnn::zoo::resnet18();
  const PartitionProblem p = make_problem_exact(net, profile::paper_testbed(), net::wifi());
  HpaOptions opts;
  opts.io_heuristic = false;
  const HpaResult r = hpa(p, opts);
  EXPECT_TRUE(respects_precedence(p, r.assignment));
}

}  // namespace
}  // namespace d3::core
