// Stress coverage of the concurrent tiered runtime: many in-flight requests
// across several zoo models through the threaded engine (real VSM tile
// parallelism) and the pipelined batch scheduler. The paper's losslessness
// claim must survive concurrency untouched — every output bitwise-equal to the
// single-node exec::Executor reference — and transcripts must be deterministic:
// byte-identical across repeated seeded runs and identical to the sequential
// engine's, however threads interleave.
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsm.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    const MessageRecord& ma = a.messages[i];
    const MessageRecord& mb = b.messages[i];
    EXPECT_EQ(ma.seq, mb.seq);
    EXPECT_EQ(ma.seq, i);
    EXPECT_EQ(ma.from_node, mb.from_node);
    EXPECT_EQ(ma.to_node, mb.to_node);
    EXPECT_EQ(ma.payload, mb.payload);
    EXPECT_EQ(ma.bytes, mb.bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
}

// A three-tier workload: model, plan (optionally with a VSM stack on the
// edge), seeded weights and a batch of seeded inputs with their references.
struct Workload {
  std::string name;
  dnn::Network net;
  exec::WeightStore weights;
  core::Assignment plan;
  std::optional<core::FusedTilePlan> vsm;
  std::vector<dnn::Tensor> inputs;
  std::vector<dnn::Tensor> references;

  Workload(std::string label, dnn::Network n, std::size_t batch, std::uint64_t seed)
      : name(std::move(label)),
        net(std::move(n)),
        weights(exec::WeightStore::random_for(net, seed)) {
    plan.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
    plan.tier[0] = core::Tier::kDevice;
    util::Rng rng(seed + 17);
    for (std::size_t k = 0; k < batch; ++k)
      inputs.push_back(exec::random_tensor(net.input_shape(), rng));
    references = exec::Executor(net, weights).run_batch(inputs);
  }

  // Moves a prefix of layers to the edge and tiles its longest run.
  void tile_edge_prefix(std::size_t prefix, int rows, int cols) {
    std::vector<dnn::LayerId> edge_layers;
    for (std::size_t id = 0; id < prefix; ++id) {
      plan.tier[dnn::Network::vertex_of(static_cast<dnn::LayerId>(id))] = core::Tier::kEdge;
      edge_layers.push_back(static_cast<dnn::LayerId>(id));
    }
    const auto run = core::longest_tileable_run(net, edge_layers);
    ASSERT_FALSE(run.empty()) << name;
    vsm = core::make_fused_tile_plan(net, run, rows, cols);
  }
};

std::vector<Workload> zoo_workloads(std::size_t batch, std::uint64_t seed) {
  std::vector<Workload> workloads;
  workloads.emplace_back("tiny_chain", dnn::zoo::tiny_chain(), batch, seed);
  workloads.back().tile_edge_prefix(6, 2, 2);
  workloads.emplace_back("tiny_branch", dnn::zoo::tiny_branch(), batch, seed + 1);
  workloads.back().tile_edge_prefix(2, 2, 2);
  workloads.emplace_back("grid_module", dnn::zoo::grid_module(3, 3), batch, seed + 2);
  return workloads;
}

TEST(ConcurrencyStress, ConcurrentInferBitwiseLosslessAcrossZooModels) {
  // N threads x M models, every thread hammering the same shared engine.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kBatch = kThreads;
  for (Workload& w : zoo_workloads(kBatch, 2026)) {
    const OnlineEngine engine(w.net, w.weights, w.plan, w.vsm,
                              OnlineEngine::Options{.vsm_workers = 4});
    std::vector<InferenceResult> results(kBatch);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t k = t; k < kBatch; k += kThreads)
          results[k] = engine.infer(w.inputs[k]);
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t k = 0; k < kBatch; ++k)
      expect_identical(results[k].output, w.references[k]);
  }
}

TEST(ConcurrencyStress, ThreadedTranscriptMatchesSequentialEngine) {
  for (Workload& w : zoo_workloads(4, 4242)) {
    const OnlineEngine sequential(w.net, w.weights, w.plan, w.vsm);
    const OnlineEngine threaded(w.net, w.weights, w.plan, w.vsm,
                                OnlineEngine::Options{.vsm_workers = 4});
    ASSERT_EQ(sequential.vsm_workers(), 0u);
    ASSERT_EQ(threaded.vsm_workers(), 4u);
    for (const dnn::Tensor& input : w.inputs) {
      const InferenceResult a = sequential.infer(input);
      const InferenceResult b = threaded.infer(input);
      expect_identical(a.output, b.output);
      expect_same_transcript(a, b);
    }
  }
}

TEST(ConcurrencyStress, IntraOpParallelEngineIsBitwiseIdenticalToSequential) {
  // Options::intra_op_workers splits single-layer kernels across the pool; it
  // must not change outputs or transcripts, and a pool created for intra-op
  // work alone must NOT turn on parallel VSM tiles (vsm_workers() stays 0).
  for (Workload& w : zoo_workloads(3, 777)) {
    const OnlineEngine sequential(w.net, w.weights, w.plan, w.vsm);
    const OnlineEngine intra_only(w.net, w.weights, w.plan, w.vsm,
                                  OnlineEngine::Options{.intra_op_workers = 4});
    const OnlineEngine both(
        w.net, w.weights, w.plan, w.vsm,
        OnlineEngine::Options{.vsm_workers = 2, .intra_op_workers = 4});
    ASSERT_EQ(intra_only.vsm_workers(), 0u);  // pool exists, tiles stay serial
    ASSERT_EQ(both.vsm_workers(), 2u);  // tile width stays as configured, not pool size
    for (const dnn::Tensor& input : w.inputs) {
      const InferenceResult a = sequential.infer(input);
      const InferenceResult b = intra_only.infer(input);
      const InferenceResult c = both.infer(input);
      expect_identical(a.output, b.output);
      expect_identical(a.output, c.output);
      expect_same_transcript(a, b);
      expect_same_transcript(a, c);
    }
  }
}

TEST(ConcurrencyStress, RepeatedSeededRunsProduceIdenticalTranscripts) {
  // Same seeds, three repetitions: transcripts must be byte-identical run to
  // run — thread interleaving must never leak into the observable record.
  for (int rep = 0; rep < 3; ++rep) {
    for (Workload& w : zoo_workloads(2, 999)) {
      const OnlineEngine threaded(w.net, w.weights, w.plan, w.vsm,
                                  OnlineEngine::Options{.vsm_workers = 3});
      const OnlineEngine reference_engine(w.net, w.weights, w.plan, w.vsm);
      for (std::size_t k = 0; k < w.inputs.size(); ++k) {
        const InferenceResult run = threaded.infer(w.inputs[k]);
        const InferenceResult expected = reference_engine.infer(w.inputs[k]);
        expect_identical(run.output, w.references[k]);
        expect_same_transcript(run, expected);
      }
    }
  }
}

TEST(ConcurrencyStress, BatchSchedulerPipelinesManyInFlightRequests) {
  constexpr std::size_t kBatch = 10;
  for (Workload& w : zoo_workloads(kBatch, 31337)) {
    const OnlineEngine engine(w.net, w.weights, w.plan, w.vsm,
                              OnlineEngine::Options{.vsm_workers = 4});
    const OnlineEngine sequential(w.net, w.weights, w.plan, w.vsm);

    BatchScheduler scheduler(engine);
    for (std::size_t k = 0; k < kBatch; ++k)
      ASSERT_EQ(scheduler.submit(w.inputs[k]), k) << w.name;
    EXPECT_EQ(scheduler.submitted(), kBatch);
    const std::vector<InferenceResult> results = scheduler.drain();
    EXPECT_EQ(scheduler.completed(), kBatch);

    ASSERT_EQ(results.size(), kBatch);
    for (std::size_t k = 0; k < kBatch; ++k) {
      expect_identical(results[k].output, w.references[k]);
      // Pipelined execution leaves no trace in the per-request transcript.
      const InferenceResult expected = sequential.infer(w.inputs[k]);
      expect_same_transcript(results[k], expected);
    }
  }
}

TEST(ConcurrencyStress, BatchSchedulerWaitByIdAndErrors) {
  Workload w("tiny_chain", dnn::zoo::tiny_chain(), 2, 55);
  const OnlineEngine engine(w.net, w.weights, w.plan, std::nullopt,
                            OnlineEngine::Options{.vsm_workers = 2});
  BatchScheduler scheduler(engine);
  const std::size_t a = scheduler.submit(w.inputs[0]);
  const std::size_t b = scheduler.submit(w.inputs[1]);
  // Out-of-order waits are fine; double-collect and unknown ids are errors.
  expect_identical(scheduler.wait(b).output, w.references[1]);
  expect_identical(scheduler.wait(a).output, w.references[0]);
  EXPECT_THROW(scheduler.wait(a), std::logic_error);
  EXPECT_THROW(scheduler.wait(99), std::out_of_range);
  // A bad shape is rejected at submit time, before any stage runs.
  EXPECT_THROW(scheduler.submit(dnn::Tensor(dnn::Shape{1, 2, 2})), std::invalid_argument);
}

TEST(ConcurrencyStress, RunFusedTilesParallelForHookIsLossless) {
  // The core-level tile runner with a real pool behind its TileParallelFor
  // hook must still equal the serial stack bitwise.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 13);
  util::Rng rng(29);
  const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
  const std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  const auto plan = core::make_fused_tile_plan(net, stack, 2, 2);

  const dnn::Tensor serial = core::run_fused_tiles(net, weights, input, plan);
  ThreadPool pool(4);
  const dnn::Tensor parallel = core::run_fused_tiles(
      net, weights, input, plan,
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      });
  expect_identical(parallel, serial);
  expect_identical(parallel, core::run_stack_serial(net, weights, input, stack));
}

TEST(ConcurrencyStress, SchedulerDestructorCompletesInFlightRequests) {
  // Destroying the scheduler with uncollected requests must finish them (not
  // strand them between stages) and then join cleanly.
  Workload w("tiny_chain", dnn::zoo::tiny_chain(), 4, 91);
  const OnlineEngine engine(w.net, w.weights, w.plan, std::nullopt,
                            OnlineEngine::Options{.vsm_workers = 2});
  {
    BatchScheduler scheduler(engine);
    for (const dnn::Tensor& input : w.inputs) scheduler.submit(input);
  }  // no wait()/drain(): the destructor must not hang or drop stage work
}

TEST(ConcurrencyStress, ConcurrentSubmittersOneScheduler) {
  Workload w("grid_module", dnn::zoo::grid_module(3, 3), 8, 77);
  const OnlineEngine engine(w.net, w.weights, w.plan, std::nullopt,
                            OnlineEngine::Options{.vsm_workers = 2});
  BatchScheduler scheduler(engine);
  std::vector<std::size_t> ids(w.inputs.size());
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (std::size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t k = t; k < w.inputs.size(); k += 4)
        ids[k] = scheduler.submit(w.inputs[k]);
    });
  }
  for (auto& t : submitters) t.join();
  for (std::size_t k = 0; k < w.inputs.size(); ++k)
    expect_identical(scheduler.wait(ids[k]).output, w.references[k]);
}

}  // namespace
}  // namespace d3::runtime
