// Bitwise-equality harness for the optimised operator kernels (exec/ops.h)
// against the original scalar oracle (exec/ops_reference.h).
//
// The lossless-synergy claim of the whole system rests on the kernels being
// numerically *identical* — not close — to the reference loops, so every
// comparison here is exact (memcmp over the raw float storage), across
// randomized sweeps of kernel/stride/pad shapes, odd tile origins,
// halo-boundary regions, blocked-GEMM edge sizes, arena reuse, and intra-op
// parallel schedules.
#include <cstring>

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exec/arena.h"
#include "exec/executor.h"
#include "exec/ops.h"
#include "exec/ops_reference.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace d3::exec {
namespace {

using dnn::LayerSpec;
using dnn::Shape;
using dnn::Tensor;
using dnn::Window;

void expect_bitwise(const Tensor& got, const Tensor& want, const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  if (std::memcmp(got.data(), want.data(), want.size() * sizeof(float)) == 0) return;
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << ": first mismatch at flat index " << i;
  FAIL() << what << ": memcmp mismatch without element mismatch (NaN payload?)";
}

LayerWeights random_conv_weights(util::Rng& rng, int out_c, int in_c, const Window& win) {
  LayerWeights w;
  w.weights.resize(static_cast<std::size_t>(out_c) * in_c * win.kernel_h * win.kernel_w);
  for (auto& x : w.weights) x = static_cast<float>(rng.uniform(-1, 1));
  w.bias.resize(static_cast<std::size_t>(out_c));
  for (auto& x : w.bias) x = static_cast<float>(rng.uniform(-1, 1));
  return w;
}

Tile crop_tile(const Tensor& full, const Region& r) {
  Tile t;
  t.data = Tensor(Shape{full.shape().c, r.height(), r.width()});
  t.origin_x = r.x0;
  t.origin_y = r.y0;
  t.full_w = full.shape().w;
  t.full_h = full.shape().h;
  for (int c = 0; c < full.shape().c; ++c)
    for (int y = 0; y < r.height(); ++y)
      for (int x = 0; x < r.width(); ++x) t.data.at(c, y, x) = full.at(c, r.y0 + y, r.x0 + x);
  return t;
}

// Input rows/cols (clipped to the image) a window op needs for output region
// `out` — the exact halo.
Region receptive_field(const Window& win, const Region& out, int in_w, int in_h) {
  Region r;
  r.x0 = std::max(0, out.x0 * win.stride_w - win.pad_w);
  r.y0 = std::max(0, out.y0 * win.stride_h - win.pad_h);
  r.x1 = std::min(in_w, (out.x1 - 1) * win.stride_w - win.pad_w + win.kernel_w);
  r.y1 = std::min(in_h, (out.y1 - 1) * win.stride_h - win.pad_h + win.kernel_h);
  return r;
}

struct WindowCase {
  Window win;
  int in_c;
  int out_c;
  int in_h;
  int in_w;
};

// Kernel/stride/pad edge cases: 1x1, even kernels, rectangular kernels,
// stride > kernel (untouched input columns), pad >= kernel - 1, channel and
// pixel counts that exercise every blocked-GEMM edge (out_c % kMr, npix % kNr).
const WindowCase kWindowCases[] = {
    {{1, 1, 1, 1, 0, 0}, 1, 1, 5, 5},
    {{1, 1, 2, 2, 0, 0}, 3, 5, 9, 9},
    {{2, 2, 1, 1, 0, 0}, 2, 4, 6, 7},
    {{3, 3, 1, 1, 1, 1}, 3, 17, 11, 13},
    {{3, 3, 2, 2, 1, 1}, 4, 8, 12, 12},
    {{5, 5, 1, 1, 2, 2}, 2, 3, 9, 8},
    {{3, 2, 1, 1, 2, 1}, 3, 6, 7, 7},
    {{2, 3, 2, 1, 1, 2}, 2, 7, 8, 9},
    {{1, 1, 3, 3, 1, 1}, 2, 2, 10, 10},  // stride > kernel: gaps in touched set
    {{7, 7, 2, 2, 3, 3}, 3, 9, 21, 19},
    {{3, 3, 1, 1, 1, 1}, 8, 64, 16, 16},  // fills full register tiles
    {{3, 3, 1, 1, 0, 0}, 1, 1, 4, 3},     // single-output-pixel region
};

TEST(OpsKernels, ConvWholeMatchesReferenceBitwise) {
  util::Rng rng(11);
  for (const WindowCase& wc : kWindowCases) {
    Tensor in = random_tensor(Shape{wc.in_c, wc.in_h, wc.in_w}, rng);
    const LayerSpec spec = LayerSpec::conv("c", wc.out_c, wc.win);
    const LayerWeights w = random_conv_weights(rng, wc.out_c, wc.in_c, wc.win);
    expect_bitwise(conv2d(in, spec, w), reference::conv2d(in, spec, w),
                   "conv " + std::to_string(&wc - kWindowCases));
  }
}

TEST(OpsKernels, ConvRegionOddOriginsMatchReferenceBitwise) {
  util::Rng rng(12);
  for (const WindowCase& wc : kWindowCases) {
    Tensor in = random_tensor(Shape{wc.in_c, wc.in_h, wc.in_w}, rng);
    const LayerSpec spec = LayerSpec::conv("c", wc.out_c, wc.win);
    const LayerWeights w = random_conv_weights(rng, wc.out_c, wc.in_c, wc.win);
    const Shape out_shape = infer_output_shape(spec, {in.shape()});
    // Random interior output regions with odd origins; the input tile is the
    // exact receptive field (tight halo) or a one-larger margin.
    for (int trial = 0; trial < 6; ++trial) {
      const int x0 = static_cast<int>(rng.uniform_int(0, out_shape.w - 1));
      const int y0 = static_cast<int>(rng.uniform_int(0, out_shape.h - 1));
      const int x1 = static_cast<int>(rng.uniform_int(x0 + 1, out_shape.w));
      const int y1 = static_cast<int>(rng.uniform_int(y0 + 1, out_shape.h));
      const Region out{x0, y0, x1, y1};
      Region halo = receptive_field(wc.win, out, wc.in_w, wc.in_h);
      if (trial % 2 == 1) {  // grow the margin where possible
        halo.x0 = std::max(0, halo.x0 - 1);
        halo.y0 = std::max(0, halo.y0 - 1);
        halo.x1 = std::min(wc.in_w, halo.x1 + 1);
        halo.y1 = std::min(wc.in_h, halo.y1 + 1);
      }
      if (halo.width() <= 0 || halo.height() <= 0) continue;  // all-pad region
      const Tile tile = crop_tile(in, halo);
      const Tile got = conv2d_region(tile, spec, w, out, out_shape.w, out_shape.h);
      const Tile want = reference::conv2d_region(tile, spec, w, out, out_shape.w, out_shape.h);
      EXPECT_EQ(got.origin_x, want.origin_x);
      EXPECT_EQ(got.origin_y, want.origin_y);
      expect_bitwise(got.data, want.data, "conv region");
    }
  }
}

TEST(OpsKernels, ConvRegionMissingHaloThrowsLikeReference) {
  util::Rng rng(13);
  Tensor in = random_tensor(Shape{2, 10, 10}, rng);
  const Window win{3, 3, 1, 1, 0, 0};
  const LayerSpec spec = LayerSpec::conv("c", 2, win);
  const LayerWeights w = random_conv_weights(rng, 2, 2, win);
  const Region out{4, 4, 7, 7};
  Region halo = receptive_field(win, out, 10, 10);
  // Shave one column/row off the halo on each side in turn: both kernels must
  // reject the tile (the reference mid-loop, the fast kernel up front).
  for (int side = 0; side < 4; ++side) {
    Region cut = halo;
    if (side == 0) ++cut.x0;
    if (side == 1) --cut.x1;
    if (side == 2) ++cut.y0;
    if (side == 3) --cut.y1;
    const Tile tile = crop_tile(in, cut);
    EXPECT_THROW(conv2d_region(tile, spec, w, out, 8, 8), std::logic_error) << side;
    EXPECT_THROW(reference::conv2d_region(tile, spec, w, out, 8, 8), std::logic_error) << side;
  }
  // The exact halo is accepted by both.
  const Tile tile = crop_tile(in, halo);
  expect_bitwise(conv2d_region(tile, spec, w, out, 8, 8).data,
                 reference::conv2d_region(tile, spec, w, out, 8, 8).data, "exact halo");
}

TEST(OpsKernels, PoolMatchesReferenceBitwise) {
  util::Rng rng(14);
  for (const WindowCase& wc : kWindowCases) {
    if (wc.win.pad_w >= wc.win.kernel_w || wc.win.pad_h >= wc.win.kernel_h)
      continue;  // pooling windows never fully in padding
    Tensor in = random_tensor(Shape{wc.in_c, wc.in_h, wc.in_w}, rng);
    for (const bool is_max : {true, false}) {
      const LayerSpec spec = is_max ? LayerSpec::max_pool("p", wc.win)
                                    : LayerSpec::avg_pool("p", wc.win);
      expect_bitwise(pool2d(in, spec), reference::pool2d(in, spec),
                     is_max ? "max pool" : "avg pool");
      const Shape out_shape = infer_output_shape(spec, {in.shape()});
      for (int trial = 0; trial < 4; ++trial) {
        const int x0 = static_cast<int>(rng.uniform_int(0, out_shape.w - 1));
        const int y0 = static_cast<int>(rng.uniform_int(0, out_shape.h - 1));
        const Region out{x0, y0, static_cast<int>(rng.uniform_int(x0 + 1, out_shape.w)),
                         static_cast<int>(rng.uniform_int(y0 + 1, out_shape.h))};
        const Region halo = receptive_field(wc.win, out, wc.in_w, wc.in_h);
        if (halo.width() <= 0 || halo.height() <= 0) continue;
        const Tile tile = crop_tile(in, halo);
        expect_bitwise(pool_region(tile, spec, out, out_shape.w, out_shape.h).data,
                       reference::pool_region(tile, spec, out, out_shape.w, out_shape.h).data,
                       "pool region");
      }
    }
  }
}

TEST(OpsKernels, FullyConnectedMatchesReferenceBitwise) {
  util::Rng rng(15);
  for (const int out_n : {1, 3, 4, 5, 17, 64}) {
    for (const int in_n : {1, 7, 33, 256}) {
      Tensor in = random_tensor(Shape{in_n, 1, 1}, rng);
      const LayerSpec spec = LayerSpec::fully_connected("f", out_n);
      LayerWeights w;
      w.weights.resize(static_cast<std::size_t>(out_n) * in_n);
      for (auto& x : w.weights) x = static_cast<float>(rng.uniform(-1, 1));
      w.bias.resize(static_cast<std::size_t>(out_n));
      for (auto& x : w.bias) x = static_cast<float>(rng.uniform(-1, 1));
      expect_bitwise(fully_connected(in, spec, w), reference::fully_connected(in, spec, w),
                     "fc " + std::to_string(out_n) + "x" + std::to_string(in_n));
    }
  }
}

TEST(OpsKernels, FullyConnectedValidatesBiasSize) {
  Tensor in(Shape{3, 1, 1});
  const LayerSpec spec = LayerSpec::fully_connected("f", 2);
  LayerWeights w;
  w.weights.assign(6, 1.0f);  // correct weight size
  w.bias.assign(1, 0.0f);     // wrong bias size: must throw, not read OOB
  EXPECT_THROW(fully_connected(in, spec, w), std::invalid_argument);
  EXPECT_THROW(reference::fully_connected(in, spec, w), std::invalid_argument);
}

TEST(OpsKernels, ElementwiseAndShapeOpsMatchReferenceBitwise) {
  util::Rng rng(16);
  Tensor a = random_tensor(Shape{3, 5, 7}, rng);
  Tensor b = random_tensor(Shape{3, 5, 7}, rng);
  Tensor c = random_tensor(Shape{2, 5, 7}, rng);
  expect_bitwise(relu(a), reference::relu(a), "relu");
  expect_bitwise(add({&a, &b}), reference::add({&a, &b}), "add");
  expect_bitwise(concat({&a, &c}), reference::concat({&a, &c}), "concat");
  expect_bitwise(global_avg_pool(a), reference::global_avg_pool(a), "gap");
  Tensor logits = random_tensor(Shape{13, 1, 1}, rng);
  expect_bitwise(softmax(logits), reference::softmax(logits), "softmax");
  LayerWeights bn;
  bn.bn_scale.resize(3);
  bn.bn_shift.resize(3);
  for (auto& x : bn.bn_scale) x = static_cast<float>(rng.uniform(-2, 2));
  for (auto& x : bn.bn_shift) x = static_cast<float>(rng.uniform(-2, 2));
  expect_bitwise(batch_norm(a, bn), reference::batch_norm(a, bn), "batch_norm");
}

TEST(OpsKernels, MoveOverloadsReuseStorage) {
  util::Rng rng(17);
  Tensor t = random_tensor(Shape{2, 4, 4}, rng);
  const Tensor expected = reference::relu(t);
  const float* storage = t.data();
  Tensor out = relu(std::move(t));
  EXPECT_EQ(out.data(), storage);  // moved, not copied
  expect_bitwise(out, expected, "move relu");

  Tensor u = random_tensor(Shape{2, 4, 4}, rng);
  LayerWeights bn;
  bn.bn_scale = {2.0f, -1.0f};
  bn.bn_shift = {0.5f, 3.0f};
  const Tensor expected_bn = reference::batch_norm(u, bn);
  const float* storage_bn = u.data();
  Tensor out_bn = batch_norm(std::move(u), bn);
  EXPECT_EQ(out_bn.data(), storage_bn);
  expect_bitwise(out_bn, expected_bn, "move batch_norm");
}

TEST(OpsKernels, ArenaScopesReuseAndRewind) {
  Arena arena;
  {
    ArenaScope outer(arena);
    float* a = arena.floats(100);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
    float* b = nullptr;
    {
      ArenaScope inner(arena);
      b = arena.floats(1000);
      EXPECT_NE(a, b);
    }
    // The inner scope's space is reclaimed: the next allocation reuses it
    // (same bump offset) without touching the allocator.
    const std::size_t allocs = arena.chunk_allocations();
    float* c = arena.floats(1000);
    EXPECT_EQ(c, b);
    EXPECT_EQ(arena.chunk_allocations(), allocs);
  }
  EXPECT_EQ(arena.used(), 0u);
}

TEST(OpsKernels, ArenaSteadyStateIsAllocationFree) {
  util::Rng rng(18);
  Arena arena;
  OpContext ctx{&arena, nullptr};
  const Window win{3, 3, 1, 1, 1, 1};
  const LayerSpec small = LayerSpec::conv("s", 8, win);
  const LayerSpec large = LayerSpec::conv("l", 16, win);
  Tensor in_small = random_tensor(Shape{4, 9, 9}, rng);
  Tensor in_large = random_tensor(Shape{16, 17, 17}, rng);
  const LayerWeights w_small = random_conv_weights(rng, 8, 4, win);
  const LayerWeights w_large = random_conv_weights(rng, 16, 16, win);

  const Tensor first_small = conv2d(in_small, small, w_small, ctx);
  const Tensor first_large = conv2d(in_large, large, w_large, ctx);
  const std::size_t warm = arena.chunk_allocations();
  for (int i = 0; i < 5; ++i) {
    // Alternating shapes through the same arena: buffers are reused, results
    // stay bitwise-identical to the first pass (no aliasing corruption).
    expect_bitwise(conv2d(in_small, small, w_small, ctx), first_small, "arena small");
    expect_bitwise(conv2d(in_large, large, w_large, ctx), first_large, "arena large");
  }
  EXPECT_EQ(arena.chunk_allocations(), warm);
  EXPECT_EQ(arena.used(), 0u);  // every kernel scope rewound
}

// A tiny layer-by-layer interpreter over the reference kernels: the oracle for
// whole-network execution.
std::vector<Tensor> run_reference_network(const dnn::Network& net, const WeightStore& weights,
                                          const Tensor& input) {
  std::vector<Tensor> outputs;
  outputs.reserve(net.num_layers());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    std::vector<const Tensor*> ins;
    for (const dnn::LayerId in : net.layer(id).inputs)
      ins.push_back(in == dnn::kNetworkInput ? &input : &outputs[in]);
    const dnn::LayerSpec& spec = net.layer(id).spec;
    const LayerWeights& w = weights.layer(id);
    switch (spec.kind) {
      case dnn::LayerKind::kConv: outputs.push_back(reference::conv2d(*ins[0], spec, w)); break;
      case dnn::LayerKind::kMaxPool:
      case dnn::LayerKind::kAvgPool: outputs.push_back(reference::pool2d(*ins[0], spec)); break;
      case dnn::LayerKind::kGlobalAvgPool:
        outputs.push_back(reference::global_avg_pool(*ins[0]));
        break;
      case dnn::LayerKind::kFullyConnected:
        outputs.push_back(reference::fully_connected(*ins[0], spec, w));
        break;
      case dnn::LayerKind::kReLU: outputs.push_back(reference::relu(*ins[0])); break;
      case dnn::LayerKind::kBatchNorm:
        outputs.push_back(reference::batch_norm(*ins[0], w));
        break;
      case dnn::LayerKind::kConcat: outputs.push_back(reference::concat(ins)); break;
      case dnn::LayerKind::kAdd: outputs.push_back(reference::add(ins)); break;
      case dnn::LayerKind::kSoftmax: outputs.push_back(reference::softmax(*ins[0])); break;
    }
  }
  return outputs;
}

TEST(OpsKernels, ExecutorMatchesReferenceNetworkBitwise) {
  util::Rng rng(19);
  for (const dnn::Network& net : {dnn::zoo::tiny_chain(), dnn::zoo::tiny_branch()}) {
    const WeightStore weights = WeightStore::random_for(net, 99);
    const Tensor input = random_tensor(net.input_shape(), rng);
    const std::vector<Tensor> want = run_reference_network(net, weights, input);
    const std::vector<Tensor> got = Executor(net, weights).run_all(input);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      expect_bitwise(got[i], want[i], net.name() + " layer " + std::to_string(i));
  }
}

TEST(OpsKernels, IntraOpParallelExecutorIsBitwiseIdentical) {
  // A conv stack big enough to cross the kernels' parallelism threshold.
  const dnn::Network net = dnn::zoo::conv_stack(
      "par", Shape{16, 24, 24},
      {{64, Window{3, 3, 1, 1, 1, 1}}, {96, Window{3, 3, 1, 1, 1, 1}}});
  const WeightStore weights = WeightStore::random_for(net, 7);
  util::Rng rng(20);
  const Tensor input = random_tensor(net.input_shape(), rng);

  Executor serial(net, weights);
  const Tensor want = serial.run(input);

  runtime::ThreadPool pool(4);
  Executor parallel(net, weights);
  parallel.set_parallel_for(
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      });
  for (int i = 0; i < 3; ++i)
    expect_bitwise(parallel.run(input), want, "parallel executor run " + std::to_string(i));
}

}  // namespace
}  // namespace d3::exec
