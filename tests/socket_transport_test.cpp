// Multi-process end-to-end: each tier of the online engine runs in its own OS
// process (fork/exec of the d3_node worker binary, localhost TCP), and the
// distributed inference must be bitwise-identical to the single-process
// exec::Executor, with a transcript byte-identical to the in-process engine
// and per-boundary byte counts matching core::boundary_traffic.
#include <memory>

#include <gtest/gtest.h>

#include "core/hpa.h"
#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "rpc/socket_transport.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "socket_transport_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// Spawns one worker process per tier and wires a configured SocketTransport.
struct Cluster {
  std::vector<std::unique_ptr<rpc::WorkerProcess>> workers;
  std::shared_ptr<rpc::SocketTransport> transport;

  Cluster(const dnn::Network& net, const exec::WeightStore& weights,
          const core::SerializablePlan& plan, std::size_t vsm_workers) {
    transport = std::make_shared<rpc::SocketTransport>();
    for (const char* node : {"device0", "edge0", "cloud0"}) {
      workers.push_back(std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY));
      transport->add_node(node, workers.back()->take_socket());
    }
    transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan),
                         vsm_workers);
  }
};

TEST(SocketTransport, TinyChainVsmEndToEndAcrossThreeProcesses) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 5);
  util::Rng rng(6);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  // conv1+relu1 on the device, pool1..pool2 as a 2x2 VSM stack on the edge,
  // the fc tail in the cloud — every engine path exercised, every tier remote.
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);
  const core::SerializablePlan plan{net.name(), assignment, vsm};

  Cluster cluster(net, weights, plan, /*vsm_workers=*/2);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, vsm, options);

  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  // Transcript must be byte-identical to the in-process engine's.
  const InferenceResult local = OnlineEngine(net, weights, assignment, vsm).infer(frame);
  ASSERT_EQ(distributed.messages.size(), local.messages.size());
  for (std::size_t i = 0; i < local.messages.size(); ++i) {
    EXPECT_EQ(distributed.messages[i].from_node, local.messages[i].from_node);
    EXPECT_EQ(distributed.messages[i].to_node, local.messages[i].to_node);
    EXPECT_EQ(distributed.messages[i].payload, local.messages[i].payload);
    EXPECT_EQ(distributed.messages[i].bytes, local.messages[i].bytes);
  }
  EXPECT_EQ(distributed.vsm_scatter_bytes, local.vsm_scatter_bytes);
  EXPECT_EQ(distributed.vsm_gather_bytes, local.vsm_gather_bytes);
  EXPECT_EQ(distributed.layers_executed, local.layers_executed);

  // Per-boundary byte counts match the analytical traffic accounting.
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  const auto problem = core::make_problem(net, estimators, net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, assignment);
  EXPECT_EQ(distributed.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(distributed.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(distributed.device_cloud_bytes, traffic.device_cloud_bytes);

  // Real payload bytes crossed the sockets.
  const rpc::SocketTransport::Stats stats = cluster.transport->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.payload_bytes_sent, 0u);
  EXPECT_GT(stats.payload_bytes_fetched, 0u);
}

TEST(SocketTransport, BranchNetWithDeferredConsumerAcrossProcesses) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 31);
  util::Rng rng(32);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  // branch_a on the cloud, branch_b + concat on the edge: the edge-assigned
  // concat defers to the cloud stage and its cloud input is relayed
  // cloud -> edge between processes.
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  assignment.tier[dnn::Network::vertex_of(0)] = core::Tier::kDevice;
  assignment.tier[dnn::Network::vertex_of(1)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);

  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  const InferenceResult local = OnlineEngine(net, weights, assignment).infer(frame);
  ASSERT_EQ(distributed.messages.size(), local.messages.size());
  EXPECT_EQ(distributed.device_edge_bytes, local.device_edge_bytes);
  EXPECT_EQ(distributed.edge_cloud_bytes, local.edge_cloud_bytes);
  EXPECT_EQ(distributed.device_cloud_bytes, local.device_cloud_bytes);
}

TEST(SocketTransport, PipelinedSchedulerAcrossProcesses) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 41);
  util::Rng rng(42);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1, 2})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const exec::Executor executor(net, weights);

  // Several in-flight requests pipelined across the three worker processes:
  // per-request isolation on every node, results all bitwise-correct.
  BatchScheduler scheduler(engine);
  std::vector<dnn::Tensor> frames;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    frames.push_back(exec::random_tensor(net.input_shape(), rng));
    ids.push_back(scheduler.submit(frames.back()));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const InferenceResult result = scheduler.wait(ids[i]);
    expect_identical(result.output, executor.run(frames[i]));
  }
}

TEST(SocketTransport, WorkerRejectsGarbageWithClearError) {
  // A node fed a plan for the wrong model answers kError (TransportError
  // here), not a partially-configured state.
  const dnn::Network chain = dnn::zoo::tiny_chain();
  const dnn::Network branch = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(chain, 7);

  core::Assignment assignment;
  assignment.tier.assign(chain.num_layers() + 1, core::Tier::kDevice);
  const core::SerializablePlan plan{chain.name(), assignment, std::nullopt};

  // Declared before the transport so the transport (which holds the socket)
  // is destroyed first and the worker exits on EOF instead of timing out.
  rpc::WorkerProcess worker(D3_NODE_BINARY);
  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->add_node("device0", worker.take_socket());
  // Model name says tiny-branch, weights and plan are tiny-chain's: the worker
  // must reject the bundle.
  EXPECT_THROW(transport->configure(branch.name(), chain, weights,
                                    core::serialize_plan_binary(plan), 0),
               rpc::TransportError);
}

}  // namespace
}  // namespace d3::runtime
