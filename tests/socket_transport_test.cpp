// Multi-process end-to-end: each tier of the online engine runs in its own OS
// process (fork/exec of the d3_node worker binary, localhost TCP), and the
// distributed inference must be bitwise-identical to the single-process
// exec::Executor, with a transcript byte-identical to the in-process engine
// and per-boundary byte counts matching core::boundary_traffic. On top of the
// PR-3 star topology this suite covers edge fan-out (the VSM tile plan
// sharded across real edge1..edgeN worker processes), peer-to-peer channels
// (boundary tensors pushed producer -> consumer, coordinator relay bytes
// provably zero), and worker-death recovery (bounded-backoff reconnect, the
// failed request replayed bitwise-identically).
#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include <gtest/gtest.h>

#include "core/hpa.h"
#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "rpc/socket_transport.h"
#include "rpc/wire.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "util/rng.h"

#ifndef D3_NODE_BINARY
#error "socket_transport_test needs D3_NODE_BINARY (set by CMake)"
#endif

namespace d3::runtime {
namespace {

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// Spawns worker processes and wires a configured SocketTransport. The default
// constructor attaches the classic one-process-per-tier star; tests may also
// attach named tier nodes and tile-worker shards one by one. `procs` is
// touched by the main test thread (kill_worker) and by respawn hooks running
// on scheduler stage threads, so all access goes through `mutex`.
struct Cluster {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
  std::shared_ptr<rpc::SocketTransport> transport =
      std::make_shared<rpc::SocketTransport>();

  Cluster() = default;

  Cluster(const dnn::Network& net, const exec::WeightStore& weights,
          const core::SerializablePlan& plan, std::size_t vsm_workers) {
    for (const char* node : {"device0", "edge0", "cloud0"}) attach(node);
    configure(net, weights, plan, vsm_workers);
  }

  // `mutex` guards only `procs`; transport calls happen outside it. Respawn
  // hooks run under the transport's per-node channel lock, so holding `mutex`
  // across a transport call would order the two lock families both ways.
  void attach(const std::string& node) {
    auto proc = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
    rpc::Socket socket = proc->take_socket();
    {
      std::lock_guard<std::mutex> lock(mutex);
      procs[node] = std::move(proc);
    }
    transport->add_node(node, std::move(socket));
  }

  void attach_tile_worker(std::size_t index) {
    const std::string node = "edge" + std::to_string(index + 1);
    auto proc = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
    rpc::Socket socket = proc->take_socket();
    {
      std::lock_guard<std::mutex> lock(mutex);
      procs[node] = std::move(proc);
    }
    transport->add_tile_worker(std::move(socket));
  }

  void configure(const dnn::Network& net, const exec::WeightStore& weights,
                 const core::SerializablePlan& plan, std::size_t vsm_workers) {
    transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan),
                         vsm_workers);
  }

  // Registers respawn-on-death for `node` with a fast test backoff.
  void enable_respawn(const std::string& node) {
    transport->set_reconnect(
        node,
        [this, node] {
          std::lock_guard<std::mutex> lock(mutex);
          procs[node] = std::make_unique<rpc::WorkerProcess>(D3_NODE_BINARY);
          return procs[node]->take_socket();
        },
        rpc::SocketTransport::RetryPolicy{4, std::chrono::milliseconds(10), 2.0});
  }

  void kill_worker(const std::string& node) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_TRUE(procs.count(node));
    ::kill(procs[node]->pid(), SIGKILL);
  }
};

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < b.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

// The tiny-chain three-tier plan with a 2x2 VSM stack used by several tests:
// conv1+relu1 on the device, pool1..pool2 fused on the edge, the fc tail in
// the cloud.
struct ChainVsmCase {
  dnn::Network net = dnn::zoo::tiny_chain();
  core::Assignment assignment;
  std::optional<core::FusedTilePlan> vsm;
  core::SerializablePlan plan;

  ChainVsmCase() {
    assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
    assignment.tier[0] = core::Tier::kDevice;
    for (const dnn::LayerId id : {0, 1})
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
    for (const dnn::LayerId id : edge_stack)
      assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
    vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);
    plan = core::SerializablePlan{net.name(), assignment, vsm};
  }
};

TEST(SocketTransport, TinyChainVsmEndToEndAcrossThreeProcesses) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 5);
  util::Rng rng(6);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  // conv1+relu1 on the device, pool1..pool2 as a 2x2 VSM stack on the edge,
  // the fc tail in the cloud — every engine path exercised, every tier remote.
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);
  const core::SerializablePlan plan{net.name(), assignment, vsm};

  Cluster cluster(net, weights, plan, /*vsm_workers=*/2);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, vsm, options);

  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  // Transcript must be byte-identical to the in-process engine's.
  const InferenceResult local = OnlineEngine(net, weights, assignment, vsm).infer(frame);
  ASSERT_EQ(distributed.messages.size(), local.messages.size());
  for (std::size_t i = 0; i < local.messages.size(); ++i) {
    EXPECT_EQ(distributed.messages[i].from_node, local.messages[i].from_node);
    EXPECT_EQ(distributed.messages[i].to_node, local.messages[i].to_node);
    EXPECT_EQ(distributed.messages[i].payload, local.messages[i].payload);
    EXPECT_EQ(distributed.messages[i].bytes, local.messages[i].bytes);
  }
  EXPECT_EQ(distributed.vsm_scatter_bytes, local.vsm_scatter_bytes);
  EXPECT_EQ(distributed.vsm_gather_bytes, local.vsm_gather_bytes);
  EXPECT_EQ(distributed.layers_executed, local.layers_executed);

  // Per-boundary byte counts match the analytical traffic accounting.
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  const auto problem = core::make_problem(net, estimators, net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, assignment);
  EXPECT_EQ(distributed.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(distributed.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(distributed.device_cloud_bytes, traffic.device_cloud_bytes);

  // Real payload bytes crossed the sockets.
  const rpc::SocketTransport::Stats stats = cluster.transport->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.payload_bytes_sent, 0u);
  EXPECT_GT(stats.payload_bytes_fetched, 0u);
}

TEST(SocketTransport, BranchNetWithDeferredConsumerAcrossProcesses) {
  const dnn::Network net = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 31);
  util::Rng rng(32);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  // branch_a on the cloud, branch_b + concat on the edge: the edge-assigned
  // concat defers to the cloud stage and its cloud input is relayed
  // cloud -> edge between processes.
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  assignment.tier[dnn::Network::vertex_of(0)] = core::Tier::kDevice;
  assignment.tier[dnn::Network::vertex_of(1)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);

  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  const InferenceResult local = OnlineEngine(net, weights, assignment).infer(frame);
  ASSERT_EQ(distributed.messages.size(), local.messages.size());
  EXPECT_EQ(distributed.device_edge_bytes, local.device_edge_bytes);
  EXPECT_EQ(distributed.edge_cloud_bytes, local.edge_cloud_bytes);
  EXPECT_EQ(distributed.device_cloud_bytes, local.device_cloud_bytes);
}

TEST(SocketTransport, PipelinedSchedulerAcrossProcesses) {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 41);
  util::Rng rng(42);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1, 2})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const exec::Executor executor(net, weights);

  // Several in-flight requests pipelined across the three worker processes:
  // per-request isolation on every node, results all bitwise-correct.
  BatchScheduler scheduler(engine);
  std::vector<dnn::Tensor> frames;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    frames.push_back(exec::random_tensor(net.input_shape(), rng));
    ids.push_back(scheduler.submit(frames.back()));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const InferenceResult result = scheduler.wait(ids[i]);
    expect_identical(result.output, executor.run(frames[i]));
  }
}

TEST(SocketTransport, MultiEdgeFanOutAcrossFourProcesses) {
  // The acceptance topology: device + edge1 + edge2 + cloud, four real OS
  // processes. The edge *coordinator* role lives in the engine's process; the
  // VSM tile plan (2x2 = 4 tiles) is sharded across the two edge worker
  // processes (tile t -> worker t mod 2). Outputs must stay bitwise-identical
  // and the transcript byte-identical to the in-process engine, with per-
  // boundary bytes matching the analytical accounting and zero coordinator
  // relay bytes.
  const ChainVsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 91);
  util::Rng rng(92);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  Cluster cluster;
  cluster.attach("device0");
  cluster.attach("cloud0");
  cluster.attach_tile_worker(0);
  cluster.attach_tile_worker(1);
  cluster.configure(c.net, weights, c.plan, /*vsm_workers=*/0);
  cluster.transport->connect_peers();
  ASSERT_TRUE(cluster.transport->has_tile_workers());
  ASSERT_EQ(cluster.transport->tile_worker_count(), 2u);

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  options.vsm_workers = 2;  // pool lanes driving the two worker connections
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  const InferenceResult local = OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame);
  expect_same_transcript(distributed, local);

  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  const auto problem = core::make_problem(c.net, estimators, net::wifi());
  const core::BoundaryTraffic traffic = core::boundary_traffic(problem, c.assignment);
  EXPECT_EQ(distributed.device_edge_bytes, traffic.device_edge_bytes);
  EXPECT_EQ(distributed.edge_cloud_bytes, traffic.edge_cloud_bytes);
  EXPECT_EQ(distributed.device_cloud_bytes, traffic.device_cloud_bytes);

  // Real tile payloads crossed to the shards and back; the coordinator never
  // relayed a remote node's tensor to another remote node.
  const rpc::SocketTransport::Stats stats = cluster.transport->stats();
  EXPECT_GT(stats.payload_bytes_sent, 0u);
  EXPECT_GT(stats.payload_bytes_fetched, 0u);
  EXPECT_EQ(stats.relay_bytes, 0u);
}

TEST(SocketTransport, PeerChannelsEliminateCoordinatorRelay) {
  // Same plan, two runs over all-remote tiers: the star topology relays every
  // boundary tensor through the coordinator (relay_bytes > 0); with peer
  // channels the device pushes to the edge and the edge pushes to the cloud
  // directly, so the coordinator moves zero relay bytes and only ever touches
  // the seeded input and the final output.
  const ChainVsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 71);
  util::Rng rng(72);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  std::uint64_t star_relay = 0;
  {
    Cluster star(c.net, weights, c.plan, /*vsm_workers=*/2);
    OnlineEngine::Options options;
    options.transport = star.transport;
    const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);
    expect_identical(engine.infer(frame).output, reference);
    const rpc::SocketTransport::Stats stats = star.transport->stats();
    star_relay = stats.relay_bytes;
    EXPECT_GT(stats.relay_bytes, 0u);
    EXPECT_EQ(stats.peer_pushes, 0u);
  }

  Cluster p2p(c.net, weights, c.plan, /*vsm_workers=*/2);
  p2p.transport->connect_peers();
  OnlineEngine::Options options;
  options.transport = p2p.transport;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);
  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);

  // The transcript is a pure function of the plan: identical whether tensors
  // were relayed or pushed peer-to-peer.
  expect_same_transcript(distributed,
                         OnlineEngine(c.net, weights, c.assignment, c.vsm).infer(frame));

  const rpc::SocketTransport::Stats stats = p2p.transport->stats();
  EXPECT_EQ(stats.relay_bytes, 0u);
  EXPECT_EQ(stats.peer_pushes, 2u);  // device0 -> edge0, edge0 -> cloud0
  EXPECT_GT(stats.peer_bytes, 0u);
  EXPECT_LE(stats.peer_bytes, star_relay * 2);
  // Coordinator payload traffic is exactly: input seeded out, output fetched.
  EXPECT_EQ(stats.payload_bytes_sent, rpc::encode_tensor(frame).size());
  EXPECT_EQ(stats.payload_bytes_fetched, rpc::encode_tensor(reference).size());
}

TEST(SocketTransport, WorkerDeathWithRecoveryOffFailsAndRequestReplays) {
  // The PR-4 contract, still available behind tier_recovery=false: SIGKILL the
  // device worker between requests, the next request fails with
  // TransportError, the transport respawns the worker under bounded backoff
  // and replays kConfig, and re-submitting the same frame yields the
  // bitwise-identical result and transcript (the replay guarantee).
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 51);
  util::Rng rng(52);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster;
  cluster.attach("device0");
  cluster.configure(net, weights, plan, 0);
  cluster.enable_respawn("device0");

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  options.tier_recovery = false;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const InferenceResult before = engine.infer(frame);
  expect_identical(before.output, reference);

  cluster.kill_worker("device0");
  EXPECT_THROW(engine.infer(frame), rpc::TransportError);
  EXPECT_EQ(cluster.transport->stats().reconnects, 1u);
  EXPECT_EQ(engine.stats().recoveries, 0u);

  // The channel is healthy again: the replayed request completes losslessly.
  const InferenceResult replayed = engine.infer(frame);
  expect_identical(replayed.output, reference);
  expect_same_transcript(replayed, before);
}

TEST(SocketTransport, WorkerDeathRecoversInPlaceByDefault) {
  // Same kill, default options: the request that trips over the dead channel
  // recovers *in place* — the transport respawns the worker, the engine
  // reopens the request, re-seeds the lost slots, and the same infer() call
  // returns the bitwise-identical result with the byte-identical transcript.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 51);
  util::Rng rng(52);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster;
  cluster.attach("device0");
  cluster.configure(net, weights, plan, 0);
  cluster.enable_respawn("device0");

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const InferenceResult before = engine.infer(frame);
  expect_identical(before.output, reference);

  cluster.kill_worker("device0");
  // The death is noticed on the request's very first frame (kBegin): nothing
  // was lost yet, so the engine just re-opens on the respawned worker — no
  // tier needs replaying, and the same call simply succeeds.
  const InferenceResult recovered = engine.infer(frame);
  expect_identical(recovered.output, reference);
  expect_same_transcript(recovered, before);
  EXPECT_EQ(cluster.transport->stats().reconnects, 1u);
  EXPECT_EQ(engine.stats().tiers_replayed, 0u);
}

TEST(SocketTransport, KillWorkerMidBatchAllRequestsRecover) {
  // A pipelined batch is in flight across three worker processes when the
  // edge worker dies. With tier-granular recovery on (the default) no request
  // fails: whichever stage trips over the dead channel rebuilds the edge
  // node's state and re-runs only the interrupted tier, and every output in
  // the batch stays bitwise-correct.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 61);
  util::Rng rng(62);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1, 2})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  cluster.enable_respawn("edge0");

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  // Slow the edge stage slightly so the batch is genuinely in flight when the
  // worker dies.
  options.emulated_tier_service_seconds = {0.0, 0.005, 0.0};
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const exec::Executor executor(net, weights);

  BatchScheduler scheduler(engine);
  std::vector<dnn::Tensor> frames;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 6; ++i) {
    frames.push_back(exec::random_tensor(net.input_shape(), rng));
    ids.push_back(scheduler.submit(frames.back()));
  }
  const InferenceResult first = scheduler.wait(ids[0]);
  expect_identical(first.output, executor.run(frames[0]));
  cluster.kill_worker("edge0");

  for (std::size_t i = 1; i < ids.size(); ++i)
    expect_identical(scheduler.wait(ids[i]).output, executor.run(frames[i]));
  EXPECT_GE(cluster.transport->stats().reconnects, 1u);
  EXPECT_GE(engine.stats().recoveries, 1u);
}

TEST(SocketTransport, SchedulerReplaysWhenEngineRecoveryIsOff) {
  // The scheduler-level fallback: tier recovery disabled, but
  // Options::max_replays lets the scheduler restart a ChannelDied request from
  // its retained input — the batch still completes with every output
  // bitwise-correct and no caller-visible failure.
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 63);
  util::Rng rng(64);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1, 2})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  Cluster cluster(net, weights, plan, 0);
  cluster.enable_respawn("edge0");

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  options.tier_recovery = false;
  options.emulated_tier_service_seconds = {0.0, 0.005, 0.0};
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const exec::Executor executor(net, weights);

  BatchScheduler::Options sched_options;
  sched_options.max_replays = 2;
  BatchScheduler scheduler(engine, sched_options);
  std::vector<dnn::Tensor> frames;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 6; ++i) {
    frames.push_back(exec::random_tensor(net.input_shape(), rng));
    ids.push_back(scheduler.submit(frames.back()));
  }
  const InferenceResult first = scheduler.wait(ids[0]);
  expect_identical(first.output, executor.run(frames[0]));
  cluster.kill_worker("edge0");

  for (std::size_t i = 1; i < ids.size(); ++i)
    expect_identical(scheduler.wait(ids[i]).output, executor.run(frames[i]));
  EXPECT_GE(cluster.transport->stats().reconnects, 1u);
  EXPECT_GE(scheduler.stats().replayed, 1u);
  EXPECT_EQ(engine.stats().recoveries, 0u);
}

TEST(SocketTransport, PrunedTileWorkerIsReadmittedByLateReconnectHook) {
  // The ISSUE-6 re-admission fix. Phase 1: edge2 dies with no reconnect hook,
  // so recovery prunes it and reshards its tiles onto edge1 — before the fix
  // the pool stayed degraded forever, even once the operator brought the
  // worker back. Phase 2: a late set_reconnect() re-admits a fresh edge2
  // incarnation (dialled, kConfig replayed, shard slot restored in attachment
  // order), and the next request runs the original two-shard layout with a
  // transcript byte-identical to the pre-fault run.
  const ChainVsmCase c;
  const exec::WeightStore weights = exec::WeightStore::random_for(c.net, 81);
  util::Rng rng(82);
  const dnn::Tensor frame = exec::random_tensor(c.net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(c.net, weights).run(frame);

  Cluster cluster;
  cluster.attach("device0");
  cluster.attach("cloud0");
  cluster.attach_tile_worker(0);
  cluster.attach_tile_worker(1);
  cluster.configure(c.net, weights, c.plan, /*vsm_workers=*/0);

  OnlineEngine::Options options;
  options.transport = cluster.transport;
  options.vsm_workers = 0;
  const OnlineEngine engine(c.net, weights, c.assignment, c.vsm, options);

  const InferenceResult before = engine.infer(frame);
  expect_identical(before.output, reference);

  // Phase 1: death without a hook degrades the pool to one shard.
  cluster.kill_worker("edge2");
  const InferenceResult degraded = engine.infer(frame);
  expect_identical(degraded.output, reference);
  expect_same_transcript(degraded, before);  // virtual tile nodes, not shards
  EXPECT_EQ(cluster.transport->tile_worker_count(), 1u);
  EXPECT_EQ(cluster.transport->stats().detached_workers, 1u);

  // Phase 2: the late hook re-admits edge2 immediately (no fault needed).
  cluster.enable_respawn("edge2");
  EXPECT_EQ(cluster.transport->tile_worker_count(), 2u);
  EXPECT_EQ(cluster.transport->stats().readmitted_workers, 1u);

  const InferenceResult restored = engine.infer(frame);
  expect_identical(restored.output, reference);
  expect_same_transcript(restored, before);
}

TEST(SocketTransport, PeerChannelsWorkOnNonLoopbackInterface) {
  // Regression for the hardcoded-127.0.0.1 peer handshake: when the whole
  // cluster runs on a real interface, a worker's peer listener binds the
  // address its coordinator channel uses — not loopback — so a handshake that
  // advertises 127.0.0.1 dials a port nobody listens on. The fix advertises
  // the coordinator-observed peer address.
  const std::string host = rpc::first_non_loopback_address();
  if (host.empty()) GTEST_SKIP() << "host has no non-loopback IPv4 interface";

  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 83);
  util::Rng rng(84);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);
  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);

  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {2, 3, 4, 5})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::SerializablePlan plan{net.name(), assignment, std::nullopt};

  std::map<std::string, std::unique_ptr<rpc::WorkerProcess>> procs;
  auto transport = std::make_shared<rpc::SocketTransport>();
  for (const char* node : {"device0", "edge0", "cloud0"}) {
    procs[node] = std::make_unique<rpc::WorkerProcess>(
        D3_NODE_BINARY, std::vector<std::string>{}, host);
    transport->add_node(node, procs[node]->take_socket());
  }
  transport->configure(net.name(), net, weights, core::serialize_plan_binary(plan), 0);
  transport->connect_peers();

  OnlineEngine::Options options;
  options.transport = transport;
  const OnlineEngine engine(net, weights, assignment, std::nullopt, options);
  const InferenceResult distributed = engine.infer(frame);
  expect_identical(distributed.output, reference);
  expect_same_transcript(distributed,
                         OnlineEngine(net, weights, assignment).infer(frame));

  const rpc::SocketTransport::Stats stats = transport->stats();
  EXPECT_EQ(stats.peer_pushes, 2u);  // device0 -> edge0 -> cloud0, off loopback
  EXPECT_EQ(stats.relay_bytes, 0u);
}

TEST(SocketTransport, WorkerRejectsGarbageWithClearError) {
  // A node fed a plan for the wrong model answers kError (TransportError
  // here), not a partially-configured state.
  const dnn::Network chain = dnn::zoo::tiny_chain();
  const dnn::Network branch = dnn::zoo::tiny_branch();
  const exec::WeightStore weights = exec::WeightStore::random_for(chain, 7);

  core::Assignment assignment;
  assignment.tier.assign(chain.num_layers() + 1, core::Tier::kDevice);
  const core::SerializablePlan plan{chain.name(), assignment, std::nullopt};

  // Declared before the transport so the transport (which holds the socket)
  // is destroyed first and the worker exits on EOF instead of timing out.
  rpc::WorkerProcess worker(D3_NODE_BINARY);
  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->add_node("device0", worker.take_socket());
  // Model name says tiny-branch, weights and plan are tiny-chain's: the worker
  // must reject the bundle.
  EXPECT_THROW(transport->configure(branch.name(), chain, weights,
                                    core::serialize_plan_binary(plan), 0),
               rpc::TransportError);
}

}  // namespace
}  // namespace d3::runtime
