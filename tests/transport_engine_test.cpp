// Engine x transport matrix: the same plan must produce bitwise-identical
// outputs and byte-identical transcripts on the zero-copy InProcessTransport
// and on SerializingLoopback (where every inter-node tensor round-trips the
// binary wire format) — the in-process half of the "losslessness survives the
// wire" story. Also covers the BatchScheduler's bounded admission queue.
#include <memory>

#include <gtest/gtest.h>

#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/transport.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "util/rng.h"

namespace d3::runtime {
namespace {

struct Fixture {
  dnn::Network net;
  exec::WeightStore weights;
  dnn::Tensor input;
  dnn::Tensor reference;

  explicit Fixture(dnn::Network n, std::uint64_t seed = 21)
      : net(std::move(n)), weights(exec::WeightStore::random_for(net, seed)) {
    util::Rng rng(seed + 1);
    input = exec::random_tensor(net.input_shape(), rng);
    reference = exec::Executor(net, weights).run(input);
  }
};

void expect_identical(const dnn::Tensor& a, const dnn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

void expect_same_transcript(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq);
    EXPECT_EQ(a.messages[i].from_node, b.messages[i].from_node);
    EXPECT_EQ(a.messages[i].to_node, b.messages[i].to_node);
    EXPECT_EQ(a.messages[i].payload, b.messages[i].payload);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
  EXPECT_EQ(a.device_edge_bytes, b.device_edge_bytes);
  EXPECT_EQ(a.edge_cloud_bytes, b.edge_cloud_bytes);
  EXPECT_EQ(a.device_cloud_bytes, b.device_cloud_bytes);
  EXPECT_EQ(a.vsm_scatter_bytes, b.vsm_scatter_bytes);
  EXPECT_EQ(a.vsm_gather_bytes, b.vsm_gather_bytes);
  EXPECT_EQ(a.layers_executed, b.layers_executed);
}

core::Assignment three_tier_plan(const dnn::Network& net) {
  // First two layers on the device, the next chunk on the edge, rest cloud.
  core::Assignment a;
  a.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::size_t n = net.num_layers();
  for (std::size_t id = 0; id < n; ++id) {
    if (id < 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
    else if (id < 2 + (n - 2) / 2) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  }
  return a;
}

TEST(TransportEngine, LoopbackMatchesInProcessOnChainAndBranch) {
  for (const char* which : {"chain", "branch"}) {
    Fixture f(std::string(which) == "chain" ? dnn::zoo::tiny_chain()
                                            : dnn::zoo::tiny_branch());
    const core::Assignment plan = three_tier_plan(f.net);
    const OnlineEngine reference_engine(f.net, f.weights, plan);
    const InferenceResult reference = reference_engine.infer(f.input);
    expect_identical(reference.output, f.reference);

    auto loopback = std::make_shared<rpc::SerializingLoopback>();
    OnlineEngine::Options options;
    options.transport = loopback;
    const OnlineEngine wired_engine(f.net, f.weights, plan, std::nullopt, options);
    const InferenceResult wired = wired_engine.infer(f.input);

    expect_identical(wired.output, f.reference);
    expect_same_transcript(wired, reference);
    // Every inter-node message actually crossed the wire format.
    const rpc::SerializingLoopback::Stats stats = loopback->stats();
    EXPECT_EQ(stats.messages, reference.messages.size());
    EXPECT_GT(stats.payload_bytes, 0u);
    EXPECT_GT(stats.wire_bytes, stats.payload_bytes);
  }
}

TEST(TransportEngine, LoopbackMatchesInProcessWithVsmStack) {
  Fixture f(dnn::zoo::tiny_chain());
  core::Assignment a;
  a.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  for (const dnn::LayerId id : stack) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const auto vsm = core::make_fused_tile_plan(f.net, stack, 2, 2);

  const InferenceResult reference = OnlineEngine(f.net, f.weights, a, vsm).infer(f.input);
  expect_identical(reference.output, f.reference);

  for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    auto loopback = std::make_shared<rpc::SerializingLoopback>();
    OnlineEngine::Options options;
    options.vsm_workers = workers;
    options.transport = loopback;
    const OnlineEngine engine(f.net, f.weights, a, vsm, options);
    const InferenceResult wired = engine.infer(f.input);
    expect_identical(wired.output, f.reference);
    expect_same_transcript(wired, reference);
    // Tile scatter + gather traffic round-trips the wire too.
    EXPECT_EQ(loopback->stats().messages, reference.messages.size());
  }
}

TEST(TransportEngine, LoopbackHandlesDeferredCrossTierConsumer) {
  // branch_a on the cloud while branch_b stays on the edge: the edge-assigned
  // concat consumes a cloud tensor, so it defers to the cloud stage and the
  // cloud->edge delivery crosses the wire.
  Fixture f(dnn::zoo::tiny_branch());
  core::Assignment a;
  a.tier.assign(f.net.num_layers() + 1, core::Tier::kCloud);
  a.tier[0] = core::Tier::kDevice;
  // stem(0), stem_relu(1) device; branch_a(2) cloud; branch_b1(3), branch_b2(4),
  // concat(5) edge; merge(6)... cloud.
  a.tier[dnn::Network::vertex_of(0)] = core::Tier::kDevice;
  a.tier[dnn::Network::vertex_of(1)] = core::Tier::kDevice;
  for (const dnn::LayerId id : {3, 4, 5}) a.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;

  const InferenceResult reference = OnlineEngine(f.net, f.weights, a).infer(f.input);
  expect_identical(reference.output, f.reference);

  auto loopback = std::make_shared<rpc::SerializingLoopback>();
  OnlineEngine::Options options;
  options.transport = loopback;
  const InferenceResult wired =
      OnlineEngine(f.net, f.weights, a, std::nullopt, options).infer(f.input);
  expect_identical(wired.output, f.reference);
  expect_same_transcript(wired, reference);
}

TEST(TransportEngine, StagedApiAndSchedulerWorkOverLoopback) {
  Fixture f(dnn::zoo::tiny_branch());
  const core::Assignment plan = three_tier_plan(f.net);
  auto loopback = std::make_shared<rpc::SerializingLoopback>();
  OnlineEngine::Options options;
  options.transport = loopback;
  const OnlineEngine engine(f.net, f.weights, plan, std::nullopt, options);

  BatchScheduler scheduler(engine);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(scheduler.submit(f.input));
  for (const std::size_t id : ids) {
    const InferenceResult result = scheduler.wait(id);
    expect_identical(result.output, f.reference);
  }
}

// --- Bounded admission (drop-oldest) ----------------------------------------

TEST(BatchSchedulerAdmission, DropsOldestWaitingRequestWhenFull) {
  Fixture f(dnn::zoo::tiny_chain());
  // Slow device stage so submissions outpace the pipeline deterministically.
  OnlineEngine::Options options;
  options.emulated_tier_service_seconds = {0.05, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, options);

  BatchScheduler::Options admission;
  admission.admission_capacity = 1;  // the simulator's depth-1 drop-oldest source
  BatchScheduler scheduler(engine, admission);

  constexpr std::size_t kBurst = 6;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kBurst; ++i) ids.push_back(scheduler.submit(f.input));

  std::size_t completed = 0, dropped = 0;
  for (const std::size_t id : ids) {
    try {
      const InferenceResult result = scheduler.wait(id);
      expect_identical(result.output, f.reference);
      ++completed;
    } catch (const RequestDropped&) {
      ++dropped;
    }
  }
  // A burst of 6 against a depth-1 queue must shed something, and the newest
  // request (admitted last, never the eviction victim at admission time) wins.
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(completed + dropped, kBurst);

  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kBurst);
  EXPECT_EQ(stats.dropped, dropped);
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(scheduler.completed(), kBurst);
}

TEST(BatchSchedulerAdmission, DrainSkipsDroppedRequests) {
  Fixture f(dnn::zoo::tiny_chain());
  OnlineEngine::Options options;
  options.emulated_tier_service_seconds = {0.05, 0.0, 0.0};
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net), std::nullopt, options);

  BatchScheduler::Options admission;
  admission.admission_capacity = 1;
  BatchScheduler scheduler(engine, admission);
  for (int i = 0; i < 5; ++i) scheduler.submit(f.input);
  const std::vector<InferenceResult> results = scheduler.drain();

  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(results.size(), stats.completed);
  EXPECT_EQ(stats.completed + stats.dropped, 5u);
  EXPECT_GT(stats.dropped, 0u);
  for (const InferenceResult& result : results) expect_identical(result.output, f.reference);
}

TEST(BatchSchedulerAdmission, UnboundedQueueNeverDrops) {
  Fixture f(dnn::zoo::tiny_chain());
  const OnlineEngine engine(f.net, f.weights, three_tier_plan(f.net));
  BatchScheduler scheduler(engine);  // default: unbounded
  for (int i = 0; i < 8; ++i) scheduler.submit(f.input);
  EXPECT_EQ(scheduler.drain().size(), 8u);
  EXPECT_EQ(scheduler.stats().dropped, 0u);
}

}  // namespace
}  // namespace d3::runtime
