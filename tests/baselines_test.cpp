#include <gtest/gtest.h>

#include "baselines/dads.h"
#include "baselines/neurosurgeon.h"
#include "core/hpa.h"
#include "dnn/model_zoo.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "util/rng.h"

namespace d3::baselines {
namespace {

using core::Assignment;
using core::PartitionProblem;
using core::Tier;
using core::TierTimes;

PartitionProblem chain_problem(std::vector<TierTimes> times, std::vector<std::int64_t> bytes,
                               net::NetworkCondition condition) {
  PartitionProblem p;
  p.dag = graph::Dag(times.size());
  for (graph::VertexId v = 0; v + 1 < times.size(); ++v) p.dag.add_edge(v, v + 1);
  p.vertex_time = std::move(times);
  p.out_bytes = std::move(bytes);
  p.in_bytes.assign(p.out_bytes.size(), 0);
  for (graph::VertexId v = 1; v < p.dag.size(); ++v) p.in_bytes[v] = p.out_bytes[v - 1];
  p.condition = std::move(condition);
  return p;
}

TEST(Neurosurgeon, FindsOptimalChainSplit) {
  // Exhaustively verifiable 3-vertex chain.
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{0.05, 0.0, 0.001}}, TierTimes{{0.5, 0.0, 0.002}},
       TierTimes{{0.5, 0.0, 0.002}}},
      {600'000, 50'000, 400'000, 4'000}, net::wifi());
  const auto result = neurosurgeon(p);
  ASSERT_TRUE(result.has_value());
  // Compare against brute force restricted to device/cloud prefix splits.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < 4; ++s) {
    Assignment a;
    a.tier.assign(4, Tier::kCloud);
    for (std::size_t i = 0; i <= s; ++i) a.tier[i] = Tier::kDevice;
    best = std::min(best, total_latency(p, a));
  }
  EXPECT_NEAR(result->total_latency_seconds, best, 1e-12);
  EXPECT_TRUE(respects_precedence(p, result->assignment));
}

TEST(Neurosurgeon, PrefersDeviceWhenUplinkTerrible) {
  auto p = chain_problem(
      {TierTimes{}, TierTimes{{0.01, 0.0, 0.001}}, TierTimes{{0.01, 0.0, 0.001}}},
      {10'000'000, 10'000'000, 100},
      net::NetworkCondition{"bad", 0.01, 0.01, 0.01, 0});
  const auto result = neurosurgeon(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->assignment.tier[1], Tier::kDevice);
  EXPECT_EQ(result->assignment.tier[2], Tier::kDevice);
}

TEST(Neurosurgeon, UsesOnlyDeviceAndCloud) {
  const dnn::Network net = dnn::zoo::vgg16();
  const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const auto result = neurosurgeon(p);
  ASSERT_TRUE(result.has_value());
  for (const Tier t : result->assignment.tier) EXPECT_NE(t, Tier::kEdge);
}

TEST(Neurosurgeon, RejectsDagTopologies) {
  // Fig. 10: "not applicable for ResNet-18, Darknet-53, Inception-v4".
  for (const auto& net : {dnn::zoo::resnet18(), dnn::zoo::darknet53()}) {
    const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
    EXPECT_FALSE(neurosurgeon(p).has_value()) << net.name();
  }
}

TEST(Neurosurgeon, AcceptsChainTopologies) {
  for (const auto& net : {dnn::zoo::alexnet(), dnn::zoo::vgg16()}) {
    const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
    EXPECT_TRUE(neurosurgeon(p).has_value()) << net.name();
  }
}

// DADS's objective on a two-way edge/cloud split with forward-only dataflow.
double dads_objective(const PartitionProblem& p, const std::vector<bool>& on_edge) {
  double cost = 0;
  for (graph::VertexId v = 1; v < p.size(); ++v) {
    cost += on_edge[v] ? p.vertex_time[v].at(Tier::kEdge) : p.vertex_time[v].at(Tier::kCloud);
    if (!on_edge[v] && p.dag.has_edge(0, v))
      cost += p.transfer_seconds(p.out_bytes[0], Tier::kEdge, Tier::kCloud);
  }
  for (const auto& [u, v] : p.dag.edges()) {
    if (u == 0) continue;
    if (on_edge[u] && !on_edge[v])
      cost += p.transfer_seconds(p.out_bytes[u], Tier::kEdge, Tier::kCloud);
    if (!on_edge[u] && on_edge[v]) return std::numeric_limits<double>::infinity();
  }
  return cost;
}

class DadsVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(DadsVsBruteForce, MinCutMatchesExhaustiveSearch) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  PartitionProblem p;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 9));
  p.dag = graph::Dag(n);
  for (graph::VertexId v = 1; v < n; ++v) {
    const auto preds = rng.uniform_int(1, std::min<std::int64_t>(2, static_cast<std::int64_t>(v)));
    std::vector<graph::VertexId> chosen;
    while (chosen.size() < static_cast<std::size_t>(preds)) {
      const auto c = static_cast<graph::VertexId>(rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) chosen.push_back(c);
    }
    for (const auto u : chosen) p.dag.add_edge(u, v);
  }
  p.vertex_time.assign(n, TierTimes{});
  p.out_bytes.assign(n, 0);
  p.in_bytes.assign(n, 0);
  p.out_bytes[0] = 600'000;
  for (graph::VertexId v = 1; v < n; ++v) {
    const double cloud = rng.uniform(0.001, 0.02);
    p.vertex_time[v] = TierTimes{{1.0, cloud * rng.uniform(2.0, 20.0), cloud}};
    p.out_bytes[v] = rng.uniform_int(1'000, 1'500'000);
  }
  p.condition = net::wifi();

  const DadsResult result = dads(p);

  // Exhaustive search over all 2^(n-1) feasible splits.
  double best = std::numeric_limits<double>::infinity();
  const std::size_t total = std::size_t{1} << (n - 1);
  for (std::size_t code = 0; code < total; ++code) {
    std::vector<bool> on_edge(n, false);
    for (std::size_t v = 1; v < n; ++v) on_edge[v] = (code >> (v - 1)) & 1;
    best = std::min(best, dads_objective(p, on_edge));
  }
  EXPECT_NEAR(result.min_cut_value, best, 1e-9);

  // The extracted assignment achieves the cut objective.
  std::vector<bool> on_edge(n, false);
  for (graph::VertexId v = 1; v < n; ++v) on_edge[v] = result.assignment.tier[v] == Tier::kEdge;
  EXPECT_NEAR(dads_objective(p, on_edge), result.min_cut_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DadsVsBruteForce, ::testing::Range(1, 16));

TEST(Dads, UsesOnlyEdgeAndCloud) {
  const dnn::Network net = dnn::zoo::resnet18();
  const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  const DadsResult result = dads(p);
  EXPECT_EQ(result.assignment.tier[0], Tier::kDevice);
  for (graph::VertexId v = 1; v < p.size(); ++v)
    EXPECT_NE(result.assignment.tier[v], Tier::kDevice);
  EXPECT_TRUE(respects_precedence(p, result.assignment));
}

TEST(Dads, NeverSendsDataBackward) {
  // Forward-only: no edge vertex may consume a cloud vertex's output.
  const dnn::Network net = dnn::zoo::inception_v4();
  const auto p = core::make_problem_exact(net, profile::paper_testbed(), net::lte_4g());
  const DadsResult result = dads(p);
  for (const auto& [u, v] : p.dag.edges()) {
    if (u == 0) continue;
    EXPECT_FALSE(result.assignment.tier[u] == Tier::kCloud &&
                 result.assignment.tier[v] == Tier::kEdge);
  }
}

TEST(Dads, HpaMatchesOrBeatsDadsWhenDeviceUseless) {
  // With a device that cannot compute, HPA's three-way freedom degenerates to
  // DADS's two tiers; HPA should not be substantially worse.
  const dnn::Network net = dnn::zoo::resnet18();
  auto p = core::make_problem_exact(net, profile::paper_testbed(), net::wifi());
  for (graph::VertexId v = 1; v < p.size(); ++v)
    p.vertex_time[v].at(Tier::kDevice) = 1e6;  // device unusable
  const double hpa_theta = core::hpa(p).total_latency_seconds;
  const double dads_theta = dads(p).total_latency_seconds;
  EXPECT_LT(hpa_theta, dads_theta * 1.5);
}

}  // namespace
}  // namespace d3::baselines
