#include "sim/pipeline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/units.h"

namespace d3::sim {

double PipelinePlan::frame_latency_seconds() const {
  const double edge_path = edge_used ? de_seconds() + edge_seconds + ec_seconds() : 0.0;
  const double direct_path = dc_seconds();
  return device_seconds + std::max(edge_path, direct_path) + cloud_seconds;
}

double PipelinePlan::bottleneck_stage_seconds() const {
  double worst = device_seconds;
  worst = std::max(worst, de_seconds());
  worst = std::max(worst, edge_seconds);
  worst = std::max(worst, ec_seconds());
  worst = std::max(worst, dc_seconds());
  worst = std::max(worst, cloud_seconds);
  return worst;
}

PipelinePlan build_pipeline(const core::PartitionProblem& exact,
                            const core::Assignment& assignment) {
  if (assignment.tier.size() != exact.size())
    throw std::invalid_argument("build_pipeline: assignment size mismatch");
  PipelinePlan plan;
  plan.condition = exact.condition;

  const core::TierLoad load = core::tier_load(exact, assignment);
  plan.device_seconds = load.at(core::Tier::kDevice);
  plan.edge_seconds = load.at(core::Tier::kEdge);
  plan.cloud_seconds = load.at(core::Tier::kCloud);

  const core::BoundaryTraffic traffic = core::boundary_traffic(exact, assignment);
  plan.de_bytes = traffic.device_edge_bytes;
  plan.ec_bytes = traffic.edge_cloud_bytes;
  plan.dc_bytes = traffic.device_cloud_bytes;

  for (graph::VertexId v = 1; v < exact.size(); ++v) {
    plan.edge_used |= assignment.tier[v] == core::Tier::kEdge;
    plan.cloud_used |= assignment.tier[v] == core::Tier::kCloud;
  }
  return plan;
}

PipelinePlan build_pipeline_vsm(const core::PartitionProblem& exact,
                                const core::Assignment& assignment, const dnn::Network& net,
                                const core::FusedTilePlan& vsm,
                                const profile::NodeSpec& edge_node) {
  PipelinePlan plan = build_pipeline(exact, assignment);
  const double serial = core::serial_stack_latency(net, vsm, edge_node);
  const double parallel = core::parallel_stack_latency(net, vsm, edge_node);
  if (serial > plan.edge_seconds + 1e-12)
    throw std::invalid_argument("build_pipeline_vsm: stack exceeds the edge stage");
  plan.edge_seconds = plan.edge_seconds - serial + parallel;
  return plan;
}

StreamResult simulate_stream(const PipelinePlan& plan, const StreamOptions& options) {
  if (options.fps <= 0 || options.duration_seconds <= 0)
    throw std::invalid_argument("simulate_stream: bad stream options");

  StreamResult result;
  const double interval = 1.0 / options.fps;
  const auto offered =
      static_cast<std::size_t>(std::floor(options.duration_seconds / interval));
  result.frames_offered = offered;

  // FIFO servers: deterministic service times make a recurrence equivalent to a
  // discrete-event simulation of the six-stage pipeline. State per server: the
  // time it becomes free.
  struct Frees {
    double dev = 0, de = 0, dc = 0, edge = 0, ec = 0, cloud = 0;
  } frees;
  std::vector<double> latencies;
  latencies.reserve(offered);

  // Pushes one frame through the pipeline. In `admit_only_if_unblocked` mode
  // (the drop-oldest camera model with backpressure) the frame is rejected
  // unless every stage is free when the frame reaches it, so admitted frames
  // traverse at the closed-form latency; otherwise stages queue FIFO.
  const auto push_frame = [&](double arrival, bool admit_only_if_unblocked,
                              double& completion) -> bool {
    Frees next = frees;
    bool waited = false;
    const auto stage = [&](double& server_free, double ready, double service) {
      waited |= server_free > ready;
      const double done = std::max(ready, server_free) + service;
      server_free = done;
      return done;
    };

    const double dev_done = stage(next.dev, arrival, plan.device_seconds);
    completion = dev_done;
    double cloud_input = dev_done;
    if (plan.edge_used) {
      const double de_done = stage(next.de, dev_done, plan.de_seconds());
      const double edge_done = stage(next.edge, de_done, plan.edge_seconds);
      completion = edge_done;
      if (plan.cloud_used && plan.ec_bytes > 0)
        cloud_input = stage(next.ec, edge_done, plan.ec_seconds());
    }
    if (plan.cloud_used && plan.dc_bytes > 0)
      cloud_input = std::max(cloud_input, stage(next.dc, dev_done, plan.dc_seconds()));
    if (plan.cloud_used) completion = stage(next.cloud, cloud_input, plan.cloud_seconds);

    if (admit_only_if_unblocked && waited) return false;  // shed the frame
    frees = next;
    return true;
  };

  for (std::size_t i = 0; i < offered; ++i) {
    const double arrival = static_cast<double>(i) * interval;
    double completion = 0;
    if (push_frame(arrival, options.drop_when_busy, completion))
      latencies.push_back(completion - arrival);
    else
      ++result.frames_dropped;
  }

  result.frames_completed = latencies.size();
  if (!latencies.empty()) {
    double total = 0;
    for (const double l : latencies) total += l;
    result.avg_latency_seconds = total / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    result.p50_latency_seconds = latencies[latencies.size() / 2];
    result.p99_latency_seconds = latencies[latencies.size() * 99 / 100];
    result.max_latency_seconds = latencies.back();
    result.throughput_fps =
        static_cast<double>(latencies.size()) / options.duration_seconds;
  }
  result.backbone_megabits_per_frame =
      util::bytes_to_megabits(static_cast<double>(plan.backbone_bytes()));
  return result;
}

double batch_makespan_seconds(const PipelinePlan& plan, std::size_t frames) {
  if (frames == 0) return 0.0;
  return plan.frame_latency_seconds() +
         static_cast<double>(frames - 1) * plan.bottleneck_stage_seconds();
}

double pipelining_speedup(const PipelinePlan& plan, std::size_t frames) {
  if (frames == 0) return 1.0;
  const double serial = static_cast<double>(frames) * plan.frame_latency_seconds();
  const double pipelined = batch_makespan_seconds(plan, frames);
  return pipelined <= 0.0 ? 1.0 : serial / pipelined;
}

double predicted_completion_seconds(const PipelinePlan& plan, std::size_t queued) {
  return batch_makespan_seconds(plan, queued + 1);
}

double predicted_completion_seconds(const PipelinePlan& plan, std::size_t queued,
                                    std::size_t inflight) {
  // An in-flight frame occupies pipeline stages for up to its full remaining
  // frame latency — not just one bottleneck period, which is all the 2-arg
  // form charged it as a mere queue entry. Single-stage pipelines (frame
  // latency == bottleneck) degenerate to the 2-arg form with
  // queued + inflight, since holding the only stage IS the queue wait.
  return static_cast<double>(inflight) * plan.frame_latency_seconds() +
         batch_makespan_seconds(plan, queued + 1);
}

}  // namespace d3::sim
