// Shared experiment harness used by every bench binary: runs one inference
// method (D3 or a baseline) on one network under one network condition, and
// reports the per-image latency / traffic metrics the paper's figures plot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/d3.h"
#include "core/partition.h"
#include "net/conditions.h"
#include "profile/node_spec.h"
#include "sim/pipeline.h"

namespace d3::sim {

enum class Method {
  kDeviceOnly,
  kEdgeOnly,
  kCloudOnly,
  kNeurosurgeon,
  kDads,
  kHpa,
  kHpaVsm,
};

const char* method_name(Method method);

struct ExperimentConfig {
  profile::TierNodes nodes = profile::paper_testbed();
  net::NetworkCondition condition = net::wifi();
  // Edge nodes available to VSM (Fig. 12 uses four i7 machines).
  int vsm_edge_nodes = 4;
  core::HpaOptions hpa;
  StreamOptions stream;
  profile::Profiler::Options profiler;
};

struct MethodResult {
  Method method = Method::kHpa;
  // Neurosurgeon is chain-only; inapplicable methods report applicable = false.
  bool applicable = true;
  core::Assignment assignment;
  PipelinePlan pipeline;
  StreamResult stream;
  // Closed-form single-frame latency (the speedup metric of Figs. 9-12).
  double frame_latency_seconds = 0;
  core::BoundaryTraffic traffic;
  std::optional<double> vsm_redundancy;  // HPA+VSM only
};

// Decides the partition with regression-estimated weights (as D3 does), then
// evaluates it on ground-truth hardware latencies and the stream simulator.
MethodResult run_method(const dnn::Network& net, Method method,
                        const ExperimentConfig& config);

// latency(baseline) / latency(method) on the single-frame metric.
double speedup_over(const MethodResult& baseline, const MethodResult& method);

}  // namespace d3::sim
