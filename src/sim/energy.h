// Energy accounting (extension). Neurosurgeon — the system HPA generalises —
// optimises mobile *energy* as well as latency; the paper's introduction cites
// the device's restricted energy as a core motivation. This module provides the
// per-frame energy breakdown of a deployed pipeline so the benches can report
// the battery cost of each partitioning strategy on the device tier.
#pragma once

#include "sim/pipeline.h"

namespace d3::sim {

// Electrical characteristics of a computation node / its radio.
struct PowerSpec {
  double active_watts = 0;   // busy compute power draw
  double idle_watts = 0;     // draw while waiting in the pipeline
  double tx_nj_per_byte = 0; // radio transmit energy (uplink)
};

// Device-tier presets (the battery-powered tier whose energy matters).
PowerSpec raspberry_pi_4b_power();   // ~6 W busy, ~2.7 W idle, Wi-Fi radio
PowerSpec jetson_nano_2gb_power();   // ~10 W busy, ~1.5 W idle

struct FrameEnergy {
  double compute_joules = 0;  // device compute
  double radio_joules = 0;    // device uplink transmissions
  double idle_joules = 0;     // device idle while edge/cloud work
  double total_joules() const { return compute_joules + radio_joules + idle_joules; }
};

// Device energy spent per frame under `plan`: active draw during the device
// stage, radio energy for the bytes the device transmits (d->e and d->c), and
// idle draw for the remainder of the frame latency.
FrameEnergy device_energy_per_frame(const sim::PipelinePlan& plan, const PowerSpec& power);

}  // namespace d3::sim
