#include "sim/energy.h"

namespace d3::sim {

PowerSpec raspberry_pi_4b_power() {
  return PowerSpec{.active_watts = 6.0, .idle_watts = 2.7, .tx_nj_per_byte = 60.0};
}

PowerSpec jetson_nano_2gb_power() {
  return PowerSpec{.active_watts = 10.0, .idle_watts = 1.5, .tx_nj_per_byte = 60.0};
}

FrameEnergy device_energy_per_frame(const sim::PipelinePlan& plan, const PowerSpec& power) {
  FrameEnergy e;
  e.compute_joules = plan.device_seconds * power.active_watts;
  const double tx_bytes = static_cast<double>(plan.de_bytes + plan.dc_bytes);
  e.radio_joules = tx_bytes * power.tx_nj_per_byte * 1e-9;
  const double frame = plan.frame_latency_seconds();
  const double tx_seconds = plan.de_seconds() + plan.dc_seconds();
  const double busy = plan.device_seconds + tx_seconds;
  e.idle_joules = (frame > busy ? frame - busy : 0.0) * power.idle_watts;
  return e;
}

}  // namespace d3::sim
