#include "sim/experiment.h"

#include <stdexcept>

#include "baselines/dads.h"
#include "baselines/neurosurgeon.h"
#include "core/hpa.h"
#include "core/vsm.h"
#include "profile/profiler.h"

namespace d3::sim {

const char* method_name(Method method) {
  switch (method) {
    case Method::kDeviceOnly: return "Device-only";
    case Method::kEdgeOnly: return "Edge-only";
    case Method::kCloudOnly: return "Cloud-only";
    case Method::kNeurosurgeon: return "Neurosurgeon";
    case Method::kDads: return "DADS";
    case Method::kHpa: return "HPA";
    case Method::kHpaVsm: return "HPA+VSM";
  }
  return "?";
}

MethodResult run_method(const dnn::Network& net, Method method,
                        const ExperimentConfig& config) {
  MethodResult result;
  result.method = method;

  // Decision inputs: regression-estimated per-layer times (what a deployed
  // system knows). Evaluation inputs: ground-truth hardware latencies.
  const auto estimators = profile::Profiler::profile_tiers(config.nodes, config.profiler);
  const core::PartitionProblem estimated =
      core::make_problem(net, estimators, config.condition);
  const core::PartitionProblem exact =
      core::make_problem_exact(net, config.nodes, config.condition);

  std::optional<core::FusedTilePlan> vsm;
  switch (method) {
    case Method::kDeviceOnly:
      result.assignment = core::uniform_assignment(estimated, core::Tier::kDevice);
      break;
    case Method::kEdgeOnly:
      result.assignment = core::uniform_assignment(estimated, core::Tier::kEdge);
      break;
    case Method::kCloudOnly:
      result.assignment = core::uniform_assignment(estimated, core::Tier::kCloud);
      break;
    case Method::kNeurosurgeon: {
      const auto split = baselines::neurosurgeon(estimated);
      if (!split) {
        result.applicable = false;
        return result;
      }
      result.assignment = split->assignment;
      break;
    }
    case Method::kDads:
      result.assignment = baselines::dads(estimated).assignment;
      break;
    case Method::kHpa:
      result.assignment = core::hpa(estimated, config.hpa).assignment;
      break;
    case Method::kHpaVsm: {
      result.assignment = core::hpa(estimated, config.hpa).assignment;
      std::vector<dnn::LayerId> edge_layers;
      for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
        if (result.assignment.tier[dnn::Network::vertex_of(id)] == core::Tier::kEdge)
          edge_layers.push_back(id);
      const auto stack = core::longest_tileable_run(net, edge_layers);
      if (!stack.empty()) {
        const dnn::Shape out = net.layer(stack.back()).output_shape;
        const auto [rows, cols] = core::choose_tile_grid(config.vsm_edge_nodes, out.h, out.w);
        if (rows * cols > 1) vsm = core::make_fused_tile_plan(net, stack, rows, cols);
      }
      break;
    }
  }

  result.pipeline = vsm ? build_pipeline_vsm(exact, result.assignment, net, *vsm,
                                             config.nodes.edge)
                        : build_pipeline(exact, result.assignment);
  if (vsm) result.vsm_redundancy = core::redundancy_factor(net, *vsm);
  result.stream = simulate_stream(result.pipeline, config.stream);
  result.frame_latency_seconds = result.pipeline.frame_latency_seconds();
  result.traffic = core::boundary_traffic(exact, result.assignment);
  return result;
}

double speedup_over(const MethodResult& baseline, const MethodResult& method) {
  if (!baseline.applicable || !method.applicable)
    throw std::invalid_argument("speedup_over: method not applicable");
  if (method.frame_latency_seconds <= 0)
    throw std::invalid_argument("speedup_over: degenerate latency");
  return baseline.frame_latency_seconds / method.frame_latency_seconds;
}

}  // namespace d3::sim
