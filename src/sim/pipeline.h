// Online execution engine model: turns a partition into a per-frame pipeline
// (tier compute stages + inter-tier transfer links) and simulates a frame
// stream through it.
//
// The paper's measurement (§IV): frames fed at 30 FPS for 100 s, per-image
// average end-to-end latency. Stages are FIFO servers with deterministic service
// times; the frame source uses a depth-1 drop-oldest queue (a slow pipeline
// drops frames rather than queueing unboundedly, as a real camera pipeline
// does — see DESIGN.md). A queueing mode without drops is available for
// throughput studies.
#pragma once

#include <cstdint>

#include "core/partition.h"
#include "core/vsm.h"
#include "net/conditions.h"
#include "profile/node_spec.h"

namespace d3::sim {

struct PipelinePlan {
  // Per-frame compute seconds on each tier (ground-truth hardware latencies).
  double device_seconds = 0;
  double edge_seconds = 0;
  double cloud_seconds = 0;
  // Per-frame boundary traffic.
  std::int64_t de_bytes = 0;
  std::int64_t ec_bytes = 0;
  std::int64_t dc_bytes = 0;
  // Which tiers participate (controls pipeline wiring).
  bool edge_used = false;
  bool cloud_used = false;
  net::NetworkCondition condition;

  double de_seconds() const {
    return de_bytes == 0 ? 0.0 : condition.transfer_seconds(de_bytes, condition.device_edge_mbps);
  }
  double ec_seconds() const {
    return ec_bytes == 0 ? 0.0 : condition.transfer_seconds(ec_bytes, condition.edge_cloud_mbps);
  }
  double dc_seconds() const {
    return dc_bytes == 0 ? 0.0 : condition.transfer_seconds(dc_bytes, condition.device_cloud_mbps);
  }

  // Closed-form latency of one isolated frame: device stage, then the edge path
  // (d->e transfer, edge compute, e->c transfer) in parallel with the direct
  // d->c transfer, then the cloud stage.
  double frame_latency_seconds() const;

  // The slowest stage: the pipeline's throughput limit (frames complete at most
  // every bottleneck_stage_seconds once saturated).
  double bottleneck_stage_seconds() const;

  // Per-frame bytes crossing the Internet backbone into the cloud (Fig. 13).
  std::int64_t backbone_bytes() const { return ec_bytes + dc_bytes; }
};

// Builds the pipeline for `assignment` using ground-truth stage times from
// `exact` (a problem built with make_problem_exact).
PipelinePlan build_pipeline(const core::PartitionProblem& exact,
                            const core::Assignment& assignment);

// VSM variant: the tiled stack's serial time on the edge is replaced by the
// parallel (max-tile) time across the edge node pool (intra-tier scatter/gather
// is infinitesimal, §III-A).
PipelinePlan build_pipeline_vsm(const core::PartitionProblem& exact,
                                const core::Assignment& assignment, const dnn::Network& net,
                                const core::FusedTilePlan& vsm,
                                const profile::NodeSpec& edge_node);

struct StreamOptions {
  double fps = 30.0;
  double duration_seconds = 100.0;
  // true: drop the frame when the device stage is still busy (depth-1 queue).
  // false: queue every frame (unbounded FIFO).
  bool drop_when_busy = true;
};

struct StreamResult {
  std::size_t frames_offered = 0;
  std::size_t frames_completed = 0;
  std::size_t frames_dropped = 0;
  double avg_latency_seconds = 0;
  double p50_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double max_latency_seconds = 0;
  double throughput_fps = 0;
  double backbone_megabits_per_frame = 0;
};

StreamResult simulate_stream(const PipelinePlan& plan, const StreamOptions& options = {});

// Closed-form makespan of `frames` requests admitted back-to-back into the
// pipeline (the runtime::BatchScheduler admission pattern): the first frame's
// full latency plus one bottleneck period for each following frame once the
// pipeline is saturated. This is what the concurrency bench compares the
// measured threaded-engine wall clock against.
double batch_makespan_seconds(const PipelinePlan& plan, std::size_t frames);

// Predicted speedup of admitting `frames` as a pipelined batch over running
// them strictly one after another (>= 1 when more than one tier does work).
double pipelining_speedup(const PipelinePlan& plan, std::size_t frames);

// Predicted completion time of a request admitted behind `queued` others: the
// makespan of a (queued + 1)-frame back-to-back batch — the newcomer finishes
// last. runtime::ServingReactor's latency-aware shedding compares this
// against the request's deadline at admission, so a request doomed by queue
// depth is refused up front instead of timing out after consuming capacity.
double predicted_completion_seconds(const PipelinePlan& plan, std::size_t queued);

// Occupancy-aware variant: `queued` requests wait ahead of the newcomer and
// `inflight` more are already moving through the pipeline's stages. Each
// in-flight frame holds a stage for up to one full frame latency before the
// pipe drains, so the newcomer pays that residual occupancy on top of its own
// batch makespan. With inflight = 0 this is exactly the two-argument form —
// the 2-arg overload under-predicted under load by pricing an in-flight frame
// the same as an unadmitted one.
double predicted_completion_seconds(const PipelinePlan& plan, std::size_t queued,
                                    std::size_t inflight);

}  // namespace d3::sim
