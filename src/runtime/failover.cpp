#include "runtime/failover.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/plan_io.h"
#include "rpc/wire.h"

namespace d3::runtime {
namespace {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return {};
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string& text = buffer.str();
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

}  // namespace

// --- CoordinatorBeacon -------------------------------------------------------

CoordinatorBeacon::CoordinatorBeacon(std::uint64_t epoch, std::string journal_path,
                                     const std::string& host, std::uint16_t port)
    : epoch_(epoch), journal_path_(std::move(journal_path)), port_(port) {
  listener_ = rpc::tcp_listen_on(host, port_);
  thread_ = std::thread([this] { serve(); });
}

CoordinatorBeacon::~CoordinatorBeacon() { stop(); }

void CoordinatorBeacon::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  stop_fd_.signal();
  thread_.join();
}

void CoordinatorBeacon::serve() {
  rpc::Poller poller;
  poller.add(stop_fd_.fd(), static_cast<std::uint64_t>(stop_fd_.fd()));
  poller.add(listener_.fd(), static_cast<std::uint64_t>(listener_.fd()));
  std::map<int, rpc::Socket> standbys;
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::vector<std::uint64_t> ready = poller.wait(-1);
    for (const std::uint64_t tag : ready) {
      const int fd = static_cast<int>(tag);
      if (fd == stop_fd_.fd()) return;
      if (fd == listener_.fd()) {
        try {
          rpc::Socket standby = rpc::tcp_accept(listener_, 1000);
          const int sfd = standby.fd();
          poller.add(sfd, static_cast<std::uint64_t>(sfd));
          standbys.emplace(sfd, std::move(standby));
        } catch (const rpc::SocketError&) {
          // A standby that vanished between readiness and accept; keep going.
        }
        continue;
      }
      const auto it = standbys.find(fd);
      if (it == standbys.end()) continue;
      bool drop = false;
      try {
        rpc::Frame request;
        if (!rpc::read_frame_or_eof(fd, request)) {
          drop = true;  // standby hung up between probes
        } else if (request.kind == rpc::MsgKind::kPing) {
          rpc::WireWriter w;
          w.u64(epoch_);
          rpc::write_frame(fd, rpc::MsgKind::kPong, w.take(), request.corr);
        } else if (request.kind == rpc::MsgKind::kJournalSync) {
          rpc::WireWriter w;
          w.u64(epoch_);
          w.blob(read_file_bytes(journal_path_));
          rpc::write_frame(fd, rpc::MsgKind::kOk, w.take(), request.corr);
        } else {
          rpc::WireWriter w;
          w.str("beacon: unexpected message kind");
          rpc::write_frame(fd, rpc::MsgKind::kError, w.take(), request.corr);
        }
      } catch (const rpc::SocketError&) {
        drop = true;
      }
      if (drop) {
        poller.remove(fd);
        standbys.erase(it);
      }
    }
  }
}

// --- StandbyCoordinator ------------------------------------------------------

StandbyCoordinator::StandbyCoordinator(const dnn::Network& net, const exec::WeightStore& weights,
                                       core::Assignment assignment,
                                       std::optional<core::FusedTilePlan> vsm, Options options)
    : net_(net),
      weights_(weights),
      assignment_(std::move(assignment)),
      vsm_(std::move(vsm)),
      options_(std::move(options)) {
  if (!options_.book.coordinator().has_value())
    throw std::invalid_argument("standby: address book has no [coordinator] beacon entry");
  observed_epoch_.store(options_.epoch_hint, std::memory_order_relaxed);
}

StandbyCoordinator::~StandbyCoordinator() { stop(); }

void StandbyCoordinator::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { monitor(); });
}

void StandbyCoordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool StandbyCoordinator::wait_promoted(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, timeout, [this] {
    return promoted_.load(std::memory_order_acquire) || promotion_error_ != nullptr;
  });
  if (promotion_error_) std::rethrow_exception(promotion_error_);
  return promoted_.load(std::memory_order_acquire);
}

void StandbyCoordinator::monitor() {
  const Endpoint beacon_at = *options_.book.coordinator();
  rpc::Socket beacon;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, options_.probe_interval, [this] { return stop_requested_; }))
        return;
    }
    try {
      if (!beacon.valid()) beacon = rpc::tcp_connect(beacon_at.host, beacon_at.port);
      probe_once(beacon);
      misses_.store(0, std::memory_order_relaxed);
    } catch (const rpc::SocketError&) {
      // Refused dial, EOF or timeout — the beacon (and with it the active
      // coordinator process) is gone or wedged. One strike.
      beacon.close();
      if (misses_.fetch_add(1, std::memory_order_relaxed) + 1 < options_.miss_threshold)
        continue;
      try {
        promote();
      } catch (const rpc::Fenced& fenced) {
        // Lost the promotion race: a rival standby already fenced the workers
        // at a higher epoch, so the very first redial answered kFenced and
        // promote() aborted before touching any state. The rival IS a live
        // coordinator — this is not a failure, it is a new active to watch.
        // Fold the observed epoch in (the next takeover bids above it) and
        // return to monitoring instead of dying with a promotion error.
        std::uint64_t seen = observed_epoch_.load(std::memory_order_relaxed);
        while (fenced.epoch() > seen &&
               !observed_epoch_.compare_exchange_weak(seen, fenced.epoch(),
                                                      std::memory_order_relaxed)) {
        }
        misses_.store(0, std::memory_order_relaxed);
        continue;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        promotion_error_ = std::current_exception();
      }
      cv_.notify_all();
      return;
    }
  }
}

void StandbyCoordinator::probe_once(rpc::Socket& beacon) {
  const auto await_reply = [&](rpc::MsgKind expected, const char* what) {
    const int fds[] = {beacon.fd()};
    const int timeout_ms = static_cast<int>(options_.probe_timeout.count());
    if (rpc::poll_readable(fds, timeout_ms) < 0)
      throw rpc::SocketError(std::string("beacon ") + what + " timed out");
    const rpc::Frame reply = rpc::read_frame(beacon.fd());
    if (reply.kind != expected)
      throw rpc::SocketError(std::string("beacon ") + what + ": unexpected reply kind");
    return reply;
  };

  rpc::write_frame(beacon.fd(), rpc::MsgKind::kPing, {});
  const rpc::Frame pong = await_reply(rpc::MsgKind::kPong, "ping");
  rpc::WireReader r(pong.body);
  const std::uint64_t epoch = r.u64();
  std::uint64_t seen = observed_epoch_.load(std::memory_order_relaxed);
  while (epoch > seen &&
         !observed_epoch_.compare_exchange_weak(seen, epoch, std::memory_order_relaxed)) {
  }

  if (!options_.mirror_journal) return;
  rpc::write_frame(beacon.fd(), rpc::MsgKind::kJournalSync, {});
  const rpc::Frame sync = await_reply(rpc::MsgKind::kOk, "journal sync");
  rpc::WireReader sr(sync.body);
  sr.u64();  // epoch rides along; kPong above already folded it in
  mirror_journal_bytes(sr.blob());
}

void StandbyCoordinator::mirror_journal_bytes(const std::vector<std::uint8_t>& bytes) {
  mirror_file_atomically(options_.journal_path, bytes);
}

// Temp-write + fsync + atomic rename: a standby killed at ANY instant of a
// refresh leaves either the previous complete mirror or the new complete
// mirror at `path`, never a torn middle — the journal loader tolerates torn
// *tails*, not torn middles. The fsync before the rename matters: without it
// a crash shortly after the rename can surface a renamed-but-empty file.
void mirror_file_atomically(const std::string& path,
                            const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".mirror";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw rpc::SocketError("cannot write journal mirror \"" + tmp + "\"");
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw rpc::SocketError("short write on journal mirror \"" + tmp + "\"");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw rpc::SocketError("cannot fsync journal mirror \"" + tmp + "\"");
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw rpc::SocketError("cannot rename journal mirror into place");
  }
}

void StandbyCoordinator::promote() {
  std::lock_guard<std::mutex> lock(promote_mutex_);
  if (promoted_.load(std::memory_order_acquire)) return;

  // Strictly above every incarnation this standby has ever observed (and the
  // configured lower bound): the first kConfig at this epoch fences the old
  // coordinator out of every worker it reaches.
  const std::uint64_t new_epoch =
      std::max(observed_epoch_.load(std::memory_order_relaxed), options_.epoch_hint) + 1;

  auto transport = std::make_shared<rpc::SocketTransport>();
  transport->set_epoch(new_epoch);
  transport->set_elide_weights(options_.elide_weights);
  std::size_t tile_workers = 0;
  for (const Endpoint& worker : options_.book.workers()) {
    rpc::Socket channel = rpc::tcp_connect(worker.host, worker.port);
    if (worker.name == "device0" || worker.name == "edge0" || worker.name == "cloud0") {
      transport->add_node(worker.name, std::move(channel));
    } else {
      // Extra entries are the VSM edge pool, attached in book order so tile
      // sharding lands exactly where the dead coordinator put it.
      transport->add_tile_worker(std::move(channel));
      ++tile_workers;
    }
  }
  const core::SerializablePlan plan{net_.name(), assignment_, vsm_};
  transport->configure(net_.name(), net_, weights_, core::serialize_plan_binary(plan),
                       tile_workers);
  if (!options_.buddy.empty()) transport->set_buddy(options_.buddy);

  const std::vector<Snapshot> live = RequestJournal::load(options_.journal_path);
  OnlineEngine::Options engine_options;
  engine_options.transport = transport;
  engine_options.vsm_workers = options_.vsm_workers;
  engine_options.journal = std::make_shared<RequestJournal>(options_.journal_path);
  auto engine = std::make_unique<OnlineEngine>(net_, weights_, assignment_, vsm_, engine_options);

  // Resume every request the dead coordinator left mid-flight. Deterministic
  // recompute + idempotent re-delivery make this safe from *any* durable
  // snapshot, even one older than what the workers last saw.
  std::vector<ResumedRequest> resumed;
  for (const Snapshot& snapshot : live) {
    OnlineEngine::Continuation c = engine->restore(snapshot);
    while (!engine->step(c)) {
    }
    resumed.push_back(ResumedRequest{snapshot.rpc_request, engine->take(std::move(c))});
  }

  transport_ = std::move(transport);
  engine_ = std::move(engine);
  resumed_ = std::move(resumed);
  epoch_.store(new_epoch, std::memory_order_release);
  {
    std::lock_guard<std::mutex> signal(mutex_);
    promoted_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

}  // namespace d3::runtime
