// Fixed-size worker pool used by the runtime engine: VSM fused-tile partitions
// run as real concurrent jobs (one per edge worker node), and the batch
// scheduler's tier stages borrow it for intra-stage parallelism.
//
// Design: a single FIFO job queue guarded by one mutex. Jobs are opaque
// std::function<void()>; parallel_for() is the structured entry point the
// engine uses — it blocks the caller until every index has been processed, so
// all happens-before edges the gathered result needs are established by the
// join, and callers never observe partially-computed tiles. parallel_for is
// safe to call from multiple threads at once (each call tracks its own
// completion count), which is what lets a pipelined scheduler share one pool
// across in-flight requests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace d3::runtime {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1). The pool is non-movable: the
  // engine and scheduler hold references to it.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a fire-and-forget job. Must not be called after destruction
  // begins; jobs still queued at destruction are executed before join. An
  // exception escaping the job is caught and dropped — use parallel_for when
  // failures must reach the caller.
  void submit(std::function<void()> job);

  // Runs body(0), body(1), ..., body(n-1) across the pool and blocks until all
  // complete. The caller thread also executes jobs while waiting, so a
  // single-thread pool (or a pool saturated by other callers) cannot deadlock
  // the caller. If any body throws, the first exception is rethrown on the
  // caller after all indices finish; the rest are dropped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Number of hardware threads, with a floor of 1 (hardware_concurrency may
  // report 0 on exotic platforms).
  static std::size_t hardware_threads();

 private:
  void worker_loop();
  // Pops and runs one job if available; returns false when the queue is empty.
  bool run_one();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace d3::runtime
