#include "runtime/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/vsm_executor.h"
#include "exec/executor.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "runtime/request_journal.h"

namespace d3::runtime {

namespace {

const char* node_of(core::Tier tier) {
  switch (tier) {
    case core::Tier::kDevice: return "device0";
    case core::Tier::kEdge: return "edge0";
    case core::Tier::kCloud: return "cloud0";
  }
  return "?";
}

// Inverse of node_of: nullopt for tile workers ("edge1".."edgeN") and anything
// else that is not a tier node.
std::optional<core::Tier> tier_of_node(const std::string& node) {
  if (node == "device0") return core::Tier::kDevice;
  if (node == "edge0") return core::Tier::kEdge;
  if (node == "cloud0") return core::Tier::kCloud;
  return std::nullopt;
}

void record(InferenceResult& result, const MessageRecord& meta) {
  result.messages.push_back(meta);
  const int lo = std::min(core::index(meta.from_tier), core::index(meta.to_tier));
  const int hi = std::max(core::index(meta.from_tier), core::index(meta.to_tier));
  if (lo == 0 && hi == 1) result.device_edge_bytes += meta.bytes;
  else if (lo == 1 && hi == 2) result.edge_cloud_bytes += meta.bytes;
  else if (lo == 0 && hi == 2) result.device_cloud_bytes += meta.bytes;
}

// The zero-copy default, shared by every engine constructed without an
// explicit transport.
std::shared_ptr<rpc::Transport> default_transport() {
  static std::shared_ptr<rpc::Transport> transport =
      std::make_shared<rpc::InProcessTransport>();
  return transport;
}

}  // namespace

OnlineEngine::RpcRequestGuard::RpcRequestGuard(std::shared_ptr<rpc::Transport> transport_in,
                                               std::uint64_t id_in)
    : transport(std::move(transport_in)), id(id_in) {}

OnlineEngine::RpcRequestGuard::~RpcRequestGuard() {
  if (transport) transport->close_request(id);
}

OnlineEngine::OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
                           core::Assignment assignment,
                           std::optional<core::FusedTilePlan> vsm)
    : OnlineEngine(net, weights, std::move(assignment), std::move(vsm), Options{}) {}

OnlineEngine::OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
                           core::Assignment assignment,
                           std::optional<core::FusedTilePlan> vsm, Options options)
    : net_(net),
      weights_(weights),
      assignment_(std::move(assignment)),
      vsm_(std::move(vsm)),
      options_(std::move(options)),
      transport_(options_.transport ? options_.transport : default_transport()) {
  if (assignment_.tier.size() != net_.num_layers() + 1)
    throw std::invalid_argument("OnlineEngine: assignment size does not match network");
  if (assignment_.tier[0] != core::Tier::kDevice)
    throw std::invalid_argument("OnlineEngine: v0 must be on the device");
  // Prop.-1 feasibility: no layer strictly device-ward of its most device-ward
  // input. This is also what makes the staged device -> edge -> cloud execution
  // order below dependency-safe.
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    core::Tier bound = core::Tier::kCloud;
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      const core::Tier t =
          in == dnn::kNetworkInput ? core::Tier::kDevice
                                   : assignment_.tier[dnn::Network::vertex_of(in)];
      if (core::before(t, bound)) bound = t;
    }
    if (core::before(assignment_.tier[dnn::Network::vertex_of(id)], bound))
      throw std::invalid_argument("OnlineEngine: plan violates dataflow precedence at '" +
                                  net_.layer(id).spec.name + "'");
  }
  if (vsm_) {
    if (vsm_->stack.empty()) throw std::invalid_argument("OnlineEngine: empty VSM stack");
    for (const dnn::LayerId id : vsm_->stack)
      if (assignment_.tier[dnn::Network::vertex_of(id)] != core::Tier::kEdge)
        throw std::invalid_argument("OnlineEngine: VSM stack layer '" +
                                    net_.layer(id).spec.name + "' is not on the edge");
    // Intermediate stack outputs exist only as tiles on the workers; no layer
    // outside the stack may consume them.
    for (std::size_t j = 0; j + 1 < vsm_->stack.size(); ++j) {
      for (dnn::LayerId other = 0; other < net_.num_layers(); ++other) {
        if (other == vsm_->stack[j + 1]) continue;
        const auto& ins = net_.layer(other).inputs;
        if (std::find(ins.begin(), ins.end(), vsm_->stack[j]) != ins.end())
          throw std::invalid_argument(
              "OnlineEngine: layer outside the VSM stack consumes an intermediate tile ('" +
              net_.layer(vsm_->stack[j]).spec.name + "')");
      }
    }
  }
  // The plan fingerprint snapshots carry (model name is not part of engine
  // identity — the weights are — so it is hashed as empty; both coordinator
  // incarnations construct from the same assignment + VSM plan).
  plan_hash_ = plan_hash(core::SerializablePlan{"", assignment_, vsm_});
  const std::size_t pool_threads =
      std::max(options_.vsm_workers, options_.intra_op_workers);
  if (pool_threads > 0) pool_ = std::make_unique<ThreadPool>(pool_threads);
  if (options_.intra_op_workers > 0)
    // Capture the pool object, not `this`: the pool's address is stable even
    // if the engine is ever moved, so the hook cannot dangle.
    op_parallel_ = [pool = pool_.get()](std::size_t n,
                                        const std::function<void(std::size_t)>& body) {
      pool->parallel_for(n, body);
    };
}

namespace {

// Shared by begin() (which owns a copy of the input) and infer() (which
// borrows the caller's tensor for its synchronous run). With `admission`,
// the per-node kBegin broadcast is issued as pipelined sends instead of
// awaited (start_async parks on the handles); without, it blocks.
std::unique_ptr<OnlineEngine::RequestState> make_state(
    const dnn::Network& net, const std::shared_ptr<rpc::Transport>& transport,
    bool retry_open, std::vector<rpc::Transport::OpHandle>* admission = nullptr) {
  auto state = std::make_unique<OnlineEngine::RequestState>();
  state->outputs.resize(net.num_layers());
  state->computed.assign(net.num_layers(), false);
  state->sent.assign(net.num_layers() + 1, {false, false, false});
  state->shipped.assign(net.num_layers() + 1, {false, false, false});
  const auto open = [&] {
    return admission ? transport->issue_open_request(*admission)
                     : transport->open_request();
  };
  try {
    state->rpc_request = open();
  } catch (const rpc::ChannelDied& died) {
    // A worker killed between requests surfaces here, on the first kBegin to
    // touch it. With the channel re-established and kBegin idempotent, a
    // second open is exactly a fresh start. A tile shard that cannot come
    // back is pruned instead — the survivors absorb its tiles and the retried
    // broadcast skips it (mirroring recover()'s mid-request tile branch).
    if (!retry_open) throw;
    if (!died.channel_restored() &&
        (transport->prune_tile_workers() == 0 || !transport->has_tile_workers()))
      throw;
    // Handles from the failed issue are dropped: the aborted id got its kEnd,
    // and per-channel FIFO retires the orphaned replies under later traffic.
    if (admission) admission->clear();
    state->rpc_request = open();
  }
  state->rpc_guard =
      std::make_unique<OnlineEngine::RpcRequestGuard>(transport, state->rpc_request);
  return state;
}

}  // namespace

std::unique_ptr<OnlineEngine::RequestState> OnlineEngine::begin(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: input shape mismatch");
  auto state = make_state(net_, transport_, options_.tier_recovery);
  state->owned_input = input;
  state->input = &state->owned_input;
  seed_input(*state);
  checkpoint(*state, 0);
  return state;
}

void OnlineEngine::checkpoint(RequestState& state, int next_stage) const {
  if (!options_.journal) return;
  Snapshot s;
  s.rpc_request = state.rpc_request;
  s.plan_hash = plan_hash_;
  s.next_stage = next_stage;
  s.input = rpc::encode_tensor(*state.input);
  s.messages = state.result.messages;
  s.device_edge_bytes = state.result.device_edge_bytes;
  s.edge_cloud_bytes = state.result.edge_cloud_bytes;
  s.device_cloud_bytes = state.result.device_cloud_bytes;
  for (std::size_t t = 0; t < 3; ++t)
    s.layers_executed[t] = static_cast<std::uint64_t>(state.result.layers_executed[t]);
  s.vsm_scatter_bytes = state.result.vsm_scatter_bytes;
  s.vsm_gather_bytes = state.result.vsm_gather_bytes;
  s.computed = state.computed;
  s.sent = state.sent;
  s.shipped = state.shipped;
  s.vsm_recorded = state.vsm_recorded;
  options_.journal->record(s);
}

bool OnlineEngine::try_recover(RequestState& state, const rpc::ChannelDied& died) const {
  if (!options_.tier_recovery || state.recovery_attempts >= options_.max_recovery_attempts ||
      !recover(state, died))
    return false;
  ++state.recovery_attempts;
  return true;
}

void OnlineEngine::seed_input(RequestState& state) const {
  // The raw frame originates on the device node; no inter-node message is
  // involved, so a remote device tier receives it as a seed, not a send. A
  // device node dying right here is recoverable on the spot: recover()
  // re-seeds slot 0 into the fresh incarnation.
  try {
    transport_->seed(state.rpc_request, node_of(core::Tier::kDevice), 0, *state.input);
  } catch (const rpc::ChannelDied& died) {
    if (!try_recover(state, died)) throw;
  }
}

const dnn::Tensor* OnlineEngine::resolve_input(RequestState& state, dnn::LayerId producer,
                                               core::Tier at) const {
  const std::size_t slot = producer == dnn::kNetworkInput ? 0 : producer + 1;
  if (!state.delivered.empty()) {
    auto& wired = state.delivered[slot][static_cast<std::size_t>(core::index(at))];
    if (wired) return &*wired;
  }
  return producer == dnn::kNetworkInput ? state.input : &materialize(state, producer);
}

const dnn::Tensor& OnlineEngine::materialize(RequestState& state, dnn::LayerId id) const {
  dnn::Tensor& out = state.outputs[id];
  // Empty = computed on a remote node and never needed at the coordinator
  // until now: pull it from the node hosting the layer's tier.
  if (out.size() == 0) {
    const core::Tier at = assignment_.tier[dnn::Network::vertex_of(id)];
    try {
      out = transport_->fetch(state.rpc_request, node_of(at), id + 1);
    } catch (const rpc::ChannelDied&) {
      throw;  // a dead worker slot is a recovery problem, not a cache miss
    } catch (const rpc::Fenced&) {
      throw;
    } catch (const rpc::TransportError&) {
      // In-process transports hold no per-node slots: a restored request's
      // pre-crash outputs died with the old engine and cannot be fetched.
      // Recompute deterministically from what the snapshot preserved — the
      // recursion through resolve_input() bottoms out at state.input, and no
      // message is recorded, so the transcript stays a pure function of the
      // plan.
      std::vector<const dnn::Tensor*> ins;
      ins.reserve(net_.layer(id).inputs.size());
      for (const dnn::LayerId in : net_.layer(id).inputs)
        ins.push_back(resolve_input(state, in, at));
      out = exec::run_layer(net_, weights_, id, ins, op_context());
    }
  }
  return out;
}

std::optional<dnn::Tensor> OnlineEngine::record_vsm_message(RequestState& state,
                                                            std::size_t tile, bool gather,
                                                            const dnn::Tensor* payload) const {
  const core::FusedTilePlan& plan = *vsm_;
  const std::string tile_name = "tile(" + std::to_string(tile) + ")";
  MessageRecord meta;
  meta.seq = static_cast<std::uint64_t>(state.result.messages.size());
  meta.from_tier = core::Tier::kEdge;
  meta.to_tier = core::Tier::kEdge;
  if (!gather) {
    const exec::Region& region = plan.tiles[tile].input_regions.front();
    meta.bytes = dnn::Shape{plan.input_shapes.front().c, region.height(), region.width()}.bytes();
    meta.from_node = "edge0";
    meta.to_node = "edge" + std::to_string(tile + 1);
    meta.payload = tile_name + " input";
  } else {
    const exec::Region& region = plan.tiles[tile].output_region;
    meta.bytes = dnn::Shape{plan.output_shape.c, region.height(), region.width()}.bytes();
    meta.from_node = "edge" + std::to_string(tile + 1);
    meta.to_node = "edge0";
    meta.payload = tile_name + " output";
  }
  // Recorded exactly once per (tile, direction), even when recovery re-runs
  // the stack: the transcript and the byte accounting are pure functions of
  // the plan, never of how often a tile physically moved.
  if (state.vsm_recorded.empty()) state.vsm_recorded.assign(plan.num_tiles(), {false, false});
  bool& recorded = state.vsm_recorded[tile][gather ? 1 : 0];
  if (!recorded) {
    recorded = true;
    (gather ? state.result.vsm_gather_bytes : state.result.vsm_scatter_bytes) += meta.bytes;
    record(state.result, meta);
  }
  // Local tile execution round-trips the payload through the transport (tile
  // traffic is inter-node: coordinator <-> edge worker). A remote edge runs
  // scatter/gather inside its own process; only the record remains here.
  if (payload) return transport_->send(state.rpc_request, meta, rpc::kNoSlot, *payload);
  return std::nullopt;
}

void OnlineEngine::run_vsm_stack_sharded(RequestState& state,
                                         const dnn::Tensor& stack_input) const {
  const core::FusedTilePlan& plan = *vsm_;
  // Scatter in tile order: the engine is the edge coordinator here — it crops
  // each tile's input and ships it to the transport's worker shard. The
  // recorded message still names the virtual per-tile node, so the transcript
  // is byte-identical to every other execution path.
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    const exec::Tile input = core::extract_tile_input(stack_input, plan, t);
    record_vsm_message(state, t, /*gather=*/false, nullptr);
    transport_->put_tile(state.rpc_request, state.result.messages.back(), t, input.data);
  }

  // Tile compute, one lane per physical worker process: lane w drives tiles
  // t ≡ w (mod W) in increasing order over its own connection, so distinct
  // workers genuinely overlap while per-worker order stays deterministic.
  const std::size_t shards = transport_->tile_worker_count();
  const auto drive = [&](std::size_t w) {
    for (std::size_t t = w; t < plan.num_tiles(); t += shards)
      transport_->run_tile(state.rpc_request, t);
  };
  if (pool_ && shards > 1) {
    pool_->parallel_for(shards, drive);
  } else {
    for (std::size_t t = 0; t < plan.num_tiles(); ++t)
      transport_->run_tile(state.rpc_request, t);
  }

  // Gather + assembly in tile order, as always.
  dnn::Tensor assembled(plan.output_shape);
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    record_vsm_message(state, t, /*gather=*/true, nullptr);
    const dnn::Tensor tile = transport_->fetch_tile(state.rpc_request, t);
    const exec::Region& region = plan.tiles[t].output_region;
    const dnn::Shape expect{plan.output_shape.c, region.height(), region.width()};
    if (!(tile.shape() == expect))
      throw std::logic_error("OnlineEngine: tile " + std::to_string(t) + " output shape " +
                             tile.shape().to_string() + " != plan's " + expect.to_string());
    exec::copy_region_to_map(tile.data(), region, assembled);
  }
  state.outputs[plan.stack.back()] = std::move(assembled);
  for (const dnn::LayerId id : plan.stack) {
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
  }
}

void OnlineEngine::run_vsm_stack(RequestState& state) const {
  const core::FusedTilePlan& plan = *vsm_;
  const dnn::LayerId first = plan.stack.front();
  const dnn::LayerId in_id = net_.layer(first).inputs[0];
  const dnn::Tensor& stack_input = *resolve_input(state, in_id, core::Tier::kEdge);

  if (transport_->has_tile_workers()) {
    run_vsm_stack_sharded(state, stack_input);
    return;
  }

  // Scatter: extract every tile's input crop and record the message, in tile
  // order, before any concurrent work starts. This pins the transcript.
  std::vector<exec::Tile> tile_inputs;
  tile_inputs.reserve(plan.num_tiles());
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    tile_inputs.push_back(core::extract_tile_input(stack_input, plan, t));
    if (auto wired = record_vsm_message(state, t, /*gather=*/false, &tile_inputs.back().data))
      tile_inputs.back().data = std::move(*wired);
  }

  // Parallel tile compute: each edge worker node runs its fused stack slice on
  // its own thread. run_single_tile is pure (reads net/weights/plan, writes
  // only this tile's slot), so tiles never race; the parallel_for join
  // publishes every slot before the gather below reads them.
  std::vector<exec::Tile> tile_outputs(plan.num_tiles());
  const auto compute = [&](std::size_t t) {
    if (options_.emulated_tile_service_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.emulated_tile_service_seconds));
    tile_outputs[t] = core::run_single_tile(net_, weights_, tile_inputs[t], *vsm_, t);
  };
  // Tiles go parallel only when vsm_workers asked for it, and at exactly that
  // width: the pool may be larger (intra_op_workers shares it), but the edge
  // cluster being emulated has options_.vsm_workers nodes, so only that many
  // tile service times may overlap. Tiles are pulled from an atomic counter by
  // `width` pool jobs; any schedule is race-free (disjoint slots) and the
  // gather below restores tile order.
  if (pool_ && options_.vsm_workers > 0 && plan.num_tiles() > 1) {
    const std::size_t width = std::min(options_.vsm_workers, plan.num_tiles());
    std::atomic<std::size_t> next{0};
    pool_->parallel_for(width, [&](std::size_t) {
      for (std::size_t t = next.fetch_add(1); t < plan.num_tiles(); t = next.fetch_add(1))
        compute(t);
    });
  } else {
    for (std::size_t t = 0; t < plan.num_tiles(); ++t) compute(t);
  }

  // Gather + assembly, again in tile order: the transcript and the assembled
  // feature map are byte-identical to the sequential engine's.
  dnn::Tensor assembled(plan.output_shape);
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    if (auto wired = record_vsm_message(state, t, /*gather=*/true, &tile_outputs[t].data))
      tile_outputs[t].data = std::move(*wired);
    const exec::Region& region = plan.tiles[t].output_region;
    exec::copy_region_to_map(tile_outputs[t].data.data(), region, assembled);
  }
  state.outputs[plan.stack.back()] = std::move(assembled);
  for (const dnn::LayerId id : plan.stack) {
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
  }
}

void OnlineEngine::run_tier_pass(RequestState& state, core::Tier tier) const {
  // Ensures `producer`'s tensor is present at `tier`, shipping it if not.
  // Recording and shipping are tracked separately: the transcript message is
  // recorded exactly once (`sent`), but the payload counts as moved
  // (`shipped`) only after the transport call returns — so when a channel
  // death interrupts a send, the recovery re-entry re-ships the same boundary
  // without re-recording it, and the transcript stays a pure function of the
  // plan.
  const auto deliver = [&](dnn::LayerId producer, core::Tier to) {
    const bool is_input = producer == dnn::kNetworkInput;
    const core::Tier from = is_input ? core::Tier::kDevice
                                     : assignment_.tier[dnn::Network::vertex_of(producer)];
    if (from == to) return;
    const std::size_t slot = is_input ? 0 : producer + 1;
    const std::size_t to_idx = static_cast<std::size_t>(core::index(to));

    MessageRecord meta;
    meta.seq = static_cast<std::uint64_t>(state.result.messages.size());
    meta.from_node = node_of(from);
    meta.to_node = node_of(to);
    meta.payload = is_input ? "raw input" : net_.layer(producer).spec.name;
    meta.from_tier = from;
    meta.to_tier = to;
    meta.bytes = is_input ? net_.input_shape().bytes() : net_.lambda_out_bytes(producer);
    if (!state.sent[slot][to_idx]) {
      state.sent[slot][to_idx] = true;
      record(state.result, meta);
    }
    if (state.shipped[slot][to_idx]) return;

    // A restored request re-delivering its interrupted tier: the buddy's
    // replica store is the cheapest source — the buddy pushes its stored copy
    // peer-to-peer and the standby coordinator never touches the payload.
    // (Speculative: the dead primary may not have replicated this slot, in
    // which case the fall-through paths below pay the re-ship.)
    if (state.restored && transport_->replica_push(state.rpc_request, meta, slot)) {
      state.shipped[slot][to_idx] = true;
      return;
    }
    // Cheapest path first: a peer channel moves the bytes producer -> consumer
    // directly and the coordinator never materialises the tensor at all (the
    // raw input is peer-pushable too — it was seeded into the device node).
    if (transport_->send_peer(state.rpc_request, meta, slot)) {
      state.shipped[slot][to_idx] = true;
      return;
    }
    // Relay path: serialise out of the coordinator's canonical copy, fetching
    // it first if a remote node computed it.
    const dnn::Tensor& source = is_input ? *state.input : materialize(state, producer);
    auto wired = transport_->send(state.rpc_request, meta, slot, source);
    state.shipped[slot][to_idx] = true;
    // Failover accounting: what a restored request re-ships through the
    // coordinator is the cost buddy replication exists to avoid.
    if (state.restored)
      recovery_bytes_.fetch_add(static_cast<std::uint64_t>(source.shape().bytes()),
                                std::memory_order_relaxed);
    if (wired) {
      if (state.delivered.empty()) state.delivered.resize(net_.num_layers() + 1);
      state.delivered[slot][to_idx] = std::move(*wired);
    }
  };

  // One ascending-id pass: run every pending layer assigned to this stage's
  // tier *or an earlier one* whose inputs are all available. Prop.-1 allows a
  // layer to consume a tensor from a cloud-ward tier (bounded only by its most
  // device-ward input), so such a consumer is not ready at its own tier's
  // stage; it defers and the cloud stage — where every producer has already
  // run — catches it. Layer ids are topological, so the single pass per stage
  // needs no fixpoint loop, and the execution order is a pure function of the
  // plan: transcripts are identical however stages are threaded and whichever
  // transport carries the tensors.
  const auto ready = [&](dnn::LayerId id) {
    for (const dnn::LayerId in : net_.layer(id).inputs)
      if (in != dnn::kNetworkInput && !state.computed[in]) return false;
    return true;
  };

  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (state.computed[id]) continue;  // interior of an executed VSM stack
    const core::Tier assigned = assignment_.tier[dnn::Network::vertex_of(id)];
    if (core::before(tier, assigned)) continue;  // cloud-ward of this stage
    if (!ready(id)) continue;                    // deferred to a later stage

    if (vsm_ && id == vsm_->stack.front()) {
      // The stack input must be present on the edge coordinator first.
      deliver(net_.layer(id).inputs[0], core::Tier::kEdge);
      if (transport_->run_stack(state.rpc_request, node_of(core::Tier::kEdge))) {
        // Remote edge: scatter, tile compute and gather all happened inside
        // the edge process. Record the same intra-edge transcript (a pure
        // function of the tile plan); the stack output stays on the edge node
        // until a peer push, a relay, or the final result wants it.
        for (std::size_t t = 0; t < vsm_->num_tiles(); ++t)
          record_vsm_message(state, t, /*gather=*/false, nullptr);
        for (std::size_t t = 0; t < vsm_->num_tiles(); ++t)
          record_vsm_message(state, t, /*gather=*/true, nullptr);
        for (const dnn::LayerId sid : vsm_->stack) {
          state.computed[sid] = true;
          ++state.result
                .layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
        }
      } else {
        run_vsm_stack(state);
      }
      continue;
    }

    for (const dnn::LayerId in : net_.layer(id).inputs) deliver(in, assigned);
    if (transport_->run_layer(state.rpc_request, node_of(assigned), id)) {
      // Remote node computed it from its own slots; the output is fetched
      // back lazily — only when a relay or the final result needs it.
    } else {
      std::vector<const dnn::Tensor*> ins;
      ins.reserve(net_.layer(id).inputs.size());
      for (const dnn::LayerId in : net_.layer(id).inputs)
        ins.push_back(resolve_input(state, in, assigned));
      state.outputs[id] = exec::run_layer(net_, weights_, id, ins, op_context());
    }
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(assigned))];
  }
}

void OnlineEngine::run_tier(RequestState& state, core::Tier tier) const {
  const double service =
      options_.emulated_tier_service_seconds[static_cast<std::size_t>(core::index(tier))];
  if (service > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(service));

  // The recovery loop around the tier walk: a node that lost its per-request
  // state mid-walk (rpc::ChannelDied) is rebuilt by recover() and the walk
  // re-entered — `computed`, `sent`, `shipped` and the VSM record flags make
  // the re-entry resume exactly where the fault hit, re-running only what the
  // dead node lost. Bounded by max_recovery_attempts per request.
  for (;;) {
    try {
      run_tier_pass(state, tier);
      break;
    } catch (const rpc::ChannelDied& died) {
      if (!try_recover(state, died)) throw;
    }
  }
  // A restored request's first completed tier IS the interrupted one (resume
  // starts there): past it, deliveries are ordinary again.
  state.restored = false;
  checkpoint(state, core::index(tier) + 1);
}

bool OnlineEngine::recover(RequestState& state, const rpc::ChannelDied& died) const {
  const std::string& node = died.node();
  if (node.empty()) return false;

  const std::optional<core::Tier> tier = tier_of_node(node);
  if (!tier) {
    // A VSM tile-worker shard lost its state. Tile inputs are re-scattered
    // wholesale when the stack re-runs (the stack's layers are only marked
    // computed after the gather), so there is nothing to re-seed — but the
    // worker set may need repair first.
    if (died.channel_restored()) {
      transport_->reopen(state.rpc_request, node);  // fresh incarnation: re-begin
    } else {
      // No way back for this worker: drop it from the shard map so the
      // survivors absorb its tiles (tile % remaining) on the re-run. Another
      // in-flight request may have pruned it already — what matters is that
      // someone is left to serve tiles.
      transport_->prune_tile_workers();
      if (transport_->tile_worker_count() == 0) return false;
    }
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    tiers_replayed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  if (!died.channel_restored()) return false;
  const std::size_t t = static_cast<std::size_t>(core::index(*tier));
  // reopen == false means the node lives in the coordinator's process (e.g. a
  // scripted fault on an in-process transport): the re-seeds below are no-ops
  // there, so they are not counted as recovery traffic.
  const bool remote = transport_->reopen(state.rpc_request, node);

  std::uint64_t reseeded = 0;
  std::uint64_t bytes = 0;
  const auto reseed = [&](std::uint64_t slot, const dnn::Tensor& tensor) {
    transport_->seed(state.rpc_request, node, slot, tensor);
    if (remote) {
      ++reseeded;
      bytes += static_cast<std::uint64_t>(tensor.shape().bytes());
    }
  };
  const auto tier_of_layer = [&](dnn::LayerId id) {
    return assignment_.tier[dnn::Network::vertex_of(id)];
  };

  // 1. Un-mark lost layers: layers this node computed whose outputs exist
  //    nowhere else (never materialised at the coordinator) must re-run on the
  //    re-entered walk. The VSM stack is all-or-nothing — its interior
  //    outputs only ever existed as tiles on the dead node, so unless the
  //    coordinator holds the stack output, the whole stack re-runs (its
  //    transcript is already recorded and deduped by vsm_recorded).
  std::uint64_t replayed = 0;
  const auto lost_output = [&](dnn::LayerId id) {
    state.computed[id] = false;
    --state.result.layers_executed[static_cast<std::size_t>(core::index(tier_of_layer(id)))];
    ++replayed;
  };
  const auto in_stack = [&](dnn::LayerId id) {
    return vsm_ && std::find(vsm_->stack.begin(), vsm_->stack.end(), id) != vsm_->stack.end();
  };
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (in_stack(id)) continue;  // grouped below
    if (tier_of_layer(id) == *tier && state.computed[id] && state.outputs[id].size() == 0)
      lost_output(id);
  }
  if (vsm_ && *tier == core::Tier::kEdge && state.computed[vsm_->stack.back()] &&
      state.outputs[vsm_->stack.back()].size() == 0)
    for (const dnn::LayerId id : vsm_->stack) lost_output(id);

  // 2. What the fresh incarnation needs back, now that the pending set is
  //    final. A slot must be re-seeded when a pending layer of this tier will
  //    read it on the node (`on_node`), or when a pending boundary ship of a
  //    tensor this node produced may peer-push straight out of the node's
  //    slots (`from_node`). Everything else is dead weight — skipping it is
  //    what makes recovery cheaper than a full replay.
  std::vector<bool> needed_on_node(net_.num_layers(), false);
  std::vector<bool> needed_from_node(net_.num_layers(), false);
  bool input_needed_on_node = false;
  bool input_needed_from_device = false;
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (state.computed[id]) continue;
    const core::Tier at = tier_of_layer(id);
    const std::size_t at_idx = static_cast<std::size_t>(core::index(at));
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      if (in == dnn::kNetworkInput) {
        if (at == *tier) input_needed_on_node = true;
        // A pending boundary ship of the raw input may peer-push it straight
        // out of the device node's slot 0.
        else if (!state.shipped[0][at_idx])
          input_needed_from_device = true;
        continue;
      }
      if (at == *tier) needed_on_node[in] = true;
      else if (tier_of_layer(in) == *tier && !state.shipped[in + 1][at_idx])
        needed_from_node[in] = true;
    }
  }

  // 3. Re-seed. The raw input goes back when a pending layer will read it on
  //    this node, or (device only — the request's source, where peer pushes
  //    of the input originate) when a pending boundary ship may still source
  //    it from slot 0. Boundary tensors from other tiers are re-seeded from
  //    the coordinator's canonical copy, fetched from the surviving producer
  //    if it was peer-pushed and never materialised here (cross-tier by
  //    construction, so the producer's node is alive). Held outputs of this
  //    node go back only when still needed.
  if ((*tier == core::Tier::kDevice && (input_needed_on_node || input_needed_from_device)) ||
      (state.shipped[0][t] && input_needed_on_node))
    reseed(0, *state.input);
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    const std::uint64_t slot = id + 1;
    if (state.shipped[slot][t]) {
      if (needed_on_node[id]) reseed(slot, materialize(state, id));
      continue;
    }
    if (tier_of_layer(id) == *tier && state.computed[id] && state.outputs[id].size() > 0 &&
        (needed_on_node[id] || needed_from_node[id]))
      reseed(slot, state.outputs[id]);
  }

  recoveries_.fetch_add(1, std::memory_order_relaxed);
  tensors_reseeded_.fetch_add(reseeded, std::memory_order_relaxed);
  recovery_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (replayed > 0) {
    tiers_replayed_.fetch_add(1, std::memory_order_relaxed);
    layers_replayed_.fetch_add(replayed, std::memory_order_relaxed);
  }
  return true;
}

OnlineEngine::Stats OnlineEngine::stats() const {
  return {recoveries_.load(), tiers_replayed_.load(), layers_replayed_.load(),
          tensors_reseeded_.load(), recovery_bytes_.load()};
}

InferenceResult OnlineEngine::finish(std::unique_ptr<RequestState> state) const {
  // The final layer may have run on a remote node with no boundary ever
  // pulling it back; materialise it now, while the request is still open. A
  // node death here is as recoverable as anywhere: rebuild the lost state and
  // re-run the cloud-stage walk (which covers every tier's pending layers)
  // before fetching again.
  bool rerun = false;
  for (;;) {
    try {
      if (rerun) {
        rerun = false;
        run_tier_pass(*state, core::Tier::kCloud);
      }
      materialize(*state, net_.num_layers() - 1);
      break;
    } catch (const rpc::ChannelDied& died) {
      if (!try_recover(*state, died)) throw;
      rerun = true;
    }
  }
  if (options_.journal) options_.journal->finish(state->rpc_request);
  InferenceResult result = std::move(state->result);
  result.output = std::move(state->outputs.back());
  return result;
}

OnlineEngine::Continuation OnlineEngine::start(const dnn::Tensor& input) const {
  Continuation c;
  c.state_ = begin(input);
  return c;
}

OnlineEngine::Continuation OnlineEngine::start_async(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: input shape mismatch");
  Continuation c;
  std::vector<rpc::Transport::OpHandle> admission;
  c.state_ = make_state(net_, transport_, options_.tier_recovery, &admission);
  RequestState& state = *c.state_;
  state.owned_input = input;
  state.input = &state.owned_input;
  try {
    // Queued behind the device node's kBegin (per-channel FIFO), so the seed
    // lands on an open request even though neither has settled yet.
    admission.push_back(transport_->issue_seed(
        state.rpc_request, node_of(core::Tier::kDevice), 0, *state.input));
  } catch (const rpc::ChannelDied& died) {
    // recover() re-begins the request and re-seeds slot 0 on the fresh
    // incarnation, so a successful recovery needs no re-issue here.
    if (!try_recover(state, died)) throw;
  }
  checkpoint(state, 0);
  c.ops_ = std::move(admission);
  c.phase_ = Continuation::Phase::kAdmitting;
  return c;
}

OnlineEngine::Continuation OnlineEngine::restore(const Snapshot& snapshot) const {
  if (snapshot.plan_hash != plan_hash_)
    throw std::invalid_argument(
        "OnlineEngine: snapshot was journalled under a different deployment plan");
  if (snapshot.computed.size() != net_.num_layers() ||
      snapshot.sent.size() != net_.num_layers() + 1 ||
      snapshot.shipped.size() != net_.num_layers() + 1)
    throw std::invalid_argument("OnlineEngine: snapshot does not match the network");
  auto state = std::make_unique<RequestState>();
  state->owned_input = rpc::decode_tensor(std::span<const std::uint8_t>(snapshot.input));
  if (!(state->owned_input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: snapshot input shape mismatch");
  state->input = &state->owned_input;
  state->outputs.resize(net_.num_layers());
  state->computed = snapshot.computed;
  state->sent = snapshot.sent;
  state->shipped = snapshot.shipped;
  state->vsm_recorded = snapshot.vsm_recorded;
  state->result.messages = snapshot.messages;
  state->result.device_edge_bytes = snapshot.device_edge_bytes;
  state->result.edge_cloud_bytes = snapshot.edge_cloud_bytes;
  state->result.device_cloud_bytes = snapshot.device_cloud_bytes;
  for (std::size_t t = 0; t < 3; ++t)
    state->result.layers_executed[t] = static_cast<std::size_t>(snapshot.layers_executed[t]);
  state->result.vsm_scatter_bytes = snapshot.vsm_scatter_bytes;
  state->result.vsm_gather_bytes = snapshot.vsm_gather_bytes;
  // Re-open the journalled id: kBegin is idempotent, so the slots the workers
  // kept across the primary's death are untouched, and fresh ids are advanced
  // past the resumed one.
  state->rpc_request = snapshot.rpc_request;
  transport_->open_request_as(snapshot.rpc_request);
  state->rpc_guard = std::make_unique<RpcRequestGuard>(transport_, snapshot.rpc_request);
  state->restored = true;
  Continuation c;
  c.state_ = std::move(state);
  c.next_ = snapshot.next_stage;
  return c;
}

void OnlineEngine::abandon(Continuation&& c) const {
  // Disarm the guard: no kEnd, so the workers keep the request's slots and
  // the journal keeps its snapshots — the exact state a SIGKILLed coordinator
  // leaves behind, minus the corpse.
  if (c.state_ && c.state_->rpc_guard) c.state_->rpc_guard->transport = nullptr;
  c.state_.reset();
}

bool OnlineEngine::step(Continuation& c) const {
  if (c.done()) throw std::logic_error("OnlineEngine: step() on a finished continuation");
  if (c.next_ < 3) {
    run_tier(*c.state_, c.next_tier());
  } else {
    c.result_ = finish(std::move(c.state_));
  }
  // Past the throw: a failed stage leaves the cursor (and for tier stages the
  // state) untouched, so the caller decides between retrying and replaying.
  ++c.next_;
  return c.done();
}

std::vector<dnn::LayerId> OnlineEngine::prefetch_targets(const RequestState& state,
                                                         core::Tier tier) const {
  std::vector<dnn::LayerId> targets;
  std::vector<bool> queued(net_.num_layers(), false);
  // Dry-run of run_tier_pass's eligibility walk (nothing recorded, nothing
  // run): `sim` evolves exactly like state.computed would, so the predicted
  // materialise set matches the walk's.
  std::vector<bool> sim = state.computed;
  const auto ready = [&](dnn::LayerId id) {
    for (const dnn::LayerId in : net_.layer(id).inputs)
      if (in != dnn::kNetworkInput && !sim[in]) return false;
    return true;
  };
  const auto need = [&](dnn::LayerId in, core::Tier to) {
    if (in == dnn::kNetworkInput) return;
    // Only producers already computed on a remote node and never materialised
    // at the coordinator; a producer running in this very pass has no output
    // to fetch yet (the walk's blocking fallback covers that rarity).
    if (!state.computed[in] || state.outputs[in].size() != 0) return;
    const core::Tier from = assignment_.tier[dnn::Network::vertex_of(in)];
    if (from == to) return;  // same node: nothing crosses the coordinator
    if (state.shipped[in + 1][static_cast<std::size_t>(core::index(to))]) return;
    if (!queued[in]) {
      queued[in] = true;
      targets.push_back(in);
    }
  };
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (sim[id]) continue;
    const core::Tier assigned = assignment_.tier[dnn::Network::vertex_of(id)];
    if (core::before(tier, assigned)) continue;
    if (!ready(id)) continue;
    if (vsm_ && id == vsm_->stack.front()) {
      need(net_.layer(id).inputs[0], core::Tier::kEdge);
      for (const dnn::LayerId sid : vsm_->stack) sim[sid] = true;
      continue;
    }
    for (const dnn::LayerId in : net_.layer(id).inputs) need(in, assigned);
    sim[id] = true;
  }
  return targets;
}

void OnlineEngine::run_tier_walk_async(
    RequestState& state, core::Tier tier, std::vector<rpc::Transport::OpHandle>& ops,
    std::vector<std::function<void(rpc::Transport::OpHandle&)>>& effects) const {
  // Queues `op` with its success `effect` for the kSettling phase. An op a
  // synchronous transport completed at issue time is finished on the spot —
  // effect applied, error thrown — so the walk degenerates to the blocking
  // run_tier_pass there (identical state evolution, identical throw points).
  const auto queue = [&](rpc::Transport::OpHandle op,
                         std::function<void(rpc::Transport::OpHandle&)> effect) {
    if (op.settled()) {
      op.poll();
      op.rethrow();
      if (effect) effect(op);
      return;
    }
    ops.push_back(std::move(op));
    effects.push_back(std::move(effect));
  };

  // Issue-mode twin of run_tier_pass's deliver: record order and per-channel
  // frame order are byte-for-byte the blocking walk's; only the waiting moved.
  const auto deliver = [&](dnn::LayerId producer, core::Tier to) {
    const bool is_input = producer == dnn::kNetworkInput;
    const core::Tier from = is_input ? core::Tier::kDevice
                                     : assignment_.tier[dnn::Network::vertex_of(producer)];
    if (from == to) return;
    const std::size_t slot = is_input ? 0 : producer + 1;
    const std::size_t to_idx = static_cast<std::size_t>(core::index(to));

    MessageRecord meta;
    meta.seq = static_cast<std::uint64_t>(state.result.messages.size());
    meta.from_node = node_of(from);
    meta.to_node = node_of(to);
    meta.payload = is_input ? "raw input" : net_.layer(producer).spec.name;
    meta.from_tier = from;
    meta.to_tier = to;
    meta.bytes = is_input ? net_.input_shape().bytes() : net_.lambda_out_bytes(producer);
    if (!state.sent[slot][to_idx]) {
      state.sent[slot][to_idx] = true;
      record(state.result, meta);
    }
    if (state.shipped[slot][to_idx]) return;

    // The replica and peer paths are synchronous round-trips on *other*
    // channels (the buddy's, the producer's) and stay blocking: they never
    // ride this tier's pipelined queue.
    if (state.restored && transport_->replica_push(state.rpc_request, meta, slot)) {
      state.shipped[slot][to_idx] = true;
      return;
    }
    if (transport_->send_peer(state.rpc_request, meta, slot)) {
      state.shipped[slot][to_idx] = true;
      return;
    }
    const dnn::Tensor& source = is_input ? *state.input : materialize(state, producer);
    const bool restored = state.restored;
    const std::uint64_t source_bytes = static_cast<std::uint64_t>(source.shape().bytes());
    queue(transport_->issue_send(state.rpc_request, meta, slot, source),
          [this, &state, slot, to_idx, restored,
           source_bytes](rpc::Transport::OpHandle& op) {
            // Shipped only once the put's reply landed: a death in between
            // leaves it false and the recovery re-walk re-ships (without
            // re-recording), exactly like a blocking mid-send death.
            state.shipped[slot][to_idx] = true;
            if (restored)
              recovery_bytes_.fetch_add(source_bytes, std::memory_order_relaxed);
            if (op.tensor()) {
              if (state.delivered.empty()) state.delivered.resize(net_.num_layers() + 1);
              state.delivered[slot][to_idx] = std::move(*op.tensor());
            }
          });
  };

  const auto ready = [&](dnn::LayerId id) {
    for (const dnn::LayerId in : net_.layer(id).inputs)
      if (in != dnn::kNetworkInput && !state.computed[in]) return false;
    return true;
  };

  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (state.computed[id]) continue;
    const core::Tier assigned = assignment_.tier[dnn::Network::vertex_of(id)];
    if (core::before(tier, assigned)) continue;
    if (!ready(id)) continue;

    if (vsm_ && id == vsm_->stack.front()) {
      deliver(net_.layer(id).inputs[0], core::Tier::kEdge);
      rpc::Transport::OpHandle op =
          transport_->issue_run_stack(state.rpc_request, node_of(core::Tier::kEdge));
      if (op.valid()) {
        for (std::size_t t = 0; t < vsm_->num_tiles(); ++t)
          record_vsm_message(state, t, /*gather=*/false, nullptr);
        for (std::size_t t = 0; t < vsm_->num_tiles(); ++t)
          record_vsm_message(state, t, /*gather=*/true, nullptr);
        for (const dnn::LayerId sid : vsm_->stack) {
          state.computed[sid] = true;
          ++state.result
                .layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
        }
        queue(std::move(op), nullptr);
      } else {
        run_vsm_stack(state);
      }
      continue;
    }

    for (const dnn::LayerId in : net_.layer(id).inputs) deliver(in, assigned);
    rpc::Transport::OpHandle op =
        transport_->issue_run_layer(state.rpc_request, node_of(assigned), id);
    if (op.valid()) {
      // Optimistically computed at issue: per-channel replies are FIFO, so any
      // later verb reading this layer's slot on the node executes after it; a
      // death before completion is un-marked by recover() (the coordinator's
      // copy is still empty, same signature as a blocking mid-walk death).
      queue(std::move(op), nullptr);
    } else {
      std::vector<const dnn::Tensor*> ins;
      ins.reserve(net_.layer(id).inputs.size());
      for (const dnn::LayerId in : net_.layer(id).inputs)
        ins.push_back(resolve_input(state, in, assigned));
      state.outputs[id] = exec::run_layer(net_, weights_, id, ins, op_context());
    }
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(assigned))];
  }
}

OnlineEngine::StepStatus OnlineEngine::step_async(Continuation& c) const {
  if (c.done())
    throw std::logic_error("OnlineEngine: step_async() on a finished continuation");
  if (c.next_ >= 3) {
    // Collect stage: the one remaining round-trip is the final-output fetch,
    // so issue it and park rather than stall the caller's thread on it.
    // Completion errors are deliberately left unhandled here: the output slot
    // stays empty and blocking finish() re-fetches it under its recovery
    // loop, keeping collect-time recovery in one place.
    RequestState& state = *c.state_;
    const auto last = static_cast<dnn::LayerId>(net_.num_layers() - 1);
    if (c.phase_ == Continuation::Phase::kCollecting) {
      bool all = true;
      for (auto& op : c.ops_)
        if (!op.poll()) all = false;
      if (!all) return StepStatus::kParked;
      for (auto& op : c.ops_)
        if (!op.error() && op.tensor() && state.outputs[last].size() == 0)
          state.outputs[last] = std::move(*op.tensor());
      c.ops_.clear();
    } else if (state.outputs[last].size() == 0) {
      try {
        rpc::Transport::OpHandle op = transport_->issue_fetch(
            state.rpc_request, node_of(assignment_.tier[dnn::Network::vertex_of(last)]),
            last + 1);
        if (op.valid() && !op.settled()) {
          c.ops_.push_back(std::move(op));
          c.phase_ = Continuation::Phase::kCollecting;
          return StepStatus::kParked;
        }
        if (op.valid() && !op.error() && op.tensor())
          state.outputs[last] = std::move(*op.tensor());
      } catch (const rpc::ChannelDied&) {
        // finish() owns collect-time recovery; re-entering it re-fetches.
      }
    }
    c.result_ = finish(std::move(c.state_));
    ++c.next_;
    return StepStatus::kDone;
  }
  RequestState& state = *c.state_;
  const core::Tier tier = c.next_tier();

  switch (c.phase_) {
    case Continuation::Phase::kAdmitting: {
      bool all = true;
      for (auto& op : c.ops_)
        if (!op.poll()) all = false;
      if (!all) return StepStatus::kParked;
      std::exception_ptr first_error;
      for (auto& op : c.ops_)
        if (op.error() && !first_error) first_error = op.error();
      c.ops_.clear();
      if (first_error) {
        try {
          std::rethrow_exception(first_error);
        } catch (const rpc::ChannelDied& died) {
          // recover() re-begins the request on the restored channel and
          // re-seeds the input, so admission is complete after it succeeds.
          if (!try_recover(state, died)) throw;
        }
      }
      c.phase_ = Continuation::Phase::kStart;
      return StepStatus::kReady;
    }

    case Continuation::Phase::kCollecting:
      throw std::logic_error("OnlineEngine: kCollecting before the collect stage");

    case Continuation::Phase::kStart: {
      // Emulated tier latency is paid once per stage, like run_tier's: a
      // recovery re-entry must not re-sleep.
      if (c.slept_stage_ != c.next_) {
        c.slept_stage_ = c.next_;
        const double service =
            options_
                .emulated_tier_service_seconds[static_cast<std::size_t>(core::index(tier))];
        if (service > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(service));
      }
      c.ops_.clear();
      c.fetch_ids_.clear();
      c.effects_.clear();
      try {
        for (const dnn::LayerId id : prefetch_targets(state, tier)) {
          c.ops_.push_back(transport_->issue_fetch(
              state.rpc_request,
              node_of(assignment_.tier[dnn::Network::vertex_of(id)]), id + 1));
          c.fetch_ids_.push_back(id);
        }
      } catch (const rpc::ChannelDied& died) {
        c.ops_.clear();
        c.fetch_ids_.clear();
        if (!try_recover(state, died)) throw;
        return StepStatus::kReady;  // re-enter kStart on the recovered channel
      }
      c.phase_ = Continuation::Phase::kFetching;
      return StepStatus::kReady;
    }

    case Continuation::Phase::kFetching: {
      bool all = true;
      for (auto& op : c.ops_)
        if (!op.poll()) all = false;
      if (!all) return StepStatus::kParked;
      std::exception_ptr first_error;
      for (std::size_t i = 0; i < c.ops_.size(); ++i) {
        rpc::Transport::OpHandle& op = c.ops_[i];
        if (op.error()) {
          if (!first_error) first_error = op.error();
          continue;
        }
        dnn::Tensor& out = state.outputs[c.fetch_ids_[i]];
        if (out.size() == 0 && op.tensor()) out = std::move(*op.tensor());
      }
      c.ops_.clear();
      c.fetch_ids_.clear();
      if (first_error) {
        try {
          std::rethrow_exception(first_error);
        } catch (const rpc::ChannelDied& died) {
          if (!try_recover(state, died)) throw;
          c.phase_ = Continuation::Phase::kStart;
          return StepStatus::kReady;
        }
      }
      try {
        run_tier_walk_async(state, tier, c.ops_, c.effects_);
      } catch (const rpc::ChannelDied& died) {
        // Ops already issued stay queued on their (healthy) channels; FIFO
        // drains retire them under whoever touches those channels next, and
        // the re-entered walk re-issues only what recover() un-marked.
        c.ops_.clear();
        c.effects_.clear();
        if (!try_recover(state, died)) throw;
        c.phase_ = Continuation::Phase::kStart;
        return StepStatus::kReady;
      }
      c.phase_ = Continuation::Phase::kSettling;
      return StepStatus::kReady;
    }

    case Continuation::Phase::kSettling: {
      bool all = true;
      for (auto& op : c.ops_)
        if (!op.poll()) all = false;
      if (!all) return StepStatus::kParked;
      std::exception_ptr first_error;
      for (std::size_t i = 0; i < c.ops_.size(); ++i) {
        rpc::Transport::OpHandle& op = c.ops_[i];
        if (op.error()) {
          if (!first_error) first_error = op.error();
          continue;
        }
        if (c.effects_[i]) c.effects_[i](op);
      }
      c.ops_.clear();
      c.effects_.clear();
      if (first_error) {
        try {
          std::rethrow_exception(first_error);
        } catch (const rpc::ChannelDied& died) {
          if (!try_recover(state, died)) throw;
          c.phase_ = Continuation::Phase::kStart;
          return StepStatus::kReady;
        }
      }
      state.restored = false;
      checkpoint(state, core::index(tier) + 1);
      c.phase_ = Continuation::Phase::kStart;
      ++c.next_;
      return StepStatus::kReady;
    }
  }
  return StepStatus::kReady;  // unreachable: all phases return above
}

InferenceResult OnlineEngine::take(Continuation&& c) const {
  if (!c.done()) throw std::logic_error("OnlineEngine: take() on an unfinished continuation");
  return std::move(c.result_);
}

InferenceResult OnlineEngine::infer(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: input shape mismatch");
  // Borrow the caller's tensor: the three stages run synchronously while the
  // caller's reference is pinned, so no per-request input copy is needed.
  auto state = make_state(net_, transport_, options_.tier_recovery);
  state->input = &input;
  seed_input(*state);
  checkpoint(*state, 0);
  run_tier(*state, core::Tier::kDevice);
  run_tier(*state, core::Tier::kEdge);
  run_tier(*state, core::Tier::kCloud);
  return finish(std::move(state));
}

}  // namespace d3::runtime
