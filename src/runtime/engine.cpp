#include "runtime/engine.h"

#include <algorithm>
#include <stdexcept>

#include "core/vsm_executor.h"
#include "exec/executor.h"

namespace d3::runtime {

namespace {

const char* node_of(core::Tier tier) {
  switch (tier) {
    case core::Tier::kDevice: return "device0";
    case core::Tier::kEdge: return "edge0";
    case core::Tier::kCloud: return "cloud0";
  }
  return "?";
}

}  // namespace

OnlineEngine::OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
                           core::Assignment assignment,
                           std::optional<core::FusedTilePlan> vsm)
    : net_(net), weights_(weights), assignment_(std::move(assignment)), vsm_(std::move(vsm)) {
  if (assignment_.tier.size() != net_.num_layers() + 1)
    throw std::invalid_argument("OnlineEngine: assignment size does not match network");
  if (assignment_.tier[0] != core::Tier::kDevice)
    throw std::invalid_argument("OnlineEngine: v0 must be on the device");
  // Prop.-1 feasibility: no layer strictly device-ward of its most device-ward input.
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    core::Tier bound = core::Tier::kCloud;
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      const core::Tier t =
          in == dnn::kNetworkInput ? core::Tier::kDevice
                                   : assignment_.tier[dnn::Network::vertex_of(in)];
      if (core::before(t, bound)) bound = t;
    }
    if (core::before(assignment_.tier[dnn::Network::vertex_of(id)], bound))
      throw std::invalid_argument("OnlineEngine: plan violates dataflow precedence at '" +
                                  net_.layer(id).spec.name + "'");
  }
  if (vsm_) {
    if (vsm_->stack.empty()) throw std::invalid_argument("OnlineEngine: empty VSM stack");
    for (const dnn::LayerId id : vsm_->stack)
      if (assignment_.tier[dnn::Network::vertex_of(id)] != core::Tier::kEdge)
        throw std::invalid_argument("OnlineEngine: VSM stack layer '" +
                                    net_.layer(id).spec.name + "' is not on the edge");
    // Intermediate stack outputs exist only as tiles on the workers; no layer
    // outside the stack may consume them.
    for (std::size_t j = 0; j + 1 < vsm_->stack.size(); ++j) {
      for (dnn::LayerId other = 0; other < net_.num_layers(); ++other) {
        if (other == vsm_->stack[j + 1]) continue;
        const auto& ins = net_.layer(other).inputs;
        if (std::find(ins.begin(), ins.end(), vsm_->stack[j]) != ins.end())
          throw std::invalid_argument(
              "OnlineEngine: layer outside the VSM stack consumes an intermediate tile ('" +
              net_.layer(vsm_->stack[j]).spec.name + "')");
      }
    }
  }
}

InferenceResult OnlineEngine::infer(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine::infer: input shape mismatch");

  InferenceResult result;
  std::vector<dnn::Tensor> outputs(net_.num_layers());
  std::vector<bool> computed(net_.num_layers(), false);

  // sent[producer index][tier]: producer's tensor already shipped to that tier.
  // Index 0 is the raw input; producer layer id is offset by one.
  std::vector<std::array<bool, 3>> sent(net_.num_layers() + 1, {false, false, false});

  const auto record = [&](const std::string& from, const std::string& to,
                          const std::string& payload, core::Tier from_tier,
                          core::Tier to_tier, std::int64_t bytes) {
    result.messages.push_back({from, to, payload, from_tier, to_tier, bytes});
    const int lo = std::min(core::index(from_tier), core::index(to_tier));
    const int hi = std::max(core::index(from_tier), core::index(to_tier));
    if (lo == 0 && hi == 1) result.device_edge_bytes += bytes;
    else if (lo == 1 && hi == 2) result.edge_cloud_bytes += bytes;
    else if (lo == 0 && hi == 2) result.device_cloud_bytes += bytes;
  };

  // Ensures `producer`'s tensor is present at `tier`, shipping it (once) if not.
  const auto deliver = [&](dnn::LayerId producer, core::Tier tier) {
    const bool is_input = producer == dnn::kNetworkInput;
    const core::Tier from = is_input ? core::Tier::kDevice
                                     : assignment_.tier[dnn::Network::vertex_of(producer)];
    if (from == tier) return;
    auto& flags = sent[is_input ? 0 : producer + 1];
    if (flags[static_cast<std::size_t>(core::index(tier))]) return;
    flags[static_cast<std::size_t>(core::index(tier))] = true;
    const std::int64_t bytes =
        is_input ? net_.input_shape().bytes() : net_.lambda_out_bytes(producer);
    record(node_of(from), node_of(tier),
           is_input ? "raw input" : net_.layer(producer).spec.name, from, tier, bytes);
  };

  const auto run_vsm_stack = [&] {
    const core::FusedTilePlan& plan = *vsm_;
    const dnn::LayerId first = plan.stack.front();
    const dnn::LayerId in_id = net_.layer(first).inputs[0];
    const dnn::Tensor& stack_input =
        in_id == dnn::kNetworkInput ? input : outputs[in_id];

    dnn::Tensor assembled(plan.output_shape);
    for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
      const exec::Tile tile_in = core::extract_tile_input(stack_input, plan, t);
      const std::string worker = "edge" + std::to_string(t + 1);
      const std::string tile_name = "tile(" + std::to_string(t) + ")";
      // Scatter (intra-edge; not tier-boundary traffic).
      const std::int64_t in_bytes = tile_in.data.shape().bytes();
      result.messages.push_back({"edge0", worker, tile_name + " input", core::Tier::kEdge,
                                 core::Tier::kEdge, in_bytes});
      result.vsm_scatter_bytes += in_bytes;

      const exec::Tile tile_out = core::run_single_tile(net_, weights_, tile_in, plan, t);

      // Gather.
      const std::int64_t out_bytes = tile_out.data.shape().bytes();
      result.messages.push_back({worker, "edge0", tile_name + " output", core::Tier::kEdge,
                                 core::Tier::kEdge, out_bytes});
      result.vsm_gather_bytes += out_bytes;

      const exec::Region& region = plan.tiles[t].output_region;
      for (int c = 0; c < assembled.shape().c; ++c)
        for (int y = region.y0; y < region.y1; ++y)
          for (int x = region.x0; x < region.x1; ++x)
            assembled.at(c, y, x) = tile_out.data.at(c, y - region.y0, x - region.x0);
    }
    outputs[plan.stack.back()] = std::move(assembled);
    for (const dnn::LayerId id : plan.stack) {
      computed[id] = true;
      ++result.layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
    }
  };

  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (computed[id]) continue;  // interior of an executed VSM stack
    const core::Tier tier = assignment_.tier[dnn::Network::vertex_of(id)];

    if (vsm_ && id == vsm_->stack.front()) {
      // The stack input must be present on the edge coordinator first.
      deliver(net_.layer(id).inputs[0], core::Tier::kEdge);
      run_vsm_stack();
      continue;
    }

    std::vector<const dnn::Tensor*> ins;
    ins.reserve(net_.layer(id).inputs.size());
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      deliver(in, tier);
      ins.push_back(in == dnn::kNetworkInput ? &input : &outputs[in]);
    }
    outputs[id] = exec::run_layer(net_, weights_, id, ins);
    computed[id] = true;
    ++result.layers_executed[static_cast<std::size_t>(core::index(tier))];
  }

  result.output = std::move(outputs.back());
  return result;
}

}  // namespace d3::runtime
