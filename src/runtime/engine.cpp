#include "runtime/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/vsm_executor.h"
#include "exec/executor.h"

namespace d3::runtime {

namespace {

const char* node_of(core::Tier tier) {
  switch (tier) {
    case core::Tier::kDevice: return "device0";
    case core::Tier::kEdge: return "edge0";
    case core::Tier::kCloud: return "cloud0";
  }
  return "?";
}

void record(InferenceResult& result, const std::string& from, const std::string& to,
            const std::string& payload, core::Tier from_tier, core::Tier to_tier,
            std::int64_t bytes) {
  result.messages.push_back({static_cast<std::uint64_t>(result.messages.size()), from, to,
                             payload, from_tier, to_tier, bytes});
  const int lo = std::min(core::index(from_tier), core::index(to_tier));
  const int hi = std::max(core::index(from_tier), core::index(to_tier));
  if (lo == 0 && hi == 1) result.device_edge_bytes += bytes;
  else if (lo == 1 && hi == 2) result.edge_cloud_bytes += bytes;
  else if (lo == 0 && hi == 2) result.device_cloud_bytes += bytes;
}

}  // namespace

OnlineEngine::OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
                           core::Assignment assignment,
                           std::optional<core::FusedTilePlan> vsm)
    : OnlineEngine(net, weights, std::move(assignment), std::move(vsm), Options{}) {}

OnlineEngine::OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
                           core::Assignment assignment,
                           std::optional<core::FusedTilePlan> vsm, Options options)
    : net_(net),
      weights_(weights),
      assignment_(std::move(assignment)),
      vsm_(std::move(vsm)),
      options_(options) {
  if (assignment_.tier.size() != net_.num_layers() + 1)
    throw std::invalid_argument("OnlineEngine: assignment size does not match network");
  if (assignment_.tier[0] != core::Tier::kDevice)
    throw std::invalid_argument("OnlineEngine: v0 must be on the device");
  // Prop.-1 feasibility: no layer strictly device-ward of its most device-ward
  // input. This is also what makes the staged device -> edge -> cloud execution
  // order below dependency-safe.
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    core::Tier bound = core::Tier::kCloud;
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      const core::Tier t =
          in == dnn::kNetworkInput ? core::Tier::kDevice
                                   : assignment_.tier[dnn::Network::vertex_of(in)];
      if (core::before(t, bound)) bound = t;
    }
    if (core::before(assignment_.tier[dnn::Network::vertex_of(id)], bound))
      throw std::invalid_argument("OnlineEngine: plan violates dataflow precedence at '" +
                                  net_.layer(id).spec.name + "'");
  }
  if (vsm_) {
    if (vsm_->stack.empty()) throw std::invalid_argument("OnlineEngine: empty VSM stack");
    for (const dnn::LayerId id : vsm_->stack)
      if (assignment_.tier[dnn::Network::vertex_of(id)] != core::Tier::kEdge)
        throw std::invalid_argument("OnlineEngine: VSM stack layer '" +
                                    net_.layer(id).spec.name + "' is not on the edge");
    // Intermediate stack outputs exist only as tiles on the workers; no layer
    // outside the stack may consume them.
    for (std::size_t j = 0; j + 1 < vsm_->stack.size(); ++j) {
      for (dnn::LayerId other = 0; other < net_.num_layers(); ++other) {
        if (other == vsm_->stack[j + 1]) continue;
        const auto& ins = net_.layer(other).inputs;
        if (std::find(ins.begin(), ins.end(), vsm_->stack[j]) != ins.end())
          throw std::invalid_argument(
              "OnlineEngine: layer outside the VSM stack consumes an intermediate tile ('" +
              net_.layer(vsm_->stack[j]).spec.name + "')");
      }
    }
  }
  const std::size_t pool_threads = std::max(options.vsm_workers, options.intra_op_workers);
  if (pool_threads > 0) pool_ = std::make_unique<ThreadPool>(pool_threads);
  if (options.intra_op_workers > 0)
    // Capture the pool object, not `this`: the pool's address is stable even
    // if the engine is ever moved, so the hook cannot dangle.
    op_parallel_ = [pool = pool_.get()](std::size_t n,
                                        const std::function<void(std::size_t)>& body) {
      pool->parallel_for(n, body);
    };
}

namespace {

// Shared by begin() (which owns a copy of the input) and infer() (which
// borrows the caller's tensor for its synchronous run).
std::unique_ptr<OnlineEngine::RequestState> make_state(const dnn::Network& net) {
  auto state = std::make_unique<OnlineEngine::RequestState>();
  state->outputs.resize(net.num_layers());
  state->computed.assign(net.num_layers(), false);
  state->sent.assign(net.num_layers() + 1, {false, false, false});
  return state;
}

}  // namespace

std::unique_ptr<OnlineEngine::RequestState> OnlineEngine::begin(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: input shape mismatch");
  auto state = make_state(net_);
  state->owned_input = input;
  state->input = &state->owned_input;
  return state;
}

void OnlineEngine::run_vsm_stack(RequestState& state) const {
  const core::FusedTilePlan& plan = *vsm_;
  const dnn::LayerId first = plan.stack.front();
  const dnn::LayerId in_id = net_.layer(first).inputs[0];
  const dnn::Tensor& stack_input =
      in_id == dnn::kNetworkInput ? *state.input : state.outputs[in_id];

  // Scatter: extract every tile's input crop and record the message, in tile
  // order, before any concurrent work starts. This pins the transcript.
  std::vector<exec::Tile> tile_inputs;
  tile_inputs.reserve(plan.num_tiles());
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    tile_inputs.push_back(core::extract_tile_input(stack_input, plan, t));
    const std::string tile_name = "tile(" + std::to_string(t) + ")";
    const std::int64_t in_bytes = tile_inputs.back().data.shape().bytes();
    record(state.result, "edge0", "edge" + std::to_string(t + 1), tile_name + " input",
           core::Tier::kEdge, core::Tier::kEdge, in_bytes);
    state.result.vsm_scatter_bytes += in_bytes;
  }

  // Parallel tile compute: each edge worker node runs its fused stack slice on
  // its own thread. run_single_tile is pure (reads net/weights/plan, writes
  // only this tile's slot), so tiles never race; the parallel_for join
  // publishes every slot before the gather below reads them.
  std::vector<exec::Tile> tile_outputs(plan.num_tiles());
  const auto compute = [&](std::size_t t) {
    if (options_.emulated_tile_service_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.emulated_tile_service_seconds));
    tile_outputs[t] = core::run_single_tile(net_, weights_, tile_inputs[t], *vsm_, t);
  };
  // Tiles go parallel only when vsm_workers asked for it, and at exactly that
  // width: the pool may be larger (intra_op_workers shares it), but the edge
  // cluster being emulated has options_.vsm_workers nodes, so only that many
  // tile service times may overlap. Tiles are pulled from an atomic counter by
  // `width` pool jobs; any schedule is race-free (disjoint slots) and the
  // gather below restores tile order.
  if (pool_ && options_.vsm_workers > 0 && plan.num_tiles() > 1) {
    const std::size_t width = std::min(options_.vsm_workers, plan.num_tiles());
    std::atomic<std::size_t> next{0};
    pool_->parallel_for(width, [&](std::size_t) {
      for (std::size_t t = next.fetch_add(1); t < plan.num_tiles(); t = next.fetch_add(1))
        compute(t);
    });
  } else {
    for (std::size_t t = 0; t < plan.num_tiles(); ++t) compute(t);
  }

  // Gather + assembly, again in tile order: the transcript and the assembled
  // feature map are byte-identical to the sequential engine's.
  dnn::Tensor assembled(plan.output_shape);
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    const std::string tile_name = "tile(" + std::to_string(t) + ")";
    const std::int64_t out_bytes = tile_outputs[t].data.shape().bytes();
    record(state.result, "edge" + std::to_string(t + 1), "edge0", tile_name + " output",
           core::Tier::kEdge, core::Tier::kEdge, out_bytes);
    state.result.vsm_gather_bytes += out_bytes;

    const exec::Region& region = plan.tiles[t].output_region;
    exec::copy_region_to_map(tile_outputs[t].data.data(), region, assembled);
  }
  state.outputs[plan.stack.back()] = std::move(assembled);
  for (const dnn::LayerId id : plan.stack) {
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(core::Tier::kEdge))];
  }
}

void OnlineEngine::run_tier(RequestState& state, core::Tier tier) const {
  const double service =
      options_.emulated_tier_service_seconds[static_cast<std::size_t>(core::index(tier))];
  if (service > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(service));

  // Ensures `producer`'s tensor is present at `tier`, shipping it (once) if not.
  const auto deliver = [&](dnn::LayerId producer, core::Tier to) {
    const bool is_input = producer == dnn::kNetworkInput;
    const core::Tier from = is_input ? core::Tier::kDevice
                                     : assignment_.tier[dnn::Network::vertex_of(producer)];
    if (from == to) return;
    auto& flags = state.sent[is_input ? 0 : producer + 1];
    if (flags[static_cast<std::size_t>(core::index(to))]) return;
    flags[static_cast<std::size_t>(core::index(to))] = true;
    const std::int64_t bytes =
        is_input ? net_.input_shape().bytes() : net_.lambda_out_bytes(producer);
    record(state.result, node_of(from), node_of(to),
           is_input ? "raw input" : net_.layer(producer).spec.name, from, to, bytes);
  };

  // One ascending-id pass: run every pending layer assigned to this stage's
  // tier *or an earlier one* whose inputs are all available. Prop.-1 allows a
  // layer to consume a tensor from a cloud-ward tier (bounded only by its most
  // device-ward input), so such a consumer is not ready at its own tier's
  // stage; it defers and the cloud stage — where every producer has already
  // run — catches it. Layer ids are topological, so the single pass per stage
  // needs no fixpoint loop, and the execution order is a pure function of the
  // plan: transcripts are identical however stages are threaded.
  const auto ready = [&](dnn::LayerId id) {
    for (const dnn::LayerId in : net_.layer(id).inputs)
      if (in != dnn::kNetworkInput && !state.computed[in]) return false;
    return true;
  };

  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    if (state.computed[id]) continue;  // interior of an executed VSM stack
    const core::Tier assigned = assignment_.tier[dnn::Network::vertex_of(id)];
    if (core::before(tier, assigned)) continue;  // cloud-ward of this stage
    if (!ready(id)) continue;                    // deferred to a later stage

    if (vsm_ && id == vsm_->stack.front()) {
      // The stack input must be present on the edge coordinator first.
      deliver(net_.layer(id).inputs[0], core::Tier::kEdge);
      run_vsm_stack(state);
      continue;
    }

    std::vector<const dnn::Tensor*> ins;
    ins.reserve(net_.layer(id).inputs.size());
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      deliver(in, assigned);
      ins.push_back(in == dnn::kNetworkInput ? state.input : &state.outputs[in]);
    }
    state.outputs[id] = exec::run_layer(net_, weights_, id, ins, op_context());
    state.computed[id] = true;
    ++state.result.layers_executed[static_cast<std::size_t>(core::index(assigned))];
  }
}

InferenceResult OnlineEngine::finish(std::unique_ptr<RequestState> state) const {
  InferenceResult result = std::move(state->result);
  result.output = std::move(state->outputs.back());
  return result;
}

InferenceResult OnlineEngine::infer(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("OnlineEngine: input shape mismatch");
  // Borrow the caller's tensor: the three stages run synchronously while the
  // caller's reference is pinned, so no per-request input copy is needed.
  auto state = make_state(net_);
  state->input = &input;
  run_tier(*state, core::Tier::kDevice);
  run_tier(*state, core::Tier::kEdge);
  run_tier(*state, core::Tier::kCloud);
  return finish(std::move(state));
}

}  // namespace d3::runtime
