#include "runtime/request_journal.h"

#include <map>
#include <stdexcept>

#include "rpc/wire.h"

namespace d3::runtime {

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void encode_message(rpc::WireWriter& w, const MessageRecord& m) {
  w.u64(m.seq);
  w.str(m.from_node);
  w.str(m.to_node);
  w.str(m.payload);
  w.u8(static_cast<std::uint8_t>(core::index(m.from_tier)));
  w.u8(static_cast<std::uint8_t>(core::index(m.to_tier)));
  w.i64(m.bytes);
}

MessageRecord decode_message(rpc::WireReader& r) {
  MessageRecord m;
  m.seq = r.u64();
  m.from_node = r.str();
  m.to_node = r.str();
  m.payload = r.str();
  const std::uint8_t from = r.u8();
  const std::uint8_t to = r.u8();
  if (from > 2 || to > 2) throw std::runtime_error("journal: message tier out of range");
  m.from_tier = static_cast<core::Tier>(from);
  m.to_tier = static_cast<core::Tier>(to);
  m.bytes = r.i64();
  return m;
}

}  // namespace

std::uint64_t plan_hash(const core::SerializablePlan& plan) {
  const std::vector<std::uint8_t> bytes = core::serialize_plan_binary(plan);
  return fnv1a(bytes);
}

std::vector<std::uint8_t> Snapshot::encode() const {
  rpc::WireWriter w;
  w.u64(rpc_request);
  w.u64(plan_hash);
  w.u32(static_cast<std::uint32_t>(next_stage));
  w.blob(input);
  w.u32(static_cast<std::uint32_t>(messages.size()));
  for (const MessageRecord& m : messages) encode_message(w, m);
  w.i64(device_edge_bytes);
  w.i64(edge_cloud_bytes);
  w.i64(device_cloud_bytes);
  for (const std::uint64_t n : layers_executed) w.u64(n);
  w.i64(vsm_scatter_bytes);
  w.i64(vsm_gather_bytes);
  w.u32(static_cast<std::uint32_t>(computed.size()));
  for (const bool b : computed) w.u8(b ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(sent.size()));
  for (const auto& tiers : sent)
    for (const bool b : tiers) w.u8(b ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(shipped.size()));
  for (const auto& tiers : shipped)
    for (const bool b : tiers) w.u8(b ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(vsm_recorded.size()));
  for (const auto& dirs : vsm_recorded)
    for (const bool b : dirs) w.u8(b ? 1 : 0);
  return w.take();
}

Snapshot Snapshot::decode(std::span<const std::uint8_t> body) {
  rpc::WireReader r(body);
  Snapshot s;
  s.rpc_request = r.u64();
  s.plan_hash = r.u64();
  s.next_stage = static_cast<int>(r.u32());
  if (s.next_stage < 0 || s.next_stage > 3)
    throw std::runtime_error("journal: snapshot stage out of range");
  s.input = r.blob();
  const std::uint32_t messages = r.u32();
  s.messages.reserve(messages);
  for (std::uint32_t i = 0; i < messages; ++i) s.messages.push_back(decode_message(r));
  s.device_edge_bytes = r.i64();
  s.edge_cloud_bytes = r.i64();
  s.device_cloud_bytes = r.i64();
  for (std::uint64_t& n : s.layers_executed) n = r.u64();
  s.vsm_scatter_bytes = r.i64();
  s.vsm_gather_bytes = r.i64();
  const std::uint32_t computed = r.u32();
  s.computed.reserve(computed);
  for (std::uint32_t i = 0; i < computed; ++i) s.computed.push_back(r.u8() != 0);
  const std::uint32_t sent = r.u32();
  s.sent.reserve(sent);
  for (std::uint32_t i = 0; i < sent; ++i)
    s.sent.push_back({r.u8() != 0, r.u8() != 0, r.u8() != 0});
  const std::uint32_t shipped = r.u32();
  s.shipped.reserve(shipped);
  for (std::uint32_t i = 0; i < shipped; ++i)
    s.shipped.push_back({r.u8() != 0, r.u8() != 0, r.u8() != 0});
  const std::uint32_t vsm = r.u32();
  s.vsm_recorded.reserve(vsm);
  for (std::uint32_t i = 0; i < vsm; ++i) s.vsm_recorded.push_back({r.u8() != 0, r.u8() != 0});
  r.expect_end("journal snapshot");
  return s;
}

RequestJournal::RequestJournal(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw std::runtime_error("RequestJournal: cannot open '" + path_ + "'");
}

RequestJournal::~RequestJournal() {
  if (file_) std::fclose(file_);
}

void RequestJournal::append(std::uint8_t type, std::span<const std::uint8_t> body) {
  // One frame per record: magic | type | len | body, flushed as a unit. A
  // SIGKILL between records loses nothing; one mid-append leaves a torn tail
  // that load() skips.
  rpc::WireWriter w;
  w.u32(kJournalMagic);
  w.u8(type);
  w.u64(body.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& header = w.buffer();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      (!body.empty() && std::fwrite(body.data(), 1, body.size(), file_) != body.size()) ||
      std::fflush(file_) != 0)
    throw std::runtime_error("RequestJournal: write to '" + path_ + "' failed");
}

void RequestJournal::record(const Snapshot& snapshot) { append(1, snapshot.encode()); }

void RequestJournal::finish(std::uint64_t rpc_request) {
  rpc::WireWriter w;
  w.u64(rpc_request);
  append(2, w.buffer());
}

std::vector<Snapshot> RequestJournal::load(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
      bytes.insert(bytes.end(), chunk, chunk + n);
    std::fclose(f);
  }

  std::map<std::uint64_t, Snapshot> live;
  std::size_t off = 0;
  constexpr std::size_t kHeader = 4 + 1 + 8;
  while (off + kHeader <= bytes.size()) {
    rpc::WireReader header(std::span<const std::uint8_t>(bytes.data() + off, kHeader));
    const std::uint32_t magic = header.u32();
    const std::uint8_t type = header.u8();
    const std::uint64_t len = header.u64();
    if (magic != kJournalMagic || off + kHeader + len > bytes.size()) break;  // torn tail
    const std::span<const std::uint8_t> body(bytes.data() + off + kHeader,
                                             static_cast<std::size_t>(len));
    try {
      if (type == 1) {
        Snapshot s = Snapshot::decode(body);
        live[s.rpc_request] = std::move(s);
      } else if (type == 2) {
        rpc::WireReader r(body);
        const std::uint64_t id = r.u64();
        r.expect_end("journal finish");
        live.erase(id);
      } else {
        break;  // unknown record type: treat like a torn tail
      }
    } catch (const std::exception&) {
      break;  // half-written body that happened to pass the length check
    }
    off += kHeader + len;
  }

  std::vector<Snapshot> unfinished;
  unfinished.reserve(live.size());
  for (auto& [id, snapshot] : live) unfinished.push_back(std::move(snapshot));
  return unfinished;
}

}  // namespace d3::runtime
