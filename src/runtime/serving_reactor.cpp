#include "runtime/serving_reactor.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rpc/transport.h"

namespace d3::runtime {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ServingReactor::ServingReactor(const OnlineEngine& engine)
    : ServingReactor(engine, Options{}) {}

ServingReactor::ServingReactor(const OnlineEngine& engine, Options options)
    : engine_(engine), options_(std::move(options)), paused_(options_.start_paused) {
  // The eventfd is the loop's only standing registration; submissions and
  // shutdown signal it to interrupt an idle epoll wait.
  poller_.add(wake_.fd(), static_cast<std::uint64_t>(wake_.fd()));
  reactor_ = std::thread([this] { reactor_loop(); });
}

ServingReactor::~ServingReactor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;  // a paused reactor still owes every queued request
  }
  wake_.signal();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return finished_ == tickets_.size(); });
    stopping_ = true;
  }
  wake_.signal();
  reactor_.join();
}

std::size_t ServingReactor::submit(const dnn::Tensor& input) { return submit(input, {}); }

std::size_t ServingReactor::submit(const dnn::Tensor& input, const SubmitOptions& so) {
  if (!(input.shape() == engine_.network().input_shape()))
    throw std::invalid_argument("ServingReactor: input shape mismatch");
  const Clock::time_point now = Clock::now();
  auto ticket = std::make_unique<Ticket>();
  ticket->input = input;
  ticket->priority = so.priority;
  ticket->deadline_seconds =
      so.deadline_seconds < 0 ? options_.default_deadline_seconds : so.deadline_seconds;
  ticket->submitted_at = now;
  if (ticket->deadline_seconds > 0)
    ticket->deadline_at = now + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(ticket->deadline_seconds));

  std::size_t id = 0;
  bool refused_someone = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || shed_all_)
      throw std::logic_error("ServingReactor: submit after shutdown began");
    id = tickets_.size();

    // Latency-aware shedding: if the pipeline model already predicts this
    // request finishes past its deadline from its queue position, refuse it
    // now — it would only burn capacity on a worthless result. Never begun,
    // so no transport state to tear down.
    if (ticket->deadline_seconds > 0 && options_.pipeline) {
      // Waiting requests queue behind the newcomer's batch position; admitted
      // ones already occupy pipeline stages, which the occupancy-aware
      // prediction prices at their full residual frame latency.
      const double predicted = sim::predicted_completion_seconds(
          *options_.pipeline, waiting_.size(), inflight_);
      if (predicted > ticket->deadline_seconds) {
        ticket->error = std::make_exception_ptr(RequestShed(
            id, "predicted completion " + std::to_string(predicted) + "s > deadline " +
                    std::to_string(ticket->deadline_seconds) + "s"));
        ticket->done = true;
        tickets_.push_back(std::move(ticket));
        ++finished_;
        ++counters_.shed;
        refused_someone = true;
      }
    }

    if (!refused_someone) {
      // Drop-oldest admission on the waiting queue, exactly like
      // BatchScheduler: the new request displaces the stalest waiting one.
      if (options_.admission_capacity > 0 &&
          waiting_.size() >= options_.admission_capacity) {
        const std::size_t victim = waiting_.front();
        waiting_.pop_front();
        Ticket& old = *tickets_[victim];
        old.error = std::make_exception_ptr(RequestDropped(victim));
        old.done = true;
        ++finished_;
        ++counters_.dropped;
        refused_someone = true;
      }
      tickets_.push_back(std::move(ticket));
      waiting_.push_back(id);
    }
  }
  if (refused_someone) done_cv_.notify_all();
  wake_.signal();
  return id;
}

void ServingReactor::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  wake_.signal();
}

void ServingReactor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shed_all_ = true;
    paused_ = false;  // a paused reactor must still run the shed pass
  }
  wake_.signal();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return finished_ == tickets_.size(); });
}

void ServingReactor::shed_all_locked() {
  const Clock::time_point now = Clock::now();
  const auto shed = [&](std::size_t id) {
    Ticket& ticket = *tickets_[id];
    ticket.error = std::make_exception_ptr(RequestShed(id, "reactor shutdown"));
    if (ticket.cont) {
      // Admitted mid-flight: tear down the continuation (closing its
      // transport-side request) and retire it through the normal completion
      // bookkeeping.
      ticket.cont.reset();
      finish_locked(id, ticket, now);
    } else {
      ticket.done = true;
      ++finished_;
    }
    ++counters_.shutdown_shed;
  };
  for (const std::size_t id : waiting_) shed(id);
  waiting_.clear();
  // Parked stages are shed too: unpark first so fd registrations and the
  // wire-wait accounting unwind through the one bookkeeping path.
  const std::vector<std::size_t> parked = parked_;
  for (const std::size_t id : parked) unpark_locked(id, now);
  for (auto& [priority, bucket] : runnable_)
    for (const std::size_t id : bucket) shed(id);
  runnable_.clear();
  done_cv_.notify_all();
}

void ServingReactor::unpark_locked(std::size_t id, Clock::time_point now) {
  Ticket& ticket = *tickets_[id];
  for (const int fd : ticket.parked_fds) {
    auto ref = fd_refs_.find(fd);
    if (ref != fd_refs_.end() && --ref->second == 0) {
      fd_refs_.erase(ref);
      try {
        poller_.remove(fd);
      } catch (const rpc::SocketError&) {
        // Channel death closed the fd out from under us; the kernel already
        // dropped the registration.
      }
    }
    auto by = parked_by_fd_.find(fd);
    if (by != parked_by_fd_.end()) {
      auto& ids = by->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty()) parked_by_fd_.erase(by);
    }
  }
  ticket.parked_fds.clear();
  if (ticket.parked_since) {
    counters_.wire_wait_ms +=
        std::chrono::duration<double, std::milli>(now - *ticket.parked_since).count();
    ticket.parked_since.reset();
  }
  outstanding_ops_ -= ticket.parked_ops;
  ticket.parked_ops = 0;
  parked_.erase(std::remove(parked_.begin(), parked_.end(), id), parked_.end());
  runnable_[ticket.priority].push_back(id);
}

void ServingReactor::sweep_parked_locked(Clock::time_point now) {
  std::vector<std::size_t> ready;
  for (const std::size_t id : parked_) {
    const Ticket& ticket = *tickets_[id];
    if (ticket.cont->ops_settled() || (ticket.deadline_at && now >= *ticket.deadline_at))
      ready.push_back(id);
  }
  for (const std::size_t id : ready) unpark_locked(id, now);
}

void ServingReactor::expire_waiting_locked(Clock::time_point now) {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    Ticket& ticket = *tickets_[*it];
    if (ticket.deadline_at && now >= *ticket.deadline_at) {
      ticket.error = std::make_exception_ptr(
          RequestShed(*it, "deadline expired before admission"));
      ticket.done = true;
      ++finished_;
      ++counters_.expired;
      it = waiting_.erase(it);
      done_cv_.notify_all();
    } else {
      ++it;
    }
  }
}

int ServingReactor::idle_timeout_ms_locked(Clock::time_point now) const {
  std::optional<Clock::time_point> earliest;
  for (const std::size_t id : waiting_) {
    const Ticket& ticket = *tickets_[id];
    if (ticket.deadline_at && (!earliest || *ticket.deadline_at < *earliest))
      earliest = *ticket.deadline_at;
  }
  // A parked stage's deadline must bound the epoll sleep too: its fd may
  // never turn readable (dead worker), and expiry is how it gets shed.
  for (const std::size_t id : parked_) {
    const Ticket& ticket = *tickets_[id];
    if (ticket.deadline_at && (!earliest || *ticket.deadline_at < *earliest))
      earliest = *ticket.deadline_at;
  }
  if (!earliest) return -1;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(*earliest - now).count();
  return ms < 0 ? 0 : static_cast<int>(ms) + 1;  // +1: land past the deadline, not on it
}

void ServingReactor::finish_locked(std::size_t id, Ticket& ticket, Clock::time_point now) {
  ticket.done = true;
  ++finished_;
  --inflight_;
  if (!ticket.error) {
    ++counters_.completed;
    latencies_.push_back(seconds_between(ticket.submitted_at, now));
    completion_order_.push_back(id);
  }
}

void ServingReactor::reactor_loop() {
  enum class Act { kIdle, kAdmit, kStep };
  for (;;) {
    // Heartbeat starvation fix: the probe deadline is honoured on EVERY loop
    // iteration, not just the idle branch — a reactor saturated with runnable
    // stages would otherwise never observe a silent worker (one that stopped
    // answering without closing its socket) until the traffic happened to
    // touch its channel.
    if (engine_.transport()->heartbeat_due_ms() == 0) {
      try {
        engine_.transport()->heartbeat_poll();
      } catch (const rpc::ChannelDied&) {
        // The channel was reopened by recovery; in-flight requests touching
        // it will replay under max_replays. Record the proactive detection.
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.heartbeat_deaths;
      }
    }

    std::size_t id = 0;
    Ticket* claimed = nullptr;
    Act act = Act::kIdle;
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;  // set only once every ticket is finished
      if (shed_all_) shed_all_locked();
      expire_waiting_locked(Clock::now());
      if (!parked_.empty()) sweep_parked_locked(Clock::now());
      if (!paused_ && inflight_ < options_.max_inflight && !waiting_.empty()) {
        // Admission outranks progress: a burst is begun (opening its
        // transport state) before existing work advances, up to max_inflight
        // — that is what lets one coordinator hold thousands of requests
        // open at once.
        id = waiting_.front();
        waiting_.pop_front();
        ++inflight_;
        counters_.max_inflight = std::max(counters_.max_inflight, inflight_);
        act = Act::kAdmit;
      } else if (!runnable_.empty()) {
        auto bucket = runnable_.begin();  // highest priority
        id = bucket->second.front();
        bucket->second.pop_front();
        if (bucket->second.empty()) runnable_.erase(bucket);
        act = Act::kStep;
      } else {
        timeout_ms = idle_timeout_ms_locked(Clock::now());
      }
      // The Ticket is heap-stable, but tickets_ itself reallocates under
      // concurrent submit(): index it only while the lock is held.
      if (act != Act::kIdle) claimed = tickets_[id].get();
    }

    if (act == Act::kIdle) {
      // Sleep on the epoll set until a submission/resume/shutdown signal, a
      // parked stage's channel turning readable, the earliest deadline, or
      // the next liveness probe — whichever first. The loop-top heartbeat
      // check fires the probe after the wake.
      const int heartbeat_ms = engine_.transport()->heartbeat_due_ms();
      if (heartbeat_ms >= 0 && (timeout_ms < 0 || heartbeat_ms < timeout_ms))
        timeout_ms = heartbeat_ms;
      const std::vector<std::uint64_t> tags = poller_.wait(timeout_ms);
      wake_.drain();
      bool channel_ready = false;
      for (const std::uint64_t tag : tags)
        if (tag != static_cast<std::uint64_t>(wake_.fd())) channel_ready = true;
      if (channel_ready) {
        // A parked stage's reply landed. Replies complete in FIFO issue order
        // per channel, so only the OLDEST parked ticket on a readable fd can
        // make progress — unparking everyone would poll-and-repark the whole
        // herd on every reply. The head ticket's poll drains the channel; ops
        // that settles for the others are picked up syscall-free by the sweep,
        // and level-triggered epoll re-fires while data remains unread.
        const Clock::time_point now = Clock::now();
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::uint64_t tag : tags) {
          const int fd = static_cast<int>(tag);
          if (fd == wake_.fd()) continue;
          const auto by = parked_by_fd_.find(fd);
          if (by == parked_by_fd_.end()) continue;
          unpark_locked(by->second.front(), now);
        }
      }
      continue;
    }

    Ticket& ticket = *claimed;  // only the reactor mutates it until done

    if (act == Act::kAdmit) {
      // Admission-time expiry: the request may have aged out while queued.
      if (ticket.deadline_at && Clock::now() >= *ticket.deadline_at) {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket.error = std::make_exception_ptr(
            RequestShed(id, "deadline expired before admission"));
        finish_locked(id, ticket, Clock::now());
        ++counters_.expired;
        done_cv_.notify_all();
        continue;
      }
      try {
        // Readiness mode issues the admission round-trips (kBegin broadcast +
        // input seed) as pipelined sends; the first kStep parks on them.
        ticket.cont = options_.readiness_dispatch ? engine_.start_async(ticket.input)
                                                  : engine_.start(ticket.input);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket.error = std::current_exception();
        finish_locked(id, ticket, Clock::now());
        done_cv_.notify_all();
        continue;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      runnable_[ticket.priority].push_back(id);
      continue;
    }

    // Act::kStep — run exactly one stage outside the lock.
    // Between-stage expiry: abandon work whose deadline already passed
    // instead of finishing a worthless result.
    if (ticket.deadline_at && Clock::now() >= *ticket.deadline_at) {
      std::lock_guard<std::mutex> lock(mutex_);
      ticket.cont.reset();  // tears down per-request transport state
      ticket.error =
          std::make_exception_ptr(RequestShed(id, "deadline expired in flight"));
      finish_locked(id, ticket, Clock::now());
      ++counters_.expired;
      done_cv_.notify_all();
      continue;
    }

    bool finished = false;
    bool parked = false;
    try {
      bool done = false;
      if (options_.readiness_dispatch) {
        const OnlineEngine::StepStatus status = engine_.step_async(*ticket.cont);
        done = status == OnlineEngine::StepStatus::kDone;
        parked = status == OnlineEngine::StepStatus::kParked;
      } else {
        done = engine_.step(*ticket.cont);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.steps;
      }
      if (done) {
        ticket.result = engine_.take(std::move(*ticket.cont));
        finished = true;
      }
    } catch (const rpc::ChannelDied&) {
      // End-to-end replay fallback (transcript purity makes the replayed
      // result byte-identical), bounded by max_replays.
      if (ticket.replays < options_.max_replays) {
        try {
          ticket.cont = options_.readiness_dispatch ? engine_.start_async(ticket.input)
                                                    : engine_.start(ticket.input);
          ++ticket.replays;
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.replayed;
        } catch (...) {
          ticket.error = std::current_exception();
          finished = true;
        }
      } else {
        ticket.error = std::current_exception();
        finished = true;
      }
    } catch (...) {
      ticket.error = std::current_exception();
      finished = true;
    }

    if (parked && !finished) {
      // Collect the fds outside the lock: fd() flushes the channel outbox
      // (the stage's requests must be on the wire before readiness of these
      // fds means anything).
      std::vector<int> fds = ticket.cont->pending_fds();
      const Clock::time_point now = Clock::now();
      std::lock_guard<std::mutex> lock(mutex_);
      if (fds.empty() || ticket.cont->ops_settled()) {
        // Replies landed between the park decision and here (flushing can
        // drain), or no fd to wait on — just keep the ticket runnable.
        runnable_[ticket.priority].push_back(id);
      } else {
        ticket.parked_fds = std::move(fds);
        ticket.parked_since = now;
        ticket.parked_ops = ticket.cont->ops_outstanding();
        outstanding_ops_ += ticket.parked_ops;
        counters_.outstanding_ops_high_water =
            std::max(counters_.outstanding_ops_high_water, outstanding_ops_);
        ++counters_.parked_stages;
        parked_.push_back(id);
        for (const int fd : ticket.parked_fds) {
          parked_by_fd_[fd].push_back(id);
          if (++fd_refs_[fd] == 1) {
            try {
              poller_.add(fd, static_cast<std::uint64_t>(fd));
            } catch (const rpc::SocketError&) {
              // Raced a channel close/reopen; the settled sweep still
              // resumes the ticket, this registration was only a fast path.
            }
          }
        }
      }
      continue;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (finished) {
      finish_locked(id, ticket, Clock::now());
      done_cv_.notify_all();
    } else {
      // Re-enter at the back of the priority bucket: same-priority requests
      // round-robin stage-by-stage.
      runnable_[ticket.priority].push_back(id);
    }
  }
}

InferenceResult ServingReactor::wait(std::size_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (id >= tickets_.size()) throw std::out_of_range("ServingReactor: unknown request id");
  done_cv_.wait(lock, [&] { return tickets_[id]->done; });
  Ticket& ticket = *tickets_[id];
  if (ticket.collected)
    throw std::logic_error("ServingReactor: result already collected");
  ticket.collected = true;
  if (ticket.error) std::rethrow_exception(ticket.error);
  return std::move(ticket.result);
}

std::vector<InferenceResult> ServingReactor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t count = tickets_.size();
  std::vector<InferenceResult> results;
  results.reserve(count);
  for (std::size_t id = 0; id < count; ++id) {
    done_cv_.wait(lock, [&] { return tickets_[id]->done; });
    Ticket& ticket = *tickets_[id];
    if (ticket.collected) continue;  // a concurrent wait() claimed it
    ticket.collected = true;
    if (ticket.error) {
      try {
        std::rethrow_exception(ticket.error);
      } catch (const RequestDropped&) {
        continue;  // dropped or shed: accounted in stats, not a result
      }
    }
    results.push_back(std::move(ticket.result));
  }
  return results;
}

ServingReactor::Stats ServingReactor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = counters_;
  s.submitted = tickets_.size();
  return s;
}

std::vector<double> ServingReactor::latencies_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latencies_;
}

std::vector<std::size_t> ServingReactor::completion_order() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

}  // namespace d3::runtime
