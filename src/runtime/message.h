// The unit of inter-node communication the online engine records and the rpc
// layer ships: one tensor moving from one computation node to another, with
// enough metadata to reconstruct the transcript and the traffic accounting.
// Lives below both runtime/ (which records transcripts of these) and rpc/
// (whose Envelope frames one of these plus the payload bytes for the wire).
#pragma once

#include <cstdint>
#include <string>

#include "core/tier.h"

namespace d3::runtime {

struct MessageRecord {
  // Position in this request's transcript (0, 1, 2, ...). Deterministic for a
  // given plan and input: independent of thread interleaving, of how many
  // requests are in flight, and of which transport carries the tensors.
  std::uint64_t seq = 0;
  std::string from_node;
  std::string to_node;
  // What the tensor is: a layer's output, the raw input, or a VSM tile.
  std::string payload;
  core::Tier from_tier = core::Tier::kDevice;
  core::Tier to_tier = core::Tier::kDevice;
  std::int64_t bytes = 0;
};

}  // namespace d3::runtime
