#include "runtime/batch_scheduler.h"

#include <stdexcept>
#include <utility>

#include "rpc/transport.h"

namespace d3::runtime {

BatchScheduler::BatchScheduler(const OnlineEngine& engine)
    : BatchScheduler(engine, Options{}) {}

BatchScheduler::BatchScheduler(const OnlineEngine& engine, Options options)
    : engine_(engine), options_(options) {
  stages_.reserve(3);
  for (std::size_t s = 0; s < 3; ++s) stages_.emplace_back([this, s] { stage_loop(s); });
}

BatchScheduler::~BatchScheduler() {
  {
    // Honour the "pending requests are completed first" contract: wait for
    // every admitted request to clear the cloud stage before stopping the
    // stage threads — stopping earlier would strand requests queued between
    // stages (downstream threads exit while upstream ones still feed them).
    std::unique_lock<std::mutex> lock(mutex_);
    request_done_.wait(lock, [&] { return completed_ == requests_.size(); });
    stopping_ = true;
  }
  for (auto& cv : stage_work_) cv.notify_all();
  for (std::thread& t : stages_) t.join();
}

std::size_t BatchScheduler::submit(const dnn::Tensor& input) {
  // start() validates the shape on the caller's thread, so a bad submit fails
  // fast and never occupies a stage.
  OnlineEngine::Continuation cont = engine_.start(input);
  std::size_t id = 0;
  std::optional<OnlineEngine::Continuation> evicted;  // freed outside the lock
  bool dropped_one = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::logic_error("BatchScheduler: submit after shutdown began");
    // Drop-oldest admission: the new request displaces the stalest waiting one
    // (sim::StreamOptions::drop_when_busy at runtime — a slow pipeline sheds
    // stale frames instead of queueing unboundedly).
    if (options_.admission_capacity > 0 &&
        stage_queue_[0].size() >= options_.admission_capacity) {
      const std::size_t victim = stage_queue_[0].front();
      stage_queue_[0].pop_front();
      Request& old = *requests_[victim];
      evicted = std::move(old.cont);
      old.error = std::make_exception_ptr(RequestDropped(victim));
      old.done = true;
      ++completed_;
      ++dropped_;
      dropped_one = true;
    }
    id = requests_.size();
    auto request = std::make_unique<Request>();
    request->cont = std::move(cont);
    requests_.push_back(std::move(request));
    stage_queue_[0].push_back(id);
  }
  if (dropped_one) request_done_.notify_all();
  stage_work_[0].notify_one();
  return id;
}

void BatchScheduler::stage_loop(std::size_t stage) {
  for (;;) {
    std::size_t id = 0;
    Request* request_ptr = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stage_work_[stage].wait(
          lock, [&] { return stopping_ || !stage_queue_[stage].empty(); });
      if (stage_queue_[stage].empty()) return;  // stopping_ and nothing queued
      id = stage_queue_[stage].front();
      stage_queue_[stage].pop_front();
      // Resolve the element pointer under the lock: submit() may reallocate
      // requests_'s buffer, but the pointed-to Request never moves.
      request_ptr = requests_[id].get();
    }

    Request& request = *request_ptr;
    // The end-to-end replay fallback for a ChannelDied the engine's own
    // recovery could not absorb: restart the request from `input` — the
    // result is byte-identical by transcript purity. The request re-enters
    // the device queue; this stage slot moves on to other in-flight work.
    // Returns false (leaving request.error set) when replays are exhausted
    // or the restart itself failed.
    const auto replay = [&](const dnn::Tensor& input) {
      if (request.replays >= options_.max_replays) {
        request.error = std::current_exception();
        return false;
      }
      try {
        request.cont = engine_.start(input);
        ++request.replays;
      } catch (...) {
        request.error = std::current_exception();  // replay setup failed
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++replayed_;
        stage_queue_[0].push_back(id);
      }
      stage_work_[0].notify_one();
      return true;
    };

    if (!request.error) {
      try {
        engine_.step(*request.cont);  // this stage's tier
      } catch (const rpc::ChannelDied&) {
        if (replay(request.cont->input())) continue;
      } catch (...) {
        request.error = std::current_exception();
      }
    }

    if (stage + 1 < 3) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stage_queue_[stage + 1].push_back(id);
      }
      stage_work_[stage + 1].notify_one();
    } else {
      if (!request.error) {
        // The collect step consumes the state, so retain the input first: a
        // node can die inside it too (the final-output fetch), and the replay
        // fallback needs something to restart from. The copy is made only
        // when replays are enabled.
        std::optional<dnn::Tensor> retained;
        if (options_.max_replays > 0) retained = request.cont->input();
        try {
          engine_.step(*request.cont);  // collect
          request.result = engine_.take(std::move(*request.cont));
        } catch (const rpc::ChannelDied&) {
          if (retained && replay(*retained)) continue;
          if (!request.error) request.error = std::current_exception();
        } catch (...) {
          request.error = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        request.done = true;
        ++completed_;
      }
      request_done_.notify_all();
    }
  }
}

InferenceResult BatchScheduler::wait(std::size_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (id >= requests_.size()) throw std::out_of_range("BatchScheduler: unknown request id");
  request_done_.wait(lock, [&] { return requests_[id]->done; });
  Request& request = *requests_[id];
  if (request.collected)
    throw std::logic_error("BatchScheduler: result already collected");
  request.collected = true;
  if (request.error) std::rethrow_exception(request.error);
  return std::move(request.result);
}

std::vector<InferenceResult> BatchScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t count = requests_.size();
  std::vector<InferenceResult> results;
  results.reserve(count);
  for (std::size_t id = 0; id < count; ++id) {
    request_done_.wait(lock, [&] { return requests_[id]->done; });
    Request& request = *requests_[id];
    // A concurrent wait() (or an earlier drain) already claimed this result:
    // skip it instead of throwing the double-collect logic_error — otherwise
    // draining while another thread waits on individual ids aborts the drain
    // (or, caught carelessly, hangs it).
    if (request.collected) continue;
    request.collected = true;
    if (request.error) {
      try {
        std::rethrow_exception(request.error);
      } catch (const RequestDropped&) {
        continue;  // shed by admission control: in stats().dropped, not a result
      }
      // Any other stage failure propagates, exactly like wait(id) would.
    }
    results.push_back(std::move(request.result));
  }
  return results;
}

std::size_t BatchScheduler::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_.size();
}

std::size_t BatchScheduler::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{requests_.size(), completed_ - dropped_, dropped_, replayed_};
}

}  // namespace d3::runtime
