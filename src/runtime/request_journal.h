// Request-state checkpointing for coordinator failover (the survivability leg
// of the runtime: docs/ARCHITECTURE.md "Coordinator failover").
//
// The coordinator is the only stateful singleton in the deployment — workers
// already survive coordinator death (d3_node --listen keeps per-request slots
// across coordinator connections), so what a standby needs to take over is
// exactly the *engine-side* request state: which tiers completed, which
// transcript messages were recorded, which boundary payloads reached which
// nodes, and the raw input. A RequestJournal persists precisely that, as one
// self-contained Snapshot per request per tier boundary, appended to a
// write-ahead file. After a SIGKILL the standby load()s the journal, calls
// OnlineEngine::restore() on each unfinished snapshot, and resumes — re-running
// only the interrupted tier. Outputs stay bitwise-identical and the transcript
// byte-identical to a no-failure run, because the snapshot's `sent` flags make
// the re-run record only the messages the dead coordinator never got to.
//
// File format: append-only framed records,
//
//   u32 magic 0xD3A00005 | u8 type | u64 len | body (len bytes)
//
// type 1 = snapshot (full request state, self-contained — later snapshots of
// the same request supersede earlier ones), type 2 = finish (the request
// completed; its snapshots are dead). A torn tail — the coordinator died
// mid-append — parses as "stop at the last complete record", never as an
// error: the previous snapshot of that request is still live and resuming
// from it only re-runs one extra tier.
//
// Snapshots deliberately exclude coordinator-held output tensors: they are
// re-fetchable from the workers that computed them (materialize() pulls
// lazily), so journal bytes stay proportional to input + metadata, not to
// activation volume.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/plan_io.h"
#include "runtime/message.h"

namespace d3::runtime {

inline constexpr std::uint32_t kJournalMagic = 0xD3A00005u;

// FNV-1a over the plan's binary wire form: the guard that a standby restores
// snapshots against the same deployment plan that produced them (a different
// plan would mis-route slots and silently corrupt the resume).
std::uint64_t plan_hash(const core::SerializablePlan& plan);

// One journalled request at one tier boundary. Field-for-field the durable
// subset of OnlineEngine::RequestState plus the continuation cursor.
struct Snapshot {
  std::uint64_t rpc_request = 0;
  std::uint64_t plan_hash = 0;
  // Continuation cursor: 0..2 = the tier the next step runs, 3 = collect.
  int next_stage = 0;
  // The raw request input, in tensor wire encoding (rpc::encode_tensor).
  std::vector<std::uint8_t> input;
  // The transcript prefix recorded so far, with the traffic accounting that
  // accompanies it (all pure functions of the plan up to next_stage).
  std::vector<MessageRecord> messages;
  std::int64_t device_edge_bytes = 0;
  std::int64_t edge_cloud_bytes = 0;
  std::int64_t device_cloud_bytes = 0;
  std::array<std::uint64_t, 3> layers_executed{0, 0, 0};
  std::int64_t vsm_scatter_bytes = 0;
  std::int64_t vsm_gather_bytes = 0;
  // Progress flags, exactly as RequestState tracks them (slot 0 = raw input,
  // slot i+1 = layer i; [slot][tier] for sent/shipped).
  std::vector<bool> computed;
  std::vector<std::array<bool, 3>> sent;
  std::vector<std::array<bool, 3>> shipped;
  std::vector<std::array<bool, 2>> vsm_recorded;

  std::vector<std::uint8_t> encode() const;
  // Throws rpc::WireError / std::runtime_error on malformed input.
  static Snapshot decode(std::span<const std::uint8_t> body);
};

class RequestJournal {
 public:
  // Opens `path` for appending (created if missing). Throws std::runtime_error
  // when the file cannot be opened.
  explicit RequestJournal(std::string path);
  ~RequestJournal();
  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  // Appends a snapshot record and flushes it to the OS, so a coordinator
  // SIGKILL any instant later still finds it on load(). Thread-safe.
  void record(const Snapshot& snapshot);
  // Appends a finish record: the request completed, its snapshots are dead.
  void finish(std::uint64_t rpc_request);

  const std::string& path() const { return path_; }

  // Replays `path` and returns the last snapshot of every request that never
  // finished, in ascending request-id order. A missing file is an empty
  // journal; a torn or corrupt tail ends the replay at the last complete
  // record instead of throwing.
  static std::vector<Snapshot> load(const std::string& path);

 private:
  void append(std::uint8_t type, std::span<const std::uint8_t> body);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace d3::runtime
