// Online execution engine (paper Fig. 2): executes a deployment plan on *real*
// tensors across the computation nodes of the three tiers, orchestrating the
// distributed and parallel processing and the communication among partitions.
//
// Nodes are modelled as in-process actors executed deterministically by the
// engine: the device node runs its layers and ships boundary tensors to the
// edge/cloud; the edge coordinator scatters VSM fused-tile inputs to its worker
// nodes, gathers their output tiles, and forwards intermediate results to the
// cloud; the cloud node finishes the inference. Every inter-node tensor is
// recorded as a message, so tests can assert both losslessness (the distributed
// output equals the single-node reference bitwise) and traffic accounting (the
// bytes on each tier boundary match core::boundary_traffic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/vsm.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/weights.h"

namespace d3::runtime {

struct MessageRecord {
  std::string from_node;
  std::string to_node;
  // What the tensor is: a layer's output, the raw input, or a VSM tile.
  std::string payload;
  core::Tier from_tier;
  core::Tier to_tier;
  std::int64_t bytes = 0;
};

struct InferenceResult {
  dnn::Tensor output;
  std::vector<MessageRecord> messages;
  // Bytes crossing each tier boundary (intra-tier messages excluded).
  std::int64_t device_edge_bytes = 0;
  std::int64_t edge_cloud_bytes = 0;
  std::int64_t device_cloud_bytes = 0;
  // Layers executed per tier (VSM tile work counts once, on the coordinator).
  std::array<std::size_t, 3> layers_executed{0, 0, 0};
  // Intra-edge scatter/gather traffic of the VSM stage, if one ran.
  std::int64_t vsm_scatter_bytes = 0;
  std::int64_t vsm_gather_bytes = 0;
};

class OnlineEngine {
 public:
  // `net` and `weights` must outlive the engine. The assignment must be
  // Prop.-1 feasible; `vsm` (optional) must cover edge-assigned layers only.
  // Throws std::invalid_argument on inconsistent plans.
  OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
               core::Assignment assignment,
               std::optional<core::FusedTilePlan> vsm = std::nullopt);

  // Runs one synergistic inference: the device node ingests `input`, the plan's
  // tiers execute their partitions, and the final layer's output is returned
  // together with the full message transcript.
  InferenceResult infer(const dnn::Tensor& input) const;

 private:
  const dnn::Network& net_;
  const exec::WeightStore& weights_;
  core::Assignment assignment_;
  std::optional<core::FusedTilePlan> vsm_;
};

}  // namespace d3::runtime
