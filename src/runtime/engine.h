// Online execution engine (paper Fig. 2): executes a deployment plan on *real*
// tensors across the computation nodes of the three tiers, orchestrating the
// distributed and parallel processing and the communication among partitions.
//
// Node model. The device node runs its layers and ships boundary tensors to
// the edge/cloud; the edge coordinator scatters VSM fused-tile inputs to its
// worker nodes, gathers their output tiles, and forwards intermediate results
// to the cloud; the cloud node finishes the inference. Every inter-node tensor
// is recorded as a sequence-numbered message, so tests can assert both
// losslessness (the distributed output equals the single-node reference
// bitwise) and traffic accounting (the bytes on each tier boundary match
// core::boundary_traffic).
//
// Transport model. Where those tensors physically live is delegated to an
// rpc::Transport (Options::transport): the engine walks the plan and records
// the transcript — a pure function of the plan, identical on every transport —
// while the transport moves payload bytes and, for remote nodes, runs the
// layers in the worker process that hosts the tier. The default
// InProcessTransport passes tensors by reference (zero-copy, the original
// behaviour); SerializingLoopback round-trips every inter-node tensor through
// the binary wire format; SocketTransport places each tier in its own OS
// process over TCP. Bitwise identity with exec::Executor holds on all three.
//
// A boundary tensor is shipped by the cheapest path the transport offers:
// first Transport::send_peer (producer pushes straight to the consumer's
// process — the coordinator never holds the bytes), else the relay path
// (materialise the producer's output at the coordinator on demand via fetch,
// then send to the consumer). Remote outputs are fetched lazily — only when a
// relay or the final result actually needs them. When the transport shards
// the VSM tile plan across real edge worker processes (has_tile_workers), the
// engine acts as the edge coordinator: it crops tile inputs, scatters them,
// runs tiles concurrently across the worker shards, and gathers outputs in
// tile order — same transcript, same bits, as every other path.
//
// Failure model. A node that loses its per-request state mid-request (worker
// death, detected as rpc::ChannelDied) is recovered tier-granularly by
// default: the engine reopens the request on the re-established node,
// re-seeds only the slots the dead incarnation held (from coordinator-held
// boundary tensors, or fetched from surviving producers), and re-runs only
// the interrupted tier — a dead tile worker's tiles re-shard across the
// survivors. Transcript records and payload shipping are tracked separately,
// so recovery is unobservable in the transcript and the output stays
// bitwise-identical; Stats counts what recovery cost. See
// docs/ARCHITECTURE.md "Failure recovery".
//
// Concurrency model. Inference is staged tier-by-tier (device -> edge ->
// cloud); Prop.-1 feasibility guarantees a layer's inputs are produced by the
// same or an earlier stage, so the staging is always dependency-safe. With
// Options::vsm_workers > 0 the edge stage computes VSM fused tiles on a real
// runtime::ThreadPool — one job per virtual edge worker node. Transcripts stay
// deterministic regardless of thread interleaving: tile inputs are extracted
// and their scatter messages recorded in tile order *before* the parallel
// region, only the pure per-tile compute runs concurrently, and gather messages
// plus output assembly happen in tile order *after* the join. The engine itself
// is immutable after construction, so any number of threads may call infer()
// concurrently (they share the tile pool); the staged API (begin / run_tier /
// finish) is what runtime::BatchScheduler uses to pipeline several in-flight
// requests across the tiers.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/vsm.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/ops.h"
#include "exec/weights.h"
#include "rpc/transport.h"
#include "runtime/message.h"
#include "runtime/thread_pool.h"

namespace d3::rpc {
class ChannelDied;
}

namespace d3::runtime {

class RequestJournal;
struct Snapshot;

struct InferenceResult {
  dnn::Tensor output;
  std::vector<MessageRecord> messages;
  // Bytes crossing each tier boundary (intra-tier messages excluded).
  std::int64_t device_edge_bytes = 0;
  std::int64_t edge_cloud_bytes = 0;
  std::int64_t device_cloud_bytes = 0;
  // Layers executed per tier (VSM tile work counts once, on the coordinator).
  std::array<std::size_t, 3> layers_executed{0, 0, 0};
  // Intra-edge scatter/gather traffic of the VSM stage, if one ran.
  std::int64_t vsm_scatter_bytes = 0;
  std::int64_t vsm_gather_bytes = 0;
};

class OnlineEngine {
 public:
  struct Options {
    // Number of pool threads computing VSM tiles concurrently (the edge worker
    // nodes of Fig. 8). 0 = sequential tile loop on the coordinator thread.
    std::size_t vsm_workers = 0;
    // Number of pool threads the per-layer kernels may use *within* one layer
    // (conv GEMM blocks split across the pool), so a single request's latency
    // scales with cores even without VSM tiling. 0 = serial kernels. Shares
    // one pool with vsm_workers (sized to the larger of the two); outputs and
    // transcripts are bitwise-identical either way.
    std::size_t intra_op_workers = 0;
    // Emulated per-tile edge-node service latency (seconds), added to each
    // tile's compute. The paper's edge pool is separate physical machines; on
    // a host with fewer cores than modelled workers, this stands in for the
    // remote node's service time — real threads genuinely overlap the waits,
    // so the sequential engine pays the sum and the threaded engine the max.
    // 0 disables. Purely additive wall-clock: outputs and transcripts are
    // unaffected. Applies to locally-hosted tiles only (a remote edge node's
    // service time is real, not emulated).
    double emulated_tile_service_seconds = 0.0;
    // Emulated per-stage service latency (seconds) added by run_tier for
    // [device, edge, cloud] — the stage actor's fixed overhead (network stack,
    // queueing) that tier pipelining overlaps across in-flight requests.
    std::array<double, 3> emulated_tier_service_seconds{0.0, 0.0, 0.0};
    // Message fabric between the computation nodes. nullptr = the shared
    // zero-copy InProcessTransport (the original engine behaviour).
    std::shared_ptr<rpc::Transport> transport = nullptr;
    // Tier-granular recovery: when a node loses its per-request state
    // mid-request (rpc::ChannelDied with the channel restored — a worker died
    // and the transport respawned it, or a fresh incarnation answered
    // kErrorState), the engine reopens the request on that node, re-seeds the
    // lost slots from coordinator-held boundary tensors, and re-runs only the
    // interrupted tier — instead of failing the request so the caller replays
    // it end-to-end. Dead tile workers with no reconnect hook are pruned and
    // their tiles re-sharded across the survivors. Outputs stay
    // bitwise-identical and transcripts byte-identical either way (messages
    // are recorded exactly once; re-runs only move payload). false restores
    // the fail-and-replay contract.
    bool tier_recovery = true;
    // Faults survived per request before the ChannelDied propagates.
    std::size_t max_recovery_attempts = 3;
    // Write-ahead request journal for coordinator failover: non-null makes the
    // engine checkpoint every request after seeding and after each completed
    // tier, and mark it finished on finish(). A standby coordinator (same
    // plan, workers surviving in listen mode) then restore()s the unfinished
    // snapshots and resumes them, re-running only the interrupted tier.
    std::shared_ptr<RequestJournal> journal = nullptr;
  };

  // Cumulative recovery counters (atomic; the engine is shared and const).
  struct Stats {
    std::uint64_t recoveries = 0;        // mid-request recoveries completed
    std::uint64_t tiers_replayed = 0;    // recoveries that re-ran lost layers
    std::uint64_t layers_replayed = 0;   // layers re-executed after a death
    std::uint64_t tensors_reseeded = 0;  // slots re-put into recovered nodes
    std::uint64_t recovery_bytes = 0;    // tensor bytes re-moved by re-seeds
  };

  // Closes the transport-side request state when a request dies, however it
  // dies (finish(), scheduler error paths, abandoned states).
  struct RpcRequestGuard {
    RpcRequestGuard(std::shared_ptr<rpc::Transport> transport, std::uint64_t id);
    ~RpcRequestGuard();
    RpcRequestGuard(const RpcRequestGuard&) = delete;
    RpcRequestGuard& operator=(const RpcRequestGuard&) = delete;

    std::shared_ptr<rpc::Transport> transport;
    std::uint64_t id = 0;
  };

  // Mutable per-request execution state. Created by begin(); opaque to callers
  // except as a token passed through run_tier()/finish(). One request's stages
  // must run in tier order and never concurrently with each other, but distinct
  // requests' states are fully independent.
  struct RequestState {
    // The request input: begin() copies it into `owned_input` (the caller's
    // tensor may die before later stages run on other threads), while the
    // synchronous infer() path just borrows the caller's tensor — `input`
    // points at whichever holds it.
    dnn::Tensor owned_input;
    const dnn::Tensor* input = nullptr;
    InferenceResult result;
    std::vector<dnn::Tensor> outputs;   // per layer, filled as stages run
    std::vector<bool> computed;
    // sent[producer index][tier]: the transcript message shipping producer's
    // tensor to that tier has been recorded. Index 0 is the raw input;
    // producer layer id is offset by one. Set before the record, so a
    // boundary is recorded exactly once even across recovery re-runs.
    std::vector<std::array<bool, 3>> sent;
    // shipped[producer index][tier]: the payload bytes actually reached the
    // tier's node — set only after the transport call returns, so a mid-send
    // channel death leaves it false and the re-entered tier walk re-ships
    // without re-recording.
    std::vector<std::array<bool, 3>> shipped;
    // vsm_recorded[tile][0=scatter,1=gather]: transcript dedupe for the VSM
    // intra-edge messages (sized lazily on first stack execution).
    std::vector<std::array<bool, 2>> vsm_recorded;
    // Faults survived so far (bounds Options::max_recovery_attempts).
    std::size_t recovery_attempts = 0;
    // True while a restore()d request re-runs its interrupted tier: unshipped
    // boundaries first try the buddy's replica store (Transport::replica_push)
    // and re-delivered payload bytes count into Stats::recovery_bytes. Cleared
    // when a tier completes.
    bool restored = false;
    // Transport-materialised copies of delivered tensors, [slot][tier]: what a
    // consumer reads when the transport round-trips payloads through the wire
    // (SerializingLoopback). Left empty by zero-copy transports.
    std::vector<std::array<std::optional<dnn::Tensor>, 3>> delivered;
    // Transport request id + teardown guard.
    std::uint64_t rpc_request = 0;
    std::unique_ptr<RpcRequestGuard> rpc_guard;
  };

  // `net` and `weights` must outlive the engine. The assignment must be
  // Prop.-1 feasible; `vsm` (optional) must cover edge-assigned layers only.
  // Throws std::invalid_argument on inconsistent plans.
  OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
               core::Assignment assignment,
               std::optional<core::FusedTilePlan> vsm = std::nullopt);
  OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
               core::Assignment assignment, std::optional<core::FusedTilePlan> vsm,
               Options options);

  // Runs one synergistic inference: the device node ingests `input`, the plan's
  // tiers execute their partitions in stage order, and the final layer's output
  // is returned together with the full message transcript. Thread-safe: may be
  // called concurrently from any number of threads.
  InferenceResult infer(const dnn::Tensor& input) const;

  // Staged execution for pipelined schedulers. Typical use:
  //   auto s = engine.begin(input);
  //   engine.run_tier(*s, core::Tier::kDevice);   // on the device stage thread
  //   engine.run_tier(*s, core::Tier::kEdge);     // on the edge stage thread
  //   engine.run_tier(*s, core::Tier::kCloud);    // on the cloud stage thread
  //   InferenceResult r = engine.finish(std::move(s));
  // Throws std::invalid_argument on input shape mismatch.
  // begin() copies `input` into the state so the request outlives the caller's
  // tensor (the scheduler's stages run on other threads, later).
  std::unique_ptr<RequestState> begin(const dnn::Tensor& input) const;
  void run_tier(RequestState& state, core::Tier tier) const;
  InferenceResult finish(std::unique_ptr<RequestState> state) const;

  // Resumable continuation form of the staged API, for event-driven front
  // ends (runtime::ServingReactor): one movable token bundling the request
  // state, a progress cursor, and the finished result, advanced one stage at
  // a time by step(). The stages are the three tiers in order plus a final
  // collect stage (the finish() call), so a single thread can interleave
  // thousands of requests by round-robining step() across their
  // continuations. Each step runs the same code as run_tier/finish —
  // outputs and transcripts are bitwise-identical to the staged API and to
  // infer() regardless of how steps of different requests interleave.
  class Continuation {
   public:
    static constexpr int kStageCount = 4;  // device, edge, cloud, collect
    Continuation(Continuation&&) noexcept = default;
    Continuation& operator=(Continuation&&) noexcept = default;

    int next_stage() const { return next_; }
    bool done() const { return next_ == kStageCount; }
    // The tier the next step() executes; only valid before the collect stage.
    core::Tier next_tier() const { return static_cast<core::Tier>(next_); }
    // The request input (the copy taken by start()); valid until the collect
    // stage consumes the state — callers that may replay end-to-end keep
    // their own copy.
    const dnn::Tensor& input() const { return state_->owned_input; }

    // Async-walk introspection for readiness-driven schedulers (step_async).
    // True when every outstanding async op has its reply drained (no
    // syscalls); a parked continuation whose ops are all settled can be
    // resumed without waiting for fd readability.
    bool ops_settled() const {
      for (const auto& op : ops_)
        if (!op.settled()) return false;
      return true;
    }
    // Unsettled async ops (reply still on the wire) — the reactor's
    // outstanding-ops gauge.
    std::size_t ops_outstanding() const {
      std::size_t n = 0;
      for (const auto& op : ops_)
        if (!op.settled()) ++n;
      return n;
    }
    // Socket fds the outstanding ops wait on, deduplicated. May flush frames
    // still sitting in a channel outbox — a parked stage's requests must be on
    // the wire before readiness of these fds means anything.
    std::vector<int> pending_fds() {
      std::vector<int> fds;
      for (auto& op : ops_) {
        if (op.settled()) continue;
        const int fd = op.fd();
        if (fd < 0) continue;
        if (std::find(fds.begin(), fds.end(), fd) == fds.end()) fds.push_back(fd);
      }
      return fds;
    }

   private:
    friend class OnlineEngine;
    Continuation() = default;
    std::unique_ptr<RequestState> state_;
    InferenceResult result_;
    int next_ = 0;
    // step_async per-tier phase machine: park until start_async's pipelined
    // admission (kBegin broadcast + input seed) settles (kAdmitting), issue
    // prefetch fetches (kStart), park until they land then issue the tier's
    // walk (kFetching), park until every issued op settles then apply effects
    // and advance (kSettling). kCollecting parks the collect stage on its
    // issued final-output fetch so even the last round-trip overlaps other
    // requests' compute.
    enum class Phase { kAdmitting, kStart, kFetching, kSettling, kCollecting };
    Phase phase_ = Phase::kStart;
    int slept_stage_ = -1;  // emulated tier latency paid once per stage
    std::vector<rpc::Transport::OpHandle> ops_;
    std::vector<dnn::LayerId> fetch_ids_;  // parallel to ops_ in kFetching
    // Parallel to ops_ in kSettling: success-side state mutation for each op
    // (mark shipped, store a wired copy), applied only after the op completes.
    std::vector<std::function<void(rpc::Transport::OpHandle&)>> effects_;
  };

  // begin() in continuation form: copies `input` into the state.
  Continuation start(const dnn::Tensor& input) const;
  // start() for readiness-driven schedulers: admission round-trips (the
  // per-node kBegin broadcast and the device input seed) are *issued* as
  // pipelined sends instead of awaited, and the returned continuation parks
  // on them in its first step_async (Phase::kAdmitting). On transports
  // without an async facade this degenerates to start(). Blocking step()
  // must not drive a continuation made here until its admission has settled
  // (step_async once); the reactor's readiness mode is the intended caller.
  Continuation start_async(const dnn::Tensor& input) const;
  // Rebuilds an in-flight request from a journal snapshot, for a standby
  // coordinator taking over after the primary died. Re-opens the journalled
  // request id on the transport (the workers' per-request slots survive the
  // primary in listen mode; kBegin is idempotent) and returns a continuation
  // positioned at the interrupted stage — step() it to completion exactly like
  // a fresh start(). Requires every tier node to be remote on the transport
  // (lost coordinator-local outputs are only re-fetchable from workers) and
  // the same deployment plan: a plan-hash mismatch throws
  // std::invalid_argument.
  Continuation restore(const Snapshot& snapshot) const;
  // Drops a continuation WITHOUT closing the transport-side request (no kEnd):
  // the workers keep their slots and the journal keeps its snapshots, exactly
  // the state a dead coordinator leaves behind. This is the in-process way to
  // exercise (and benchmark) the failover path: abandon mid-request, then
  // restore() from the journal.
  void abandon(Continuation&& c) const;
  // Runs the continuation's next stage; returns done() afterwards. A stage
  // that throws (transport death past the recovery budget) leaves the cursor
  // where it was — the caller replays from a fresh start() or propagates.
  bool step(Continuation& c) const;

  // Non-blocking variant of step() for readiness-driven schedulers. Instead of
  // blocking on the wire, a tier stage advances through a three-phase walk:
  //
  //   kStart    issue prefetch fetches for every remote producer output the
  //             tier walk will materialise at the coordinator;
  //   kFetching once the fetches land, run the tier walk in *issue* mode —
  //             boundary puts and run-layer/run-stack verbs are queued on
  //             their channels (coalesced into pipelined writes) instead of
  //             awaited one by one;
  //   kSettling once every issued op's reply lands, apply the success effects
  //             (shipped flags, wired copies), recover from any channel death,
  //             checkpoint, and advance to the next tier.
  //
  // kParked means outstanding ops are unsettled: the caller should wait for
  // readability on Continuation::pending_fds() (or sweep ops_settled()) and
  // call step_async again — the reactor keeps serving other requests
  // meanwhile, which is what overlaps wire wait with compute. kReady means
  // call again now. Record order is fixed at issue time in walk order, and
  // per-channel frames are issued in exactly the blocking walk's order, so
  // outputs stay bitwise-identical and transcripts byte-identical to step()
  // and infer() on every transport. On transports whose issue_* verbs
  // complete synchronously (in-process, loopback, fault-injection decorators)
  // the effects apply inline and the walk degenerates to the blocking one.
  // Throws like step(); the cursor semantics on throw are identical.
  enum class StepStatus { kDone, kReady, kParked };
  StepStatus step_async(Continuation& c) const;

  // Extracts the result of a done() continuation.
  InferenceResult take(Continuation&& c) const;

  // Width of the VSM tile stage: the number of emulated edge worker nodes
  // tiles may occupy concurrently (0 = sequential tile loop). The shared pool
  // may be larger when intra_op_workers exceeds this; tile execution is still
  // capped at this width.
  std::size_t vsm_workers() const { return options_.vsm_workers; }
  const core::Assignment& assignment() const { return assignment_; }
  const std::optional<core::FusedTilePlan>& vsm_plan() const { return vsm_; }
  const dnn::Network& network() const { return net_; }
  const std::shared_ptr<rpc::Transport>& transport() const { return transport_; }
  Stats stats() const;

 private:
  // One walk of the plan at `tier` (the pre-recovery run_tier body); the
  // public run_tier wraps it in the ChannelDied recovery loop.
  void run_tier_pass(RequestState& state, core::Tier tier) const;
  // run_tier_pass in issue mode (step_async's kFetching phase): identical walk
  // and record order, but remote verbs are issued, not awaited — each op lands
  // in `ops` with its success effect in `effects`. Ops already settled at
  // issue time (synchronous transports) have their effects applied inline.
  void run_tier_walk_async(
      RequestState& state, core::Tier tier, std::vector<rpc::Transport::OpHandle>& ops,
      std::vector<std::function<void(rpc::Transport::OpHandle&)>>& effects) const;
  // The producers whose outputs the next run_tier_pass at `tier` would
  // materialise at the coordinator (computed on a remote node, never fetched,
  // needed by an unshipped boundary): what kStart prefetches concurrently.
  // Over- and under-approximation are both safe — a spare fetch only moves
  // bytes, a missed one falls back to the walk's blocking materialise.
  std::vector<dnn::LayerId> prefetch_targets(const RequestState& state,
                                             core::Tier tier) const;
  // Tier-granular recovery after `died`: reopen the request on the lost node,
  // re-seed the slots it held from coordinator-held (or survivor-fetched)
  // tensors, and un-mark lost layers so the re-entered walk re-runs exactly
  // the interrupted tier. Returns false when the failure is not recoverable
  // here (unknown node, channel not restored and not a prunable tile worker)
  // — the caller rethrows.
  bool recover(RequestState& state, const rpc::ChannelDied& died) const;
  // The recovery policy gate shared by every ChannelDied catch site: applies
  // Options::tier_recovery and the per-request attempts bound, runs
  // recover(), and counts the attempt. False = the caller rethrows.
  bool try_recover(RequestState& state, const rpc::ChannelDied& died) const;
  // Seeds the raw input into the device node, recovering in place if the node
  // dies on the spot (shared by begin() and infer()).
  void seed_input(RequestState& state) const;
  // Appends a journal snapshot of `state` at continuation cursor `next_stage`
  // (no-op without Options::journal).
  void checkpoint(RequestState& state, int next_stage) const;
  void run_vsm_stack(RequestState& state) const;
  // Edge fan-out: scatter tile crops to the transport's worker shards, run
  // them concurrently (one lane per physical worker), gather in tile order.
  void run_vsm_stack_sharded(RequestState& state, const dnn::Tensor& stack_input) const;
  // Lazily materialises layer `id`'s output at the coordinator (fetching from
  // the remote node that computed it, if needed) and returns it.
  const dnn::Tensor& materialize(RequestState& state, dnn::LayerId id) const;
  // Transcript + traffic record for one VSM scatter/gather message. Byte
  // counts are a pure function of the tile plan — shared by the local and
  // remote stack paths, so their transcripts cannot diverge. With a non-null
  // `payload` (local execution) the tile round-trips the transport; the
  // materialised wire copy, if any, is returned for the caller to compute on.
  std::optional<dnn::Tensor> record_vsm_message(RequestState& state, std::size_t tile,
                                                bool gather,
                                                const dnn::Tensor* payload) const;
  // The tensor layer `producer`'s consumer at `at` computes on: the
  // transport-materialised wire copy when one exists, else the canonical
  // coordinator-held tensor.
  const dnn::Tensor* resolve_input(RequestState& state, dnn::LayerId producer,
                                   core::Tier at) const;
  exec::OpContext op_context() const {
    return exec::OpContext{nullptr, op_parallel_ ? &op_parallel_ : nullptr};
  }

  const dnn::Network& net_;
  const exec::WeightStore& weights_;
  core::Assignment assignment_;
  std::optional<core::FusedTilePlan> vsm_;
  Options options_;
  std::shared_ptr<rpc::Transport> transport_;
  // FNV-1a over the plan's binary form: stamped into every snapshot and
  // checked by restore() so a standby with a different plan fails loudly.
  std::uint64_t plan_hash_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // null in sequential mode
  exec::ParallelFor op_parallel_;     // intra-op hook over pool_; empty if disabled
  // Recovery counters (see Stats). Mutable: infer() is const and thread-safe.
  mutable std::atomic<std::uint64_t> recoveries_{0};
  mutable std::atomic<std::uint64_t> tiers_replayed_{0};
  mutable std::atomic<std::uint64_t> layers_replayed_{0};
  mutable std::atomic<std::uint64_t> tensors_reseeded_{0};
  mutable std::atomic<std::uint64_t> recovery_bytes_{0};
};

}  // namespace d3::runtime
