// Online execution engine (paper Fig. 2): executes a deployment plan on *real*
// tensors across the computation nodes of the three tiers, orchestrating the
// distributed and parallel processing and the communication among partitions.
//
// Nodes are modelled as in-process actors: the device node runs its layers and
// ships boundary tensors to the edge/cloud; the edge coordinator scatters VSM
// fused-tile inputs to its worker nodes, gathers their output tiles, and
// forwards intermediate results to the cloud; the cloud node finishes the
// inference. Every inter-node tensor is recorded as a sequence-numbered
// message, so tests can assert both losslessness (the distributed output equals
// the single-node reference bitwise) and traffic accounting (the bytes on each
// tier boundary match core::boundary_traffic).
//
// Concurrency model. Inference is staged tier-by-tier (device -> edge ->
// cloud); Prop.-1 feasibility guarantees a layer's inputs are produced by the
// same or an earlier stage, so the staging is always dependency-safe. With
// Options::vsm_workers > 0 the edge stage computes VSM fused tiles on a real
// runtime::ThreadPool — one job per virtual edge worker node. Transcripts stay
// deterministic regardless of thread interleaving: tile inputs are extracted
// and their scatter messages recorded in tile order *before* the parallel
// region, only the pure per-tile compute runs concurrently, and gather messages
// plus output assembly happen in tile order *after* the join. The engine itself
// is immutable after construction, so any number of threads may call infer()
// concurrently (they share the tile pool); the staged API (begin / run_tier /
// finish) is what runtime::BatchScheduler uses to pipeline several in-flight
// requests across the tiers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/vsm.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/ops.h"
#include "exec/weights.h"
#include "runtime/thread_pool.h"

namespace d3::runtime {

struct MessageRecord {
  // Position in this request's transcript (0, 1, 2, ...). Deterministic for a
  // given plan and input: independent of thread interleaving and of how many
  // requests are in flight.
  std::uint64_t seq = 0;
  std::string from_node;
  std::string to_node;
  // What the tensor is: a layer's output, the raw input, or a VSM tile.
  std::string payload;
  core::Tier from_tier;
  core::Tier to_tier;
  std::int64_t bytes = 0;
};

struct InferenceResult {
  dnn::Tensor output;
  std::vector<MessageRecord> messages;
  // Bytes crossing each tier boundary (intra-tier messages excluded).
  std::int64_t device_edge_bytes = 0;
  std::int64_t edge_cloud_bytes = 0;
  std::int64_t device_cloud_bytes = 0;
  // Layers executed per tier (VSM tile work counts once, on the coordinator).
  std::array<std::size_t, 3> layers_executed{0, 0, 0};
  // Intra-edge scatter/gather traffic of the VSM stage, if one ran.
  std::int64_t vsm_scatter_bytes = 0;
  std::int64_t vsm_gather_bytes = 0;
};

class OnlineEngine {
 public:
  struct Options {
    // Number of pool threads computing VSM tiles concurrently (the edge worker
    // nodes of Fig. 8). 0 = sequential tile loop on the coordinator thread.
    std::size_t vsm_workers = 0;
    // Number of pool threads the per-layer kernels may use *within* one layer
    // (conv GEMM blocks split across the pool), so a single request's latency
    // scales with cores even without VSM tiling. 0 = serial kernels. Shares
    // one pool with vsm_workers (sized to the larger of the two); outputs and
    // transcripts are bitwise-identical either way.
    std::size_t intra_op_workers = 0;
    // Emulated per-tile edge-node service latency (seconds), added to each
    // tile's compute. The paper's edge pool is separate physical machines; on
    // a host with fewer cores than modelled workers, this stands in for the
    // remote node's service time — real threads genuinely overlap the waits,
    // so the sequential engine pays the sum and the threaded engine the max.
    // 0 disables. Purely additive wall-clock: outputs and transcripts are
    // unaffected.
    double emulated_tile_service_seconds = 0.0;
    // Emulated per-stage service latency (seconds) added by run_tier for
    // [device, edge, cloud] — the stage actor's fixed overhead (network stack,
    // queueing) that tier pipelining overlaps across in-flight requests.
    std::array<double, 3> emulated_tier_service_seconds{0.0, 0.0, 0.0};
  };

  // Mutable per-request execution state. Created by begin(); opaque to callers
  // except as a token passed through run_tier()/finish(). One request's stages
  // must run in tier order and never concurrently with each other, but distinct
  // requests' states are fully independent.
  struct RequestState {
    // The request input: begin() copies it into `owned_input` (the caller's
    // tensor may die before later stages run on other threads), while the
    // synchronous infer() path just borrows the caller's tensor — `input`
    // points at whichever holds it.
    dnn::Tensor owned_input;
    const dnn::Tensor* input = nullptr;
    InferenceResult result;
    std::vector<dnn::Tensor> outputs;   // per layer, filled as stages run
    std::vector<bool> computed;
    // sent[producer index][tier]: producer's tensor already shipped to that
    // tier. Index 0 is the raw input; producer layer id is offset by one.
    std::vector<std::array<bool, 3>> sent;
  };

  // `net` and `weights` must outlive the engine. The assignment must be
  // Prop.-1 feasible; `vsm` (optional) must cover edge-assigned layers only.
  // Throws std::invalid_argument on inconsistent plans.
  OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
               core::Assignment assignment,
               std::optional<core::FusedTilePlan> vsm = std::nullopt);
  OnlineEngine(const dnn::Network& net, const exec::WeightStore& weights,
               core::Assignment assignment, std::optional<core::FusedTilePlan> vsm,
               Options options);

  // Runs one synergistic inference: the device node ingests `input`, the plan's
  // tiers execute their partitions in stage order, and the final layer's output
  // is returned together with the full message transcript. Thread-safe: may be
  // called concurrently from any number of threads.
  InferenceResult infer(const dnn::Tensor& input) const;

  // Staged execution for pipelined schedulers. Typical use:
  //   auto s = engine.begin(input);
  //   engine.run_tier(*s, core::Tier::kDevice);   // on the device stage thread
  //   engine.run_tier(*s, core::Tier::kEdge);     // on the edge stage thread
  //   engine.run_tier(*s, core::Tier::kCloud);    // on the cloud stage thread
  //   InferenceResult r = engine.finish(std::move(s));
  // Throws std::invalid_argument on input shape mismatch.
  // begin() copies `input` into the state so the request outlives the caller's
  // tensor (the scheduler's stages run on other threads, later).
  std::unique_ptr<RequestState> begin(const dnn::Tensor& input) const;
  void run_tier(RequestState& state, core::Tier tier) const;
  InferenceResult finish(std::unique_ptr<RequestState> state) const;

  // Width of the VSM tile stage: the number of emulated edge worker nodes
  // tiles may occupy concurrently (0 = sequential tile loop). The shared pool
  // may be larger when intra_op_workers exceeds this; tile execution is still
  // capped at this width.
  std::size_t vsm_workers() const { return options_.vsm_workers; }
  const core::Assignment& assignment() const { return assignment_; }
  const std::optional<core::FusedTilePlan>& vsm_plan() const { return vsm_; }
  const dnn::Network& network() const { return net_; }

 private:
  void run_vsm_stack(RequestState& state) const;
  exec::OpContext op_context() const {
    return exec::OpContext{nullptr, op_parallel_ ? &op_parallel_ : nullptr};
  }

  const dnn::Network& net_;
  const exec::WeightStore& weights_;
  core::Assignment assignment_;
  std::optional<core::FusedTilePlan> vsm_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  // null in sequential mode
  exec::ParallelFor op_parallel_;     // intra-op hook over pool_; empty if disabled
};

}  // namespace d3::runtime
