#include "runtime/address_book.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace d3::runtime {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& line, const std::string& why) {
  throw std::invalid_argument("address book line " + std::to_string(line_no) + ": \"" + line +
                              "\" — " + why);
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

// Parses "host:port" with a strictly numeric, in-range port. The full raw
// line rides along for error messages.
Endpoint parse_endpoint(const std::string& name, const std::string& addr, std::size_t line_no,
                        const std::string& line) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
    fail(line_no, line, "expected host:port");
  const std::string host = addr.substr(0, colon);
  const std::string port_text = addr.substr(colon + 1);
  for (const char c : port_text)
    if (!std::isdigit(static_cast<unsigned char>(c))) fail(line_no, line, "invalid port");
  unsigned long port = 0;
  try {
    port = std::stoul(port_text);
  } catch (const std::exception&) {
    fail(line_no, line, "invalid port");
  }
  if (port == 0 || port > 65535) fail(line_no, line, "port out of range (1..65535)");
  return Endpoint{name, host, static_cast<std::uint16_t>(port)};
}

}  // namespace

AddressBook AddressBook::parse(const std::string& text) {
  enum class Section { kNone, kCoordinator, kWorkers, kStandbys };
  AddressBook book;
  Section section = Section::kNone;
  bool saw_workers = false;
  bool saw_standbys = false;

  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, trim(raw), "unterminated section header");
      const std::string name = line.substr(1, line.size() - 2);
      if (name == "coordinator") {
        section = Section::kCoordinator;
      } else if (name == "workers") {
        section = Section::kWorkers;
        saw_workers = true;
      } else if (name == "standbys") {
        section = Section::kStandbys;
        saw_standbys = true;
      } else {
        fail(line_no, trim(raw), "unknown section [" + name + "]");
      }
      continue;
    }

    std::istringstream fields(line);
    std::string name;
    std::string addr;
    std::string extra;
    fields >> name >> addr;
    if (name.empty() || addr.empty()) fail(line_no, trim(raw), "expected \"name host:port\"");
    if (fields >> extra) fail(line_no, trim(raw), "trailing garbage after host:port");
    if (book.find(name) != nullptr) fail(line_no, trim(raw), "duplicate name \"" + name + "\"");
    const Endpoint endpoint = parse_endpoint(name, addr, line_no, trim(raw));
    switch (section) {
      case Section::kNone:
        fail(line_no, trim(raw), "entry before any section header");
      case Section::kCoordinator:
        if (book.coordinator_.has_value())
          fail(line_no, trim(raw), "second entry in [coordinator]");
        book.coordinator_ = endpoint;
        break;
      case Section::kWorkers:
        book.workers_.push_back(endpoint);
        break;
      case Section::kStandbys:
        book.standbys_.push_back(endpoint);
        break;
    }
  }

  if (!saw_workers || book.workers_.empty())
    throw std::invalid_argument("address book: missing or empty [workers] section");
  if (!saw_standbys)
    throw std::invalid_argument("address book: missing [standbys] section");
  return book;
}

AddressBook AddressBook::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::invalid_argument("address book: cannot read \"" + path + "\"");
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

const Endpoint* AddressBook::find(const std::string& name) const {
  if (coordinator_ && coordinator_->name == name) return &*coordinator_;
  for (const Endpoint& e : workers_)
    if (e.name == name) return &e;
  for (const Endpoint& e : standbys_)
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace d3::runtime
