// Static deployment roster for the zero-human failover setup: who listens
// where, so discovery is a config file instead of fork/exec plumbing.
//
// The format is a strict INI-like text file:
//
//   # comments run to end of line; blank lines are ignored
//   [coordinator]            # optional: the active coordinator's beacon
//   beacon 127.0.0.1:7000
//
//   [workers]                # required, at least one entry
//   device0 127.0.0.1:7001
//   edge0   127.0.0.1:7002
//   cloud0  127.0.0.1:7003
//   edge1   127.0.0.1:7004   # extra edgeN entries are VSM tile workers
//
//   [standbys]               # required section (entries optional)
//   standby0 127.0.0.1:7100
//
// Every consumer loads the same file: `d3_node --book` finds its own listen
// endpoint in [workers], the active coordinator dials every worker and binds
// its beacon from [coordinator], and `d3_coordinator --standby` monitors the
// beacon and dials the workers at promotion time.
//
// Parsing is deliberately unforgiving — a typo in the roster must fail the
// process at startup, not strand a standby dialling the wrong port during a
// real outage. Duplicate names, malformed ports, trailing tokens, unknown
// sections and a missing [standbys] section all raise std::invalid_argument
// quoting the offending line.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace d3::runtime {

struct Endpoint {
  std::string name;
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
};

class AddressBook {
 public:
  // Parses the text of an address book. Throws std::invalid_argument on any
  // malformation, quoting the offending line and its 1-based number.
  static AddressBook parse(const std::string& text);

  // Reads and parses the file at `path`. Throws std::invalid_argument on an
  // unreadable file or malformed content.
  static AddressBook load(const std::string& path);

  // The active coordinator's beacon endpoint, when the [coordinator] section
  // has one.
  const std::optional<Endpoint>& coordinator() const { return coordinator_; }

  // Listen-mode workers in file order. The three tier names device0 / edge0 /
  // cloud0 are the inference tiers; any further entries are VSM tile workers
  // attached in file order.
  const std::vector<Endpoint>& workers() const { return workers_; }

  // Standby coordinators in file order.
  const std::vector<Endpoint>& standbys() const { return standbys_; }

  // Looks a name up across every section; nullptr when absent.
  const Endpoint* find(const std::string& name) const;

 private:
  std::optional<Endpoint> coordinator_;
  std::vector<Endpoint> workers_;
  std::vector<Endpoint> standbys_;
};

}  // namespace d3::runtime
