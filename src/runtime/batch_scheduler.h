// Pipelined admission of multiple in-flight inference requests across the
// device / edge / cloud tiers (the ROADMAP's "batching + async" direction).
//
// Each tier is one stage thread with a FIFO queue, mirroring the physical
// topology: one device node, one edge coordinator (which fans VSM tiles out to
// the engine's worker pool), one cloud node. A request flows device -> edge ->
// cloud; while request k occupies the edge stage, request k+1 runs on the
// device stage and request k-1 on the cloud stage — real tier pipelining, the
// execution-time analogue of sim::batch_makespan_seconds.
//
// Admission control. Options::admission_capacity bounds the device-stage
// waiting queue; when a new request arrives at a full queue the *oldest*
// still-waiting request is dropped in its favour — the runtime analogue of
// sim::StreamOptions::drop_when_busy, where a camera pipeline overwrites stale
// frames rather than queueing unboundedly (capacity 1 is exactly the
// simulator's depth-1 drop-oldest source). Dropped requests complete
// immediately: wait() throws RequestDropped for them and stats() counts them.
//
// Determinism: a request's three stages always run in tier order, each on
// exactly one thread, handed off through a mutex (so all writes of stage s
// happen-before stage s+1 reads them). Per-request transcripts are therefore
// byte-identical to OnlineEngine::infer() on the same input, regardless of how
// many requests are in flight or how stages interleave across requests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/engine.h"

namespace d3::runtime {

// Thrown by wait() for a request that was dropped by admission control.
class RequestDropped : public std::runtime_error {
 public:
  explicit RequestDropped(std::size_t id)
      : std::runtime_error("BatchScheduler: request " + std::to_string(id) +
                           " dropped by admission control") {}

 protected:
  // For subclasses with their own story (runtime::RequestShed).
  explicit RequestDropped(const std::string& what) : std::runtime_error(what) {}
};

class BatchScheduler {
 public:
  struct Options {
    // Maximum requests waiting in the device-stage queue (excluding the one
    // being processed). 0 = unbounded (no drops, the original behaviour).
    std::size_t admission_capacity = 0;
    // Full-replay fallback: when a stage fails with rpc::ChannelDied — the
    // engine's own tier-granular recovery was disabled, exhausted, or
    // impossible (no reconnect hook) — restart the request from its retained
    // input up to this many times instead of failing it. Transcript purity
    // makes the replayed result byte-identical. 0 = fail the request (the
    // original behaviour; the caller re-submits).
    std::size_t max_replays = 0;
  };

  struct Stats {
    std::size_t submitted = 0;  // admitted by submit()
    std::size_t completed = 0;  // ran all three stages
    std::size_t dropped = 0;    // evicted by drop-oldest admission control
    std::size_t replayed = 0;   // end-to-end replays after channel deaths
  };

  // `engine` must outlive the scheduler. Spawns one stage thread per tier.
  explicit BatchScheduler(const OnlineEngine& engine);
  BatchScheduler(const OnlineEngine& engine, Options options);
  // Blocks until every admitted request has completed, then joins the stage
  // threads. Uncollected results are discarded.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Admits one request; returns its id (0-based, in admission order). Throws
  // std::invalid_argument immediately on input shape mismatch. At a full
  // admission queue, the oldest waiting request is dropped to make room.
  // Thread-safe.
  std::size_t submit(const dnn::Tensor& input);

  // Blocks until request `id` has left the cloud stage, then returns its
  // result (exactly once per id; a second call for the same id throws).
  // Rethrows any exception the request's stages raised; throws RequestDropped
  // if admission control evicted it.
  InferenceResult wait(std::size_t id);

  // Waits for every admitted request and returns the results of those that
  // completed, in admission order (dropped requests are skipped — check
  // stats().dropped). Results another thread already collected via wait() are
  // skipped too, so drain() is safe to run concurrently with wait() and with
  // admission-control drops — it never throws for a request someone else
  // claimed, and never hangs on one.
  std::vector<InferenceResult> drain();

  std::size_t submitted() const;
  // Requests that have left the pipeline (completed or dropped).
  std::size_t completed() const;
  Stats stats() const;

 private:
  struct Request {
    // The request's whole execution as a resumable token: each stage thread
    // advances it one step (the reactor front end shares this representation).
    std::optional<OnlineEngine::Continuation> cont;
    InferenceResult result;
    std::exception_ptr error;
    std::size_t replays = 0;  // end-to-end restarts consumed (max_replays)
    bool done = false;
    bool collected = false;
  };

  void stage_loop(std::size_t stage);

  const OnlineEngine& engine_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable stage_work_[3];
  std::condition_variable request_done_;
  std::deque<std::size_t> stage_queue_[3];
  std::vector<std::unique_ptr<Request>> requests_;
  std::size_t completed_ = 0;  // completed or dropped: requests no longer in flight
  std::size_t dropped_ = 0;
  std::size_t replayed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> stages_;
};

}  // namespace d3::runtime
