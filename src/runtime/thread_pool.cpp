#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace d3::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (...) {
      // A throwing fire-and-forget job must not take down the process (and a
      // foreign job must not throw into another call's helping caller).
      // parallel_for's jobs capture their exceptions internally and rethrow
      // on their own caller, so nothing is lost for the structured path.
    }
  }
}

bool ThreadPool::run_one() {
  std::function<void()> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  try {
    job();
  } catch (...) {  // see worker_loop
  }
  return true;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {  // no dispatch overhead for the degenerate grid
    body(0);
    return;
  }

  // Per-call completion state, shared with the jobs so concurrent parallel_for
  // calls from different requests never interfere.
  struct CallState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<CallState>();
  state->remaining = n;

  for (std::size_t i = 0; i < n; ++i) {
    submit([state, i, &body] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        last = --state->remaining == 0;
      }
      if (last) state->done_cv.notify_all();
    });
  }

  // Help drain the queue: the caller may pick up jobs from *other* concurrent
  // calls too, which is fine — work is work. Once the queue is empty, block on
  // this call's completion (its last jobs may still be running on workers).
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->remaining == 0) break;
    }
    if (!run_one()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done_cv.wait(lock, [&] { return state->remaining == 0; });
      break;
    }
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace d3::runtime
