// Event-driven serving front end: one reactor thread multiplexing thousands
// of in-flight requests over the engine's continuation API.
//
// Where runtime::BatchScheduler dedicates one blocking thread per tier (three
// lanes, each request handed thread-to-thread), the reactor holds every
// admitted request as an OnlineEngine::Continuation and pumps them from a
// single event loop: admit waiting requests up to Options::max_inflight, run
// exactly one stage of the highest-priority runnable request, repeat. The
// loop sleeps on an rpc::Poller (epoll — the same multiplexer that drives the
// d3_node worker serve loop) with an rpc::EventFd registered as the wake-up
// channel, so submissions from any thread interrupt an idle reactor without
// polling. With Options::readiness_dispatch the loop pumps stages through
// OnlineEngine::step_async instead of step(): a stage whose wire ops are
// still in flight parks, its channel fds join the same epoll set, and the
// reactor serves other requests until readability resumes it — wire wait
// overlaps compute and every worker channel stays busy from one thread.
//
// Admission control stacks three policies:
//   * drop-oldest — Options::admission_capacity bounds the waiting queue; a
//     new arrival at a full queue evicts the stalest waiting request
//     (RequestDropped), exactly like BatchScheduler.
//   * latency-aware shedding — with Options::pipeline set, a request whose
//     deadline is already beaten by sim::predicted_completion_seconds at its
//     queue position is refused at submit() (RequestShed): a request doomed
//     by queue depth never consumes capacity.
//   * deadline expiry — a request whose deadline passes while waiting or
//     between stages is abandoned (RequestShed, Stats::expired).
//
// Determinism: each request's stages still run strictly in order, all on the
// reactor thread, so per-request outputs are bitwise-identical and
// transcripts byte-identical to OnlineEngine::infer(), BatchScheduler, and
// each other — regardless of how stages of different requests interleave.
// See docs/ARCHITECTURE.md "Serving front end".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rpc/socket.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "sim/pipeline.h"

namespace d3::runtime {

// Thrown by wait() for requests refused or abandoned by the latency-aware
// shedding policy (predicted or actual deadline miss). Derives from
// RequestDropped so drain() and callers that already tolerate admission drops
// absorb sheds the same way.
class RequestShed : public RequestDropped {
 public:
  RequestShed(std::size_t id, const std::string& why)
      : RequestDropped("ServingReactor: request " + std::to_string(id) + " shed (" + why +
                       ")") {}
};

class ServingReactor {
 public:
  struct Options {
    // Concurrently begun (admitted, not yet finished) requests the reactor
    // holds open at once; arrivals beyond it wait in the admission queue.
    std::size_t max_inflight = 1024;
    // Waiting-queue bound with drop-oldest eviction (0 = unbounded).
    std::size_t admission_capacity = 0;
    // End-to-end replays after a channel death the engine could not absorb
    // (same contract as BatchScheduler::Options::max_replays).
    std::size_t max_replays = 0;
    // Deadline applied to submissions that do not carry their own
    // (SubmitOptions::deadline_seconds < 0). 0 = no deadline.
    double default_deadline_seconds = 0.0;
    // Enables predictive shedding: a deadline-carrying request whose
    // sim::predicted_completion_seconds at its queue position already exceeds
    // the deadline is refused at submit().
    std::optional<sim::PipelinePlan> pipeline;
    // true: queue submissions but admit nothing until resume() — lets tests
    // and benches pile up a burst, then watch the reactor absorb it.
    bool start_paused = false;
    // true: pump stages through OnlineEngine::step_async and PARK a
    // continuation whose wire ops are still in flight instead of blocking on
    // the reply — its channel fds join the epoll set and the stage resumes on
    // readability. N requests over M worker channels then keep all M channels
    // busy from this one thread: wire wait overlaps other requests' compute.
    // false (default): blocking step(), one wire round-trip at a time.
    bool readiness_dispatch = false;
  };

  struct SubmitOptions {
    // Seconds from submission until the result is worthless. < 0 = use
    // Options::default_deadline_seconds; 0 = no deadline.
    double deadline_seconds = -1.0;
    // Higher-priority requests are stepped first; equal priorities
    // round-robin stage-by-stage (FIFO admission order).
    int priority = 0;
  };

  struct Stats {
    std::size_t submitted = 0;     // every id handed out by submit()
    std::size_t completed = 0;     // produced a result
    std::size_t dropped = 0;       // evicted by drop-oldest admission
    std::size_t shed = 0;          // refused up front by predictive shedding
    std::size_t expired = 0;       // deadline passed while queued or in flight
    std::size_t replayed = 0;      // end-to-end replays after channel deaths
    std::size_t max_inflight = 0;  // high-water mark of concurrent open requests
    std::size_t steps = 0;         // engine stages pumped by the reactor
    std::size_t shutdown_shed = 0;    // requests expired deterministically by shutdown()
    std::size_t heartbeat_deaths = 0;  // ChannelDied raised by reactor liveness probes
    // Readiness dispatch only:
    std::size_t parked_stages = 0;  // stages parked on in-flight wire ops
    double wire_wait_ms = 0.0;      // total parked time — wire wait the reactor
                                    // overlapped with other requests' stages
    std::size_t outstanding_ops_high_water = 0;  // peak unsettled wire ops
                                                 // across parked stages
  };

  // `engine` must outlive the reactor. Spawns the reactor thread.
  explicit ServingReactor(const OnlineEngine& engine);
  ServingReactor(const OnlineEngine& engine, Options options);
  // Completes every admitted request (resuming a paused reactor first), then
  // joins the reactor thread. Uncollected results are discarded.
  ~ServingReactor();

  ServingReactor(const ServingReactor&) = delete;
  ServingReactor& operator=(const ServingReactor&) = delete;

  // Admits one request; returns its id (0-based, in submission order).
  // Throws std::invalid_argument immediately on input shape mismatch. Ids are
  // handed out even to requests refused by shedding — their wait() throws
  // RequestShed. Thread-safe.
  std::size_t submit(const dnn::Tensor& input);
  std::size_t submit(const dnn::Tensor& input, const SubmitOptions& options);

  // Blocks until request `id` is done, then returns its result (exactly once
  // per id; a second call throws). Rethrows stage failures; RequestDropped /
  // RequestShed for requests admission control refused.
  InferenceResult wait(std::size_t id);

  // Waits for every submitted request and returns the results of those that
  // completed, in submission order. Dropped and shed requests are skipped, as
  // are results another thread already collected via wait().
  std::vector<InferenceResult> drain();

  // Starts admission on a reactor constructed with start_paused.
  void resume();

  // Deterministic teardown: every request not yet finished — waiting or
  // admitted mid-flight — is shed with a distinct "reactor shutdown" reason
  // (its wait() throws RequestShed immediately instead of blocking until the
  // result or a deadline). In-flight continuations are torn down on the
  // reactor thread (single-mutator preserved: a stage already executing
  // completes first, then the shed pass claims the request). Blocks until
  // every ticket is finished; submit() afterwards throws std::logic_error.
  // Idempotent. The destructor does NOT shed — it completes admitted work.
  void shutdown();

  Stats stats() const;
  // End-to-end seconds (submit -> result) of completed requests, completion
  // order. The serving bench derives its p50/p99 from this.
  std::vector<double> latencies_seconds() const;
  // Request ids in completion order (priority tests read this).
  std::vector<std::size_t> completion_order() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Ticket {
    dnn::Tensor input;  // retained: replays and late admission both restart from it
    int priority = 0;
    double deadline_seconds = 0.0;
    Clock::time_point submitted_at;
    std::optional<Clock::time_point> deadline_at;
    std::optional<OnlineEngine::Continuation> cont;  // set once admitted
    InferenceResult result;
    std::exception_ptr error;
    std::size_t replays = 0;
    bool done = false;
    bool collected = false;
    // Readiness dispatch: channel fds this parked stage waits on, when it
    // parked, and how many ops it held (all maintained under the mutex).
    std::vector<int> parked_fds;
    std::optional<Clock::time_point> parked_since;
    std::size_t parked_ops = 0;
  };

  void reactor_loop();
  // The shutdown() shed pass: runs on the reactor thread at the loop top so
  // the single-mutator invariant holds. Lock held.
  void shed_all_locked();
  // Sheds every waiting request whose deadline has passed. Lock held.
  void expire_waiting_locked(Clock::time_point now);
  // Milliseconds until the earliest waiting deadline (-1 = none: sleep until
  // signalled). Lock held.
  int idle_timeout_ms_locked(Clock::time_point now) const;
  // Marks `ticket` finished and does the completion bookkeeping. Lock held.
  void finish_locked(std::size_t id, Ticket& ticket, Clock::time_point now);
  // Moves a parked ticket back into its priority bucket, dropping its fd
  // registrations (refcounted — an fd leaves the epoll set only when its last
  // parked ticket does). Lock held.
  void unpark_locked(std::size_t id, Clock::time_point now);
  // No-syscall pass over parked stages: replies drained on this thread by
  // another ticket's stage or a heartbeat probe settle ops without the fd
  // ever reading as readable again, so epoll wake-ups alone would strand
  // them. Also unparks expired deadlines (the step path sheds those). Lock
  // held.
  void sweep_parked_locked(Clock::time_point now);

  const OnlineEngine& engine_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<Ticket>> tickets_;
  std::deque<std::size_t> waiting_;  // submitted, not yet begun
  // Admitted requests ready for their next stage, highest priority first;
  // same-priority requests round-robin (a stepped request re-enters at the
  // back of its bucket).
  std::map<int, std::deque<std::size_t>, std::greater<int>> runnable_;
  std::size_t inflight_ = 0;  // begun, not finished
  std::size_t finished_ = 0;  // done tickets (completed + refused + failed)
  // Readiness dispatch: tickets parked on in-flight wire ops, the fds they
  // wait on, and per-fd registration refcounts for the poller.
  std::vector<std::size_t> parked_;
  std::map<int, std::vector<std::size_t>> parked_by_fd_;
  std::map<int, std::size_t> fd_refs_;
  std::size_t outstanding_ops_ = 0;  // unsettled ops across parked tickets
  bool paused_ = false;
  bool stopping_ = false;
  bool shed_all_ = false;  // set by shutdown(); acted on by the reactor thread
  Stats counters_;  // submitted/max_inflight tracked inline, rest on completion
  std::vector<double> latencies_;
  std::vector<std::size_t> completion_order_;

  rpc::EventFd wake_;
  rpc::Poller poller_;
  std::thread reactor_;
};

}  // namespace d3::runtime
