// Automatic coordinator failover (ISSUE 9): heartbeat-triggered standby
// promotion over the address book, fenced by coordinator incarnation epochs.
//
// Two halves:
//
//   * CoordinatorBeacon — runs beside the *active* coordinator. A tiny frame
//     server answering kPing with kPong (body: u64 fencing epoch) and
//     kJournalSync with kOk (body: u64 epoch + blob of the request-journal
//     file), so standbys can watch liveness and mirror the write-ahead state
//     without touching the inference path.
//
//   * StandbyCoordinator — runs anywhere else. A monitor thread probes the
//     beacon on a fixed cadence; `miss_threshold` consecutive missed beats
//     (EOF, refused dial, or timeout) triggers unattended promotion:
//
//       1. pick epoch = max(every epoch observed from the beacon,
//          options.epoch_hint) + 1 — strictly above the dead incarnation;
//       2. dial every worker in the address book on a fresh SocketTransport
//          stamped with that epoch, and replay the (idempotent) kConfig
//          bundle — this fences the previous coordinator: from here on the
//          workers answer every frame from the lower epoch with kFenced;
//       3. load the request journal (the shared path, or the local mirror
//          kJournalSync kept fresh) and restore() every live snapshot on a
//          fresh OnlineEngine, stepping each to completion.
//
//     The repo's lossless contract carries across the takeover: resumed
//     outputs are bitwise-identical to exec::Executor and the transcript is
//     byte-identical to a run that never saw a failure.
//
// promote() is public and idempotent so deterministic drills (the promotion
// crash-point sweep, the split-brain test) can force the takeover instead of
// waiting out the probe cadence.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rpc/socket.h"
#include "rpc/socket_transport.h"
#include "runtime/address_book.h"
#include "runtime/engine.h"
#include "runtime/request_journal.h"

namespace d3::runtime {

// Durable whole-file replace: writes `bytes` to `path + ".mirror"`, fsyncs,
// then renames over `path`. A process killed at any instant leaves either the
// old complete file or the new complete file — never a torn middle. This is
// how the standby's kJournalSync mirror stays promotion-safe; exposed so
// tests can pin the atomicity contract directly. Throws rpc::SocketError.
void mirror_file_atomically(const std::string& path,
                            const std::vector<std::uint8_t>& bytes);

// Liveness + journal endpoint of the active coordinator. Serves concurrently
// connected standbys from one background thread; the destructor stops it.
class CoordinatorBeacon {
 public:
  // Binds `host`:`port` (0 = ephemeral) and starts serving. `journal_path`
  // is the active coordinator's write-ahead journal file; kJournalSync
  // replies with its current bytes (empty when the file does not exist yet).
  CoordinatorBeacon(std::uint64_t epoch, std::string journal_path,
                    const std::string& host = "127.0.0.1", std::uint16_t port = 0);
  ~CoordinatorBeacon();
  CoordinatorBeacon(const CoordinatorBeacon&) = delete;
  CoordinatorBeacon& operator=(const CoordinatorBeacon&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t epoch() const { return epoch_; }
  void stop();

 private:
  void serve();

  std::uint64_t epoch_ = 0;
  std::string journal_path_;
  std::uint16_t port_ = 0;
  rpc::Socket listener_;
  rpc::EventFd stop_fd_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

// One request the promoted standby finished on behalf of the dead coordinator.
struct ResumedRequest {
  std::uint64_t rpc_request = 0;
  InferenceResult result;
};

class StandbyCoordinator {
 public:
  struct Options {
    AddressBook book;
    // Journal the standby loads at promotion time. With `mirror_journal`
    // false this is the path the active coordinator writes (shared
    // filesystem); with it true this is a local file the monitor refreshes
    // from the beacon (kJournalSync) on every successful probe.
    std::string journal_path;
    bool mirror_journal = false;
    std::chrono::milliseconds probe_interval{50};
    std::chrono::milliseconds probe_timeout{1000};
    int miss_threshold = 3;
    // Buddy replica holder to arm on the promoted transport ("" = none).
    std::string buddy;
    std::size_t vsm_workers = 0;
    // Send the weights-elided kConfig form on the promotion redials (the
    // workers were booted from d3c bundles): plan + weights hash instead of
    // the O(model) weights blob. A hash disagreement makes promote() throw
    // rpc::BundleMismatch — loud, never half-configured.
    bool elide_weights = false;
    // Lower bound on the active coordinator's epoch, for the case where the
    // standby never managed a successful probe before the death.
    std::uint64_t epoch_hint = 0;
  };

  // `net` and `weights` must outlive this object (same contract as
  // OnlineEngine); the plan must match the one the active coordinator runs,
  // or restore() rejects the journal snapshots at promotion time.
  StandbyCoordinator(const dnn::Network& net, const exec::WeightStore& weights,
                     core::Assignment assignment, std::optional<core::FusedTilePlan> vsm,
                     Options options);
  ~StandbyCoordinator();
  StandbyCoordinator(const StandbyCoordinator&) = delete;
  StandbyCoordinator& operator=(const StandbyCoordinator&) = delete;

  // Starts the monitor thread. Unattended path: probe, miss, promote.
  void start();
  // Stops the monitor thread without promoting (no-op once promoted).
  void stop();
  // Blocks until promotion has completed (true) or `timeout` elapsed (false).
  bool wait_promoted(std::chrono::milliseconds timeout);

  // Performs the takeover now, synchronously; idempotent. Public so drills
  // can force a split-brain deterministically. Throws on unreachable workers
  // or a journal/plan mismatch — promotion must be loud, never half-done.
  void promote();

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  // Valid after promotion.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  rpc::SocketTransport& transport() { return *transport_; }
  OnlineEngine& engine() { return *engine_; }
  const std::vector<ResumedRequest>& resumed() const { return resumed_; }
  // Consecutive missed beats so far (diagnostics / test pinning).
  int misses() const { return misses_.load(std::memory_order_relaxed); }
  // Highest coordinator epoch this standby has seen — from beacon kPong
  // bodies, or from an rpc::Fenced answer to its own promotion attempt (a
  // lost race folds the winner's epoch in here and monitoring resumes).
  std::uint64_t observed_epoch() const {
    return observed_epoch_.load(std::memory_order_relaxed);
  }

 private:
  void monitor();
  // One probe round against the beacon: kPing (+ kJournalSync when
  // mirroring). Throws rpc::SocketError on any miss; updates observed_epoch_.
  void probe_once(rpc::Socket& beacon);
  void mirror_journal_bytes(const std::vector<std::uint8_t>& bytes);

  const dnn::Network& net_;
  const exec::WeightStore& weights_;
  core::Assignment assignment_;
  std::optional<core::FusedTilePlan> vsm_;
  Options options_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  // Set (under mutex_) when unattended promotion threw; wait_promoted()
  // rethrows it so a drill fails on the real cause instead of a timeout.
  std::exception_ptr promotion_error_;

  std::atomic<std::uint64_t> observed_epoch_{0};
  std::atomic<int> misses_{0};
  std::atomic<bool> promoted_{false};
  std::atomic<std::uint64_t> epoch_{0};

  std::mutex promote_mutex_;
  std::shared_ptr<rpc::SocketTransport> transport_;
  std::unique_ptr<OnlineEngine> engine_;
  std::vector<ResumedRequest> resumed_;
};

}  // namespace d3::runtime
