// The latency regression model of §III-D: predicts per-layer execution time on a
// node from computation-resource and layer-configuration features, so that HPA
// never has to run every layer on every tier (paper: executing layers on the
// spot is "impractical and time-consuming").
//
// One ridge-regression model per coarse layer class (conv / fc / windowed /
// elementwise), with features [1, GFLOPs, activation MB, parameter MB]. Trained
// on noisy measurements (profiler.h); evaluated against ground truth in Fig. 4.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "profile/hardware_model.h"

namespace d3::profile {

// Closed-form ridge regression (normal equations) for the small feature spaces
// used here.
class RidgeRegression {
 public:
  // Fits beta minimising ||X beta - y||^2 + l2 * ||beta||^2. Each row of `rows`
  // must have the same dimension. Throws on empty/ragged input.
  static RidgeRegression fit(const std::vector<std::vector<double>>& rows,
                             const std::vector<double>& targets, double l2 = 1e-9);

  double predict(std::span<const double> features) const;

  const std::vector<double>& coefficients() const { return beta_; }

 private:
  std::vector<double> beta_;
};

enum class LayerClass { kConv = 0, kFullyConnected = 1, kWindowed = 2, kElementwise = 3 };
inline constexpr int kNumLayerClasses = 4;

LayerClass classify_layer(dnn::LayerKind kind);

// Feature vector of a layer execution: [1, GFLOPs, activation MB, parameter MB].
std::vector<double> layer_features(const LayerCost& cost);

struct TrainingSample {
  LayerCost cost;
  double seconds = 0;
};

// Per-node latency estimator: a fitted RidgeRegression per layer class.
class LatencyEstimator {
 public:
  // Every layer class must be represented in `samples`.
  static LatencyEstimator fit(std::span<const TrainingSample> samples);

  // Predicted execution latency in seconds (clamped to >= 0).
  double predict(const LayerCost& cost) const;

  // Mean absolute percentage error against expected ground truth on a network.
  double mape_on(const dnn::Network& net, const NodeSpec& node) const;

 private:
  std::array<RidgeRegression, kNumLayerClasses> models_;
};

}  // namespace d3::profile
