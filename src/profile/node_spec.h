// Computation-node descriptions (the "CPU info / GPU info / memory size" inputs
// of the paper's regression model, Fig. 2).
//
// The presets correspond to the paper's testbed (§IV and Table II): Raspberry Pi
// 4B and Jetson Nano 2GB at the device tier, an i7-8700 Linux box at the edge,
// and an RTX-2080-Ti server at the cloud. Effective throughput numbers are
// calibrated so that per-layer latencies land in the ranges of Fig. 1/Table II
// (see DESIGN.md, substitutions).
#pragma once

#include <string>
#include <vector>

namespace d3::profile {

enum class ComputeKind { kCpu, kGpu };

struct NodeSpec {
  std::string name;
  ComputeKind compute = ComputeKind::kCpu;
  // Effective dense-arithmetic throughput (GFLOP/s) achievable by convolution
  // kernels; well below datasheet peaks, as measured throughput always is.
  double effective_gflops = 1.0;
  // Sustained memory bandwidth (GB/s); memory-bound layers (fc, pooling,
  // elementwise) are limited by this.
  double memory_bandwidth_gbps = 1.0;
  // Fixed per-layer dispatch overhead (seconds): interpreter/driver cost on
  // CPUs, kernel-launch latency on GPUs.
  double layer_overhead_seconds = 0.0;
  // System memory (GB); informational (capacity checks in deployment planning).
  double memory_gb = 1.0;
  // Working-set size beyond which the memory system falls off its peak
  // (cache-cliff nonlinearity that keeps the latency regression honest).
  double cache_bytes = 1.0;
};

// Device tier.
NodeSpec raspberry_pi_4b();
NodeSpec jetson_nano_2gb();
// Edge tier.
NodeSpec i7_8700();
// Cloud tier.
NodeSpec rtx_2080ti_server();

// The device/edge/cloud node triple used by an experiment.
struct TierNodes {
  NodeSpec device;
  NodeSpec edge;
  NodeSpec cloud;
};

// The paper's §IV testbed: RPi-4B device, i7-8700 edge, 2080-Ti cloud.
TierNodes paper_testbed();
// The Table II measurement setup (Jetson Nano device).
TierNodes table2_testbed();

}  // namespace d3::profile
