// Synthetic hardware: the "ground truth" latency oracle standing in for running
// layers on physical RPi/Jetson/i7/2080-Ti nodes (DESIGN.md substitutions).
//
// Roofline-style model: a layer costs the max of its compute time
// (FLOPs / effective throughput, kind-dependent utilisation) and its memory time
// ((activations + parameters) / bandwidth, with a cache-cliff derate once the
// working set spills), plus a fixed dispatch overhead. measure() adds
// multiplicative noise — the profiler trains its regression on noisy samples,
// exactly like measuring on real silicon; expected_latency() is the noiseless
// value the simulator uses.
#pragma once

#include <cstdint>

#include "dnn/network.h"
#include "profile/node_spec.h"
#include "util/rng.h"

namespace d3::profile {

// Cost-relevant summary of one layer execution (inputs to the latency model and
// the regression features).
struct LayerCost {
  dnn::LayerKind kind;
  std::int64_t flops = 0;
  std::int64_t input_bytes = 0;   // lambda_in
  std::int64_t output_bytes = 0;  // lambda_out
  std::int64_t param_bytes = 0;
  // Input channel count for convolutions (0 otherwise). Conv kernels vectorise
  // over input channels; shallow inputs (conv1's 3 channels) run far below peak
  // throughput — the dominant effect behind Fig. 1a's conv1 ≈ 0.2 s on the RPi.
  int in_channels = 0;
};

LayerCost layer_cost(const dnn::Network& net, dnn::LayerId id);

class HardwareModel {
 public:
  // Relative noise of a single measurement (sigma of the multiplicative factor).
  static constexpr double kMeasurementNoise = 0.04;

  // Deterministic expected execution latency of `cost` on `node`, in seconds.
  static double expected_latency(const LayerCost& cost, const NodeSpec& node);

  // One noisy "measurement", as a real profiler would observe.
  static double measure(const LayerCost& cost, const NodeSpec& node, util::Rng& rng);

  // Sum of expected per-layer latencies of the whole network on one node.
  static double network_latency(const dnn::Network& net, const NodeSpec& node);
};

}  // namespace d3::profile
