#include "profile/regression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace d3::profile {

namespace {

// Solves the symmetric positive-definite system A x = b with Gaussian
// elimination and partial pivoting; dimensions here are tiny (<= 5).
std::vector<double> solve_linear(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-30)
      throw std::runtime_error("solve_linear: singular system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri][c] * x[c];
    x[ri] = acc / a[ri][ri];
  }
  return x;
}

}  // namespace

RidgeRegression RidgeRegression::fit(const std::vector<std::vector<double>>& rows,
                                     const std::vector<double>& targets, double l2) {
  if (rows.empty() || rows.size() != targets.size())
    throw std::invalid_argument("RidgeRegression::fit: empty or mismatched data");
  const std::size_t dim = rows.front().size();
  for (const auto& r : rows)
    if (r.size() != dim) throw std::invalid_argument("RidgeRegression::fit: ragged rows");

  // Normal equations: (X^T X + l2 I) beta = X^T y.
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < dim; ++a) {
      xty[a] += rows[i][a] * targets[i];
      for (std::size_t b = 0; b < dim; ++b) xtx[a][b] += rows[i][a] * rows[i][b];
    }
  }
  for (std::size_t a = 0; a < dim; ++a) xtx[a][a] += l2;

  RidgeRegression model;
  model.beta_ = solve_linear(std::move(xtx), std::move(xty));
  return model;
}

double RidgeRegression::predict(std::span<const double> features) const {
  if (features.size() != beta_.size())
    throw std::invalid_argument("RidgeRegression::predict: feature dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < beta_.size(); ++i) acc += beta_[i] * features[i];
  return acc;
}

LayerClass classify_layer(dnn::LayerKind kind) {
  switch (kind) {
    case dnn::LayerKind::kConv:
      return LayerClass::kConv;
    case dnn::LayerKind::kFullyConnected:
      return LayerClass::kFullyConnected;
    case dnn::LayerKind::kMaxPool:
    case dnn::LayerKind::kAvgPool:
    case dnn::LayerKind::kGlobalAvgPool:
      return LayerClass::kWindowed;
    default:
      return LayerClass::kElementwise;
  }
}

std::vector<double> layer_features(const LayerCost& cost) {
  // "Excess GFLOPs" models the shallow-channel utilisation ramp of conv
  // kernels: below ~16 input channels (the vector width of typical conv
  // kernels) sustained throughput drops proportionally, so the extra time is
  // linear in gflops * (16/in_c - 1). Zero for deep-channel and non-conv
  // layers, which keeps the feature orthogonal to plain GFLOPs.
  const double gflops = static_cast<double>(cost.flops) / 1e9;
  const double excess_gflops =
      cost.in_channels > 0 ? gflops * std::max(0.0, 16.0 / cost.in_channels - 1.0) : 0.0;
  return {
      1.0,
      gflops,
      static_cast<double>(cost.input_bytes + cost.output_bytes) / 1e6,
      static_cast<double>(cost.param_bytes) / 1e6,
      excess_gflops,
  };
}

LatencyEstimator LatencyEstimator::fit(std::span<const TrainingSample> samples) {
  std::array<std::vector<std::vector<double>>, kNumLayerClasses> rows;
  std::array<std::vector<double>, kNumLayerClasses> targets;
  for (const TrainingSample& s : samples) {
    const auto cls = static_cast<std::size_t>(classify_layer(s.cost.kind));
    // Weighted least squares with weight 1/target^2: layer latencies span five
    // orders of magnitude, and an unweighted fit sacrifices the microsecond
    // layers (negative predictions) to shave error off the second-scale ones.
    // Scaling row and target by 1/target makes the fit minimise *relative*
    // error, which is what Fig. 4 (and HPA's tier choices) need.
    const double w = 1.0 / std::max(s.seconds, 1e-7);
    auto features = layer_features(s.cost);
    for (double& f : features) f *= w;
    rows[cls].push_back(std::move(features));
    targets[cls].push_back(s.seconds * w);
  }
  LatencyEstimator est;
  for (int cls = 0; cls < kNumLayerClasses; ++cls) {
    if (rows[static_cast<std::size_t>(cls)].empty())
      throw std::invalid_argument("LatencyEstimator::fit: no samples for layer class " +
                                  std::to_string(cls));
    est.models_[static_cast<std::size_t>(cls)] = RidgeRegression::fit(
        rows[static_cast<std::size_t>(cls)], targets[static_cast<std::size_t>(cls)]);
  }
  return est;
}

double LatencyEstimator::predict(const LayerCost& cost) const {
  const auto cls = static_cast<std::size_t>(classify_layer(cost.kind));
  const auto features = layer_features(cost);
  return std::max(0.0, models_[cls].predict(features));
}

double LatencyEstimator::mape_on(const dnn::Network& net, const NodeSpec& node) const {
  double total = 0.0;
  std::size_t count = 0;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const LayerCost cost = layer_cost(net, id);
    const double truth = HardwareModel::expected_latency(cost, node);
    if (truth <= 0) continue;
    total += std::abs(predict(cost) - truth) / truth;
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace d3::profile
