// The profiler of Fig. 2: collects operating-condition measurements from the
// computation nodes of each tier and trains the regression-based latency
// estimators the offline partition framework consumes.
//
// Training data is a synthetic workload of layer configurations spanning the
// ranges found in real classifiers (conv channels/kernels/strides, fc widths,
// pooling windows, elementwise sizes), "measured" through the HardwareModel
// noise path — the same procedure a real deployment would run once per node.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "profile/node_spec.h"
#include "profile/regression.h"

namespace d3::profile {

struct ProfilerOptions {
  int samples_per_class = 160;
  std::uint64_t seed = 0xd3d3d3;
};

class Profiler {
 public:
  using Options = ProfilerOptions;

  // Builds the synthetic calibration workload (deterministic in seed).
  static std::vector<LayerCost> calibration_workload(const Options& options);

  // Measures the workload on `node` and fits the per-class regression.
  static LatencyEstimator profile_node(const NodeSpec& node, const Options& options = {});

  // Estimators for device/edge/cloud, indexed by core::Tier order.
  static std::array<LatencyEstimator, 3> profile_tiers(const TierNodes& nodes,
                                                       const Options& options = {});
};

}  // namespace d3::profile
