#include "profile/profiler.h"

#include "dnn/layer.h"
#include "util/rng.h"

namespace d3::profile {

namespace {

LayerCost cost_of(const dnn::LayerSpec& spec, const dnn::Shape& input) {
  const dnn::Shape out = dnn::infer_output_shape(spec, {input});
  LayerCost c;
  c.kind = spec.kind;
  c.flops = dnn::layer_flops(spec, {input}, out);
  c.input_bytes = input.bytes();
  c.output_bytes = out.bytes();
  c.param_bytes = dnn::layer_params(spec, {input}) * 4;
  if (spec.kind == dnn::LayerKind::kConv) c.in_channels = input.c;
  return c;
}

}  // namespace

std::vector<LayerCost> Profiler::calibration_workload(const Options& options) {
  util::Rng rng(options.seed);
  std::vector<LayerCost> workload;
  workload.reserve(static_cast<std::size_t>(options.samples_per_class) * 4);

  const int kernels[] = {1, 3, 5, 7, 11};
  // Categorical channel choices over-sample the shallow regime: real networks
  // have exactly one 3-channel conv but its latency anchors the device tier.
  const int channel_choices[] = {3, 4, 8, 12, 16, 24, 32, 64, 128, 256, 384, 512};
  for (int i = 0; i < options.samples_per_class; ++i) {
    // Conv: channels and spatial extents spanning early/late classifier stages.
    const int in_c = channel_choices[rng.uniform_int(0, 11)];
    const int out_c = static_cast<int>(rng.uniform_int(16, 512));
    const int k = kernels[rng.uniform_int(0, 4)];
    const int stride = rng.chance(0.3) ? 2 : 1;
    const int pad = k / 2;
    const int hw = static_cast<int>(rng.uniform_int(7, 224));
    if (hw + 2 * pad >= k) {
      workload.push_back(cost_of(
          dnn::LayerSpec::conv("cal", out_c, dnn::Window{k, k, stride, stride, pad, pad}),
          dnn::Shape{in_c, hw, hw}));
    }

    // Fully connected.
    const int in_f = static_cast<int>(rng.uniform_int(256, 25088));
    const int out_f = static_cast<int>(rng.uniform_int(10, 4096));
    workload.push_back(
        cost_of(dnn::LayerSpec::fully_connected("cal", out_f), dnn::Shape{in_f, 1, 1}));

    // Pooling.
    const int pk = rng.chance(0.5) ? 2 : 3;
    const int ps = rng.chance(0.5) ? 2 : 1;
    const int pc = static_cast<int>(rng.uniform_int(16, 512));
    const int phw = static_cast<int>(rng.uniform_int(7, 224));
    workload.push_back(cost_of(
        dnn::LayerSpec::max_pool("cal", dnn::Window{pk, pk, ps, ps, 0, 0}),
        dnn::Shape{pc, phw, phw}));

    // Elementwise.
    const int ec = static_cast<int>(rng.uniform_int(16, 512));
    const int ehw = static_cast<int>(rng.uniform_int(7, 224));
    workload.push_back(cost_of(dnn::LayerSpec::relu("cal"), dnn::Shape{ec, ehw, ehw}));
  }
  return workload;
}

LatencyEstimator Profiler::profile_node(const NodeSpec& node, const Options& options) {
  util::Rng rng(options.seed ^ std::hash<std::string>{}(node.name));
  const std::vector<LayerCost> workload = calibration_workload(options);
  std::vector<TrainingSample> samples;
  samples.reserve(workload.size());
  for (const LayerCost& cost : workload)
    samples.push_back({cost, HardwareModel::measure(cost, node, rng)});
  return LatencyEstimator::fit(samples);
}

std::array<LatencyEstimator, 3> Profiler::profile_tiers(const TierNodes& nodes,
                                                        const Options& options) {
  return {profile_node(nodes.device, options), profile_node(nodes.edge, options),
          profile_node(nodes.cloud, options)};
}

}  // namespace d3::profile
