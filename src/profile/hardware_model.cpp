#include "profile/hardware_model.h"

#include <algorithm>
#include <cmath>

namespace d3::profile {

LayerCost layer_cost(const dnn::Network& net, dnn::LayerId id) {
  const dnn::NetworkLayer& layer = net.layer(id);
  LayerCost c;
  c.kind = layer.spec.kind;
  c.flops = layer.flops;
  c.input_bytes = net.lambda_in_bytes(id);
  c.output_bytes = net.lambda_out_bytes(id);
  c.param_bytes = layer.params * 4;
  if (layer.spec.kind == dnn::LayerKind::kConv) c.in_channels = net.input_shapes(id)[0].c;
  return c;
}

namespace {

// Fraction of effective_gflops a kernel of this kind actually sustains.
double compute_utilisation(const LayerCost& cost, ComputeKind compute) {
  switch (cost.kind) {
    case dnn::LayerKind::kConv: {
      // effective_gflops is calibrated on deep-channel conv kernels. Shallow
      // inputs cannot fill the vector lanes / warps: utilisation ramps with
      // input channels (conv1 on 3 channels runs ~5x below peak, matching the
      // paper's Fig. 1a RPi measurements).
      const double channel_ramp =
          static_cast<double>(std::max(cost.in_channels, 1)) / 16.0;
      return std::clamp(channel_ramp, 0.15, 1.0);
    }
    case dnn::LayerKind::kFullyConnected:
      // GEMV: no data reuse; arithmetic units starve even before the memory
      // roofline bites on CPUs, worse on GPUs.
      return compute == ComputeKind::kGpu ? 0.15 : 0.35;
    default:
      return 0.25;  // light elementwise/pool kernels
  }
}

}  // namespace

double HardwareModel::expected_latency(const LayerCost& cost, const NodeSpec& node) {
  const double util = compute_utilisation(cost, node.compute);
  const double compute_s =
      static_cast<double>(cost.flops) / (node.effective_gflops * 1e9 * util);

  const double working_set =
      static_cast<double>(cost.input_bytes + cost.output_bytes + cost.param_bytes);
  // Cache cliff: once the working set spills past on-chip storage the sustained
  // bandwidth drops; smooth ramp so the regression's linear fit is imperfect but
  // close (Fig. 4 behaviour).
  const double spill = working_set / node.cache_bytes;
  const double bw_derate = spill <= 1.0 ? 1.0 : 1.0 / (1.0 + 0.35 * std::log2(spill));
  const double memory_s =
      working_set / (node.memory_bandwidth_gbps * 1e9 * bw_derate);

  return node.layer_overhead_seconds + std::max(compute_s, memory_s);
}

double HardwareModel::measure(const LayerCost& cost, const NodeSpec& node, util::Rng& rng) {
  const double factor = std::exp(rng.normal(0.0, kMeasurementNoise));
  return expected_latency(cost, node) * factor;
}

double HardwareModel::network_latency(const dnn::Network& net, const NodeSpec& node) {
  double total = 0.0;
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    total += expected_latency(layer_cost(net, id), node);
  return total;
}

}  // namespace d3::profile
