#include "profile/node_spec.h"

namespace d3::profile {

NodeSpec raspberry_pi_4b() {
  return NodeSpec{
      .name = "raspberry-pi-4b",
      .compute = ComputeKind::kCpu,
      .effective_gflops = 5.5,        // NEON fp32 conv kernels on 4x Cortex-A72
      .memory_bandwidth_gbps = 3.2,   // LPDDR4 sustained
      .layer_overhead_seconds = 60e-6,
      .memory_gb = 4.0,
      .cache_bytes = 1.0 * 1024 * 1024,  // 1 MB shared L2
  };
}

NodeSpec jetson_nano_2gb() {
  return NodeSpec{
      .name = "jetson-nano-2gb",
      .compute = ComputeKind::kGpu,
      // 128-core Maxwell: 236 GFLOPS fp32 peak, ~30 sustained by framework
      // kernels on the 2 GB model (memory-starved).
      .effective_gflops = 30.0,
      .memory_bandwidth_gbps = 8.0,  // LPDDR4 shared with the GPU
      .layer_overhead_seconds = 120e-6,
      .memory_gb = 2.0,
      .cache_bytes = 0.5 * 1024 * 1024,
  };
}

NodeSpec i7_8700() {
  return NodeSpec{
      .name = "i7-8700",
      .compute = ComputeKind::kCpu,
      .effective_gflops = 210.0,      // 6 cores x AVX2 FMA, MKL-DNN-class kernels
      // Sustained by framework GEMV/elementwise kernels, well under the DDR4
      // STREAM peak (framework tensors are strided and temporary-heavy). This
      // is what makes VGG's fc tail cheaper on the cloud GPU than on the edge
      // CPU despite the uplink crossing — the Table II split shape.
      .memory_bandwidth_gbps = 12.0,
      .layer_overhead_seconds = 15e-6,
      .memory_gb = 8.0,
      .cache_bytes = 12.0 * 1024 * 1024,  // 12 MB L3
  };
}

NodeSpec rtx_2080ti_server() {
  return NodeSpec{
      .name = "rtx-2080ti-server",
      .compute = ComputeKind::kGpu,
      .effective_gflops = 9000.0,      // fp32 conv kernels (13.4 TFLOPS peak)
      .memory_bandwidth_gbps = 450.0,  // GDDR6 sustained
      .layer_overhead_seconds = 18e-6, // CUDA kernel launch
      .memory_gb = 256.0,
      .cache_bytes = 5.5 * 1024 * 1024,
  };
}

TierNodes paper_testbed() {
  return TierNodes{raspberry_pi_4b(), i7_8700(), rtx_2080ti_server()};
}

TierNodes table2_testbed() {
  return TierNodes{jetson_nano_2gb(), i7_8700(), rtx_2080ti_server()};
}

}  // namespace d3::profile
