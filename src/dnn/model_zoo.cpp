#include "dnn/model_zoo.h"

#include <stdexcept>
#include <string>

namespace d3::dnn::zoo {

namespace {

// conv + relu sharing a group, the AlexNet/VGG building block (no batch norm in
// those architectures).
LayerId conv_relu(Network& net, const std::string& name, LayerId input, int out_channels,
                  int kernel, int stride, int pad, const std::string& group) {
  LayerSpec c = LayerSpec::conv(name, out_channels,
                                Window{kernel, kernel, stride, stride, pad, pad});
  c.group = group;
  const LayerId conv_id = net.add(std::move(c), {input});
  LayerSpec r = LayerSpec::relu(name + "_relu");
  r.group = group;
  return net.add(std::move(r), {conv_id});
}

LayerId pool_grouped(Network& net, const std::string& name, LayerId input, int kernel,
                     int stride, const std::string& group, int pad = 0) {
  LayerSpec p = LayerSpec::max_pool(name, Window{kernel, kernel, stride, stride, pad, pad});
  p.group = group;
  return net.add(std::move(p), {input});
}

LayerId fc_relu(Network& net, const std::string& name, LayerId input, int out_features,
                const std::string& group, bool with_relu = true) {
  LayerSpec f = LayerSpec::fully_connected(name, out_features);
  f.group = group;
  const LayerId fc_id = net.add(std::move(f), {input});
  if (!with_relu) return fc_id;
  LayerSpec r = LayerSpec::relu(name + "_relu");
  r.group = group;
  return net.add(std::move(r), {fc_id});
}

}  // namespace

Network alexnet() {
  Network net("AlexNet", Shape{3, 224, 224});
  LayerId x = conv_relu(net, "conv1", kNetworkInput, 96, 11, 4, 2, "conv1");
  x = pool_grouped(net, "maxpool1", x, 3, 2, "maxpool1");
  x = conv_relu(net, "conv2", x, 256, 5, 1, 2, "conv2");
  x = pool_grouped(net, "maxpool2", x, 3, 2, "maxpool2");
  x = conv_relu(net, "conv3", x, 384, 3, 1, 1, "conv3");
  x = conv_relu(net, "conv4", x, 384, 3, 1, 1, "conv4");
  x = conv_relu(net, "conv5", x, 256, 3, 1, 1, "conv5");
  x = pool_grouped(net, "maxpool3", x, 3, 2, "maxpool3");
  x = fc_relu(net, "fc1", x, 4096, "fc1");
  x = fc_relu(net, "fc2", x, 4096, "fc2");
  x = fc_relu(net, "fc3", x, 1000, "fc3", /*with_relu=*/false);
  LayerSpec sm = LayerSpec::softmax("softmax");
  sm.group = "fc3";
  net.add(std::move(sm), {x});
  return net;
}

Network vgg16() {
  Network net("VGG-16", Shape{3, 224, 224});
  // (output channels, convs-per-block) of the five VGG blocks.
  const int block_channels[5] = {64, 128, 256, 512, 512};
  const int block_convs[5] = {2, 2, 3, 3, 3};
  LayerId x = kNetworkInput;
  int conv_index = 1;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < block_convs[b]; ++i) {
      const std::string name = "conv" + std::to_string(conv_index++);
      x = conv_relu(net, name, x, block_channels[b], 3, 1, 1, name);
    }
    // The pool belongs to the last conv's row in the paper's Fig. 1a.
    x = pool_grouped(net, "pool" + std::to_string(b + 1), x, 2, 2,
                     "conv" + std::to_string(conv_index - 1));
  }
  x = fc_relu(net, "fc1", x, 4096, "fc1");
  x = fc_relu(net, "fc2", x, 4096, "fc2");
  x = fc_relu(net, "fc3", x, 1000, "fc3", /*with_relu=*/false);
  LayerSpec sm = LayerSpec::softmax("softmax");
  sm.group = "fc3";
  net.add(std::move(sm), {x});
  return net;
}

Network resnet18() {
  Network net("ResNet-18", Shape{3, 224, 224});
  LayerId x = net.conv_bn_relu("conv1", kNetworkInput, 64, 7, 2, 3, "conv1");
  x = pool_grouped(net, "maxpool", x, 3, 2, "conv1", /*pad=*/1);

  int block_index = 1;
  const auto basic_block = [&](LayerId input, int channels, int stride) -> LayerId {
    const std::string g = "block" + std::to_string(block_index++);
    LayerId identity = input;
    LayerId y = net.conv_bn_relu(g + "_conv1", input, channels, 3, stride, 1, g);
    // Second conv has no trailing relu before the residual add.
    LayerSpec c2 = LayerSpec::conv(g + "_conv2", channels, Window{3, 3, 1, 1, 1, 1});
    c2.group = g;
    y = net.add(std::move(c2), {y});
    LayerSpec bn2 = LayerSpec::batch_norm(g + "_bn2");
    bn2.group = g;
    y = net.add(std::move(bn2), {y});
    if (stride != 1) {
      // Projection shortcut: 1x1 conv + bn.
      LayerSpec pc = LayerSpec::conv(g + "_down", channels, Window{1, 1, stride, stride, 0, 0});
      pc.group = g;
      identity = net.add(std::move(pc), {identity});
      LayerSpec pbn = LayerSpec::batch_norm(g + "_down_bn");
      pbn.group = g;
      identity = net.add(std::move(pbn), {identity});
    }
    LayerSpec addspec = LayerSpec::add(g + "_add");
    addspec.group = g;
    const LayerId sum = net.add(std::move(addspec), {y, identity});
    LayerSpec r = LayerSpec::relu(g + "_out");
    r.group = g;
    return net.add(std::move(r), {sum});
  };

  const int stage_channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const int stride = stage == 0 ? 1 : 2;
    x = basic_block(x, stage_channels[stage], stride);
    x = basic_block(x, stage_channels[stage], 1);
  }

  LayerSpec gap = LayerSpec::global_avg_pool("gap");
  gap.group = "fc";
  x = net.add(std::move(gap), {x});
  x = fc_relu(net, "fc", x, 1000, "fc", /*with_relu=*/false);
  LayerSpec sm = LayerSpec::softmax("softmax");
  sm.group = "fc";
  net.add(std::move(sm), {x});
  return net;
}

Network darknet53() {
  Network net("Darknet-53", Shape{3, 224, 224});
  LayerId x = net.conv_bn_relu("conv1", kNetworkInput, 32, 3, 1, 1, "conv1");

  // (residual repeat count, output channels) of the five Darknet stages; each
  // stage begins with a stride-2 downsampling conv. Group names follow Fig. 1c.
  const int repeats[5] = {1, 2, 8, 8, 4};
  const int channels[5] = {64, 128, 256, 512, 1024};
  for (int stage = 0; stage < 5; ++stage) {
    const std::string down_group = "conv" + std::to_string(stage + 2);
    x = net.conv_bn_relu(down_group, x, channels[stage], 3, 2, 1, down_group);
    const std::string res_group = "residual" + std::to_string(stage + 1);
    for (int r = 0; r < repeats[stage]; ++r) {
      const std::string p = res_group + "_" + std::to_string(r + 1);
      const LayerId shortcut = x;
      LayerId y = net.conv_bn_relu(p + "_1x1", x, channels[stage] / 2, 1, 1, 0, res_group);
      y = net.conv_bn_relu(p + "_3x3", y, channels[stage], 3, 1, 1, res_group);
      LayerSpec addspec = LayerSpec::add(p + "_add");
      addspec.group = res_group;
      x = net.add(std::move(addspec), {y, shortcut});
    }
  }

  LayerSpec gap = LayerSpec::global_avg_pool("gap");
  gap.group = "fc";
  x = net.add(std::move(gap), {x});
  x = fc_relu(net, "fc", x, 1000, "fc", /*with_relu=*/false);
  LayerSpec sm = LayerSpec::softmax("softmax");
  sm.group = "fc";
  net.add(std::move(sm), {x});
  return net;
}

namespace {

// Rectangular conv + bn + relu used throughout Inception-v4.
LayerId iconv(Network& net, const std::string& name, LayerId input, int out_channels,
              int kw, int kh, int pw, int ph, int stride, const std::string& group) {
  LayerSpec c = LayerSpec::conv(name, out_channels, Window{kw, kh, stride, stride, pw, ph});
  c.group = group;
  LayerId x = net.add(std::move(c), {input});
  LayerSpec bn = LayerSpec::batch_norm(name + "_bn");
  bn.group = group;
  x = net.add(std::move(bn), {x});
  LayerSpec r = LayerSpec::relu(name + "_relu");
  r.group = group;
  return net.add(std::move(r), {x});
}

LayerId iconv_sq(Network& net, const std::string& name, LayerId input, int out_channels,
                 int kernel, int stride, int pad, const std::string& group) {
  return iconv(net, name, input, out_channels, kernel, kernel, pad, pad, stride, group);
}

LayerId inception_a(Network& net, LayerId input, const std::string& g) {
  LayerSpec ap = LayerSpec::avg_pool(g + "_b1_pool", Window{3, 3, 1, 1, 1, 1});
  ap.group = g;
  LayerId b1 = net.add(std::move(ap), {input});
  b1 = iconv_sq(net, g + "_b1_1x1", b1, 96, 1, 1, 0, g);
  const LayerId b2 = iconv_sq(net, g + "_b2_1x1", input, 96, 1, 1, 0, g);
  LayerId b3 = iconv_sq(net, g + "_b3_1x1", input, 64, 1, 1, 0, g);
  b3 = iconv_sq(net, g + "_b3_3x3", b3, 96, 3, 1, 1, g);
  LayerId b4 = iconv_sq(net, g + "_b4_1x1", input, 64, 1, 1, 0, g);
  b4 = iconv_sq(net, g + "_b4_3x3a", b4, 96, 3, 1, 1, g);
  b4 = iconv_sq(net, g + "_b4_3x3b", b4, 96, 3, 1, 1, g);
  LayerSpec cat = LayerSpec::concat(g + "_concat");
  cat.group = g;
  return net.add(std::move(cat), {b1, b2, b3, b4});
}

LayerId reduction_a(Network& net, LayerId input, const std::string& g) {
  LayerSpec mp = LayerSpec::max_pool(g + "_b1_pool", Window{3, 3, 2, 2, 0, 0});
  mp.group = g;
  const LayerId b1 = net.add(std::move(mp), {input});
  const LayerId b2 = iconv_sq(net, g + "_b2_3x3", input, 384, 3, 2, 0, g);
  LayerId b3 = iconv_sq(net, g + "_b3_1x1", input, 192, 1, 1, 0, g);
  b3 = iconv_sq(net, g + "_b3_3x3a", b3, 224, 3, 1, 1, g);
  b3 = iconv_sq(net, g + "_b3_3x3b", b3, 256, 3, 2, 0, g);
  LayerSpec cat = LayerSpec::concat(g + "_concat");
  cat.group = g;
  return net.add(std::move(cat), {b1, b2, b3});
}

LayerId inception_b(Network& net, LayerId input, const std::string& g) {
  LayerSpec ap = LayerSpec::avg_pool(g + "_b1_pool", Window{3, 3, 1, 1, 1, 1});
  ap.group = g;
  LayerId b1 = net.add(std::move(ap), {input});
  b1 = iconv_sq(net, g + "_b1_1x1", b1, 128, 1, 1, 0, g);
  const LayerId b2 = iconv_sq(net, g + "_b2_1x1", input, 384, 1, 1, 0, g);
  LayerId b3 = iconv_sq(net, g + "_b3_1x1", input, 192, 1, 1, 0, g);
  b3 = iconv(net, g + "_b3_1x7", b3, 224, 7, 1, 3, 0, 1, g);
  b3 = iconv(net, g + "_b3_7x1", b3, 256, 1, 7, 0, 3, 1, g);
  LayerId b4 = iconv_sq(net, g + "_b4_1x1", input, 192, 1, 1, 0, g);
  b4 = iconv(net, g + "_b4_1x7a", b4, 192, 7, 1, 3, 0, 1, g);
  b4 = iconv(net, g + "_b4_7x1a", b4, 224, 1, 7, 0, 3, 1, g);
  b4 = iconv(net, g + "_b4_1x7b", b4, 224, 7, 1, 3, 0, 1, g);
  b4 = iconv(net, g + "_b4_7x1b", b4, 256, 1, 7, 0, 3, 1, g);
  LayerSpec cat = LayerSpec::concat(g + "_concat");
  cat.group = g;
  return net.add(std::move(cat), {b1, b2, b3, b4});
}

LayerId reduction_b(Network& net, LayerId input, const std::string& g) {
  LayerSpec mp = LayerSpec::max_pool(g + "_b1_pool", Window{3, 3, 2, 2, 0, 0});
  mp.group = g;
  const LayerId b1 = net.add(std::move(mp), {input});
  LayerId b2 = iconv_sq(net, g + "_b2_1x1", input, 192, 1, 1, 0, g);
  b2 = iconv_sq(net, g + "_b2_3x3", b2, 192, 3, 2, 0, g);
  LayerId b3 = iconv_sq(net, g + "_b3_1x1", input, 256, 1, 1, 0, g);
  b3 = iconv(net, g + "_b3_1x7", b3, 256, 7, 1, 3, 0, 1, g);
  b3 = iconv(net, g + "_b3_7x1", b3, 320, 1, 7, 0, 3, 1, g);
  b3 = iconv_sq(net, g + "_b3_3x3", b3, 320, 3, 2, 0, g);
  LayerSpec cat = LayerSpec::concat(g + "_concat");
  cat.group = g;
  return net.add(std::move(cat), {b1, b2, b3});
}

LayerId inception_c(Network& net, LayerId input, const std::string& g) {
  LayerSpec ap = LayerSpec::avg_pool(g + "_b1_pool", Window{3, 3, 1, 1, 1, 1});
  ap.group = g;
  LayerId b1 = net.add(std::move(ap), {input});
  b1 = iconv_sq(net, g + "_b1_1x1", b1, 256, 1, 1, 0, g);
  const LayerId b2 = iconv_sq(net, g + "_b2_1x1", input, 256, 1, 1, 0, g);
  LayerId b3 = iconv_sq(net, g + "_b3_1x1", input, 384, 1, 1, 0, g);
  const LayerId b3a = iconv(net, g + "_b3_1x3", b3, 256, 3, 1, 1, 0, 1, g);
  const LayerId b3b = iconv(net, g + "_b3_3x1", b3, 256, 1, 3, 0, 1, 1, g);
  LayerId b4 = iconv_sq(net, g + "_b4_1x1", input, 384, 1, 1, 0, g);
  b4 = iconv(net, g + "_b4_1x3", b4, 448, 3, 1, 1, 0, 1, g);
  b4 = iconv(net, g + "_b4_3x1", b4, 512, 1, 3, 0, 1, 1, g);
  const LayerId b4a = iconv(net, g + "_b4_3x1b", b4, 256, 1, 3, 0, 1, 1, g);
  const LayerId b4b = iconv(net, g + "_b4_1x3b", b4, 256, 3, 1, 1, 0, 1, g);
  LayerSpec cat = LayerSpec::concat(g + "_concat");
  cat.group = g;
  return net.add(std::move(cat), {b1, b2, b3a, b3b, b4a, b4b});
}

}  // namespace

Network inception_v4() {
  Network net("Inception-v4", Shape{3, 224, 224});
  const std::string stem = "stem";
  LayerId x = iconv_sq(net, "stem_conv1", kNetworkInput, 32, 3, 2, 0, stem);
  x = iconv_sq(net, "stem_conv2", x, 32, 3, 1, 0, stem);
  x = iconv_sq(net, "stem_conv3", x, 64, 3, 1, 1, stem);

  LayerSpec mp1 = LayerSpec::max_pool("stem_pool1", Window{3, 3, 2, 2, 0, 0});
  mp1.group = stem;
  const LayerId p1 = net.add(std::move(mp1), {x});
  const LayerId c1 = iconv_sq(net, "stem_conv4", x, 96, 3, 2, 0, stem);
  LayerSpec cat1 = LayerSpec::concat("stem_concat1");
  cat1.group = stem;
  x = net.add(std::move(cat1), {p1, c1});

  LayerId b1 = iconv_sq(net, "stem_b1_1x1", x, 64, 1, 1, 0, stem);
  b1 = iconv_sq(net, "stem_b1_3x3", b1, 96, 3, 1, 0, stem);
  LayerId b2 = iconv_sq(net, "stem_b2_1x1", x, 64, 1, 1, 0, stem);
  b2 = iconv(net, "stem_b2_1x7", b2, 64, 7, 1, 3, 0, 1, stem);
  b2 = iconv(net, "stem_b2_7x1", b2, 64, 1, 7, 0, 3, 1, stem);
  b2 = iconv_sq(net, "stem_b2_3x3", b2, 96, 3, 1, 0, stem);
  LayerSpec cat2 = LayerSpec::concat("stem_concat2");
  cat2.group = stem;
  x = net.add(std::move(cat2), {b1, b2});

  const LayerId c2 = iconv_sq(net, "stem_conv5", x, 192, 3, 2, 0, stem);
  LayerSpec mp2 = LayerSpec::max_pool("stem_pool2", Window{3, 3, 2, 2, 0, 0});
  mp2.group = stem;
  const LayerId p2 = net.add(std::move(mp2), {x});
  LayerSpec cat3 = LayerSpec::concat("stem_concat3");
  cat3.group = stem;
  x = net.add(std::move(cat3), {c2, p2});

  for (int i = 1; i <= 4; ++i) x = inception_a(net, x, "inceptionA" + std::to_string(i));
  x = reduction_a(net, x, "reductionA");
  for (int i = 1; i <= 7; ++i) x = inception_b(net, x, "inceptionB" + std::to_string(i));
  x = reduction_b(net, x, "reductionB");
  for (int i = 1; i <= 3; ++i) x = inception_c(net, x, "inceptionC" + std::to_string(i));

  LayerSpec gap = LayerSpec::global_avg_pool("gap");
  gap.group = "fc";
  x = net.add(std::move(gap), {x});
  x = fc_relu(net, "fc", x, 1000, "fc", /*with_relu=*/false);
  LayerSpec sm = LayerSpec::softmax("softmax");
  sm.group = "fc";
  net.add(std::move(sm), {x});
  return net;
}

std::vector<Network> paper_models() {
  std::vector<Network> models;
  models.push_back(alexnet());
  models.push_back(vgg16());
  models.push_back(resnet18());
  models.push_back(darknet53());
  models.push_back(inception_v4());
  return models;
}

Network by_name(const std::string& name) {
  if (name == "tiny-chain") return tiny_chain();
  if (name == "tiny-branch") return tiny_branch();
  if (name == "grid-module") return grid_module();
  if (name == "AlexNet") return alexnet();
  if (name == "VGG-16") return vgg16();
  if (name == "ResNet-18") return resnet18();
  if (name == "Darknet-53") return darknet53();
  if (name == "Inception-v4") return inception_v4();
  throw std::invalid_argument("zoo: unknown model '" + name + "'");
}

Network grid_module(int h, int w) {
  Network net("grid-module", Shape{1536, h, w});
  // v1: the "Filter Concat1" entry point, shape-preserving.
  const LayerId v1 = net.relu("filter_concat1", kNetworkInput);
  // Z2 branch heads.
  const LayerId v2 = net.avg_pool("avg_pooling", v1, 3, 1, 1);
  const LayerId v3 = net.conv("conv2_1x1", v1, 256, 1);
  const LayerId v4 = net.conv("conv3_1x1", v1, 384, 1);
  const LayerId v5 = net.conv("conv7_1x1", v1, 384, 1);
  // Z3.
  const LayerId v6 = net.conv("conv1_1x1", v2, 256, 1);
  const LayerId v7 = net.conv_rect("conv5_1x3", v4, 256, 3, 1, 1, 0);
  const LayerId v8 = net.conv_rect("conv6_3x1", v4, 256, 1, 3, 0, 1);
  const LayerId v9 = net.conv_rect("conv4_1x3", v5, 448, 3, 1, 1, 0);
  // Z4.
  const LayerId v10 = net.conv_rect("conv8_3x1", v9, 512, 1, 3, 0, 1);
  // Z5.
  const LayerId v11 = net.conv_rect("conv9_3x1", v10, 256, 1, 3, 0, 1);
  const LayerId v12 = net.conv_rect("conv10_1x3", v10, 256, 3, 1, 1, 0);
  // Z6: "Filter Concat2".
  net.concat("filter_concat2", {v6, v3, v7, v8, v11, v12});
  return net;
}

Network tiny_chain() {
  Network net("tiny-chain", Shape{3, 32, 32});
  LayerId x = net.conv("conv1", kNetworkInput, 8, 3, 1, 1);
  x = net.relu("relu1", x);
  x = net.max_pool("pool1", x, 2, 2);
  x = net.conv("conv2", x, 16, 3, 1, 1);
  x = net.relu("relu2", x);
  x = net.max_pool("pool2", x, 2, 2);
  x = net.fully_connected("fc1", x, 32);
  x = net.relu("relu3", x);
  x = net.fully_connected("fc2", x, 10);
  net.softmax("softmax", x);
  return net;
}

Network tiny_branch() {
  Network net("tiny-branch", Shape{3, 16, 16});
  const LayerId stemconv = net.conv("stem", kNetworkInput, 8, 3, 1, 1);
  const LayerId stem = net.relu("stem_relu", stemconv);
  const LayerId a = net.conv("branch_a", stem, 8, 1);
  LayerId b = net.conv("branch_b1", stem, 8, 3, 1, 1);
  b = net.conv("branch_b2", b, 8, 3, 1, 1);
  const LayerId cat = net.concat("concat", {a, b});
  LayerId x = net.conv("merge", cat, 16, 3, 2, 1);
  x = net.global_avg_pool("gap", x);
  x = net.fully_connected("fc", x, 10);
  net.softmax("softmax", x);
  return net;
}

Network conv_stack(const std::string& name, Shape input,
                   const std::vector<std::pair<int, Window>>& convs) {
  if (convs.empty()) throw std::invalid_argument("conv_stack: needs at least one conv");
  Network net(name, input);
  LayerId x = kNetworkInput;
  int index = 1;
  for (const auto& [channels, window] : convs)
    x = net.add(LayerSpec::conv("conv" + std::to_string(index++), channels, window), {x});
  return net;
}

}  // namespace d3::dnn::zoo
