// Dense float32 tensor in CHW layout plus the Shape vocabulary used by shape
// inference, cost accounting, and the reference executor.
//
// A Shape is always 3-D (channels, height, width); vector-shaped data such as
// fully-connected activations use {features, 1, 1}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace d3::dnn {

struct Shape {
  int c = 0;
  int h = 0;
  int w = 0;

  std::int64_t elements() const {
    return static_cast<std::int64_t>(c) * h * w;
  }
  // Activation size in bytes (float32), the lambda quantities of §III-E.
  std::int64_t bytes() const { return elements() * 4; }

  bool operator==(const Shape&) const = default;

  std::string to_string() const {
    return std::to_string(c) + "x" + std::to_string(h) + "x" + std::to_string(w);
  }
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape) {
    if (shape.c <= 0 || shape.h <= 0 || shape.w <= 0)
      throw std::invalid_argument("Tensor: non-positive shape " + shape.to_string());
    data_.assign(static_cast<std::size_t>(shape.elements()), 0.0f);
  }

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }

  float& at(int c, int y, int x) { return data_[index(c, y, x)]; }
  float at(int c, int y, int x) const { return data_[index(c, y, x)]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Flat access for fully-connected layers.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

 private:
  std::size_t index(int c, int y, int x) const {
    return (static_cast<std::size_t>(c) * shape_.h + static_cast<std::size_t>(y)) * shape_.w +
           static_cast<std::size_t>(x);
  }

  Shape shape_{};
  std::vector<float> data_;
};

}  // namespace d3::dnn
