// DNN layer vocabulary: kinds, hyper-parameters, shape inference (paper Eq. (3)),
// and per-layer cost accounting (FLOPs, parameter bytes, activation bytes) that
// feeds the latency regression features (§III-D) and the partition link weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/tensor.h"

namespace d3::dnn {

enum class LayerKind {
  kConv,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kFullyConnected,
  kReLU,
  kBatchNorm,
  kConcat,   // channel-wise concatenation of >= 2 inputs with equal H, W
  kAdd,      // elementwise sum of >= 2 equal-shaped inputs (residual connections)
  kSoftmax,
};

const char* layer_kind_name(LayerKind kind);

// Spatial window hyper-parameters shared by convolution and pooling
// (F^w/F^h = kernel, S^w/S^h = stride, P^w/P^h = padding in the paper's notation).
struct Window {
  int kernel_w = 1;
  int kernel_h = 1;
  int stride_w = 1;
  int stride_h = 1;
  int pad_w = 0;
  int pad_h = 0;
};

struct LayerSpec {
  LayerKind kind = LayerKind::kReLU;
  std::string name;
  // Optional coarse grouping label used by profiling reports that aggregate
  // several layers into a "block"/"residual" row as in the paper's Fig. 1.
  std::string group;

  Window window{};       // conv & pool layers
  int out_channels = 0;  // conv
  int out_features = 0;  // fully-connected

  static LayerSpec conv(std::string name, int out_channels, Window window);
  static LayerSpec max_pool(std::string name, Window window);
  static LayerSpec avg_pool(std::string name, Window window);
  static LayerSpec global_avg_pool(std::string name);
  static LayerSpec fully_connected(std::string name, int out_features);
  static LayerSpec relu(std::string name);
  static LayerSpec batch_norm(std::string name);
  static LayerSpec concat(std::string name);
  static LayerSpec add(std::string name);
  static LayerSpec softmax(std::string name);
};

// Output shape of `spec` applied to `inputs`. Throws std::invalid_argument when
// the inputs are incompatible with the layer (wrong arity, mismatched shapes,
// window larger than the padded input, ...). Spatial dims use the floor-division
// form of Eq. (3): W_out = (W - F + 2P)/S + 1.
Shape infer_output_shape(const LayerSpec& spec, const std::vector<Shape>& inputs);

// Multiply-accumulate-counted floating point operations (2 * MACs for conv/fc).
std::int64_t layer_flops(const LayerSpec& spec, const std::vector<Shape>& inputs,
                         const Shape& output);

// Learnable parameter count (weights + biases; batch-norm folded scale/shift).
std::int64_t layer_params(const LayerSpec& spec, const std::vector<Shape>& inputs);

// True for the kinds VSM can tile spatially (paper §III-F: conv plus the pooling
// and per-element layers between convs, which do not change tiling semantics).
bool is_vsm_tileable(LayerKind kind);

}  // namespace d3::dnn
