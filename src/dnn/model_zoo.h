// The five networks the paper evaluates (§IV: AlexNet, VGG-16, ResNet-18,
// Darknet-53, Inception-v4), built layer-by-layer with faithful hyper-parameters,
// plus small synthetic networks used by tests, examples and the VSM studies.
//
// All ImageNet models take 3x224x224 input as in the paper. Group labels follow
// the row labels of Fig. 1 (e.g. ResNet "block1".."block8", Darknet "residual1"..)
// so profiling reports can aggregate exactly like the paper's plots.
#pragma once

#include "dnn/network.h"

namespace d3::dnn::zoo {

// Chain-topology classifiers (Neurosurgeon-compatible).
Network alexnet();
Network vgg16();

// DAG-topology classifiers.
Network resnet18();
Network darknet53();
Network inception_v4();

// All five paper models, in the order the paper's figures list them.
std::vector<Network> paper_models();

// Looks a zoo model up by its Network::name() ("tiny-chain", "AlexNet", ...) —
// how a d3_node worker process rebuilds the model named in a shipped plan
// (every node holds the shared model zoo; only the name crosses the wire).
// grid-module resolves at its default 8x8 size. Throws std::invalid_argument
// on unknown names.
Network by_name(const std::string& name);

// The Inception-v4 grid module of Fig. 3a as a standalone network whose DAG is
// exactly Fig. 3b: vertex 0 = v0 (virtual input), vertices 1..13 = v1..v13 with
// graph layers Z0={v0}, Z1={v1}, Z2={v2..v5}, Z3={v6..v9}, Z4={v10}, Z5={v11,v12},
// Z6={v13}. `h`/`w` pick the spatial size (channels fixed at 1536 as in
// Inception-C).
Network grid_module(int h = 8, int w = 8);

// Small executable networks for tests and the quickstart example.
Network tiny_chain();   // conv/pool/fc chain on 3x32x32
Network tiny_branch();  // two-branch concat DAG on 3x16x16

// A bare stack of convolutional layers (each `channels[i]` with the matching
// window), the canonical VSM workload. No activation layers.
Network conv_stack(const std::string& name, Shape input,
                   const std::vector<std::pair<int, Window>>& convs);

}  // namespace d3::dnn::zoo
