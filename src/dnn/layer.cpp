#include "dnn/layer.h"

#include <stdexcept>

namespace d3::dnn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kGlobalAvgPool: return "gap";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kReLU: return "relu";
    case LayerKind::kBatchNorm: return "bn";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kAdd: return "add";
    case LayerKind::kSoftmax: return "softmax";
  }
  return "?";
}

LayerSpec LayerSpec::conv(std::string name, int out_channels, Window window) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.name = std::move(name);
  s.out_channels = out_channels;
  s.window = window;
  return s;
}

LayerSpec LayerSpec::max_pool(std::string name, Window window) {
  LayerSpec s;
  s.kind = LayerKind::kMaxPool;
  s.name = std::move(name);
  s.window = window;
  return s;
}

LayerSpec LayerSpec::avg_pool(std::string name, Window window) {
  LayerSpec s;
  s.kind = LayerKind::kAvgPool;
  s.name = std::move(name);
  s.window = window;
  return s;
}

LayerSpec LayerSpec::global_avg_pool(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kGlobalAvgPool;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::fully_connected(std::string name, int out_features) {
  LayerSpec s;
  s.kind = LayerKind::kFullyConnected;
  s.name = std::move(name);
  s.out_features = out_features;
  return s;
}

LayerSpec LayerSpec::relu(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kReLU;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::batch_norm(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kBatchNorm;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::concat(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kConcat;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::add(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kAdd;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::softmax(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kSoftmax;
  s.name = std::move(name);
  return s;
}

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument(what);
}

void require_single_input(const LayerSpec& spec, const std::vector<Shape>& inputs) {
  require(inputs.size() == 1, std::string(layer_kind_name(spec.kind)) + " layer '" + spec.name +
                                  "' expects exactly one input, got " +
                                  std::to_string(inputs.size()));
}

// Eq. (3) for one spatial dimension; validates divisibility-free floor form.
int window_out_dim(int in, int kernel, int stride, int pad, const std::string& what) {
  require(kernel >= 1 && stride >= 1 && pad >= 0, what + ": bad window hyper-parameters");
  const int padded = in + 2 * pad;
  require(padded >= kernel, what + ": window " + std::to_string(kernel) +
                                " larger than padded input " + std::to_string(padded));
  return (padded - kernel) / stride + 1;
}

Shape window_out_shape(const Shape& in, const Window& w, int out_channels,
                       const std::string& what) {
  Shape out;
  out.c = out_channels;
  out.h = window_out_dim(in.h, w.kernel_h, w.stride_h, w.pad_h, what + " (height)");
  out.w = window_out_dim(in.w, w.kernel_w, w.stride_w, w.pad_w, what + " (width)");
  return out;
}

}  // namespace

Shape infer_output_shape(const LayerSpec& spec, const std::vector<Shape>& inputs) {
  require(!inputs.empty(), "layer '" + spec.name + "' has no inputs");
  switch (spec.kind) {
    case LayerKind::kConv: {
      require_single_input(spec, inputs);
      require(spec.out_channels > 0, "conv '" + spec.name + "': out_channels must be > 0");
      return window_out_shape(inputs[0], spec.window, spec.out_channels, "conv '" + spec.name + "'");
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      require_single_input(spec, inputs);
      return window_out_shape(inputs[0], spec.window, inputs[0].c, "pool '" + spec.name + "'");
    }
    case LayerKind::kGlobalAvgPool: {
      require_single_input(spec, inputs);
      return Shape{inputs[0].c, 1, 1};
    }
    case LayerKind::kFullyConnected: {
      require_single_input(spec, inputs);
      require(spec.out_features > 0, "fc '" + spec.name + "': out_features must be > 0");
      return Shape{spec.out_features, 1, 1};
    }
    case LayerKind::kReLU:
    case LayerKind::kBatchNorm:
    case LayerKind::kSoftmax: {
      require_single_input(spec, inputs);
      return inputs[0];
    }
    case LayerKind::kConcat: {
      require(inputs.size() >= 2, "concat '" + spec.name + "' expects >= 2 inputs");
      Shape out = inputs[0];
      for (std::size_t i = 1; i < inputs.size(); ++i) {
        require(inputs[i].h == out.h && inputs[i].w == out.w,
                "concat '" + spec.name + "': spatial mismatch " + out.to_string() + " vs " +
                    inputs[i].to_string());
        out.c += inputs[i].c;
      }
      return out;
    }
    case LayerKind::kAdd: {
      require(inputs.size() >= 2, "add '" + spec.name + "' expects >= 2 inputs");
      for (std::size_t i = 1; i < inputs.size(); ++i)
        require(inputs[i] == inputs[0], "add '" + spec.name + "': shape mismatch " +
                                            inputs[0].to_string() + " vs " +
                                            inputs[i].to_string());
      return inputs[0];
    }
  }
  throw std::logic_error("infer_output_shape: unhandled layer kind");
}

std::int64_t layer_flops(const LayerSpec& spec, const std::vector<Shape>& inputs,
                         const Shape& output) {
  switch (spec.kind) {
    case LayerKind::kConv: {
      // 2 FLOPs per MAC; one MAC per filter tap per output element, plus bias add.
      const std::int64_t taps = static_cast<std::int64_t>(spec.window.kernel_w) *
                                spec.window.kernel_h * inputs[0].c;
      return output.elements() * (2 * taps + 1);
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const std::int64_t taps =
          static_cast<std::int64_t>(spec.window.kernel_w) * spec.window.kernel_h;
      return output.elements() * taps;
    }
    case LayerKind::kGlobalAvgPool:
      return inputs[0].elements();
    case LayerKind::kFullyConnected:
      return 2 * inputs[0].elements() * output.elements() + output.elements();
    case LayerKind::kReLU:
      return output.elements();
    case LayerKind::kBatchNorm:
      return 2 * output.elements();  // folded scale + shift
    case LayerKind::kSoftmax:
      return 5 * output.elements();  // exp, sub-max, sum, div (amortised)
    case LayerKind::kConcat:
      return 0;  // pure data movement; accounted as memory traffic
    case LayerKind::kAdd: {
      return static_cast<std::int64_t>(inputs.size() - 1) * output.elements();
    }
  }
  throw std::logic_error("layer_flops: unhandled layer kind");
}

std::int64_t layer_params(const LayerSpec& spec, const std::vector<Shape>& inputs) {
  switch (spec.kind) {
    case LayerKind::kConv: {
      const std::int64_t per_filter = static_cast<std::int64_t>(spec.window.kernel_w) *
                                          spec.window.kernel_h * inputs[0].c +
                                      1;  // + bias
      return per_filter * spec.out_channels;
    }
    case LayerKind::kFullyConnected:
      return (inputs[0].elements() + 1) * static_cast<std::int64_t>(spec.out_features);
    case LayerKind::kBatchNorm:
      return 2 * static_cast<std::int64_t>(inputs[0].c);  // folded scale/shift per channel
    default:
      return 0;
  }
}

bool is_vsm_tileable(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
    case LayerKind::kReLU:
    case LayerKind::kBatchNorm:
      return true;
    default:
      return false;
  }
}

}  // namespace d3::dnn
