// A DNN model: layers wired into a DAG, with eager shape inference and cost
// accounting. This is the object every other subsystem consumes — HPA partitions
// its graph, the profiler estimates its per-layer latency, the executor runs it.
//
// Layers reference their inputs by LayerId; the special id kNetworkInput refers to
// the model input tensor (the paper's virtual vertex v0). to_dag() exports the
// graph with vertex 0 = v0 and vertex i+1 = layer i, matching §III-C.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dnn/layer.h"
#include "graph/dag.h"

namespace d3::dnn {

using LayerId = std::size_t;
inline constexpr LayerId kNetworkInput = std::numeric_limits<LayerId>::max();

struct NetworkLayer {
  LayerSpec spec;
  std::vector<LayerId> inputs;  // kNetworkInput or earlier layer ids
  Shape output_shape;
  std::int64_t flops = 0;
  std::int64_t params = 0;
};

class Network {
 public:
  Network(std::string name, Shape input_shape);

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  std::size_t num_layers() const { return layers_.size(); }
  const NetworkLayer& layer(LayerId id) const { return layers_.at(id); }
  const std::vector<NetworkLayer>& layers() const { return layers_; }

  // Adds a layer consuming `inputs` (each kNetworkInput or an existing layer id,
  // duplicates disallowed). Shapes/costs are inferred eagerly; incompatible
  // layers throw std::invalid_argument at add time. Returns the new layer's id.
  LayerId add(LayerSpec spec, std::vector<LayerId> inputs);

  // Convenience builders (single input, defaulting to the previous layer via
  // last()). conv_bn_relu appends conv + batch-norm + relu sharing a group label.
  LayerId conv(const std::string& name, LayerId input, int out_channels, int kernel,
               int stride = 1, int pad = 0);
  LayerId conv_rect(const std::string& name, LayerId input, int out_channels, int kernel_w,
                    int kernel_h, int pad_w, int pad_h, int stride = 1);
  LayerId conv_bn_relu(const std::string& name, LayerId input, int out_channels, int kernel,
                       int stride = 1, int pad = 0, const std::string& group = "");
  LayerId max_pool(const std::string& name, LayerId input, int kernel, int stride, int pad = 0);
  LayerId avg_pool(const std::string& name, LayerId input, int kernel, int stride, int pad = 0);
  LayerId global_avg_pool(const std::string& name, LayerId input);
  LayerId fully_connected(const std::string& name, LayerId input, int out_features);
  LayerId relu(const std::string& name, LayerId input);
  LayerId concat(const std::string& name, std::vector<LayerId> inputs);
  LayerId add_residual(const std::string& name, LayerId a, LayerId b);
  LayerId softmax(const std::string& name, LayerId input);

  // Id of the most recently added layer. Throws if the network is empty.
  LayerId last() const;

  // Input shapes of a layer in declaration order.
  std::vector<Shape> input_shapes(LayerId id) const;

  // Total input activation bytes (lambda_in) and output bytes (lambda_out).
  std::int64_t lambda_in_bytes(LayerId id) const;
  std::int64_t lambda_out_bytes(LayerId id) const;

  std::int64_t total_flops() const;
  std::int64_t total_params() const;

  // Exports the computation DAG with the virtual input vertex v0 at index 0 and
  // layer i at vertex i+1. Every layer reading kNetworkInput gets an edge from v0.
  graph::Dag to_dag() const;

  static constexpr graph::VertexId vertex_of(LayerId id) { return id + 1; }
  static constexpr LayerId layer_of(graph::VertexId v) { return v - 1; }

  // True iff to_dag() is a simple path (Neurosurgeon's "chain topology").
  bool is_chain() const { return to_dag().is_chain(); }

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<NetworkLayer> layers_;
};

}  // namespace d3::dnn
