#include "dnn/network.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace d3::dnn {

Network::Network(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(input_shape) {
  if (input_shape.c <= 0 || input_shape.h <= 0 || input_shape.w <= 0)
    throw std::invalid_argument("Network '" + name_ + "': bad input shape " +
                                input_shape.to_string());
}

LayerId Network::add(LayerSpec spec, std::vector<LayerId> inputs) {
  if (inputs.empty())
    throw std::invalid_argument("layer '" + spec.name + "': needs at least one input");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const LayerId in = inputs[i];
    if (in != kNetworkInput && in >= layers_.size())
      throw std::invalid_argument("layer '" + spec.name + "': unknown input id");
    if (std::count(inputs.begin(), inputs.end(), in) > 1)
      throw std::invalid_argument("layer '" + spec.name + "': duplicate input");
  }
  if (spec.group.empty()) spec.group = spec.name;

  NetworkLayer layer;
  layer.spec = std::move(spec);
  layer.inputs = std::move(inputs);

  std::vector<Shape> in_shapes;
  in_shapes.reserve(layer.inputs.size());
  for (const LayerId in : layer.inputs)
    in_shapes.push_back(in == kNetworkInput ? input_shape_ : layers_[in].output_shape);

  layer.output_shape = infer_output_shape(layer.spec, in_shapes);
  layer.flops = layer_flops(layer.spec, in_shapes, layer.output_shape);
  layer.params = layer_params(layer.spec, in_shapes);
  layers_.push_back(std::move(layer));
  return layers_.size() - 1;
}

LayerId Network::conv(const std::string& name, LayerId input, int out_channels, int kernel,
                      int stride, int pad) {
  return add(LayerSpec::conv(name, out_channels,
                             Window{kernel, kernel, stride, stride, pad, pad}),
             {input});
}

LayerId Network::conv_rect(const std::string& name, LayerId input, int out_channels,
                           int kernel_w, int kernel_h, int pad_w, int pad_h, int stride) {
  return add(LayerSpec::conv(name, out_channels,
                             Window{kernel_w, kernel_h, stride, stride, pad_w, pad_h}),
             {input});
}

LayerId Network::conv_bn_relu(const std::string& name, LayerId input, int out_channels,
                              int kernel, int stride, int pad, const std::string& group) {
  const std::string g = group.empty() ? name : group;
  LayerSpec c = LayerSpec::conv(name, out_channels,
                                Window{kernel, kernel, stride, stride, pad, pad});
  c.group = g;
  const LayerId conv_id = add(std::move(c), {input});
  LayerSpec bn = LayerSpec::batch_norm(name + "_bn");
  bn.group = g;
  const LayerId bn_id = add(std::move(bn), {conv_id});
  LayerSpec act = LayerSpec::relu(name + "_relu");
  act.group = g;
  return add(std::move(act), {bn_id});
}

LayerId Network::max_pool(const std::string& name, LayerId input, int kernel, int stride,
                          int pad) {
  return add(LayerSpec::max_pool(name, Window{kernel, kernel, stride, stride, pad, pad}),
             {input});
}

LayerId Network::avg_pool(const std::string& name, LayerId input, int kernel, int stride,
                          int pad) {
  return add(LayerSpec::avg_pool(name, Window{kernel, kernel, stride, stride, pad, pad}),
             {input});
}

LayerId Network::global_avg_pool(const std::string& name, LayerId input) {
  return add(LayerSpec::global_avg_pool(name), {input});
}

LayerId Network::fully_connected(const std::string& name, LayerId input, int out_features) {
  return add(LayerSpec::fully_connected(name, out_features), {input});
}

LayerId Network::relu(const std::string& name, LayerId input) {
  return add(LayerSpec::relu(name), {input});
}

LayerId Network::concat(const std::string& name, std::vector<LayerId> inputs) {
  return add(LayerSpec::concat(name), std::move(inputs));
}

LayerId Network::add_residual(const std::string& name, LayerId a, LayerId b) {
  return add(LayerSpec::add(name), {a, b});
}

LayerId Network::softmax(const std::string& name, LayerId input) {
  return add(LayerSpec::softmax(name), {input});
}

LayerId Network::last() const {
  if (layers_.empty()) throw std::logic_error("Network '" + name_ + "' is empty");
  return layers_.size() - 1;
}

std::vector<Shape> Network::input_shapes(LayerId id) const {
  const NetworkLayer& layer = layers_.at(id);
  std::vector<Shape> shapes;
  shapes.reserve(layer.inputs.size());
  for (const LayerId in : layer.inputs)
    shapes.push_back(in == kNetworkInput ? input_shape_ : layers_[in].output_shape);
  return shapes;
}

std::int64_t Network::lambda_in_bytes(LayerId id) const {
  const auto shapes = input_shapes(id);
  return std::accumulate(shapes.begin(), shapes.end(), std::int64_t{0},
                         [](std::int64_t acc, const Shape& s) { return acc + s.bytes(); });
}

std::int64_t Network::lambda_out_bytes(LayerId id) const {
  return layers_.at(id).output_shape.bytes();
}

std::int64_t Network::total_flops() const {
  return std::accumulate(layers_.begin(), layers_.end(), std::int64_t{0},
                         [](std::int64_t acc, const NetworkLayer& l) { return acc + l.flops; });
}

std::int64_t Network::total_params() const {
  return std::accumulate(layers_.begin(), layers_.end(), std::int64_t{0},
                         [](std::int64_t acc, const NetworkLayer& l) { return acc + l.params; });
}

graph::Dag Network::to_dag() const {
  graph::Dag dag(layers_.size() + 1);
  for (LayerId id = 0; id < layers_.size(); ++id)
    for (const LayerId in : layers_[id].inputs)
      dag.add_edge(in == kNetworkInput ? 0 : vertex_of(in), vertex_of(id));
  return dag;
}

}  // namespace d3::dnn
