// Bandwidth dynamics for the "dynamic" part of D3: traces that perturb a
// NetworkCondition over time, driving the adaptive re-partitioning experiments
// (resource changes and network dynamics, paper §III-E last paragraph).
#pragma once

#include <vector>

#include "net/conditions.h"
#include "util/rng.h"

namespace d3::net {

// Piecewise-constant bandwidth trace for the LAN->cloud uplink.
class BandwidthTrace {
 public:
  struct Step {
    double start_seconds;
    double edge_cloud_mbps;
  };

  // Steps must be time-ordered and start at t=0.
  explicit BandwidthTrace(std::vector<Step> steps);

  // Bounded random walk around base.edge_cloud_mbps: every `interval` seconds
  // the rate multiplies by exp(N(0, sigma)), clamped to [lo, hi] x base.
  static BandwidthTrace random_walk(const NetworkCondition& base, double duration_seconds,
                                    double interval_seconds, double sigma, double lo_factor,
                                    double hi_factor, util::Rng& rng);

  double mbps_at(double t_seconds) const;

  // The full condition at time t (device-edge LAN unchanged; device->cloud scaled
  // with the uplink as in with_cloud_uplink).
  NetworkCondition condition_at(const NetworkCondition& base, double t_seconds) const;

  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace d3::net
