#include "net/dynamics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace d3::net {

BandwidthTrace::BandwidthTrace(std::vector<Step> steps) : steps_(std::move(steps)) {
  if (steps_.empty()) throw std::invalid_argument("BandwidthTrace: empty");
  if (steps_.front().start_seconds != 0.0)
    throw std::invalid_argument("BandwidthTrace: must start at t=0");
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (steps_[i].start_seconds <= steps_[i - 1].start_seconds)
      throw std::invalid_argument("BandwidthTrace: steps must be strictly time-ordered");
  for (const Step& s : steps_)
    if (s.edge_cloud_mbps <= 0) throw std::invalid_argument("BandwidthTrace: bad bandwidth");
}

BandwidthTrace BandwidthTrace::random_walk(const NetworkCondition& base,
                                           double duration_seconds, double interval_seconds,
                                           double sigma, double lo_factor, double hi_factor,
                                           util::Rng& rng) {
  if (interval_seconds <= 0 || duration_seconds <= 0)
    throw std::invalid_argument("BandwidthTrace::random_walk: bad duration/interval");
  std::vector<Step> steps;
  double mbps = base.edge_cloud_mbps;
  for (double t = 0; t < duration_seconds; t += interval_seconds) {
    steps.push_back({t, mbps});
    mbps *= std::exp(rng.normal(0.0, sigma));
    mbps = std::clamp(mbps, base.edge_cloud_mbps * lo_factor, base.edge_cloud_mbps * hi_factor);
  }
  return BandwidthTrace(std::move(steps));
}

double BandwidthTrace::mbps_at(double t_seconds) const {
  // Last step with start <= t; before t=0 clamp to the first step.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t_seconds,
      [](double t, const Step& s) { return t < s.start_seconds; });
  if (it == steps_.begin()) return steps_.front().edge_cloud_mbps;
  return std::prev(it)->edge_cloud_mbps;
}

NetworkCondition BandwidthTrace::condition_at(const NetworkCondition& base,
                                              double t_seconds) const {
  return with_cloud_uplink(base, mbps_at(t_seconds));
}

}  // namespace d3::net
