// Inter-tier network conditions.
//
// Encodes Table III of the paper verbatim: the average uplink rate between the
// device/edge LAN and the cloud under Wi-Fi, 4G, 5G and optical backhaul. The
// device<->edge link is always the 5 GHz Wi-Fi LAN (84.95 Mbps); when the edge
// uses the optical network the device reaches the cloud via Wi-Fi (18.75 Mbps).
// Intra-tier transmission is assumed infinitesimal (paper §III-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace d3::net {

struct NetworkCondition {
  std::string name;
  double device_edge_mbps = 0;
  double edge_cloud_mbps = 0;
  double device_cloud_mbps = 0;
  // One-way propagation delay added per transfer (0 reproduces the paper's
  // pure size/bandwidth model; available for sensitivity studies).
  double rtt_seconds = 0;

  double transfer_seconds(std::int64_t bytes, double mbps) const {
    return util::transfer_seconds(static_cast<double>(bytes), mbps) + rtt_seconds;
  }
};

// Table III presets.
NetworkCondition wifi();
NetworkCondition lte_4g();
NetworkCondition nr_5g();
NetworkCondition optical();

// The four conditions in the order the paper's figures sweep them.
std::vector<NetworkCondition> paper_conditions();

// A copy of `base` with the LAN->cloud uplink overridden (both edge->cloud and
// device->cloud scaled by the same factor), used for the Fig. 11 bandwidth sweep.
NetworkCondition with_cloud_uplink(const NetworkCondition& base, double edge_cloud_mbps);

}  // namespace d3::net
