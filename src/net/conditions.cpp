#include "net/conditions.h"

#include <stdexcept>

namespace d3::net {

namespace {
constexpr double kLanWifiMbps = 84.95;  // device <-> edge, Table III
}

NetworkCondition wifi() { return {"Wi-Fi", kLanWifiMbps, 31.53, 18.75, 0}; }
NetworkCondition lte_4g() { return {"4G", kLanWifiMbps, 13.79, 6.12, 0}; }
NetworkCondition nr_5g() { return {"5G", kLanWifiMbps, 22.75, 11.64, 0}; }
// Device reaches the cloud via the 5 GHz Wi-Fi when the edge uses optical backhaul.
NetworkCondition optical() { return {"Optical Network", kLanWifiMbps, 50.23, 18.75, 0}; }

std::vector<NetworkCondition> paper_conditions() {
  return {wifi(), lte_4g(), nr_5g(), optical()};
}

NetworkCondition with_cloud_uplink(const NetworkCondition& base, double edge_cloud_mbps) {
  if (edge_cloud_mbps <= 0) throw std::invalid_argument("with_cloud_uplink: bad bandwidth");
  NetworkCondition c = base;
  const double scale = edge_cloud_mbps / base.edge_cloud_mbps;
  c.edge_cloud_mbps = edge_cloud_mbps;
  c.device_cloud_mbps = base.device_cloud_mbps * scale;
  c.name = base.name + "@" + std::to_string(edge_cloud_mbps) + "Mbps";
  return c;
}

}  // namespace d3::net
