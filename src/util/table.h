// Fixed-width console table printer used by every bench binary so that the
// regenerated tables/figures read like the paper's, plus a CSV mirror for
// downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace d3::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  Table& cell(std::size_t value) { return cell(static_cast<std::int64_t>(value)); }

  // Render with aligned columns. `title` prints above the table when non-empty.
  void print(std::ostream& os, const std::string& title = "") const;

  // Comma-separated mirror of the same data (header row first).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace d3::util
