#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace d3::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("cell() before row()");
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("row has more cells than headers");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char ch : v) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace d3::util
