// Unit helpers. All internal computation uses SI base units: seconds for time,
// bytes for data sizes, bits-per-second for link rates. These helpers make the
// conversion sites explicit and grep-able.
#pragma once

#include <cstdint>

namespace d3::util {

constexpr double kBitsPerByte = 8.0;

constexpr double mbps_to_bytes_per_sec(double mbps) {
  return mbps * 1e6 / kBitsPerByte;
}

constexpr double bytes_to_megabits(double bytes) {
  return bytes * kBitsPerByte / 1e6;
}

constexpr double ms(double seconds) { return seconds * 1e3; }
constexpr double us(double seconds) { return seconds * 1e6; }

constexpr double from_ms(double milliseconds) { return milliseconds * 1e-3; }

constexpr double mib(double bytes) { return bytes / (1024.0 * 1024.0); }

// Time to push `bytes` through a link of `mbps` megabits per second.
constexpr double transfer_seconds(double bytes, double mbps) {
  return bytes / mbps_to_bytes_per_sec(mbps);
}

}  // namespace d3::util
