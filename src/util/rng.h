// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the repository (hardware-model noise, synthetic
// inputs, bandwidth traces, property-test sweeps) draws from util::Rng so that a
// fixed seed reproduces a run bit-for-bit across machines.
#pragma once

#include <cstdint>
#include <limits>

namespace d3::util {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
// Seeded through SplitMix64 so that nearby seeds yield uncorrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  // Standard normal via Box-Muller (one value per call; simple and adequate).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace d3::util
