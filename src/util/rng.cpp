#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace d3::util {

double Rng::normal(double mean, double stddev) {
  // Box-Muller; reject the exact-zero sample so log() is defined.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace d3::util
