#include "graph/dag.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace d3::graph {

void Dag::add_edge(VertexId from, VertexId to) {
  if (from >= size() || to >= size()) throw std::out_of_range("Dag::add_edge: bad vertex id");
  if (from == to) throw std::invalid_argument("Dag::add_edge: self-loop");
  if (has_edge(from, to)) throw std::invalid_argument("Dag::add_edge: duplicate edge");
  succs_[from].push_back(to);
  preds_[to].push_back(from);
  ++num_edges_;
}

bool Dag::has_edge(VertexId from, VertexId to) const {
  const auto& s = succs_.at(from);
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<std::pair<VertexId, VertexId>> Dag::edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges_);
  for (VertexId v = 0; v < size(); ++v)
    for (const VertexId s : succs_[v]) out.emplace_back(v, s);
  return out;
}

std::vector<VertexId> Dag::topological_order() const {
  std::vector<std::size_t> indeg(size());
  for (VertexId v = 0; v < size(); ++v) indeg[v] = preds_[v].size();

  std::queue<VertexId> ready;
  for (VertexId v = 0; v < size(); ++v)
    if (indeg[v] == 0) ready.push(v);

  std::vector<VertexId> order;
  order.reserve(size());
  while (!ready.empty()) {
    const VertexId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (const VertexId s : succs_[v])
      if (--indeg[s] == 0) ready.push(s);
  }
  if (order.size() != size()) throw std::logic_error("Dag::topological_order: graph has a cycle");
  return order;
}

bool Dag::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::vector<VertexId> Dag::sources() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < size(); ++v)
    if (preds_[v].empty()) out.push_back(v);
  return out;
}

std::vector<VertexId> Dag::sinks() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < size(); ++v)
    if (succs_[v].empty()) out.push_back(v);
  return out;
}

bool Dag::is_chain() const {
  for (VertexId v = 0; v < size(); ++v)
    if (in_degree(v) > 1 || out_degree(v) > 1) return false;
  return true;
}

}  // namespace d3::graph
