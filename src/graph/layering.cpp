#include "graph/layering.h"

#include <algorithm>
#include <stdexcept>

namespace d3::graph {

std::vector<int> longest_distance(const Dag& dag, VertexId root) {
  if (root >= dag.size()) throw std::out_of_range("longest_distance: bad root");
  std::vector<int> delta(dag.size(), -1);
  delta[root] = 0;
  for (const VertexId v : dag.topological_order()) {
    if (delta[v] < 0) continue;  // unreachable from root
    for (const VertexId s : dag.successors(v))
      delta[s] = std::max(delta[s], delta[v] + 1);
  }
  return delta;
}

std::vector<std::vector<VertexId>> graph_layers(const Dag& dag, VertexId root) {
  const std::vector<int> delta = longest_distance(dag, root);
  const int max_delta = delta.empty() ? -1 : *std::max_element(delta.begin(), delta.end());
  std::vector<std::vector<VertexId>> layers(static_cast<std::size_t>(max_delta + 1));
  for (VertexId v = 0; v < dag.size(); ++v)
    if (delta[v] >= 0) layers[static_cast<std::size_t>(delta[v])].push_back(v);
  return layers;
}

bool is_sis_vertex(const Dag& dag, VertexId vi, VertexId vj) {
  if (vi == vj) return false;
  const auto& pi = dag.predecessors(vi);
  const auto& pj = dag.predecessors(vj);
  if (pj.empty() || pj.size() >= pi.size()) return false;  // proper subset needs |Vpj| < |Vpi|
  return std::all_of(pj.begin(), pj.end(), [&](VertexId p) {
    return std::find(pi.begin(), pi.end(), p) != pi.end();
  });
}

std::vector<VertexId> sis_vertices(const Dag& dag, VertexId vi,
                                   const std::vector<VertexId>& candidates) {
  std::vector<VertexId> out;
  for (const VertexId vj : candidates)
    if (is_sis_vertex(dag, vi, vj)) out.push_back(vj);
  return out;
}

}  // namespace d3::graph
