// Longest-distance layering (paper §III-E).
//
// HPA assigns every vertex vi the longest distance delta(vi) from the virtual input
// v0 (measured in edges), computed by dynamic programming over a topological order
// in O(|V| + |L|). The partition Zq := { vi : delta(vi) = q } groups vertices into
// "graph layers" processed front to back by HPA. Also provides the subset-input-
// sibling (SIS) relation used by the SIS update step (Prop. 2).
#pragma once

#include <vector>

#include "graph/dag.h"

namespace d3::graph {

// delta(v) for every vertex: the number of edges on the longest path from `root`.
// Vertices unreachable from `root` get delta = -1 (never the case for DNN graphs,
// where v0 reaches everything, but kept well-defined for generic DAGs).
std::vector<int> longest_distance(const Dag& dag, VertexId root = 0);

// Graph layers Z0..Zmax: layers()[q] lists the vertices with delta == q, in
// ascending id order. Unreachable vertices are omitted.
std::vector<std::vector<VertexId>> graph_layers(const Dag& dag, VertexId root = 0);

// True iff vj is a subset-input-sibling (SIS) vertex of vi: Vp(vj) is a
// *proper, non-empty* subset of Vp(vi). (paper §III-E, Fig. 6: v6 is the SIS
// vertex of v5 because Vp6 ⊂ Vp5; v7 is not because Vp7 ⊄ Vp5.)
bool is_sis_vertex(const Dag& dag, VertexId vi, VertexId vj);

// All SIS vertices of vi within the candidate set, preserving candidate order.
std::vector<VertexId> sis_vertices(const Dag& dag, VertexId vi,
                                   const std::vector<VertexId>& candidates);

}  // namespace d3::graph
