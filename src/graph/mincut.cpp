#include "graph/mincut.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace d3::graph {

namespace {
// Tolerance for treating residual capacity as exhausted; capacities here are
// latencies in seconds, so 1e-15 is far below any meaningful quantity.
constexpr double kEps = 1e-15;
}  // namespace

FlowNetwork::FlowNetwork(std::size_t num_nodes)
    : adj_(num_nodes), level_(num_nodes), iter_(num_nodes), source_side_(num_nodes, false) {}

std::size_t FlowNetwork::add_edge(std::size_t from, std::size_t to, double capacity) {
  if (from >= size() || to >= size()) throw std::out_of_range("FlowNetwork::add_edge: bad node");
  if (capacity < 0) throw std::invalid_argument("FlowNetwork::add_edge: negative capacity");
  adj_[from].push_back(Edge{to, capacity, adj_[to].size(), capacity});
  adj_[to].push_back(Edge{from, 0.0, adj_[from].size() - 1, 0.0});
  edge_index_.emplace_back(from, adj_[from].size() - 1);
  return edge_index_.size() - 1;
}

bool FlowNetwork::bfs_levels(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<std::size_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : adj_[v]) {
      if (e.capacity > kEps && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double FlowNetwork::dfs_augment(std::size_t v, std::size_t t, double pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Edge& e = adj_[v][i];
    if (e.capacity <= kEps || level_[e.to] != level_[v] + 1) continue;
    const double got = dfs_augment(e.to, t, std::min(pushed, e.capacity));
    if (got > kEps) {
      e.capacity -= got;
      adj_[e.to][e.rev].capacity += got;
      return got;
    }
  }
  return 0.0;
}

double FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  if (solved_) throw std::logic_error("FlowNetwork::max_flow: already solved");
  if (s >= size() || t >= size() || s == t)
    throw std::invalid_argument("FlowNetwork::max_flow: bad terminals");
  double total = 0.0;
  while (bfs_levels(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const double pushed = dfs_augment(s, t, kInfinity);
      if (pushed <= kEps) break;
      total += pushed;
    }
  }
  compute_source_side(s);
  solved_ = true;
  return total;
}

void FlowNetwork::compute_source_side(std::size_t s) {
  std::fill(source_side_.begin(), source_side_.end(), false);
  std::queue<std::size_t> q;
  source_side_[s] = true;
  q.push(s);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : adj_[v]) {
      if (e.capacity > kEps && !source_side_[e.to]) {
        source_side_[e.to] = true;
        q.push(e.to);
      }
    }
  }
}

double FlowNetwork::flow_on(std::size_t edge_index) const {
  if (!solved_) throw std::logic_error("FlowNetwork::flow_on: call max_flow first");
  const auto [node, offset] = edge_index_.at(edge_index);
  const Edge& e = adj_[node][offset];
  return e.original_capacity - e.capacity;
}

std::vector<std::tuple<std::size_t, std::size_t, double>> FlowNetwork::cut_edges() const {
  if (!solved_) throw std::logic_error("FlowNetwork::cut_edges: call max_flow first");
  std::vector<std::tuple<std::size_t, std::size_t, double>> out;
  for (std::size_t v = 0; v < size(); ++v) {
    if (!source_side_[v]) continue;
    for (const Edge& e : adj_[v]) {
      // Forward edges only (reverse edges have original_capacity == 0).
      if (e.original_capacity > 0.0 && !source_side_[e.to])
        out.emplace_back(v, e.to, e.original_capacity);
    }
  }
  return out;
}

}  // namespace d3::graph
