// Directed acyclic graph used to model DNN computation graphs (paper §III-C).
//
// Vertices are dense integer ids 0..size()-1 so that algorithm state can live in
// flat vectors. Vertex 0 is, by convention throughout the repository, the paper's
// virtual input vertex v0 (dnn::Network::to_dag inserts it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace d3::graph {

using VertexId = std::size_t;

class Dag {
 public:
  Dag() = default;
  explicit Dag(std::size_t num_vertices) { resize(num_vertices); }

  void resize(std::size_t num_vertices) {
    succs_.resize(num_vertices);
    preds_.resize(num_vertices);
  }

  VertexId add_vertex() {
    succs_.emplace_back();
    preds_.emplace_back();
    return succs_.size() - 1;
  }

  // Adds the directed link (from, to). Throws std::out_of_range for bad ids and
  // std::invalid_argument for self-loops or duplicate edges.
  void add_edge(VertexId from, VertexId to);

  bool has_edge(VertexId from, VertexId to) const;

  std::size_t size() const { return succs_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  const std::vector<VertexId>& successors(VertexId v) const { return succs_.at(v); }
  const std::vector<VertexId>& predecessors(VertexId v) const { return preds_.at(v); }

  std::size_t in_degree(VertexId v) const { return preds_.at(v).size(); }
  std::size_t out_degree(VertexId v) const { return succs_.at(v).size(); }

  // All (from, to) pairs, ordered by `from` then insertion order.
  std::vector<std::pair<VertexId, VertexId>> edges() const;

  // Kahn topological order. Throws std::logic_error if the graph has a cycle
  // (i.e. it is not actually a DAG).
  std::vector<VertexId> topological_order() const;

  // True iff edge set is acyclic.
  bool is_acyclic() const;

  // Vertices with no predecessors / no successors.
  std::vector<VertexId> sources() const;
  std::vector<VertexId> sinks() const;

  // True iff every vertex has in-degree <= 1 and out-degree <= 1 (a path),
  // which is the "chain topology" Neurosurgeon requires.
  bool is_chain() const;

 private:
  std::vector<std::vector<VertexId>> succs_;
  std::vector<std::vector<VertexId>> preds_;
  std::size_t num_edges_ = 0;
};

}  // namespace d3::graph
