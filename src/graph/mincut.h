// Dinic max-flow / min-cut on a directed flow network.
//
// Substrate for the DADS baseline (Hu et al., INFOCOM'19), which finds the optimal
// two-way DNN split as an s-t min-cut over a transformed computation graph. Kept
// generic: capacities are doubles, kInfinity marks uncuttable edges (DADS uses them
// to forbid backward cloud->edge data flow).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace d3::graph {

class FlowNetwork {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  explicit FlowNetwork(std::size_t num_nodes);

  std::size_t size() const { return adj_.size(); }

  // Adds a directed edge with the given capacity (>= 0 or kInfinity).
  // Returns the edge index, usable with flow_on().
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity);

  // Runs Dinic from s to t; returns the max-flow value. May be called once.
  double max_flow(std::size_t s, std::size_t t);

  // After max_flow(): true for nodes reachable from s in the residual graph
  // (the "source side" of the min cut).
  const std::vector<bool>& source_side() const { return source_side_; }

  // After max_flow(): flow routed through the edge returned by add_edge().
  double flow_on(std::size_t edge_index) const;

  // After max_flow(): the saturated edges crossing the cut, as (from, to, capacity).
  std::vector<std::tuple<std::size_t, std::size_t, double>> cut_edges() const;

 private:
  struct Edge {
    std::size_t to;
    double capacity;  // residual capacity
    std::size_t rev;  // index of reverse edge in adj_[to]
    double original_capacity;
  };

  bool bfs_levels(std::size_t s, std::size_t t);
  double dfs_augment(std::size_t v, std::size_t t, double pushed);
  void compute_source_side(std::size_t s);

  std::vector<std::vector<Edge>> adj_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // (node, offset)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<bool> source_side_;
  bool solved_ = false;
};

}  // namespace d3::graph
