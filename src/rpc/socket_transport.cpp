#include "rpc/socket_transport.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "rpc/wire.h"

namespace d3::rpc {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SocketTransport::add_node(const std::string& node, Socket socket) {
  if (!socket.valid()) throw TransportError("add_node: invalid socket for '" + node + "'");
  auto entry = std::make_unique<Node>();
  entry->name = node;
  entry->socket = std::move(socket);
  entry->peer = describe_peer(entry->socket.fd());
  if (!nodes_.emplace(node, std::move(entry)).second)
    throw TransportError("add_node: node '" + node + "' already attached");
}

void SocketTransport::add_tile_worker(Socket socket) {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  // First free "edgeK" name: after a prune the detached node keeps its name
  // (it stays in nodes_ so nothing dangles), so a replacement worker must not
  // collide with it.
  std::size_t k = tile_workers_.size() + 1;
  while (nodes_.count("edge" + std::to_string(k)) > 0) ++k;
  const std::string node = "edge" + std::to_string(k);
  add_node(node, std::move(socket));
  tile_workers_.push_back(nodes_.at(node).get());
}

SocketTransport::Node* SocketTransport::find(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second->detached.load(std::memory_order_acquire))
    return nullptr;
  return it->second.get();
}

SocketTransport::Node& SocketTransport::tile_worker(std::size_t tile) const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  if (tile_workers_.empty()) throw TransportError("no tile workers attached");
  return *tile_workers_[tile % tile_workers_.size()];
}

bool SocketTransport::has_tile_workers() const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return !tile_workers_.empty() && nodes_.count("edge0") == 0;
}

std::size_t SocketTransport::tile_worker_count() const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return tile_workers_.size();
}

std::string SocketTransport::tile_node(std::size_t tile) const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  if (tile_workers_.empty()) return {};
  return tile_workers_[tile % tile_workers_.size()]->name;
}

std::shared_ptr<SocketTransport::PendingOp> SocketTransport::submit_op(
    Node& node, MsgKind kind, std::span<const std::uint8_t> body, MsgKind expected) {
  if (!node.socket.valid())
    throw SocketError("node '" + node.name + "': channel is down");
  auto op = std::make_shared<PendingOp>();
  op->corr = node.next_corr++;
  op->sent = kind;
  op->expected = expected;
  encode_frame(node.outbox, kind, body, op->corr);
  ++node.outbox_frames;
  node.pending.push_back(op);
  return op;
}

void SocketTransport::flush_locked(Node& node) {
  if (node.outbox.empty()) return;
  if (node.outbox_frames > 1) pipelined_sends_.fetch_add(1, std::memory_order_relaxed);
  frames_sent_.fetch_add(node.outbox_frames, std::memory_order_relaxed);
  // Moved out before the write: a mid-write failure must not leave half-sent
  // bytes queued for a retry on the (recovered) channel.
  const std::vector<std::uint8_t> bytes = std::move(node.outbox);
  node.outbox.clear();
  node.outbox_frames = 0;
  write_bytes(node.socket.fd(), bytes);
}

void SocketTransport::drain_one_locked(Node& node) {
  if (node.pending.empty())
    throw SocketError("node '" + node.name + "': reply arrived with no frame outstanding");
  Frame reply = read_frame(node.socket.fd());
  const std::shared_ptr<PendingOp> op = node.pending.front();
  if (reply.corr != op->corr)
    throw SocketError("node '" + node.name + "': correlation desync — expected id " +
                      std::to_string(op->corr) + ", got id " + std::to_string(reply.corr) +
                      " (reply kind " + std::to_string(static_cast<int>(reply.kind)) + ")");
  node.pending.pop_front();
  if (node.ping_op == op) node.ping_op.reset();
  if (reply.kind == MsgKind::kErrorState) {
    // A fresh worker incarnation (respawned after a death that some *other*
    // call already paid for) has no per-request state for this request. The
    // channel itself is healthy: the engine can reopen the request on the
    // named node, re-seed its lost slots, and re-run only the interrupted
    // tier.
    WireReader r(reply.body);
    const std::string lost = r.str();
    const std::string message = r.str();
    op->error = std::make_exception_ptr(
        ChannelDied(lost, /*channel_restored=*/true,
                    "node '" + lost + "' lost its per-request state (" + message +
                        "); reopen + re-seed to recover"));
  } else if (reply.kind == MsgKind::kFenced) {
    // A successor coordinator (higher fencing epoch) owns this worker: the
    // verb was rejected before any state mutation. The channel is healthy and
    // the worker state intact — deliberately NO recovery here; the error
    // surfaces to the deposed coordinator's caller, which must stop driving
    // these workers.
    WireReader r(reply.body);
    op->error = std::make_exception_ptr(Fenced(node.name, r.u64()));
  } else if (reply.kind == MsgKind::kBundleMismatch) {
    // The worker holds different weights than the elided kConfig named (a
    // stale boot bundle, or none at all): version skew, rejected before any
    // state mutation. Like Fenced, the channel is healthy and there is
    // nothing to recover — the operator must redistribute matching bundles.
    WireReader r(reply.body);
    op->error = std::make_exception_ptr(BundleMismatch(node.name, r.u64(), weights_hash_));
  } else if (reply.kind == MsgKind::kError) {
    WireReader r(reply.body);
    op->error =
        std::make_exception_ptr(TransportError("node '" + node.name + "': " + r.str()));
  } else if (reply.kind != op->expected) {
    op->error = std::make_exception_ptr(TransportError(
        "node '" + node.name + "': unexpected reply kind " +
        std::to_string(static_cast<int>(reply.kind)) + " to request kind " +
        std::to_string(static_cast<int>(op->sent))));
  } else {
    // A drained kPong is proof of life no matter which caller drained it.
    if (op->sent == MsgKind::kPing) node.misses.store(0, std::memory_order_relaxed);
    if (op->is_fetch) {
      payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
      try {
        op->tensor = decode_tensor(std::span<const std::uint8_t>(reply.body));
      } catch (const std::exception&) {
        op->error = std::current_exception();
      }
    }
    op->reply = std::move(reply);
  }
  op->completed.store(true, std::memory_order_release);
}

void SocketTransport::fail_pending_and_recover_locked(Node& node, const std::string& error) {
  std::deque<std::shared_ptr<PendingOp>> failed;
  failed.swap(node.pending);
  node.outbox.clear();
  node.outbox_frames = 0;
  node.ping_op.reset();
  try {
    recover_locked(node, error);  // always throws
  } catch (...) {
    // Every op queued on the dead socket shares the recovery outcome: a parked
    // waiter learns of the death (and whether the channel was restored) from
    // its own handle, exactly like a blocking caller would from the throw.
    const std::exception_ptr outcome = std::current_exception();
    for (const std::shared_ptr<PendingOp>& op : failed) {
      if (op->completed.load(std::memory_order_acquire)) continue;
      op->error = outcome;
      op->completed.store(true, std::memory_order_release);
    }
    throw;
  }
}

Frame SocketTransport::roundtrip_locked(Node& node, MsgKind kind,
                                        std::span<const std::uint8_t> body, MsgKind expected) {
  const std::shared_ptr<PendingOp> op = submit_op(node, kind, body, expected);
  flush_locked(node);
  // Replies are strictly FIFO per channel: earlier issued-but-unanswered
  // frames (pipelined async ops, an outstanding heartbeat ping) complete
  // first, then this one.
  while (!op->completed.load(std::memory_order_acquire)) drain_one_locked(node);
  if (op->error) std::rethrow_exception(op->error);
  return std::move(op->reply);
}

void SocketTransport::recover_locked(Node& node, const std::string& error) {
  node.socket.close();
  // Heartbeat and correlation bookkeeping was about the dead socket; a fresh
  // incarnation starts clean. (Callers with queued ops move them out first —
  // fail_pending_and_recover_locked completes them with this recovery's
  // outcome; anything still here belonged to no live waiter.)
  node.pending.clear();
  node.outbox.clear();
  node.outbox_frames = 0;
  node.ping_op.reset();
  node.misses.store(0, std::memory_order_relaxed);
  if (!node.reconnect)
    throw ChannelDied(node.name, /*channel_restored=*/false,
                      "node '" + node.name + "' (peer " + node.peer +
                          ") died mid-request (" + error +
                          "); no reconnect hook registered, node stays detached");
  std::chrono::milliseconds backoff = node.retry.initial_backoff;
  std::string last = error;
  for (int attempt = 1; attempt <= node.retry.max_attempts; ++attempt) {
    std::this_thread::sleep_for(backoff);
    backoff = std::chrono::milliseconds(static_cast<std::chrono::milliseconds::rep>(
        static_cast<double>(backoff.count()) * node.retry.backoff_multiplier));
    try {
      node.socket = node.reconnect();
      node.peer = describe_peer(node.socket.fd());
      // A fresh process knows nothing: replay the cached deployment bundle so
      // the channel is immediately serviceable for recovered requests. Direct
      // frame I/O, not the pending queue — the queue was torn down with the
      // dead socket, and exactly one frame is outstanding here.
      if (!node.config_body.empty()) {
        const std::uint64_t corr = node.next_corr++;
        write_frame(node.socket.fd(), MsgKind::kConfig, node.config_body, corr);
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
        const Frame reply = read_frame(node.socket.fd());
        if (reply.corr != corr)
          throw SocketError("node '" + node.name + "': kConfig replay correlation desync");
        if (reply.kind == MsgKind::kFenced) {
          // The fresh incarnation was already configured by a successor
          // coordinator: this one is deposed, not disconnected. Not a replay
          // failure — retrying cannot help.
          WireReader r(reply.body);
          throw Fenced(node.name, r.u64());
        }
        if (reply.kind == MsgKind::kBundleMismatch) {
          // The fresh incarnation holds different weights than the elided
          // config replay named (it lost its bundle-loaded state with the old
          // process, or booted from a stale bundle): version skew, not a
          // transient failure — retrying cannot help.
          WireReader r(reply.body);
          throw BundleMismatch(node.name, r.u64(), weights_hash_);
        }
        if (reply.kind != MsgKind::kOk) {
          std::string message = "reply kind " + std::to_string(static_cast<int>(reply.kind));
          if (reply.kind == MsgKind::kError) {
            WireReader r(reply.body);
            message = r.str();
          }
          throw SocketError("node '" + node.name + "': kConfig replay rejected: " + message);
        }
      }
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      // The channel is healthy again, but this worker incarnation never saw
      // the in-flight request's kBegin/kPut history — the engine must reopen
      // the request and re-seed the lost slots (tier-granular recovery), or
      // replay the request end-to-end (identical either way, by the
      // transcript-purity invariant).
      throw ChannelDied(node.name, /*channel_restored=*/true,
                        "node '" + node.name + "' died mid-request (" + error +
                            "); channel re-established after " + std::to_string(attempt) +
                            " attempt(s) — reopen + re-seed, or replay the request");
    } catch (const ChannelDied&) {
      throw;  // recovery outcome, not a retryable failure
    } catch (const Fenced&) {
      throw;  // deposed, not disconnected: no amount of retrying helps
    } catch (const BundleMismatch&) {
      throw;  // version skew, not a transient failure: retrying cannot help
    } catch (const std::exception& e) {
      node.socket.close();
      last = e.what();
    }
  }
  throw ChannelDied(node.name, /*channel_restored=*/false,
                    "node '" + node.name + "' (peer " + node.peer +
                        ") died mid-request (" + error + ") and reconnect failed after " +
                        std::to_string(node.retry.max_attempts) + " attempts: " + last);
}

// AsyncOp over one queued frame. poll()/wait() flush the node's outbox (the
// frame may still be sitting there unsent) and drain replies — in FIFO order,
// so they may complete *earlier* ops first; completion failures (including a
// channel death, which runs full recovery) land in `error` instead of being
// thrown, so a parked caller can always settle every handle it holds before
// acting on any of them.
class SocketTransport::SocketOp final : public Transport::AsyncOp {
 public:
  SocketOp(SocketTransport& transport, Node& node, std::shared_ptr<PendingOp> op,
           std::uint64_t issue_bytes)
      : transport_(&transport), node_(&node), op_(std::move(op)) {
    bytes = issue_bytes;
  }

  bool poll() override { return advance(/*block=*/false); }
  void wait() override { advance(/*block=*/true); }
  bool settled() const override {
    return done_ || op_->completed.load(std::memory_order_acquire);
  }
  int fd() override {
    if (settled()) return -1;
    std::lock_guard<std::mutex> lock(node_->mutex);
    // The frame must actually be on the wire before readiness of this fd can
    // mean anything to a reactor.
    try {
      transport_->flush_locked(*node_);
    } catch (const SocketError& e) {
      fail_locked(e);
      return -1;
    }
    return node_->socket.valid() ? node_->socket.fd() : -1;
  }

 private:
  bool advance(bool block) {
    if (done_) return true;
    std::lock_guard<std::mutex> lock(node_->mutex);
    try {
      if (!op_->completed.load(std::memory_order_acquire)) {
        transport_->flush_locked(*node_);
        while (!op_->completed.load(std::memory_order_acquire)) {
          if (!block) {
            const int fds[] = {node_->socket.fd()};
            if (poll_readable(fds, 0) < 0) return false;  // no reply bytes yet
          }
          transport_->drain_one_locked(*node_);
        }
      }
    } catch (const SocketError& e) {
      fail_locked(e);
      return true;
    }
    return finish_locked();
  }

  // Socket-level failure: run channel recovery and surface its outcome
  // (ChannelDied) through `error` — poll()/wait()/fd() never throw.
  void fail_locked(const SocketError& e) {
    try {
      transport_->fail_pending_and_recover_locked(*node_, e.what());
    } catch (...) {
      if (!op_->completed.load(std::memory_order_acquire)) {
        op_->error = std::current_exception();
        op_->completed.store(true, std::memory_order_release);
      }
    }
    finish_locked();
  }

  bool finish_locked() {
    error = op_->error;
    if (!error && op_->tensor) tensor = std::move(op_->tensor);
    if (!error && op_->is_fetch) bytes = op_->reply.body.size();
    done_ = true;
    return true;
  }

  SocketTransport* transport_;
  Node* node_;
  std::shared_ptr<PendingOp> op_;
  bool done_ = false;
};

Transport::OpHandle SocketTransport::issue_call(Node& node, MsgKind kind,
                                                std::span<const std::uint8_t> body,
                                                MsgKind expected, bool is_fetch,
                                                std::uint64_t issue_bytes) {
  std::lock_guard<std::mutex> lock(node.mutex);
  try {
    std::shared_ptr<PendingOp> op = submit_op(node, kind, body, expected);
    op->is_fetch = is_fetch;
    return OpHandle(std::make_shared<SocketOp>(*this, node, std::move(op), issue_bytes));
  } catch (const SocketError& e) {
    fail_pending_and_recover_locked(node, e.what());  // issue-time failures throw
  }
}

Frame SocketTransport::call(Node& node, MsgKind kind, std::span<const std::uint8_t> body,
                            MsgKind expected) {
  std::lock_guard<std::mutex> lock(node.mutex);
  try {
    return roundtrip_locked(node, kind, body, expected);
  } catch (const SocketError& e) {
    fail_pending_and_recover_locked(node, e.what());  // always throws
  }
}

void SocketTransport::configure(const std::string& model_name, const dnn::Network& net,
                                const exec::WeightStore& weights,
                                std::span<const std::uint8_t> plan_binary,
                                std::size_t vsm_workers) {
  // The weights bytes are encoded either way: elided mode still names their
  // hash — the O(1) identity a bundle-booted worker checks its shard against.
  const std::vector<std::uint8_t> weight_bytes = encode_weights(weights, net);
  weights_hash_ = fnv1a(weight_bytes);
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    WireWriter w;
    // The fencing epoch leads the body so workers can gate before parsing the
    // bundle; it rides the cached body too, so the kConfig replay after a
    // reconnect carries this coordinator's incarnation automatically.
    w.u64(epoch_);
    w.u8(elide_weights_ ? 1 : 0);
    w.str(name);
    w.str(model_name);
    if (elide_weights_)
      w.u64(weights_hash_);
    else
      w.blob(weight_bytes);
    w.blob(plan_binary);
    w.u32(static_cast<std::uint32_t>(vsm_workers));
    node->config_body = w.take();
    config_bytes_sent_.fetch_add(node->config_body.size(), std::memory_order_relaxed);
    call(*node, MsgKind::kConfig, node->config_body);
  }
}

void SocketTransport::set_reconnect(const std::string& node_name, ReconnectFn fn,
                                    RetryPolicy policy) {
  // Deliberately not find(): a detached (pruned) tile worker must be reachable
  // here, because a late reconnect hook is its ticket back into the shard map.
  const auto it = nodes_.find(node_name);
  if (it == nodes_.end())
    throw TransportError("set_reconnect: node '" + node_name + "' is not attached");
  Node& node = *it->second;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.reconnect = std::move(fn);
    node.retry = policy;
  }
  if (node.detached.load(std::memory_order_acquire)) readmit(node);
}

void SocketTransport::readmit(Node& node) {
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    // Any leftover correlation state belonged to the dead incarnation.
    node.pending.clear();
    node.outbox.clear();
    node.outbox_frames = 0;
    node.ping_op.reset();
    node.socket = node.reconnect();
    node.peer = describe_peer(node.socket.fd());
    // The fresh incarnation knows nothing: replay the cached deployment
    // bundle before the worker rejoins the shard map, so the first tile call
    // it sees is serviceable.
    if (!node.config_body.empty())
      roundtrip_locked(node, MsgKind::kConfig, node.config_body, MsgKind::kOk);
  }
  std::lock_guard<std::mutex> lock(shard_mutex_);
  node.detached.store(false, std::memory_order_release);
  tile_workers_.push_back(&node);
  // Shard order must be a pure function of the attached set, not of the
  // prune/rejoin history, or tile -> worker routing (and with it which
  // channels carry which bytes) would depend on failure timing. Sorting by
  // (length, name) restores attachment order: edge1 < edge2 < ... < edge10.
  std::sort(tile_workers_.begin(), tile_workers_.end(), [](const Node* a, const Node* b) {
    return std::make_pair(a->name.size(), a->name) < std::make_pair(b->name.size(), b->name);
  });
  readmitted_workers_.fetch_add(1, std::memory_order_relaxed);
}

void SocketTransport::set_advertised_address(const std::string& node_name,
                                             std::string address) {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  advertised_addresses_[node_name] = std::move(address);
}

std::string SocketTransport::advertised_address(const Node& to) const {
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    const auto it = advertised_addresses_.find(to.name);
    if (it != advertised_addresses_.end()) return it->second;
  }
  // The coordinator-observed address of the node's own channel: a sibling
  // worker on the coordinator's network reaches the node by the same route
  // the coordinator does. (A hardcoded 127.0.0.1 here used to break every
  // off-host peer channel.)
  return peer_address(to.socket.fd());
}

void SocketTransport::link_peers(Node& from, Node& to) {
  observe(MsgKind::kPeerListen, to.name);
  WireWriter listen;
  const Frame port_reply = call(to, MsgKind::kPeerListen, listen.buffer());
  WireReader pr(port_reply.body);
  const std::uint32_t port = pr.u32();
  pr.expect_end("peer-listen reply");
  // The receiver is now listening but the dialling leg has not run: the
  // worker-side kPeerHello handshake this window ends in is the observable
  // point a fault injector targets to kill `to` between the two legs.
  observe(MsgKind::kPeerHello, to.name);
  WireWriter w;
  w.str(to.name);
  w.str(advertised_address(to));
  w.u32(port);
  observe(MsgKind::kConnectPeer, from.name);
  call(from, MsgKind::kConnectPeer, w.buffer());
}

void SocketTransport::connect_peers() {
  peers_enabled_ = true;
  // Full mesh over the tier nodes, deliberately: besides the cloud-ward
  // device->edge->cloud flow, Prop.-1 deferred consumers legitimately push
  // *backwards* (a cloud-computed tensor consumed by an edge- or
  // device-assigned layer at the cloud stage), so every ordered pair is
  // reachable. Tile workers are excluded — the coordinator mediates all tile
  // traffic.
  const auto is_tile_worker = [&](Node* n) {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    return std::find(tile_workers_.begin(), tile_workers_.end(), n) != tile_workers_.end();
  };
  for (auto& [from_name, from] : nodes_) {
    if (is_tile_worker(from.get())) continue;
    for (auto& [to_name, to] : nodes_) {
      if (from.get() == to.get() || is_tile_worker(to.get())) continue;
      link_peers(*from, *to);
    }
  }
}

std::uint64_t SocketTransport::open_request() {
  const std::uint64_t id = next_request_.fetch_add(1);
  try {
    for (auto& [name, node] : nodes_) {
      if (node->detached.load(std::memory_order_acquire)) continue;
      WireWriter w;
      w.u64(id);
      call(*node, MsgKind::kBegin, w.buffer());
    }
  } catch (...) {
    // The caller never learns this id: free the slot state on every node that
    // already began it (kEnd on an unknown id is a no-op), so a death during
    // open cannot leak per-request state in long-lived workers.
    close_request(id);
    throw;
  }
  return id;
}

std::uint64_t SocketTransport::issue_open_request(std::vector<OpHandle>& ops) {
  const std::uint64_t id = next_request_.fetch_add(1);
  try {
    for (auto& [name, node] : nodes_) {
      if (node->detached.load(std::memory_order_acquire)) continue;
      WireWriter w;
      w.u64(id);
      ops.push_back(issue_call(*node, MsgKind::kBegin, w.buffer()));
    }
  } catch (...) {
    // Same leak guard as the blocking form. Outstanding kBegin handles the
    // caller already holds settle ahead of the kEnd (per-channel FIFO).
    close_request(id);
    throw;
  }
  return id;
}

void SocketTransport::open_request_as(std::uint64_t request) {
  // A resumed id must never collide with a fresh one: advance the counter
  // past it before any broadcast can fail.
  std::uint64_t expected = next_request_.load();
  while (expected <= request && !next_request_.compare_exchange_weak(expected, request + 1)) {
  }
  // No close_request on a partial failure, deliberately: the per-request slots
  // the workers still hold ARE the takeover state (kBegin is idempotent and
  // never wipes them); the standby retries or falls back to a full replay.
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    WireWriter w;
    w.u64(request);
    call(*node, MsgKind::kBegin, w.buffer());
  }
}

void SocketTransport::close_request(std::uint64_t request) noexcept {
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    try {
      WireWriter w;
      w.u64(request);
      // Fire-and-forget: kEnd's kOk carries no information, and awaiting it
      // would stall teardown behind every queued verb still cooking on the
      // worker. Issue the frame, flush it (fd() writes the outbox), and drop
      // the handle — per-channel FIFO retires the reply under whatever
      // touches the channel next, and a reply still unread at channel close
      // dies with the socket.
      issue_call(*node, MsgKind::kEnd, w.buffer()).fd();
    } catch (...) {
      // Teardown path: a dead worker must not mask the original failure.
    }
  }
}

bool SocketTransport::reopen(std::uint64_t request, const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  call(*node, MsgKind::kBegin, w.buffer());
  reopens_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SocketTransport::prune_tile_workers() {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  std::size_t pruned = 0;
  for (auto it = tile_workers_.begin(); it != tile_workers_.end();) {
    Node* worker = *it;
    bool dead = false;
    {
      // recover_locked closed the socket and left no reconnect hook: that is
      // the only state a worker can be in after an unrecoverable death.
      std::lock_guard<std::mutex> node_lock(worker->mutex);
      dead = !worker->socket.valid() && !worker->reconnect;
    }
    if (dead) {
      worker->detached.store(true, std::memory_order_release);
      it = tile_workers_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  detached_workers_.fetch_add(pruned, std::memory_order_relaxed);
  return pruned;
}

std::uint64_t SocketTransport::put(std::uint64_t request, Node& node,
                                   const runtime::MessageRecord& meta, std::uint64_t slot,
                                   const dnn::Tensor& tensor) {
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Envelope env{meta, encode_tensor(tensor)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  call(node, MsgKind::kPut, w.buffer());
  return env.payload.size();
}

void SocketTransport::seed(std::uint64_t request, const std::string& node_name,
                           std::uint64_t slot, const dnn::Tensor& tensor) {
  Node* node = find(node_name);
  if (!node) return;  // node hosted in-process: the coordinator already has it
  runtime::MessageRecord meta;
  meta.from_node = node_name;
  meta.to_node = node_name;
  meta.payload = "seed";
  put(request, *node, meta, slot, tensor);
}

std::optional<dnn::Tensor> SocketTransport::send(std::uint64_t request,
                                                 const runtime::MessageRecord& meta,
                                                 std::uint64_t slot,
                                                 const dnn::Tensor& tensor) {
  Node* node = find(meta.to_node);
  if (!node || slot == kNoSlot) return std::nullopt;  // destination hosted in-process
  const std::uint64_t bytes = put(request, *node, meta, slot, tensor);
  // The producer is itself a remote node, so the coordinator just moved bytes
  // it neither produced nor consumes: that is the star topology's relay tax.
  if (find(meta.from_node) != nullptr)
    relay_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  replicate(request, meta, slot, tensor);
  return std::nullopt;
}

void SocketTransport::replicate(std::uint64_t request, const runtime::MessageRecord& meta,
                                std::uint64_t slot, const dnn::Tensor& tensor) {
  if (buddy_name_.empty() || meta.to_node == buddy_name_) return;
  Node* buddy = find(buddy_name_);
  if (!buddy) return;
  try {
    observe(MsgKind::kPutReplica, buddy_name_);
    WireWriter w;
    w.u64(request);
    w.u64(slot);
    // The envelope names the true consumer, not the buddy: a failed-over
    // coordinator hands the stored copy straight to push_peer routing.
    const Envelope env{meta, encode_tensor(tensor)};
    encode_envelope(w, env);
    call(*buddy, MsgKind::kPutReplica, w.buffer());
    replica_pushes_.fetch_add(1, std::memory_order_relaxed);
    replica_bytes_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  } catch (...) {
    // Best-effort by design: losing the buddy only degrades failover back to
    // re-seeding; it must never fail the request being served.
    replica_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t SocketTransport::push_peer(Node& from, std::uint64_t request,
                                         const runtime::MessageRecord& meta,
                                         std::uint64_t slot) {
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  encode_envelope(w, Envelope{meta, {}});  // metadata only; the producer owns the payload
  const Frame reply = call(from, MsgKind::kPushPeer, w.buffer());
  WireReader r(reply.body);
  const std::uint64_t bytes = r.u64();
  r.expect_end("push-peer reply");
  return bytes;
}

bool SocketTransport::send_peer(std::uint64_t request, const runtime::MessageRecord& meta,
                                std::uint64_t slot) {
  if (!peers_enabled_ || slot == kNoSlot) return false;
  // Buddy mode pins ship-time payloads to the coordinator (a peer push would
  // leave it with nothing to replicate), so boundary tensors take the relay
  // path + kPutReplica instead. The peer fabric is reserved for failover-time
  // replica_push deliveries.
  if (!buddy_name_.empty()) return false;
  Node* from = find(meta.from_node);
  Node* to = find(meta.to_node);
  if (!from || !to) return false;  // one endpoint hosted in-process: relay path
  std::uint64_t bytes = 0;
  try {
    bytes = push_peer(*from, request, meta, slot);
  } catch (const ChannelDied&) {
    throw;  // coordinator<->worker channel death: replay, don't re-link
  } catch (const Fenced&) {
    throw;  // deposed: a handshake retry cannot regain ownership
  } catch (const TransportError&) {
    // The worker->worker channel may have died with a reconnected peer
    // incarnation (stale listener port, broken pipe, "no peer channel" on a
    // fresh process); re-run the handshake once and retry. A second failure
    // is genuine and propagates (the request is replayable).
    link_peers(*from, *to);
    bytes = push_peer(*from, request, meta, slot);
  }
  peer_pushes_.fetch_add(1, std::memory_order_relaxed);
  peer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

bool SocketTransport::replica_push(std::uint64_t request, const runtime::MessageRecord& meta,
                                   std::uint64_t slot) {
  if (buddy_name_.empty() || slot == kNoSlot) return false;
  Node* buddy = find(buddy_name_);
  Node* to = find(meta.to_node);
  if (!buddy || !to || buddy == to) return false;
  // The push is speculative — a standby cannot know which ships the dead
  // coordinator got replicated before dying. A buddy that never stored the
  // slot answers kErrorState naming itself (ChannelDied with its name), and
  // any buddy-side failure means the same thing to the caller: fall back to
  // materialize + send.
  const auto buddy_failed = [&](const ChannelDied& e) { return e.node() == buddy_name_; };
  std::uint64_t bytes = 0;
  try {
    try {
      bytes = push_peer(*buddy, request, meta, slot);
    } catch (const ChannelDied& e) {
      if (buddy_failed(e)) return false;
      throw;  // destination-side state loss: the caller's recovery problem
    } catch (const Fenced&) {
      throw;  // deposed: a handshake retry cannot regain ownership
    } catch (const TransportError&) {
      // A fresh standby has no peer channels yet: re-run the handshake once.
      link_peers(*buddy, *to);
      bytes = push_peer(*buddy, request, meta, slot);
    }
  } catch (const ChannelDied& e) {
    if (buddy_failed(e)) return false;
    throw;
  } catch (const Fenced&) {
    throw;
  } catch (const TransportError&) {
    return false;
  }
  peer_pushes_.fetch_add(1, std::memory_order_relaxed);
  peer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  replica_restores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SocketTransport::run_layer(std::uint64_t request, const std::string& node_name,
                                dnn::LayerId layer) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  w.u64(layer);
  call(*node, MsgKind::kRunLayer, w.buffer());
  return true;
}

bool SocketTransport::run_stack(std::uint64_t request, const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  call(*node, MsgKind::kRunStack, w.buffer());
  return true;
}

dnn::Tensor SocketTransport::fetch(std::uint64_t request, const std::string& node_name,
                                   std::uint64_t slot) {
  Node* node = find(node_name);
  if (!node)
    throw TransportError("fetch: node '" + node_name + "' is not attached");
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Frame reply = call(*node, MsgKind::kGet, w.buffer(), MsgKind::kTensor);
  payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
  return decode_tensor(std::span<const std::uint8_t>(reply.body));
}

Transport::OpHandle SocketTransport::issue_seed(std::uint64_t request,
                                                const std::string& node_name,
                                                std::uint64_t slot, const dnn::Tensor& tensor) {
  Node* node = find(node_name);
  // In-process node: the base default (a completed no-op) keeps semantics.
  if (!node) return Transport::issue_seed(request, node_name, slot, tensor);
  runtime::MessageRecord meta;
  meta.from_node = node_name;
  meta.to_node = node_name;
  meta.payload = "seed";
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Envelope env{meta, encode_tensor(tensor)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  return issue_call(*node, MsgKind::kPut, w.buffer(), MsgKind::kOk, /*is_fetch=*/false,
                    env.payload.size());
}

Transport::OpHandle SocketTransport::issue_send(std::uint64_t request,
                                                const runtime::MessageRecord& meta,
                                                std::uint64_t slot, const dnn::Tensor& tensor) {
  Node* node = find(meta.to_node);
  if (!node || slot == kNoSlot) return Transport::issue_send(request, meta, slot, tensor);
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Envelope env{meta, encode_tensor(tensor)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  OpHandle handle = issue_call(*node, MsgKind::kPut, w.buffer(), MsgKind::kOk,
                               /*is_fetch=*/false, env.payload.size());
  if (find(meta.from_node) != nullptr)
    relay_bytes_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  // Buddy replication stays synchronous and best-effort: it rides the buddy's
  // own channel, so it cannot serialize behind this node's pending queue.
  replicate(request, meta, slot, tensor);
  return handle;
}

Transport::OpHandle SocketTransport::issue_run_layer(std::uint64_t request,
                                                     const std::string& node_name,
                                                     dnn::LayerId layer) {
  Node* node = find(node_name);
  if (!node) return OpHandle{};  // not remote: invalid handle = run it locally
  WireWriter w;
  w.u64(request);
  w.u64(layer);
  return issue_call(*node, MsgKind::kRunLayer, w.buffer());
}

Transport::OpHandle SocketTransport::issue_run_stack(std::uint64_t request,
                                                     const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return OpHandle{};
  WireWriter w;
  w.u64(request);
  return issue_call(*node, MsgKind::kRunStack, w.buffer());
}

Transport::OpHandle SocketTransport::issue_fetch(std::uint64_t request,
                                                 const std::string& node_name,
                                                 std::uint64_t slot) {
  Node* node = find(node_name);
  if (!node)
    throw TransportError("fetch: node '" + node_name + "' is not attached");
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  return issue_call(*node, MsgKind::kGet, w.buffer(), MsgKind::kTensor, /*is_fetch=*/true);
}

void SocketTransport::put_tile(std::uint64_t request, const runtime::MessageRecord& meta,
                               std::size_t tile, const dnn::Tensor& input) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  const Envelope env{meta, encode_tensor(input)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  call(worker, MsgKind::kPutTile, w.buffer());
}

void SocketTransport::run_tile(std::uint64_t request, std::size_t tile) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  call(worker, MsgKind::kRunTile, w.buffer());
}

dnn::Tensor SocketTransport::fetch_tile(std::uint64_t request, std::size_t tile) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  const Frame reply = call(worker, MsgKind::kGetTile, w.buffer(), MsgKind::kTensor);
  payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
  return decode_tensor(std::span<const std::uint8_t>(reply.body));
}

void SocketTransport::enable_heartbeats(HeartbeatPolicy policy) {
  heartbeat_policy_ = policy;
  heartbeats_ = true;
  const std::int64_t now = now_ms();
  for (auto& [name, node] : nodes_)
    node->last_probe_ms.store(now, std::memory_order_relaxed);
}

std::vector<std::string> SocketTransport::heartbeat_targets() {
  std::vector<std::string> due;
  if (!heartbeats_) return due;
  const std::int64_t now = now_ms();
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    if (now - node->last_probe_ms.load(std::memory_order_relaxed) >=
        heartbeat_policy_.interval.count())
      due.push_back(name);
  }
  return due;
}

int SocketTransport::heartbeat_due_ms() {
  if (!heartbeats_) return -1;
  const std::int64_t now = now_ms();
  std::int64_t soonest = -1;
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    std::int64_t due = node->last_probe_ms.load(std::memory_order_relaxed) +
                       heartbeat_policy_.interval.count() - now;
    if (due < 0) due = 0;
    if (soonest < 0 || due < soonest) soonest = due;
  }
  return static_cast<int>(soonest);
}

void SocketTransport::ping(const std::string& node_name) {
  if (!heartbeats_) return;
  Node* node = find(node_name);
  if (!node) return;
  node->last_probe_ms.store(now_ms(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(node->mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    // A real call holds the channel right now: traffic is a stronger liveness
    // signal than any probe, and blocking here would serialize the prober
    // behind request latency.
    node->misses.store(0, std::memory_order_relaxed);
    return;
  }
  pings_.fetch_add(1, std::memory_order_relaxed);
  try {
    if (!node->socket.valid())
      throw SocketError("node '" + node->name + "': channel is down");
    // At most one kPing is ever outstanding: a missed probe waits for the owed
    // kPong on later rounds instead of stacking new pings on the stream.
    if (!node->ping_op) {
      node->ping_op = submit_op(*node, MsgKind::kPing, {}, MsgKind::kPong);
      flush_locked(*node);
    }
    const std::shared_ptr<PendingOp> probe = node->ping_op;
    const int timeout = static_cast<int>(heartbeat_policy_.timeout.count());
    while (!probe->completed.load(std::memory_order_acquire)) {
      const int fds[] = {node->socket.fd()};
      if (poll_readable(fds, timeout) < 0) {
        const int missed = node->misses.fetch_add(1, std::memory_order_relaxed) + 1;
        if (missed < heartbeat_policy_.miss_threshold) return;  // suspect, not dead yet
        heartbeat_deaths_.fetch_add(1, std::memory_order_relaxed);
        fail_pending_and_recover_locked(
            *node, "missed " + std::to_string(missed) + " heartbeat probe(s) (peer " +
                       node->peer + ")");
      }
      // Whatever is readable first may be an earlier op's reply (the queue is
      // FIFO): drain in order until the probe's own kPong lands. Any async op
      // this completes is picked up by its holder's settled() sweep.
      drain_one_locked(*node);
    }
    if (probe->error) {
      // A kPong answered with an error/mismatched kind is a desync, which is
      // channel-fatal exactly like a socket failure on the probe.
      try {
        std::rethrow_exception(probe->error);
      } catch (const ChannelDied&) {
        throw;
      } catch (const Fenced&) {
        throw;  // deposed coordinator pinging a taken-over worker: not a death
      } catch (const std::exception& e) {
        throw SocketError(e.what());
      }
    }
    node->misses.store(0, std::memory_order_relaxed);
  } catch (const SocketError& e) {
    // A closed or half-dead socket (SIGKILLed worker: poll reports readable,
    // the read sees EOF) is detected on the first probe — no threshold wait.
    heartbeat_deaths_.fetch_add(1, std::memory_order_relaxed);
    fail_pending_and_recover_locked(*node, e.what());  // always throws ChannelDied
  }
}

// --- WorkerProcess -----------------------------------------------------------

namespace {

// Polled by tcp_accept between waits; reaps the child and flips the pid to -1
// when it died before connecting, so the constructor fails fast.
bool child_exited(void* arg) {
  pid_t* pid = static_cast<pid_t*>(arg);
  if (*pid < 0) return true;
  int status = 0;
  if (::waitpid(*pid, &status, WNOHANG) == *pid) {
    *pid = -1;
    return true;
  }
  return false;
}

}  // namespace

WorkerProcess::WorkerProcess(const std::string& binary) : WorkerProcess(binary, {}) {}

WorkerProcess::WorkerProcess(const std::string& binary,
                             const std::vector<std::string>& extra_args)
    : WorkerProcess(binary, extra_args, "127.0.0.1") {}

WorkerProcess::WorkerProcess(const std::string& binary,
                             const std::vector<std::string>& extra_args,
                             const std::string& host) {
  std::uint16_t port = 0;
  Socket listener = tcp_listen_on(host, port);
  const std::string port_str = std::to_string(port);

  // argv assembled before the fork: only async-signal-safe calls may run in
  // the child, and these vectors stay alive in both processes until exec.
  std::vector<std::string> args = {binary, "--connect", host, port_str};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0) throw SocketError("fork failed");
  if (pid_ == 0) {
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed (missing binary)
  }
  pid_t alive = pid_;  // flipped to -1 by child_exited once reaped
  try {
    socket_ = tcp_accept(listener, 30000, &child_exited, &alive);
  } catch (const SocketError& e) {
    if (alive >= 0) {  // child still running (accept timed out rather than child death)
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    pid_ = -1;
    // Name the binary: "accept timed out" alone cannot tell a missing worker
    // executable from a genuine network failure.
    throw SocketError("worker '" + binary + "' never connected back: " + e.what());
  } catch (...) {
    if (alive >= 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    pid_ = -1;
    throw;
  }
}

Socket WorkerProcess::take_socket() {
  if (!socket_.valid()) throw SocketError("worker socket already taken");
  return std::move(socket_);
}

WorkerProcess::~WorkerProcess() {
  if (pid_ < 0) return;
  socket_.close();  // EOF tells the worker to exit its serve loop
  int status = 0;
  for (int waited_ms = 0; waited_ms < 5000; waited_ms += 20) {
    if (::waitpid(pid_, &status, WNOHANG) == pid_) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, &status, 0);
}

// --- ListenWorkerProcess -----------------------------------------------------

ListenWorkerProcess::ListenWorkerProcess(const std::string& binary)
    : ListenWorkerProcess(binary, {}) {}

ListenWorkerProcess::ListenWorkerProcess(const std::string& binary,
                                         const std::vector<std::string>& extra_args) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw SocketError("pipe failed");

  std::vector<std::string> args = {binary, "--listen", "0"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    throw SocketError("fork failed");
  }
  if (pid_ == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed (missing binary)
  }
  ::close(pipe_fds[1]);
  // The worker prints and flushes "PORT <n>\n" before its first accept, so a
  // byte-wise blocking read to the newline cannot hang past worker startup
  // (exec failure closes the pipe and breaks the loop with EOF).
  std::string line;
  char ch = 0;
  while (line.size() < 64) {
    const ssize_t n = ::read(pipe_fds[0], &ch, 1);
    if (n <= 0 || ch == '\n') break;
    line.push_back(ch);
  }
  ::close(pipe_fds[0]);
  unsigned long port = 0;
  if (line.rfind("PORT ", 0) == 0) {
    try {
      port = std::stoul(line.substr(5));
    } catch (const std::exception&) {
      port = 0;
    }
  }
  if (port == 0 || port > 65535) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
    throw SocketError("worker '" + binary + "' (--listen) did not report a port (got \"" +
                      line + "\")");
  }
  port_ = static_cast<std::uint16_t>(port);
}

Socket ListenWorkerProcess::dial() const { return tcp_connect("127.0.0.1", port_); }

ListenWorkerProcess::~ListenWorkerProcess() {
  if (pid_ < 0) return;
  ::kill(pid_, SIGKILL);  // works on stopped children too (tests SIGSTOP them)
  ::waitpid(pid_, nullptr, 0);
}

}  // namespace d3::rpc
