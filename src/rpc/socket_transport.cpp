#include "rpc/socket_transport.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "rpc/wire.h"

namespace d3::rpc {

void SocketTransport::add_node(const std::string& node, Socket socket) {
  if (!socket.valid()) throw TransportError("add_node: invalid socket for '" + node + "'");
  auto entry = std::make_unique<Node>();
  entry->name = node;
  entry->socket = std::move(socket);
  if (!nodes_.emplace(node, std::move(entry)).second)
    throw TransportError("add_node: node '" + node + "' already attached");
}

void SocketTransport::add_tile_worker(Socket socket) {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  // First free "edgeK" name: after a prune the detached node keeps its name
  // (it stays in nodes_ so nothing dangles), so a replacement worker must not
  // collide with it.
  std::size_t k = tile_workers_.size() + 1;
  while (nodes_.count("edge" + std::to_string(k)) > 0) ++k;
  const std::string node = "edge" + std::to_string(k);
  add_node(node, std::move(socket));
  tile_workers_.push_back(nodes_.at(node).get());
}

SocketTransport::Node* SocketTransport::find(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second->detached.load(std::memory_order_acquire))
    return nullptr;
  return it->second.get();
}

SocketTransport::Node& SocketTransport::tile_worker(std::size_t tile) const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  if (tile_workers_.empty()) throw TransportError("no tile workers attached");
  return *tile_workers_[tile % tile_workers_.size()];
}

bool SocketTransport::has_tile_workers() const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return !tile_workers_.empty() && nodes_.count("edge0") == 0;
}

std::size_t SocketTransport::tile_worker_count() const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return tile_workers_.size();
}

std::string SocketTransport::tile_node(std::size_t tile) const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  if (tile_workers_.empty()) return {};
  return tile_workers_[tile % tile_workers_.size()]->name;
}

Frame SocketTransport::roundtrip_locked(Node& node, MsgKind kind,
                                        std::span<const std::uint8_t> body, MsgKind expected) {
  if (!node.socket.valid())
    throw SocketError("node '" + node.name + "': channel is down");
  write_frame(node.socket.fd(), kind, body);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  Frame reply = read_frame(node.socket.fd());
  if (reply.kind == MsgKind::kErrorState) {
    // A fresh worker incarnation (respawned after a death that some *other*
    // call already paid for) has no per-request state for this request. The
    // channel itself is healthy: the engine can reopen the request on the
    // named node, re-seed its lost slots, and re-run only the interrupted
    // tier.
    WireReader r(reply.body);
    const std::string lost = r.str();
    const std::string message = r.str();
    throw ChannelDied(lost, /*channel_restored=*/true,
                      "node '" + lost + "' lost its per-request state (" + message +
                          "); reopen + re-seed to recover");
  }
  if (reply.kind == MsgKind::kError) {
    WireReader r(reply.body);
    throw TransportError("node '" + node.name + "': " + r.str());
  }
  if (reply.kind != expected)
    throw TransportError("node '" + node.name + "': unexpected reply kind " +
                         std::to_string(static_cast<int>(reply.kind)) + " to request kind " +
                         std::to_string(static_cast<int>(kind)));
  return reply;
}

void SocketTransport::recover_locked(Node& node, const std::string& error) {
  node.socket.close();
  if (!node.reconnect)
    throw ChannelDied(node.name, /*channel_restored=*/false,
                      "node '" + node.name + "' died mid-request (" + error +
                          "); no reconnect hook registered, node stays detached");
  std::chrono::milliseconds backoff = node.retry.initial_backoff;
  std::string last = error;
  for (int attempt = 1; attempt <= node.retry.max_attempts; ++attempt) {
    std::this_thread::sleep_for(backoff);
    backoff = std::chrono::milliseconds(static_cast<std::chrono::milliseconds::rep>(
        static_cast<double>(backoff.count()) * node.retry.backoff_multiplier));
    try {
      node.socket = node.reconnect();
      // A fresh process knows nothing: replay the cached deployment bundle so
      // the channel is immediately serviceable for recovered requests.
      if (!node.config_body.empty())
        roundtrip_locked(node, MsgKind::kConfig, node.config_body, MsgKind::kOk);
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      // The channel is healthy again, but this worker incarnation never saw
      // the in-flight request's kBegin/kPut history — the engine must reopen
      // the request and re-seed the lost slots (tier-granular recovery), or
      // replay the request end-to-end (identical either way, by the
      // transcript-purity invariant).
      throw ChannelDied(node.name, /*channel_restored=*/true,
                        "node '" + node.name + "' died mid-request (" + error +
                            "); channel re-established after " + std::to_string(attempt) +
                            " attempt(s) — reopen + re-seed, or replay the request");
    } catch (const ChannelDied&) {
      throw;  // recovery outcome, not a retryable failure
    } catch (const std::exception& e) {
      node.socket.close();
      last = e.what();
    }
  }
  throw ChannelDied(node.name, /*channel_restored=*/false,
                    "node '" + node.name + "' died mid-request (" + error +
                        ") and reconnect failed after " +
                        std::to_string(node.retry.max_attempts) + " attempts: " + last);
}

Frame SocketTransport::call(Node& node, MsgKind kind, std::span<const std::uint8_t> body,
                            MsgKind expected) {
  std::lock_guard<std::mutex> lock(node.mutex);
  try {
    return roundtrip_locked(node, kind, body, expected);
  } catch (const SocketError& e) {
    recover_locked(node, e.what());  // always throws
  }
}

void SocketTransport::configure(const std::string& model_name, const dnn::Network& net,
                                const exec::WeightStore& weights,
                                std::span<const std::uint8_t> plan_binary,
                                std::size_t vsm_workers) {
  const std::vector<std::uint8_t> weight_bytes = encode_weights(weights, net);
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    WireWriter w;
    w.str(name);
    w.str(model_name);
    w.blob(weight_bytes);
    w.blob(plan_binary);
    w.u32(static_cast<std::uint32_t>(vsm_workers));
    node->config_body = w.take();
    call(*node, MsgKind::kConfig, node->config_body);
  }
}

void SocketTransport::set_reconnect(const std::string& node_name, ReconnectFn fn,
                                    RetryPolicy policy) {
  // Deliberately not find(): a detached (pruned) tile worker must be reachable
  // here, because a late reconnect hook is its ticket back into the shard map.
  const auto it = nodes_.find(node_name);
  if (it == nodes_.end())
    throw TransportError("set_reconnect: node '" + node_name + "' is not attached");
  Node& node = *it->second;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.reconnect = std::move(fn);
    node.retry = policy;
  }
  if (node.detached.load(std::memory_order_acquire)) readmit(node);
}

void SocketTransport::readmit(Node& node) {
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.socket = node.reconnect();
    // The fresh incarnation knows nothing: replay the cached deployment
    // bundle before the worker rejoins the shard map, so the first tile call
    // it sees is serviceable.
    if (!node.config_body.empty())
      roundtrip_locked(node, MsgKind::kConfig, node.config_body, MsgKind::kOk);
  }
  std::lock_guard<std::mutex> lock(shard_mutex_);
  node.detached.store(false, std::memory_order_release);
  tile_workers_.push_back(&node);
  // Shard order must be a pure function of the attached set, not of the
  // prune/rejoin history, or tile -> worker routing (and with it which
  // channels carry which bytes) would depend on failure timing. Sorting by
  // (length, name) restores attachment order: edge1 < edge2 < ... < edge10.
  std::sort(tile_workers_.begin(), tile_workers_.end(), [](const Node* a, const Node* b) {
    return std::make_pair(a->name.size(), a->name) < std::make_pair(b->name.size(), b->name);
  });
  readmitted_workers_.fetch_add(1, std::memory_order_relaxed);
}

void SocketTransport::set_advertised_address(const std::string& node_name,
                                             std::string address) {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  advertised_addresses_[node_name] = std::move(address);
}

std::string SocketTransport::advertised_address(const Node& to) const {
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    const auto it = advertised_addresses_.find(to.name);
    if (it != advertised_addresses_.end()) return it->second;
  }
  // The coordinator-observed address of the node's own channel: a sibling
  // worker on the coordinator's network reaches the node by the same route
  // the coordinator does. (A hardcoded 127.0.0.1 here used to break every
  // off-host peer channel.)
  return peer_address(to.socket.fd());
}

void SocketTransport::link_peers(Node& from, Node& to) {
  WireWriter listen;
  const Frame port_reply = call(to, MsgKind::kPeerListen, listen.buffer());
  WireReader pr(port_reply.body);
  const std::uint32_t port = pr.u32();
  pr.expect_end("peer-listen reply");
  WireWriter w;
  w.str(to.name);
  w.str(advertised_address(to));
  w.u32(port);
  call(from, MsgKind::kConnectPeer, w.buffer());
}

void SocketTransport::connect_peers() {
  peers_enabled_ = true;
  // Full mesh over the tier nodes, deliberately: besides the cloud-ward
  // device->edge->cloud flow, Prop.-1 deferred consumers legitimately push
  // *backwards* (a cloud-computed tensor consumed by an edge- or
  // device-assigned layer at the cloud stage), so every ordered pair is
  // reachable. Tile workers are excluded — the coordinator mediates all tile
  // traffic.
  const auto is_tile_worker = [&](Node* n) {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    return std::find(tile_workers_.begin(), tile_workers_.end(), n) != tile_workers_.end();
  };
  for (auto& [from_name, from] : nodes_) {
    if (is_tile_worker(from.get())) continue;
    for (auto& [to_name, to] : nodes_) {
      if (from.get() == to.get() || is_tile_worker(to.get())) continue;
      link_peers(*from, *to);
    }
  }
}

std::uint64_t SocketTransport::open_request() {
  const std::uint64_t id = next_request_.fetch_add(1);
  try {
    for (auto& [name, node] : nodes_) {
      if (node->detached.load(std::memory_order_acquire)) continue;
      WireWriter w;
      w.u64(id);
      call(*node, MsgKind::kBegin, w.buffer());
    }
  } catch (...) {
    // The caller never learns this id: free the slot state on every node that
    // already began it (kEnd on an unknown id is a no-op), so a death during
    // open cannot leak per-request state in long-lived workers.
    close_request(id);
    throw;
  }
  return id;
}

void SocketTransport::close_request(std::uint64_t request) noexcept {
  for (auto& [name, node] : nodes_) {
    if (node->detached.load(std::memory_order_acquire)) continue;
    try {
      WireWriter w;
      w.u64(request);
      call(*node, MsgKind::kEnd, w.buffer());
    } catch (...) {
      // Teardown path: a dead worker must not mask the original failure.
    }
  }
}

bool SocketTransport::reopen(std::uint64_t request, const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  call(*node, MsgKind::kBegin, w.buffer());
  reopens_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SocketTransport::prune_tile_workers() {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  std::size_t pruned = 0;
  for (auto it = tile_workers_.begin(); it != tile_workers_.end();) {
    Node* worker = *it;
    bool dead = false;
    {
      // recover_locked closed the socket and left no reconnect hook: that is
      // the only state a worker can be in after an unrecoverable death.
      std::lock_guard<std::mutex> node_lock(worker->mutex);
      dead = !worker->socket.valid() && !worker->reconnect;
    }
    if (dead) {
      worker->detached.store(true, std::memory_order_release);
      it = tile_workers_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  detached_workers_.fetch_add(pruned, std::memory_order_relaxed);
  return pruned;
}

std::uint64_t SocketTransport::put(std::uint64_t request, Node& node,
                                   const runtime::MessageRecord& meta, std::uint64_t slot,
                                   const dnn::Tensor& tensor) {
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Envelope env{meta, encode_tensor(tensor)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  call(node, MsgKind::kPut, w.buffer());
  return env.payload.size();
}

void SocketTransport::seed(std::uint64_t request, const std::string& node_name,
                           std::uint64_t slot, const dnn::Tensor& tensor) {
  Node* node = find(node_name);
  if (!node) return;  // node hosted in-process: the coordinator already has it
  runtime::MessageRecord meta;
  meta.from_node = node_name;
  meta.to_node = node_name;
  meta.payload = "seed";
  put(request, *node, meta, slot, tensor);
}

std::optional<dnn::Tensor> SocketTransport::send(std::uint64_t request,
                                                 const runtime::MessageRecord& meta,
                                                 std::uint64_t slot,
                                                 const dnn::Tensor& tensor) {
  Node* node = find(meta.to_node);
  if (!node || slot == kNoSlot) return std::nullopt;  // destination hosted in-process
  const std::uint64_t bytes = put(request, *node, meta, slot, tensor);
  // The producer is itself a remote node, so the coordinator just moved bytes
  // it neither produced nor consumes: that is the star topology's relay tax.
  if (find(meta.from_node) != nullptr)
    relay_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return std::nullopt;
}

std::uint64_t SocketTransport::push_peer(Node& from, std::uint64_t request,
                                         const runtime::MessageRecord& meta,
                                         std::uint64_t slot) {
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  encode_envelope(w, Envelope{meta, {}});  // metadata only; the producer owns the payload
  const Frame reply = call(from, MsgKind::kPushPeer, w.buffer());
  WireReader r(reply.body);
  const std::uint64_t bytes = r.u64();
  r.expect_end("push-peer reply");
  return bytes;
}

bool SocketTransport::send_peer(std::uint64_t request, const runtime::MessageRecord& meta,
                                std::uint64_t slot) {
  if (!peers_enabled_ || slot == kNoSlot) return false;
  Node* from = find(meta.from_node);
  Node* to = find(meta.to_node);
  if (!from || !to) return false;  // one endpoint hosted in-process: relay path
  std::uint64_t bytes = 0;
  try {
    bytes = push_peer(*from, request, meta, slot);
  } catch (const ChannelDied&) {
    throw;  // coordinator<->worker channel death: replay, don't re-link
  } catch (const TransportError&) {
    // The worker->worker channel may have died with a reconnected peer
    // incarnation (stale listener port, broken pipe, "no peer channel" on a
    // fresh process); re-run the handshake once and retry. A second failure
    // is genuine and propagates (the request is replayable).
    link_peers(*from, *to);
    bytes = push_peer(*from, request, meta, slot);
  }
  peer_pushes_.fetch_add(1, std::memory_order_relaxed);
  peer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

bool SocketTransport::run_layer(std::uint64_t request, const std::string& node_name,
                                dnn::LayerId layer) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  w.u64(layer);
  call(*node, MsgKind::kRunLayer, w.buffer());
  return true;
}

bool SocketTransport::run_stack(std::uint64_t request, const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  call(*node, MsgKind::kRunStack, w.buffer());
  return true;
}

dnn::Tensor SocketTransport::fetch(std::uint64_t request, const std::string& node_name,
                                   std::uint64_t slot) {
  Node* node = find(node_name);
  if (!node)
    throw TransportError("fetch: node '" + node_name + "' is not attached");
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Frame reply = call(*node, MsgKind::kGet, w.buffer(), MsgKind::kTensor);
  payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
  return decode_tensor(std::span<const std::uint8_t>(reply.body));
}

void SocketTransport::put_tile(std::uint64_t request, const runtime::MessageRecord& meta,
                               std::size_t tile, const dnn::Tensor& input) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  const Envelope env{meta, encode_tensor(input)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  call(worker, MsgKind::kPutTile, w.buffer());
}

void SocketTransport::run_tile(std::uint64_t request, std::size_t tile) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  call(worker, MsgKind::kRunTile, w.buffer());
}

dnn::Tensor SocketTransport::fetch_tile(std::uint64_t request, std::size_t tile) {
  Node& worker = tile_worker(tile);
  WireWriter w;
  w.u64(request);
  w.u64(tile);
  const Frame reply = call(worker, MsgKind::kGetTile, w.buffer(), MsgKind::kTensor);
  payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
  return decode_tensor(std::span<const std::uint8_t>(reply.body));
}

// --- WorkerProcess -----------------------------------------------------------

namespace {

// Polled by tcp_accept between waits; reaps the child and flips the pid to -1
// when it died before connecting, so the constructor fails fast.
bool child_exited(void* arg) {
  pid_t* pid = static_cast<pid_t*>(arg);
  if (*pid < 0) return true;
  int status = 0;
  if (::waitpid(*pid, &status, WNOHANG) == *pid) {
    *pid = -1;
    return true;
  }
  return false;
}

}  // namespace

WorkerProcess::WorkerProcess(const std::string& binary) : WorkerProcess(binary, {}) {}

WorkerProcess::WorkerProcess(const std::string& binary,
                             const std::vector<std::string>& extra_args)
    : WorkerProcess(binary, extra_args, "127.0.0.1") {}

WorkerProcess::WorkerProcess(const std::string& binary,
                             const std::vector<std::string>& extra_args,
                             const std::string& host) {
  std::uint16_t port = 0;
  Socket listener = tcp_listen_on(host, port);
  const std::string port_str = std::to_string(port);

  // argv assembled before the fork: only async-signal-safe calls may run in
  // the child, and these vectors stay alive in both processes until exec.
  std::vector<std::string> args = {binary, "--connect", host, port_str};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0) throw SocketError("fork failed");
  if (pid_ == 0) {
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed (missing binary)
  }
  pid_t alive = pid_;  // flipped to -1 by child_exited once reaped
  try {
    socket_ = tcp_accept(listener, 30000, &child_exited, &alive);
  } catch (...) {
    if (alive >= 0) {  // child still running (accept timed out rather than child death)
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    pid_ = -1;
    throw;
  }
}

Socket WorkerProcess::take_socket() {
  if (!socket_.valid()) throw SocketError("worker socket already taken");
  return std::move(socket_);
}

WorkerProcess::~WorkerProcess() {
  if (pid_ < 0) return;
  socket_.close();  // EOF tells the worker to exit its serve loop
  int status = 0;
  for (int waited_ms = 0; waited_ms < 5000; waited_ms += 20) {
    if (::waitpid(pid_, &status, WNOHANG) == pid_) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, &status, 0);
}

}  // namespace d3::rpc
