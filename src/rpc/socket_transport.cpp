#include "rpc/socket_transport.h"

#include <chrono>
#include <csignal>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "rpc/wire.h"

namespace d3::rpc {

void SocketTransport::add_node(const std::string& node, Socket socket) {
  if (!socket.valid()) throw TransportError("add_node: invalid socket for '" + node + "'");
  auto entry = std::make_unique<Node>();
  entry->socket = std::move(socket);
  if (!nodes_.emplace(node, std::move(entry)).second)
    throw TransportError("add_node: node '" + node + "' already attached");
}

SocketTransport::Node* SocketTransport::find(const std::string& node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Frame SocketTransport::call(Node& node, const std::string& node_name, MsgKind kind,
                            std::span<const std::uint8_t> body, MsgKind expected) {
  std::lock_guard<std::mutex> lock(node.mutex);
  write_frame(node.socket.fd(), kind, body);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  Frame reply = read_frame(node.socket.fd());
  if (reply.kind == MsgKind::kError) {
    WireReader r(reply.body);
    throw TransportError("node '" + node_name + "': " + r.str());
  }
  if (reply.kind != expected)
    throw TransportError("node '" + node_name + "': unexpected reply kind " +
                         std::to_string(static_cast<int>(reply.kind)) + " to request kind " +
                         std::to_string(static_cast<int>(kind)));
  return reply;
}

void SocketTransport::configure(const std::string& model_name, const dnn::Network& net,
                                const exec::WeightStore& weights,
                                std::span<const std::uint8_t> plan_binary,
                                std::size_t vsm_workers) {
  const std::vector<std::uint8_t> weight_bytes = encode_weights(weights, net);
  for (auto& [name, node] : nodes_) {
    WireWriter w;
    w.str(name);
    w.str(model_name);
    w.blob(weight_bytes);
    w.blob(plan_binary);
    w.u32(static_cast<std::uint32_t>(vsm_workers));
    const std::vector<std::uint8_t> body = w.take();
    call(*node, name, MsgKind::kConfig, body);
  }
}

std::uint64_t SocketTransport::open_request() {
  const std::uint64_t id = next_request_.fetch_add(1);
  for (auto& [name, node] : nodes_) {
    WireWriter w;
    w.u64(id);
    call(*node, name, MsgKind::kBegin, w.buffer());
  }
  return id;
}

void SocketTransport::close_request(std::uint64_t request) noexcept {
  for (auto& [name, node] : nodes_) {
    try {
      WireWriter w;
      w.u64(request);
      call(*node, name, MsgKind::kEnd, w.buffer());
    } catch (...) {
      // Teardown path: a dead worker must not mask the original failure.
    }
  }
}

void SocketTransport::put(std::uint64_t request, Node& node, const std::string& node_name,
                          const runtime::MessageRecord& meta, std::uint64_t slot,
                          const dnn::Tensor& tensor) {
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Envelope env{meta, encode_tensor(tensor)};
  payload_bytes_sent_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  encode_envelope(w, env);
  call(node, node_name, MsgKind::kPut, w.buffer());
}

void SocketTransport::seed(std::uint64_t request, const std::string& node_name,
                           std::uint64_t slot, const dnn::Tensor& tensor) {
  Node* node = find(node_name);
  if (!node) return;  // node hosted in-process: the coordinator already has it
  runtime::MessageRecord meta;
  meta.from_node = node_name;
  meta.to_node = node_name;
  meta.payload = "seed";
  put(request, *node, node_name, meta, slot, tensor);
}

std::optional<dnn::Tensor> SocketTransport::send(std::uint64_t request,
                                                 const runtime::MessageRecord& meta,
                                                 std::uint64_t slot,
                                                 const dnn::Tensor& tensor) {
  Node* node = find(meta.to_node);
  if (!node || slot == kNoSlot) return std::nullopt;  // destination hosted in-process
  put(request, *node, meta.to_node, meta, slot, tensor);
  return std::nullopt;
}

bool SocketTransport::run_layer(std::uint64_t request, const std::string& node_name,
                                dnn::LayerId layer) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  w.u64(layer);
  call(*node, node_name, MsgKind::kRunLayer, w.buffer());
  return true;
}

bool SocketTransport::run_stack(std::uint64_t request, const std::string& node_name) {
  Node* node = find(node_name);
  if (!node) return false;
  WireWriter w;
  w.u64(request);
  call(*node, node_name, MsgKind::kRunStack, w.buffer());
  return true;
}

dnn::Tensor SocketTransport::fetch(std::uint64_t request, const std::string& node_name,
                                   std::uint64_t slot) {
  Node* node = find(node_name);
  if (!node)
    throw TransportError("fetch: node '" + node_name + "' is not attached");
  WireWriter w;
  w.u64(request);
  w.u64(slot);
  const Frame reply = call(*node, node_name, MsgKind::kGet, w.buffer(), MsgKind::kTensor);
  payload_bytes_fetched_.fetch_add(reply.body.size(), std::memory_order_relaxed);
  return decode_tensor(std::span<const std::uint8_t>(reply.body));
}

// --- WorkerProcess -----------------------------------------------------------

namespace {

// Polled by tcp_accept between waits; reaps the child and flips the pid to -1
// when it died before connecting, so the constructor fails fast.
bool child_exited(void* arg) {
  pid_t* pid = static_cast<pid_t*>(arg);
  if (*pid < 0) return true;
  int status = 0;
  if (::waitpid(*pid, &status, WNOHANG) == *pid) {
    *pid = -1;
    return true;
  }
  return false;
}

}  // namespace

WorkerProcess::WorkerProcess(const std::string& binary) {
  std::uint16_t port = 0;
  Socket listener = tcp_listen(port);
  const std::string port_str = std::to_string(port);

  pid_ = ::fork();
  if (pid_ < 0) throw SocketError("fork failed");
  if (pid_ == 0) {
    // Child: only async-signal-safe calls until exec.
    ::execl(binary.c_str(), binary.c_str(), "--connect", "127.0.0.1", port_str.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed (missing binary)
  }
  pid_t alive = pid_;  // flipped to -1 by child_exited once reaped
  try {
    socket_ = tcp_accept(listener, 30000, &child_exited, &alive);
  } catch (...) {
    if (alive >= 0) {  // child still running (accept timed out rather than child death)
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    pid_ = -1;
    throw;
  }
}

Socket WorkerProcess::take_socket() {
  if (!socket_.valid()) throw SocketError("worker socket already taken");
  return std::move(socket_);
}

WorkerProcess::~WorkerProcess() {
  if (pid_ < 0) return;
  socket_.close();  // EOF tells the worker to exit its serve loop
  int status = 0;
  for (int waited_ms = 0; waited_ms < 5000; waited_ms += 20) {
    if (::waitpid(pid_, &status, WNOHANG) == pid_) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, &status, 0);
}

}  // namespace d3::rpc
