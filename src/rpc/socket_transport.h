// Coordinator side of the multi-process transport: each attached node is a
// d3_node worker process reached over one localhost TCP connection.
//
// Topology is a star through the coordinator: every inter-node tensor is
// recorded once (producer node -> consumer node) in the transcript but
// physically relayed coordinator -> consumer, which keeps the worker protocol
// strictly request/response and the per-boundary byte accounting identical to
// the in-process engine. Nodes that are not attached (mixed deployments, VSM
// worker names like "edge1") fall back to in-process hosting automatically.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <sys/types.h>

#include "exec/weights.h"
#include "rpc/socket.h"
#include "rpc/transport.h"

namespace d3::rpc {

class SocketTransport final : public Transport {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t payload_bytes_sent = 0;
    std::uint64_t payload_bytes_fetched = 0;
  };

  // Attaches a connected worker as computation node `node` ("device0",
  // "edge0", "cloud0"). Call configure() once after all nodes are attached.
  void add_node(const std::string& node, Socket socket);
  bool attached(const std::string& node) const { return nodes_.count(node) > 0; }

  // Ships the deployment bundle — model name, full weights, the plan in binary
  // wire form, and the edge pool width — to every attached node. Throws
  // TransportError if any worker rejects it.
  void configure(const std::string& model_name, const dnn::Network& net,
                 const exec::WeightStore& weights, std::span<const std::uint8_t> plan_binary,
                 std::size_t vsm_workers);

  std::string name() const override { return "socket"; }
  std::uint64_t open_request() override;
  void close_request(std::uint64_t request) noexcept override;
  void seed(std::uint64_t request, const std::string& node, std::uint64_t slot,
            const dnn::Tensor& tensor) override;
  std::optional<dnn::Tensor> send(std::uint64_t request, const runtime::MessageRecord& meta,
                                  std::uint64_t slot, const dnn::Tensor& tensor) override;
  bool run_layer(std::uint64_t request, const std::string& node, dnn::LayerId layer) override;
  bool run_stack(std::uint64_t request, const std::string& node) override;
  dnn::Tensor fetch(std::uint64_t request, const std::string& node,
                    std::uint64_t slot) override;

  Stats stats() const {
    return {frames_sent_.load(), payload_bytes_sent_.load(), payload_bytes_fetched_.load()};
  }

 private:
  struct Node {
    Socket socket;
    // One in-flight request/response per connection: stages of different
    // pipelined requests may address the same node from different scheduler
    // threads.
    std::mutex mutex;
  };

  Node* find(const std::string& node) const;
  // Locked request/response round-trip. kError replies become TransportError
  // with the worker's message; any reply kind other than `expected` is a
  // protocol desync and throws too.
  Frame call(Node& node, const std::string& node_name, MsgKind kind,
             std::span<const std::uint8_t> body, MsgKind expected = MsgKind::kOk);
  void put(std::uint64_t request, Node& node, const std::string& node_name,
           const runtime::MessageRecord& meta, std::uint64_t slot, const dnn::Tensor& tensor);

  std::map<std::string, std::unique_ptr<Node>> nodes_;
  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> payload_bytes_sent_{0};
  std::atomic<std::uint64_t> payload_bytes_fetched_{0};
};

// Forks and execs a d3_node worker binary connected back to this process over
// localhost TCP. The listening socket is bound before the fork, so there is no
// startup race; a child that dies before connecting fails the constructor
// instead of hanging it.
class WorkerProcess {
 public:
  explicit WorkerProcess(const std::string& binary);
  // Closes the socket if still held (the worker exits on EOF) and reaps the
  // child, escalating to SIGKILL if it ignores the hang-up.
  ~WorkerProcess();
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  // Hands the connected socket to a SocketTransport (call exactly once).
  Socket take_socket();
  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  Socket socket_;
};

}  // namespace d3::rpc
