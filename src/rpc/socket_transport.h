// Coordinator side of the multi-process transport: each attached node is a
// d3_node worker process reached over one TCP connection.
//
// Three topologies compose freely (docs/ARCHITECTURE.md has diagrams):
//
//   * Star (PR 3): every inter-node tensor is recorded once (producer ->
//     consumer) in the transcript but physically relayed coordinator ->
//     consumer. Simple, strictly request/response.
//   * Peer-to-peer (connect_peers): attached tier nodes hold direct channels;
//     a boundary tensor is pushed producer -> consumer by kPushPeer and the
//     coordinator never touches the bytes (Stats::relay_bytes drops to zero).
//   * Edge fan-out (add_tile_worker): the VSM tile plan is sharded across N
//     real "edge1".."edgeN" worker processes (tile -> worker = tile mod N);
//     the engine scatters tile crops, runs tiles concurrently across workers,
//     and gathers outputs in tile order, so results stay bitwise-identical.
//
// Nodes that are not attached (mixed deployments) fall back to in-process
// hosting automatically. Worker death mid-request surfaces as ChannelDied,
// naming the node; with set_reconnect the transport re-establishes the channel
// (respawn + kConfig replay) under bounded backoff first, and a fresh worker
// incarnation answers unknown-state references with kErrorState — both feed
// the engine's tier-granular recovery (reopen + re-seed + re-run one tier).
// Tile workers that die with no reconnect hook are pruned from the shard map
// (prune_tile_workers) so the survivors absorb their tiles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <sys/types.h>
#include <vector>

#include "exec/weights.h"
#include "rpc/socket.h"
#include "rpc/transport.h"

namespace d3::rpc {

class SocketTransport final : public Transport {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    // Encoded tensor bytes the coordinator pushed to workers (seeds, relays,
    // tile scatters).
    std::uint64_t payload_bytes_sent = 0;
    // Subset of payload_bytes_sent where the producer was itself a remote
    // node: the coordinator relayed bytes it neither produced nor consumed.
    // Peer-to-peer channels exist to drive this to zero.
    std::uint64_t relay_bytes = 0;
    // Encoded tensor bytes the coordinator pulled back (boundary relays,
    // final outputs, tile gathers).
    std::uint64_t payload_bytes_fetched = 0;
    // Direct worker -> worker pushes: count and encoded tensor bytes. These
    // bytes never cross the coordinator.
    std::uint64_t peer_pushes = 0;
    std::uint64_t peer_bytes = 0;
    // Channels re-established after a worker death.
    std::uint64_t reconnects = 0;
    // Requests re-begun on a recovered node (tier-granular recovery).
    std::uint64_t reopens = 0;
    // Tile workers dropped from the shard map because their channel died with
    // no reconnect hook (survivors absorb their tiles).
    std::uint64_t detached_workers = 0;
    // Pruned tile workers returned to the shard map after a late set_reconnect
    // (fresh incarnation dialled, kConfig replayed, shard slot restored).
    std::uint64_t readmitted_workers = 0;
    // Buddy replication: boundary tensors pushed to the buddy node at ship
    // time (kPutReplica), their encoded bytes, and pushes that failed and were
    // swallowed (replication is best-effort — a dead buddy never fails the
    // request, it only degrades failover back to re-seeding).
    std::uint64_t replica_pushes = 0;
    std::uint64_t replica_bytes = 0;
    std::uint64_t replica_failures = 0;
    // Failover-time deliveries served out of the buddy's replica store
    // (replica_push): the re-seed round-trips these saved.
    std::uint64_t replica_restores = 0;
    // Liveness probes sent (kPing) and channels declared dead by the
    // missed-beat threshold before any request send touched them.
    std::uint64_t pings = 0;
    std::uint64_t heartbeat_deaths = 0;
    // Flushes that pushed more than one queued frame in a single write: the
    // issue_* facade batches a tier's independent sends into one outbox and
    // this counts how often the wire actually saw them coalesced.
    std::uint64_t pipelined_sends = 0;
    // kConfig body bytes sent across all nodes (cumulative over configure()
    // calls and replays): O(model) per node in the classic form, O(1) per
    // node in the weights-elided form — the bundle-boot saving, measured.
    std::uint64_t config_bytes_sent = 0;
  };

  // Bounded-backoff policy for re-establishing a dead worker's channel.
  struct RetryPolicy {
    int max_attempts = 3;
    std::chrono::milliseconds initial_backoff{50};
    double backoff_multiplier = 2.0;
  };

  // Produces a fresh connected socket for a node whose channel died —
  // typically by respawning a WorkerProcess and taking its socket.
  using ReconnectFn = std::function<Socket()>;

  // Proactive liveness detection. Every `interval` per channel the transport
  // (driven by heartbeat_poll(), typically from the serving reactor's idle
  // branch) sends a kPing and waits up to `timeout` for the kPong;
  // `miss_threshold` consecutive unanswered probes declare the channel dead
  // and raise ChannelDied through the normal recovery path — *before* the
  // next request send would have tripped over the corpse.
  struct HeartbeatPolicy {
    std::chrono::milliseconds interval{100};
    std::chrono::milliseconds timeout{50};
    int miss_threshold = 3;
  };

  // Observes coordinator-side protocol sends that carry no Transport virtual
  // of their own (peer handshake legs, buddy replica pushes), so a decorator
  // like FaultInjectionTransport can count and fault them. Invoked with the
  // message kind and the node the frame is sent to (kConnectPeer: the
  // dialling node) immediately before the frame goes out; an exception thrown
  // by the observer propagates exactly like a send failure at that point.
  // Install before traffic starts — the hook is not guarded by a lock.
  using OpObserver = std::function<void(MsgKind, const std::string&)>;
  void set_op_observer(OpObserver observer) { op_observer_ = std::move(observer); }

  // Attaches a connected worker as computation node `node` ("device0",
  // "edge0", "cloud0"). Call configure() once after all nodes are attached.
  void add_node(const std::string& node, Socket socket);
  // Attaches a worker as one shard of the VSM edge pool. Workers are named
  // "edge1".."edgeN" in attachment order; tile t runs on worker t mod N. Tile
  // fan-out engages only while "edge0" itself is *not* attached (the engine
  // then acts as the edge coordinator: it crops, scatters and reassembles).
  void add_tile_worker(Socket socket);
  bool attached(const std::string& node) const { return nodes_.count(node) > 0; }

  // Ships the deployment bundle — model name, full weights, the plan in binary
  // wire form, and the edge pool width — to every attached node, and caches it
  // for kConfig replay on reconnect. Throws TransportError if any worker
  // rejects it.
  void configure(const std::string& model_name, const dnn::Network& net,
                 const exec::WeightStore& weights, std::span<const std::uint8_t> plan_binary,
                 std::size_t vsm_workers);

  // Establishes direct peer channels between every ordered pair of attached
  // tier nodes (kPeerListen on the receiver, kConnectPeer on the sender).
  // After this, send_peer pushes boundary tensors producer -> consumer
  // directly; a channel lost to a worker death is re-established lazily on
  // the next push. Call after configure().
  void connect_peers();

  // Overrides the address peers are told to dial to reach `node`. By default
  // the handshake advertises the coordinator-observed address of the node's
  // own channel (getpeername), which is correct whenever workers share the
  // coordinator's network; NAT'd or multi-homed deployments can pin a better
  // one here before connect_peers().
  void set_advertised_address(const std::string& node, std::string address);

  // Registers the reconnect hook for `node`: on a dead channel the transport
  // retries fn() under `policy`'s bounded backoff, replays kConfig, and then
  // surfaces the interrupted call as TransportError (per-request worker state
  // died with the process, so the request must be replayed — the transcript
  // is a pure function of the plan, so a replay is byte-identical).
  //
  // Called on a tile worker already pruned from the shard map, this instead
  // re-admits it: fn() is dialled immediately, kConfig replayed, and the
  // worker returns to its deterministic shard position — so a late-arriving
  // reconnect hook undoes a prune instead of being rejected.
  void set_reconnect(const std::string& node, ReconnectFn fn, RetryPolicy policy);
  void set_reconnect(const std::string& node, ReconnectFn fn) {
    set_reconnect(node, std::move(fn), RetryPolicy());
  }

  // Designates an attached node as the buddy replica holder: every boundary
  // tensor send() additionally pushes the full envelope to the buddy
  // (kPutReplica, best-effort), and send_peer() declines so the coordinator
  // keeps holding payloads at ship time. After a coordinator failover the
  // standby calls replica_push() to have the buddy deliver the stored bytes
  // peer-to-peer instead of re-materializing and re-shipping them. Call
  // before traffic; pass "" to disable.
  void set_buddy(const std::string& node) { buddy_name_ = node; }
  const std::string& buddy() const { return buddy_name_; }

  // Arms proactive failure detection for every attached channel (tier nodes
  // and tile workers alike). Probes are driven by the Transport base's
  // heartbeat_poll(); this just sets the policy and starts the clocks.
  void enable_heartbeats(HeartbeatPolicy policy);

  // Fencing epoch (coordinator incarnation number) stamped as the first field
  // of every kConfig body this transport sends — including the automatic
  // replay on reconnect. Workers remember the highest epoch they have seen
  // and answer every verb from a lower one with kFenced (surfaced here as
  // rpc::Fenced), so a deposed coordinator can never drive a worker a
  // successor already owns. Call before configure(); the default 0 keeps
  // single-coordinator deployments unfenced.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  std::uint64_t epoch() const { return epoch_; }

  // Weights-elided kConfig: configure() (and its reconnect replay) sends the
  // FNV-1a hash of the full-model weights bytes instead of the O(model) blob
  // itself, relying on every worker having booted from a d3c bundle (or been
  // fully configured once before). A worker holding a different hash — or
  // none — answers kBundleMismatch, surfaced here as rpc::BundleMismatch
  // before any state mutation. Call before configure().
  void set_elide_weights(bool elide) { elide_weights_ = elide; }
  bool elide_weights() const { return elide_weights_; }

  std::string name() const override { return "socket"; }
  std::uint64_t open_request() override;
  // Re-opens a journalled request id on every attached node (idempotent
  // kBegin broadcast) and advances the id counter past it, so a standby
  // coordinator resuming checkpointed requests never collides a fresh id
  // with a resumed one.
  void open_request_as(std::uint64_t request) override;
  void close_request(std::uint64_t request) noexcept override;
  void seed(std::uint64_t request, const std::string& node, std::uint64_t slot,
            const dnn::Tensor& tensor) override;
  std::optional<dnn::Tensor> send(std::uint64_t request, const runtime::MessageRecord& meta,
                                  std::uint64_t slot, const dnn::Tensor& tensor) override;
  bool run_layer(std::uint64_t request, const std::string& node, dnn::LayerId layer) override;
  bool run_stack(std::uint64_t request, const std::string& node) override;
  dnn::Tensor fetch(std::uint64_t request, const std::string& node,
                    std::uint64_t slot) override;

  // Asynchronous facade: each issued verb is queued on the node's outbox as a
  // correlation-id-stamped frame and NOT flushed — consecutive issues against
  // one channel coalesce into a single write (Stats::pipelined_sends). The
  // frame goes out at the latest when the handle is first polled / waited on /
  // asked for its fd. Replies complete strictly in issue order per channel
  // (the worker serve loop is serial; correlation ids are verified on drain).
  OpHandle issue_seed(std::uint64_t request, const std::string& node, std::uint64_t slot,
                      const dnn::Tensor& tensor) override;
  OpHandle issue_send(std::uint64_t request, const runtime::MessageRecord& meta,
                      std::uint64_t slot, const dnn::Tensor& tensor) override;
  OpHandle issue_run_layer(std::uint64_t request, const std::string& node,
                           dnn::LayerId layer) override;
  OpHandle issue_run_stack(std::uint64_t request, const std::string& node) override;
  OpHandle issue_fetch(std::uint64_t request, const std::string& node,
                       std::uint64_t slot) override;
  // Async admission: one pipelined kBegin per attached node; handles appended
  // to `ops`. Issue-time failure closes the request on every node and throws.
  std::uint64_t issue_open_request(std::vector<OpHandle>& ops) override;

  bool send_peer(std::uint64_t request, const runtime::MessageRecord& meta,
                 std::uint64_t slot) override;
  // Failover-time delivery out of the buddy's replica store: asks the buddy
  // to push its stored copy of `slot` peer-to-peer to meta.to_node. Returns
  // false (caller falls back to materialize + send) when no buddy is set,
  // the buddy never stored the slot (it answers kErrorState naming itself),
  // or the buddy's own channel is down.
  bool replica_push(std::uint64_t request, const runtime::MessageRecord& meta,
                    std::uint64_t slot) override;

  // One liveness probe of `node`'s channel, per the HeartbeatPolicy. A busy
  // channel mutex counts as liveness (a real call is in flight); a timeout
  // counts a miss; reaching the miss threshold closes the socket and raises
  // ChannelDied through recover_locked — identical to how a mid-request death
  // surfaces, so callers need no second recovery path.
  void ping(const std::string& node) override;
  std::vector<std::string> heartbeat_targets() override;
  int heartbeat_due_ms() override;

  // Re-begins `request` on the (re-established) node so the engine can re-seed
  // the slots the dead incarnation held. Returns false for unknown/detached
  // nodes (nothing remote to rebuild).
  bool reopen(std::uint64_t request, const std::string& node) override;
  // Drops dead-with-no-reconnect tile workers from the shard map; the tiles
  // they served fall to the survivors (tile % remaining) on the next run.
  std::size_t prune_tile_workers() override;

  bool has_tile_workers() const override;
  std::size_t tile_worker_count() const override;
  std::string tile_node(std::size_t tile) const override;
  void put_tile(std::uint64_t request, const runtime::MessageRecord& meta, std::size_t tile,
                const dnn::Tensor& input) override;
  void run_tile(std::uint64_t request, std::size_t tile) override;
  dnn::Tensor fetch_tile(std::uint64_t request, std::size_t tile) override;

  Stats stats() const {
    return {frames_sent_.load(),   payload_bytes_sent_.load(), relay_bytes_.load(),
            payload_bytes_fetched_.load(), peer_pushes_.load(), peer_bytes_.load(),
            reconnects_.load(),    reopens_.load(),            detached_workers_.load(),
            readmitted_workers_.load(),    replica_pushes_.load(),
            replica_bytes_.load(), replica_failures_.load(),   replica_restores_.load(),
            pings_.load(),         heartbeat_deaths_.load(),   pipelined_sends_.load(),
            config_bytes_sent_.load()};
  }

 private:
  // One queued-but-unanswered frame on a channel: written (or still sitting in
  // the node's outbox) with `corr` stamped in its header, completed when the
  // matching reply is drained. The completion fields (error / tensor / reply)
  // are written once, under the node mutex, before `completed` is flipped;
  // issuers only read them after observing completed == true.
  struct PendingOp {
    std::uint64_t corr = 0;
    MsgKind sent = MsgKind::kOk;      // request kind, for desync diagnostics
    MsgKind expected = MsgKind::kOk;  // reply kind that means success
    bool is_fetch = false;            // decode the reply body as a tensor
    std::atomic<bool> completed{false};
    Frame reply;
    std::exception_ptr error;
    std::optional<dnn::Tensor> tensor;
  };
  class SocketOp;  // AsyncOp over one PendingOp (defined in the .cpp)

  struct Node {
    std::string name;
    Socket socket;
    // Peer endpoint of the current socket, cached while the channel is healthy:
    // once the peer dies, getpeername() fails (ECONNRESET tears the association
    // down), and death messages are exactly where the address matters.
    std::string peer;
    // One in-flight request/response per connection: stages of different
    // pipelined requests may address the same node from different scheduler
    // threads.
    std::mutex mutex;
    // Cached kConfig body for replay after reconnect.
    std::vector<std::uint8_t> config_body;
    ReconnectFn reconnect;
    RetryPolicy retry;
    // Dead for good (no reconnect hook): the node is skipped by every lookup
    // and lifecycle loop, but the object stays allocated so concurrent
    // requests never chase a dangling pointer.
    std::atomic<bool> detached{false};
    // Heartbeat clocks. last_probe_ms (steady-clock millis of the last probe
    // round) and misses are atomics because ping() updates them even when the
    // channel mutex is busy. The outstanding kPing (a missed probe leaves its
    // kPong owed on the stream) rides the same pending queue as every other
    // frame; ping_op keeps a handle on it so at most one is ever in flight.
    std::atomic<std::int64_t> last_probe_ms{0};
    std::atomic<int> misses{0};
    // Correlation machinery (all guarded by `mutex`): next id to stamp, the
    // FIFO of unanswered frames, and the write-coalescing outbox of encoded
    // frames not yet pushed to the socket.
    std::uint64_t next_corr = 1;
    std::deque<std::shared_ptr<PendingOp>> pending;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_frames = 0;
    std::shared_ptr<PendingOp> ping_op;
  };

  Node* find(const std::string& node) const;
  Node& tile_worker(std::size_t tile) const;
  // Locked request/response round-trip. kError replies become TransportError
  // with the worker's message; any reply kind other than `expected` is a
  // protocol desync and throws too.
  Frame call(Node& node, MsgKind kind, std::span<const std::uint8_t> body,
             MsgKind expected = MsgKind::kOk);
  Frame roundtrip_locked(Node& node, MsgKind kind, std::span<const std::uint8_t> body,
                         MsgKind expected);
  // Stamps a correlation id, encodes the frame into the node's outbox (no
  // write yet) and queues its PendingOp. flush_locked pushes the whole outbox
  // in one write; drain_one_locked reads one reply, matches it against
  // pending.front() and completes that op (protocol errors are *stored* in the
  // op, the channel stays in sync).
  std::shared_ptr<PendingOp> submit_op(Node& node, MsgKind kind,
                                       std::span<const std::uint8_t> body,
                                       MsgKind expected = MsgKind::kOk);
  void flush_locked(Node& node);
  void drain_one_locked(Node& node);
  // submit_op wrapped as an OpHandle for the issue_* facade (no flush: batching
  // happens across consecutive issues; issue-time socket failures recover and
  // throw exactly like the blocking verbs).
  OpHandle issue_call(Node& node, MsgKind kind, std::span<const std::uint8_t> body,
                      MsgKind expected = MsgKind::kOk, bool is_fetch = false,
                      std::uint64_t issue_bytes = 0);
  // Socket-level failure with ops in flight: every queued op is completed with
  // the recovery outcome (ChannelDied) so parked waiters see the death too,
  // then the same exception propagates to the caller that hit the failure.
  [[noreturn]] void fail_pending_and_recover_locked(Node& node, const std::string& error);
  // Channel-death recovery: re-establish under bounded backoff (reconnect fn +
  // kConfig replay), then throw TransportError for the interrupted call.
  [[noreturn]] void recover_locked(Node& node, const std::string& error);
  std::uint64_t put(std::uint64_t request, Node& node, const runtime::MessageRecord& meta,
                    std::uint64_t slot, const dnn::Tensor& tensor);
  // One peer handshake: kPeerListen on `to`, kConnectPeer on `from`.
  void link_peers(Node& from, Node& to);
  std::string advertised_address(const Node& to) const;
  // Returns a pruned (detached) tile worker to the shard map: dial a fresh
  // incarnation via its reconnect hook, replay kConfig, restore its
  // deterministic shard position.
  void readmit(Node& node);
  std::uint64_t push_peer(Node& from, std::uint64_t request,
                          const runtime::MessageRecord& meta, std::uint64_t slot);
  // Best-effort kPutReplica of a just-shipped boundary tensor to the buddy.
  void replicate(std::uint64_t request, const runtime::MessageRecord& meta,
                 std::uint64_t slot, const dnn::Tensor& tensor);
  void observe(MsgKind kind, const std::string& node) {
    if (op_observer_) op_observer_(kind, node);
  }

  std::map<std::string, std::unique_ptr<Node>> nodes_;
  // Shard order; also present in nodes_. Guarded by shard_mutex_: recovery may
  // prune dead workers while other in-flight requests are sharding tiles.
  std::vector<Node*> tile_workers_;
  mutable std::mutex shard_mutex_;
  // Per-node dial-address overrides for the peer handshake (shard_mutex_).
  std::map<std::string, std::string> advertised_addresses_;
  bool peers_enabled_ = false;
  std::string buddy_name_;
  std::uint64_t epoch_ = 0;
  bool elide_weights_ = false;
  // Hash of the full-model weights bytes named by the last configure() — what
  // a kBundleMismatch reply is reported against.
  std::uint64_t weights_hash_ = 0;
  OpObserver op_observer_;
  bool heartbeats_ = false;
  HeartbeatPolicy heartbeat_policy_;
  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> payload_bytes_sent_{0};
  std::atomic<std::uint64_t> relay_bytes_{0};
  std::atomic<std::uint64_t> payload_bytes_fetched_{0};
  std::atomic<std::uint64_t> peer_pushes_{0};
  std::atomic<std::uint64_t> peer_bytes_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> reopens_{0};
  std::atomic<std::uint64_t> detached_workers_{0};
  std::atomic<std::uint64_t> readmitted_workers_{0};
  std::atomic<std::uint64_t> replica_pushes_{0};
  std::atomic<std::uint64_t> replica_bytes_{0};
  std::atomic<std::uint64_t> replica_failures_{0};
  std::atomic<std::uint64_t> replica_restores_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> heartbeat_deaths_{0};
  std::atomic<std::uint64_t> pipelined_sends_{0};
  std::atomic<std::uint64_t> config_bytes_sent_{0};
};

// Forks and execs a d3_node worker binary connected back to this process over
// localhost TCP. The listening socket is bound before the fork, so there is no
// startup race; a child that dies before connecting fails the constructor
// instead of hanging it.
class WorkerProcess {
 public:
  explicit WorkerProcess(const std::string& binary);
  // Extra argv entries appended after "--connect <host> <port>" (e.g. the
  // deterministic {"--crash-after", "N"} fault-injection flag of d3_node).
  WorkerProcess(const std::string& binary, const std::vector<std::string>& extra_args);
  // `host` is the coordinator-side listen interface the worker dials back to
  // (default 127.0.0.1; a non-loopback interface exercises the off-host
  // network path while still forking locally).
  WorkerProcess(const std::string& binary, const std::vector<std::string>& extra_args,
                const std::string& host);
  // Closes the socket if still held (the worker exits on EOF) and reaps the
  // child, escalating to SIGKILL if it ignores the hang-up.
  ~WorkerProcess();
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  // Hands the connected socket to a SocketTransport (call exactly once).
  Socket take_socket();
  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  Socket socket_;
};

// Forks and execs a d3_node worker in --listen mode: the worker binds its own
// (ephemeral) port, prints "PORT <n>" on a pipe back to this process, and then
// outlives any one coordinator connection. That inversion — worker listens,
// coordinators dial — is what coordinator failover needs: a standby can dial
// the same worker the dead coordinator used and find its per-request state
// intact. dial() hands out a fresh connected socket per coordinator
// incarnation.
class ListenWorkerProcess {
 public:
  explicit ListenWorkerProcess(const std::string& binary);
  ListenWorkerProcess(const std::string& binary, const std::vector<std::string>& extra_args);
  // The worker has no coordinator socket to see EOF on, so teardown is
  // SIGKILL + reap (tests also SIGSTOP/SIGKILL it mid-run on purpose).
  ~ListenWorkerProcess();
  ListenWorkerProcess(const ListenWorkerProcess&) = delete;
  ListenWorkerProcess& operator=(const ListenWorkerProcess&) = delete;

  // Dials a fresh coordinator connection to the worker (any number of times;
  // the worker serves them one at a time with persistent node state).
  Socket dial() const;
  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace d3::rpc
