// Deterministic fault injection for the distributed runtime's recovery paths.
//
// FaultInjectionTransport is a decorator over any rpc::Transport: every engine
// -> transport call is counted as one *op* (kind + target node) against a
// scripted fault plan, and when a scheduled fault's trigger matches — "before
// the Nth op of kind K targeting node X" — its action fires:
//
//   * kKill      — invoke the registered kill handler (the test SIGKILLs the
//                  worker process) and then perform the op, which hits the
//                  dead channel: the exact failure a real mid-request death
//                  produces, at an exactly reproducible protocol point.
//   * kFail      — throw rpc::ChannelDied(node, restored=true) without
//                  touching the wrapped transport: a synthetic state-loss
//                  signal that exercises the engine's recovery machinery on
//                  in-process transports, where nothing can really die.
//   * kDelay     — sleep, then perform the op (reordering/latency probe; must
//                  never change outputs or transcripts).
//   * kDuplicate — perform the op twice (pins idempotence: a duplicated
//                  kPut/seed/kBegin must be byte-for-byte harmless).
//
// Because the engine's op sequence is a pure function of the plan (the same
// invariant that makes transcripts byte-identical), the op counters — and
// therefore the fault points — are deterministic run to run. The sweep in
// tests/fault_injection_test.cpp walks kill points across every message kind
// and every tier; docs/PROTOCOL.md documents the semantics.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "rpc/transport.h"

namespace d3::rpc {

class FaultInjectionTransport final : public Transport {
 public:
  // One op kind per Transport entry point, named after the wire message the
  // socket transport emits for it (docs/PROTOCOL.md).
  enum class Op {
    kBegin,      // open_request / reopen        -> kBegin frames
    kEnd,        // close_request                -> kEnd frames
    kPut,        // seed + send                  -> kPut frames
    kRunLayer,   // run_layer                    -> kRunLayer
    kRunStack,   // run_stack                    -> kRunStack
    kGet,        // fetch                        -> kGet
    kPushPeer,   // send_peer                    -> kPushPeer
    kPutTile,    // put_tile                     -> kPutTile
    kRunTile,    // run_tile                     -> kRunTile
    kGetTile,    // fetch_tile                   -> kGetTile
    // Ops below are emitted by SocketTransport internals rather than 1:1
    // Transport entry points; a socket inner transport reports them through
    // its op observer so kill points can target the handshake and
    // replication sub-steps of connect_peers()/send().
    kPeerListen,   // peer-listener open leg of link_peers -> kPeerListen
    kConnectPeer,  // dialling leg of link_peers           -> kConnectPeer
    kPeerHello,    // window between the two legs: the worker-side handshake
    kPing,         // liveness probe round-trip            -> kPing
    kPutReplica,   // buddy replication push               -> kPutReplica
    kAny,          // matches every op (script wildcards only)
  };

  enum class Action { kKill, kFail, kDelay, kDuplicate };

  struct Fault {
    Op op = Op::kAny;
    std::string node;       // "" matches any node
    std::uint64_t nth = 1;  // fire before the Nth matching op (1-based)
    Action action = Action::kKill;
    std::chrono::milliseconds delay{0};  // kDelay only
    // kKill only: the node handed to the kill handler. "" = the matched op's
    // own target; set it to kill a *different* node at this protocol point
    // (e.g. kill the consumer right before the producer's kPushPeer).
    std::string kill_node;
  };

  struct Stats {
    std::uint64_t ops = 0;              // transport calls observed
    std::uint64_t faults_injected = 0;  // scheduled faults that fired
    std::uint64_t kills = 0;
    std::uint64_t synthetic_failures = 0;
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;
  };

  // Wrapping a SocketTransport also installs an op observer on it, so the
  // socket-internal ops (kPeerListen/kConnectPeer/kPeerHello/kPutReplica) hit
  // the same fault plan as the Transport entry points — a scripted kKill on
  // Op::kPutReplica fires right before the replica frame goes out.
  explicit FaultInjectionTransport(std::shared_ptr<Transport> inner);

  // Registers the process-killer the kKill action invokes with the target
  // node's name (tests pass a lambda that SIGKILLs the worker).
  void set_kill_handler(std::function<void(const std::string&)> handler);
  // Adds one scripted fault. Faults are independent; each fires at most once.
  void schedule(Fault fault);

  // Ops observed so far for (op, node); node "" sums over all nodes. Lets
  // tests pin exact execution counts (e.g. "every layer ran exactly once").
  std::uint64_t op_count(Op op, const std::string& node = "") const;
  Stats stats() const;

  // --- Transport interface: count the op, maybe fault, forward to inner ----
  std::string name() const override { return "fault(" + inner_->name() + ")"; }
  std::uint64_t open_request() override;
  void close_request(std::uint64_t request) noexcept override;
  void seed(std::uint64_t request, const std::string& node, std::uint64_t slot,
            const dnn::Tensor& tensor) override;
  std::optional<dnn::Tensor> send(std::uint64_t request, const runtime::MessageRecord& meta,
                                  std::uint64_t slot, const dnn::Tensor& tensor) override;
  bool run_layer(std::uint64_t request, const std::string& node, dnn::LayerId layer) override;
  bool run_stack(std::uint64_t request, const std::string& node) override;
  dnn::Tensor fetch(std::uint64_t request, const std::string& node,
                    std::uint64_t slot) override;
  bool send_peer(std::uint64_t request, const runtime::MessageRecord& meta,
                 std::uint64_t slot) override;
  bool reopen(std::uint64_t request, const std::string& node) override;
  void open_request_as(std::uint64_t request) override;
  bool replica_push(std::uint64_t request, const runtime::MessageRecord& meta,
                    std::uint64_t slot) override;
  void ping(const std::string& node) override;
  std::vector<std::string> heartbeat_targets() override { return inner_->heartbeat_targets(); }
  int heartbeat_due_ms() override { return inner_->heartbeat_due_ms(); }
  std::size_t prune_tile_workers() override { return inner_->prune_tile_workers(); }
  bool has_tile_workers() const override { return inner_->has_tile_workers(); }
  std::size_t tile_worker_count() const override { return inner_->tile_worker_count(); }
  std::string tile_node(std::size_t tile) const override { return inner_->tile_node(tile); }
  void put_tile(std::uint64_t request, const runtime::MessageRecord& meta, std::size_t tile,
                const dnn::Tensor& input) override;
  void run_tile(std::uint64_t request, std::size_t tile) override;
  dnn::Tensor fetch_tile(std::uint64_t request, std::size_t tile) override;

 private:
  struct Scheduled {
    Fault fault;
    std::uint64_t seen = 0;  // matching ops observed so far
    bool fired = false;
  };

  // Counts the op, fires due faults (kill/delay happen here; kFail throws),
  // and reports whether the op should run twice (kDuplicate).
  bool enter(Op op, const std::string& node);

  std::shared_ptr<Transport> inner_;
  std::function<void(const std::string&)> kill_;
  mutable std::mutex mutex_;
  std::vector<Scheduled> plan_;
  std::map<std::pair<Op, std::string>, std::uint64_t> counts_;
  Stats stats_;
};

}  // namespace d3::rpc
